#![warn(missing_docs)]

//! # annealbench
//!
//! A full reproduction of S. Nahar, S. Sahni and E. Shragowitz,
//! *"Experiments with simulated annealing"*, 22nd Design Automation
//! Conference (DAC), 1985 — the classic study showing that simulated
//! annealing is just one of many Monte Carlo acceptance rules, and that the
//! trivial rule `g = 1` matches tuned six-temperature annealing on circuit
//! linear-arrangement problems.
//!
//! This crate re-exports the whole workspace:
//!
//! * [`core`] — the Monte Carlo optimization framework: the [`Problem`]
//!   trait, the Figure-1/Figure-2 strategies, all 20 acceptance-function
//!   classes, schedules, budgets, and the temperature tuner.
//! * [`netlist`] — circuit netlists and random instance generators.
//! * [`linarr`] — GOLA/NOLA linear arrangement with incremental density
//!   evaluation and the Goto constructive heuristic.
//! * [`partition`] — balanced two-way partitioning with a Kernighan–Lin
//!   baseline.
//! * [`tsp`] — Euclidean TSP with 2-opt/or-opt moves and classical
//!   constructives.
//! * [`experiments`] — runners regenerating every table in the paper.
//!
//! # Quick start
//!
//! ```
//! use annealbench::{
//!     core::{Annealer, Budget, GFunction},
//!     linarr::LinearArrangementProblem,
//!     netlist::generator::random_two_pin,
//! };
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(1985);
//! let netlist = random_two_pin(15, 150, &mut rng);
//! let problem = LinearArrangementProblem::new(netlist);
//!
//! let result = Annealer::new(&problem)
//!     .budget(Budget::evaluations(30_000))
//!     .seed(42)
//!     .run(&mut GFunction::unit());
//! println!(
//!     "density {} → {}",
//!     result.initial_cost, result.best_cost
//! );
//! # assert!(result.best_cost <= result.initial_cost);
//! ```

pub use anneal_core as core;
pub use anneal_experiments as experiments;
pub use anneal_linarr as linarr;
pub use anneal_netlist as netlist;
pub use anneal_partition as partition;
pub use anneal_tsp as tsp;

// Convenience re-exports of the most-used types at the crate root.
pub use anneal_core::{
    Annealer, Budget, Figure1, Figure2, GFunction, Problem, RunResult, Schedule, Strategy,
};
pub use anneal_linarr::{goto_arrangement, LinearArrangementProblem};
pub use anneal_partition::PartitionProblem;
pub use anneal_tsp::TspProblem;
