//! Cell-level telemetry for the experiment harness.
//!
//! Every table cell (method × budget column, summed over the instance set)
//! can emit one [`CellRecord`]: identity, wall time, evaluation counts, the
//! acceptance breakdown aggregated per temperature, compact per-instance
//! rows, and any instance panics caught by the fault-isolated runner. A
//! [`TelemetryLog`] collects records in memory and optionally streams each
//! one as a JSON line, so a multi-hour table run leaves a triageable trace
//! even if it is interrupted — and a single bad cell is a recorded failure
//! instead of a lost run.
//!
//! The JSON is hand-rolled (this workspace builds with no registry access,
//! so there is no serde); the format is documented in EXPERIMENTS.md and
//! exercised by tests below.

use std::collections::HashMap;
use std::fmt;
use std::io::Write;
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

use anneal_core::{AdvanceReason, Budget, RunTelemetry};

use crate::faults::FaultPlan;
use crate::progress::Progress;
use crate::trace::TraceSink;

/// Identity of one table cell.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CellKey {
    /// Table name (e.g. `"table4.1"`).
    pub table: String,
    /// Method row label (e.g. `"g = 1"`).
    pub method: String,
    /// Budget/strategy column label (e.g. `"12 sec"`).
    pub column: String,
}

impl CellKey {
    /// A cell key from its three labels.
    pub fn new(
        table: impl Into<String>,
        method: impl Into<String>,
        column: impl Into<String>,
    ) -> Self {
        CellKey {
            table: table.into(),
            method: method.into(),
            column: column.into(),
        }
    }
}

impl fmt::Display for CellKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} / {} / {}", self.table, self.method, self.column)
    }
}

/// One instance's contribution to a cell.
#[derive(Debug, Clone, PartialEq)]
pub struct InstanceRecord {
    /// Instance index within the set.
    pub index: usize,
    /// The chain seed the run used (reproduces the run on its own).
    pub seed: u64,
    /// Cost reduction achieved.
    pub reduction: f64,
    /// Evaluations charged.
    pub evals: u64,
    /// Wall-clock milliseconds.
    pub wall_ms: f64,
    /// Stop reason (`"budget"` or `"equilibrium"`).
    pub stop: &'static str,
    /// Downhill acceptances.
    pub accepted_downhill: u64,
    /// Uphill acceptances.
    pub accepted_uphill: u64,
    /// Uphill rejections.
    pub rejected_uphill: u64,
}

/// Per-temperature counters aggregated over a cell's instances.
#[derive(Debug, Clone, Copy, Default)]
pub struct TempAggregate {
    /// Temperature index.
    pub temp: usize,
    /// Evaluations across instances at this temperature.
    pub evals: u64,
    /// Proposals made at this temperature (the acceptance-rate denominator).
    pub proposals: u64,
    /// Downhill acceptances.
    pub accepted_downhill: u64,
    /// Uphill acceptances.
    pub accepted_uphill: u64,
    /// Uphill rejections.
    pub rejected_uphill: u64,
    /// Stages that ended by budget exhaustion.
    pub ended_budget: u64,
    /// Stages that ended by the equilibrium criterion.
    pub ended_equilibrium: u64,
    /// Stages closed by a replica-exchange swap phase (WAL schema v2;
    /// loads as 0 from v1 logs).
    pub ended_exchange: u64,
    /// Replica-exchange swaps attempted with this rung as the lower pair
    /// member (WAL schema v2; loads as 0 from v1 logs).
    pub swap_attempts: u64,
    /// Replica-exchange swaps accepted (WAL schema v2; loads as 0 from
    /// v1 logs).
    pub swap_accepts: u64,
    /// Sum of the controlled stage temperatures across instances (WAL
    /// schema v3; loads as NaN from v1/v2 logs). Divide by the stage
    /// count (`ended_*` sum) for the mean stage temperature.
    pub temperature: f64,
    /// Sum of the controller's target acceptance rates across instances
    /// (WAL schema v3). NaN when no adaptive controller ran, and when
    /// loading v1/v2 logs.
    pub target_acceptance: f64,
}

/// `f64` sums compare bitwise so NaN (no controller, or a pre-v3 log)
/// stays reflexive and WAL round-trip tests can use plain equality.
impl PartialEq for TempAggregate {
    fn eq(&self, other: &Self) -> bool {
        self.temp == other.temp
            && self.evals == other.evals
            && self.proposals == other.proposals
            && self.accepted_downhill == other.accepted_downhill
            && self.accepted_uphill == other.accepted_uphill
            && self.rejected_uphill == other.rejected_uphill
            && self.ended_budget == other.ended_budget
            && self.ended_equilibrium == other.ended_equilibrium
            && self.ended_exchange == other.ended_exchange
            && self.swap_attempts == other.swap_attempts
            && self.swap_accepts == other.swap_accepts
            && self.temperature.to_bits() == other.temperature.to_bits()
            && self.target_acceptance.to_bits() == other.target_acceptance.to_bits()
    }
}

impl Eq for TempAggregate {}

/// A caught instance panic inside a cell.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellFailure {
    /// Instance index that panicked.
    pub instance: usize,
    /// The chain seed of the panicking run.
    pub seed: u64,
    /// The panic payload, if it was a string.
    pub message: String,
}

/// The telemetry record for one table cell.
#[derive(Debug, Clone, PartialEq)]
pub struct CellRecord {
    /// Cell identity.
    pub key: CellKey,
    /// Strategy name (`"Figure1"`, `"Figure2"`, `"Rejectionless"`).
    pub strategy: String,
    /// Per-instance budget (e.g. `"1500 evals"`).
    pub budget: String,
    /// The instance set's base seed.
    pub base_seed: u64,
    /// Number of instances attempted.
    pub instances: usize,
    /// Total reduction over completed instances (the table cell value).
    pub reduction: f64,
    /// Total evaluations over completed instances.
    pub evals: u64,
    /// Total wall-clock milliseconds over completed instances.
    pub wall_ms: f64,
    /// Downhill acceptances over completed instances.
    pub accepted_downhill: u64,
    /// Uphill acceptances over completed instances.
    pub accepted_uphill: u64,
    /// Uphill rejections over completed instances.
    pub rejected_uphill: u64,
    /// Completed instances that stopped on budget exhaustion.
    pub stops_budget: usize,
    /// Completed instances that stopped on the equilibrium criterion.
    pub stops_equilibrium: usize,
    /// Run attempts the cell took (1 = no retries were needed).
    pub attempts: u32,
    /// Acceptance breakdown aggregated per temperature index.
    pub per_temp: Vec<TempAggregate>,
    /// Compact per-instance rows.
    pub per_instance: Vec<InstanceRecord>,
    /// Caught panics from the final attempt; empty means the cell
    /// completed cleanly.
    pub failures: Vec<CellFailure>,
}

impl CellRecord {
    /// Whether every instance completed without panicking.
    pub fn ok(&self) -> bool {
        self.failures.is_empty()
    }

    /// Folds one completed instance run into the aggregates.
    pub(crate) fn absorb(&mut self, index: usize, seed: u64, telemetry: &RunTelemetry) {
        self.reduction += telemetry.reduction;
        self.evals += telemetry.evals;
        let wall_ms = telemetry.wall.as_secs_f64() * 1e3;
        self.wall_ms += wall_ms;
        let (mut ad, mut au, mut ru) = (0, 0, 0);
        for stage in &telemetry.per_temp {
            ad += stage.accepted_downhill;
            au += stage.accepted_uphill;
            ru += stage.rejected_uphill;
            if self.per_temp.len() <= stage.temp {
                self.per_temp
                    .resize(stage.temp + 1, TempAggregate::default());
                for (i, agg) in self.per_temp.iter_mut().enumerate() {
                    agg.temp = i;
                }
            }
            let agg = &mut self.per_temp[stage.temp];
            agg.evals += stage.evals;
            agg.proposals += stage.proposals;
            agg.accepted_downhill += stage.accepted_downhill;
            agg.accepted_uphill += stage.accepted_uphill;
            agg.rejected_uphill += stage.rejected_uphill;
            agg.swap_attempts += stage.swap_attempts;
            agg.swap_accepts += stage.swap_accepts;
            // NaN (rejectionless-style stages, pre-controller cores)
            // poisons the sum, which serializes as null — "no data"
            // rather than a silently wrong mean.
            agg.temperature += stage.temperature;
            agg.target_acceptance += stage.target_acceptance;
            match stage.ended_by {
                AdvanceReason::Budget => agg.ended_budget += 1,
                AdvanceReason::Equilibrium => agg.ended_equilibrium += 1,
                AdvanceReason::Exchange => agg.ended_exchange += 1,
            }
        }
        self.accepted_downhill += ad;
        self.accepted_uphill += au;
        self.rejected_uphill += ru;
        match telemetry.stop {
            anneal_core::StopReason::Budget => self.stops_budget += 1,
            anneal_core::StopReason::Equilibrium => self.stops_equilibrium += 1,
        }
        self.per_instance.push(InstanceRecord {
            index,
            seed,
            reduction: telemetry.reduction,
            evals: telemetry.evals,
            wall_ms,
            stop: telemetry.stop.as_str(),
            accepted_downhill: ad,
            accepted_uphill: au,
            rejected_uphill: ru,
        });
    }

    /// An empty record for `key`, before any instance has been absorbed.
    pub(crate) fn empty(key: CellKey, strategy: String, budget: Budget, base_seed: u64) -> Self {
        CellRecord {
            key,
            strategy,
            budget: budget.to_string(),
            base_seed,
            instances: 0,
            reduction: 0.0,
            evals: 0,
            wall_ms: 0.0,
            accepted_downhill: 0,
            accepted_uphill: 0,
            rejected_uphill: 0,
            stops_budget: 0,
            stops_equilibrium: 0,
            attempts: 1,
            per_temp: Vec::new(),
            per_instance: Vec::new(),
            failures: Vec::new(),
        }
    }

    /// The record as one JSON object (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(512);
        s.push('{');
        push_str_field(&mut s, "table", &self.key.table);
        push_str_field(&mut s, "method", &self.key.method);
        push_str_field(&mut s, "column", &self.key.column);
        push_str_field(&mut s, "strategy", &self.strategy);
        push_str_field(&mut s, "budget", &self.budget);
        push_raw_field(&mut s, "base_seed", &self.base_seed.to_string());
        push_raw_field(&mut s, "instances", &self.instances.to_string());
        push_raw_field(&mut s, "reduction", &json_f64(self.reduction));
        push_raw_field(&mut s, "evals", &self.evals.to_string());
        push_raw_field(&mut s, "wall_ms", &json_f64(self.wall_ms));
        push_raw_field(
            &mut s,
            "accepted_downhill",
            &self.accepted_downhill.to_string(),
        );
        push_raw_field(&mut s, "accepted_uphill", &self.accepted_uphill.to_string());
        push_raw_field(&mut s, "rejected_uphill", &self.rejected_uphill.to_string());
        push_raw_field(&mut s, "stops_budget", &self.stops_budget.to_string());
        push_raw_field(
            &mut s,
            "stops_equilibrium",
            &self.stops_equilibrium.to_string(),
        );
        push_raw_field(&mut s, "ok", if self.ok() { "true" } else { "false" });
        push_raw_field(&mut s, "attempts", &self.attempts.to_string());

        s.push_str("\"per_temp\":[");
        for (i, t) in self.per_temp.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "{{\"temp\":{},\"evals\":{},\"proposals\":{},\"accepted_downhill\":{},\
                 \"accepted_uphill\":{},\"rejected_uphill\":{},\"ended_budget\":{},\
                 \"ended_equilibrium\":{},\"ended_exchange\":{},\"swap_attempts\":{},\
                 \"swap_accepts\":{},\"temperature\":{},\"target_acceptance\":{}}}",
                t.temp,
                t.evals,
                t.proposals,
                t.accepted_downhill,
                t.accepted_uphill,
                t.rejected_uphill,
                t.ended_budget,
                t.ended_equilibrium,
                t.ended_exchange,
                t.swap_attempts,
                t.swap_accepts,
                json_f64(t.temperature),
                json_f64(t.target_acceptance)
            ));
        }
        s.push_str("],");

        s.push_str("\"per_instance\":[");
        for (i, r) in self.per_instance.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "{{\"instance\":{},\"seed\":{},\"reduction\":{},\"evals\":{},\"wall_ms\":{},\
                 \"stop\":\"{}\",\"accepted_downhill\":{},\"accepted_uphill\":{},\
                 \"rejected_uphill\":{}}}",
                r.index,
                r.seed,
                json_f64(r.reduction),
                r.evals,
                json_f64(r.wall_ms),
                r.stop,
                r.accepted_downhill,
                r.accepted_uphill,
                r.rejected_uphill
            ));
        }
        s.push_str("],");

        s.push_str("\"failures\":[");
        for (i, fail) in self.failures.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "{{\"instance\":{},\"seed\":{},\"message\":\"{}\"}}",
                fail.instance,
                fail.seed,
                escape_json(&fail.message)
            ));
        }
        s.push_str("]}");
        s
    }
}

/// One supervisor lifecycle event, recorded in the WAL (schema v4) so
/// `report` can reconstruct what the process supervisor did: worker
/// restarts after abnormal exits, circuit-breaker trips, and graceful
/// signal drains.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SupervisorEvent {
    /// Event kind: `"restart"`, `"breaker"` or `"drain"`.
    pub kind: String,
    /// The cell the event concerns, when it concerns one.
    pub cell: Option<CellKey>,
    /// Human-readable detail (exit status, signal name, ...).
    pub detail: String,
}

impl SupervisorEvent {
    /// An event of `kind` about `cell` (optional) with `detail`.
    pub fn new(kind: impl Into<String>, cell: Option<CellKey>, detail: impl Into<String>) -> Self {
        SupervisorEvent {
            kind: kind.into(),
            cell,
            detail: detail.into(),
        }
    }

    /// The event as one JSON object (no trailing newline). The `"sup"` key
    /// distinguishes event lines from cell-record lines in the WAL.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(96);
        s.push('{');
        push_str_field(&mut s, "sup", &self.kind);
        if let Some(cell) = &self.cell {
            push_str_field(&mut s, "table", &cell.table);
            push_str_field(&mut s, "method", &cell.method);
            push_str_field(&mut s, "column", &cell.column);
        }
        s.push_str(&format!("\"detail\":\"{}\"}}", escape_json(&self.detail)));
        s
    }
}

impl fmt::Display for SupervisorEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.cell {
            Some(cell) => write!(f, "{}: {} — {}", self.kind, cell, self.detail),
            None => write!(f, "{}: {}", self.kind, self.detail),
        }
    }
}

pub(crate) fn push_str_field(s: &mut String, key: &str, value: &str) {
    s.push_str(&format!("\"{}\":\"{}\",", key, escape_json(value)));
}

pub(crate) fn push_raw_field(s: &mut String, key: &str, value: &str) {
    s.push_str(&format!("\"{key}\":{value},"));
}

/// JSON has no NaN/Infinity; map them to null.
pub(crate) fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

pub(crate) fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// A sink for [`CellRecord`]s: in-memory collection plus an optional
/// streaming JSON-lines writer. Thread-safe — the parallel runner records
/// from worker threads — and poison-proof: a writer that panics mid-record
/// must not wedge the remaining cells, so the inner mutex is recovered
/// rather than propagated.
///
/// The log also carries the suite's failure-path machinery: write-error
/// accounting (a record that could not be persisted is counted and named in
/// the [`SuiteSummary`]), the optional [`FaultPlan`] the runner consults for
/// chaos injection, and the `--resume` replay cache of completed cells from
/// a prior run's WAL (see [`checkpoint`](crate::checkpoint)).
pub struct TelemetryLog {
    enabled: bool,
    inner: Mutex<Inner>,
    faults: Option<FaultPlan>,
    resume: HashMap<CellKey, CellRecord>,
    trace: Option<TraceSink>,
    progress: Option<Progress>,
    /// Hidden `--worker-cell` filter: when set, the runner executes only
    /// this cell and skips every other one without running or recording it.
    filter: Option<CellKey>,
    /// Process supervisor (`--isolation process`): when attached, the
    /// runner delegates each cell to a worker process instead of running
    /// it in-process.
    supervisor: Option<Arc<crate::supervisor::Supervisor>>,
    /// Live ops board (`--serve`, or `--progress` under process
    /// isolation): notified at each cell boundary and on lost records.
    ops: Option<Arc<crate::ops::OpsBoard>>,
}

struct Inner {
    records: Vec<CellRecord>,
    writer: Option<Box<dyn Write + Send>>,
    /// Records whose JSONL line could not be written (I/O error).
    lost: Vec<CellKey>,
    /// Cells replayed from a resume cache instead of re-run.
    replayed: usize,
    /// WAL sequence number of the next record line (schema v4).
    next_seq: u64,
    /// Supervisor lifecycle events logged so far.
    events: Vec<SupervisorEvent>,
}

impl fmt::Debug for TelemetryLog {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TelemetryLog")
            .field("enabled", &self.enabled)
            .finish()
    }
}

impl TelemetryLog {
    fn with_inner(enabled: bool, writer: Option<Box<dyn Write + Send>>) -> Self {
        TelemetryLog {
            enabled,
            inner: Mutex::new(Inner {
                records: Vec::new(),
                writer,
                lost: Vec::new(),
                replayed: 0,
                next_seq: 0,
                events: Vec::new(),
            }),
            faults: None,
            resume: HashMap::new(),
            trace: None,
            progress: None,
            filter: None,
            supervisor: None,
            ops: None,
        }
    }

    /// A log that records nothing (and lets runner panics propagate).
    pub fn disabled() -> Self {
        Self::with_inner(false, None)
    }

    /// A log collecting records in memory.
    pub fn in_memory() -> Self {
        Self::with_inner(true, None)
    }

    /// A log that additionally streams each record as one JSON line to
    /// `writer` (appended in a single write and flushed per record, so an
    /// interrupted run keeps every completed cell — the write-ahead-log
    /// property `--resume` depends on).
    pub fn with_writer(writer: Box<dyn Write + Send>) -> Self {
        Self::with_inner(true, Some(writer))
    }

    /// Attaches a fault-injection plan the runner will consult (builder
    /// style). `None` clears it.
    pub fn with_faults(mut self, plan: Option<FaultPlan>) -> Self {
        self.faults = plan.filter(FaultPlan::is_active);
        self
    }

    /// Seeds the `--resume` replay cache with completed cells loaded from a
    /// prior run's WAL (builder style). Only clean (`ok`) records are
    /// cached; failed or torn cells will be re-run.
    pub fn with_resume(mut self, cells: Vec<CellRecord>) -> Self {
        for cell in cells.into_iter().filter(CellRecord::ok) {
            self.resume.insert(cell.key.clone(), cell);
        }
        self
    }

    /// Attaches a per-cell chain-trace sink (builder style); the runner
    /// writes one trace file per cell through it. `None` clears it.
    pub fn with_trace(mut self, sink: Option<TraceSink>) -> Self {
        self.trace = sink;
        self
    }

    /// Attaches a live progress ticker (builder style), notified once per
    /// recorded cell. `None` clears it.
    pub fn with_progress(mut self, progress: Option<Progress>) -> Self {
        self.progress = progress;
        self
    }

    /// Restricts the runner to a single cell (builder style): every other
    /// cell is skipped without running or recording. Used by the hidden
    /// `--worker-cell` mode. `None` clears the filter.
    pub fn with_filter(mut self, cell: Option<CellKey>) -> Self {
        self.filter = cell;
        self
    }

    /// Attaches a process supervisor (builder style): the runner delegates
    /// each cell to a re-exec'd worker process. `None` clears it.
    pub fn with_supervisor(
        mut self,
        supervisor: Option<Arc<crate::supervisor::Supervisor>>,
    ) -> Self {
        self.supervisor = supervisor;
        self
    }

    /// Attaches a live ops board (builder style): each recorded cell and
    /// each lost record updates it, feeding the `--serve` endpoints and
    /// the `--progress` worker-liveness fragment. `None` clears it.
    pub fn with_ops(mut self, ops: Option<Arc<crate::ops::OpsBoard>>) -> Self {
        self.ops = ops;
        self
    }

    /// Starts the WAL sequence counter at `seq` (builder style), so a
    /// worker's shard lines carry the same sequence numbers the parent's
    /// main WAL will assign when it absorbs them.
    pub fn with_seq_start(self, seq: u64) -> Self {
        self.lock().next_seq = seq;
        self
    }

    /// The attached process supervisor, if any.
    pub(crate) fn supervisor(&self) -> Option<Arc<crate::supervisor::Supervisor>> {
        self.supervisor.clone()
    }

    /// Whether the single-cell filter excludes `key`.
    pub(crate) fn skips(&self, key: &CellKey) -> bool {
        self.filter.as_ref().is_some_and(|f| f != key)
    }

    /// The sequence number the next recorded cell will be assigned.
    pub(crate) fn peek_seq(&self) -> u64 {
        self.lock().next_seq
    }

    /// The chain-trace sink, if tracing is on.
    pub(crate) fn trace_sink(&self) -> Option<&TraceSink> {
        self.trace.as_ref()
    }

    /// Ends the progress ticker line, if one is active. Call before
    /// printing the end-of-suite summary.
    pub fn finish_progress(&self) {
        if let Some(p) = &self.progress {
            p.finish();
        }
    }

    /// The active fault plan, if any.
    pub fn faults(&self) -> Option<&FaultPlan> {
        self.faults.as_ref()
    }

    /// Number of cells in the `--resume` replay cache.
    pub fn resume_cached(&self) -> usize {
        self.resume.len()
    }

    /// The cached record for `key` if it can stand in for a fresh run:
    /// same strategy, budget and base seed, and it completed cleanly.
    /// The runner re-records a replayed cell, marking it via
    /// [`record_replayed`](Self::record_replayed).
    pub(crate) fn replay(
        &self,
        key: &CellKey,
        strategy: &str,
        budget: &str,
        base_seed: u64,
    ) -> Option<CellRecord> {
        if !self.enabled {
            return None;
        }
        let cached = self.resume.get(key)?;
        (cached.strategy == strategy && cached.budget == budget && cached.base_seed == base_seed)
            .then(|| cached.clone())
    }

    /// Whether records are being collected.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Locks the inner state, recovering from poison: a panicking writer
    /// must not wedge the remaining cells.
    fn lock(&self) -> MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Records one cell. No-op when disabled.
    pub fn record(&self, record: CellRecord) {
        if !self.enabled {
            return;
        }
        if let Some(p) = &self.progress {
            p.cell_done(record.ok(), record.attempts);
        }
        if let Some(board) = &self.ops {
            board.cell_done(&record.key.table, record.ok(), record.attempts);
        }
        // Labeled completion counters for the ops plane. Cell-boundary
        // only (a few dozen updates per suite), never per proposal.
        {
            let registry = anneal_core::metrics::global();
            let labels = [
                ("table", record.key.table.as_str()),
                ("method", record.key.method.as_str()),
            ];
            registry.counter_with("cells_completed", &labels).inc();
            if !record.ok() {
                registry.counter_with("cells_failed", &labels).inc();
            }
            if record.attempts > 1 {
                registry.counter_with("cells_retried", &labels).inc();
            }
        }
        let mut inner = self.lock();
        // Every record consumes one sequence number, whether or not a
        // writer is attached — the supervisor peeks this counter to align
        // a worker shard's numbering with the parent WAL.
        let seq = inner.next_seq;
        inner.next_seq += 1;
        if let Some(w) = inner.writer.as_mut() {
            // Telemetry must never take down the run it is observing:
            // count write errors (the suite exits nonzero when any record
            // was lost) but keep going. The line goes out in one write so
            // a crash tears at most the final record.
            let mut line = crate::checkpoint::wal_line(&record.to_json(), seq);
            line.push('\n');
            if let Err(e) = w.write_all(line.as_bytes()).and_then(|()| w.flush()) {
                eprintln!("telemetry: write failed for cell {}: {e}", record.key);
                let key = record.key.clone();
                inner.lost.push(key);
                if let Some(board) = &self.ops {
                    board.note_lost();
                }
            }
        }
        inner.records.push(record);
    }

    /// Records one supervisor lifecycle event. Event lines share the WAL
    /// but do not consume sequence numbers (only cell records do), so the
    /// parent/worker sequence alignment is untouched. A write error is
    /// reported but not counted against the suite — events are advisory.
    pub fn log_event(&self, event: SupervisorEvent) {
        if !self.enabled {
            return;
        }
        let mut inner = self.lock();
        if let Some(w) = inner.writer.as_mut() {
            let mut line = event.to_json();
            line.push('\n');
            if let Err(e) = w.write_all(line.as_bytes()).and_then(|()| w.flush()) {
                eprintln!("telemetry: write failed for supervisor event: {e}");
            }
        }
        inner.events.push(event);
    }

    /// Snapshot of every supervisor event so far.
    pub fn events(&self) -> Vec<SupervisorEvent> {
        self.lock().events.clone()
    }

    /// [`record`](Self::record) for a cell replayed from the resume cache,
    /// so the summary can report how much work the WAL saved.
    pub(crate) fn record_replayed(&self, record: CellRecord) {
        if self.enabled {
            self.lock().replayed += 1;
        }
        self.record(record);
    }

    /// Snapshot of every record so far.
    pub fn records(&self) -> Vec<CellRecord> {
        self.lock().records.clone()
    }

    /// Number of records whose JSONL line could not be written.
    pub fn write_errors(&self) -> usize {
        self.lock().lost.len()
    }

    /// The end-of-suite summary over every record so far.
    pub fn summary(&self) -> SuiteSummary {
        let inner = self.lock();
        let records = &inner.records;
        let mut slowest: Vec<(CellKey, f64, u64)> = records
            .iter()
            .map(|r| (r.key.clone(), r.wall_ms, r.evals))
            .collect();
        slowest.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite wall times"));
        slowest.truncate(5);
        SuiteSummary {
            cells: records.len(),
            total_evals: records.iter().map(|r| r.evals).sum(),
            total_wall_ms: records.iter().map(|r| r.wall_ms).sum(),
            failed: records
                .iter()
                .filter(|r| !r.ok())
                .map(|r| FailedCell {
                    key: r.key.clone(),
                    attempts: r.attempts,
                    failures: r.failures.clone(),
                })
                .collect(),
            slowest,
            lost: inner.lost.clone(),
            replayed: inner.replayed,
            events: inner.events.clone(),
        }
    }
}

/// One failed cell in the [`SuiteSummary`] / failure manifest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FailedCell {
    /// The cell.
    pub key: CellKey,
    /// Run attempts made (bounded by the retry policy).
    pub attempts: u32,
    /// Caught panics and watchdog timeouts from the final attempt.
    pub failures: Vec<CellFailure>,
}

/// End-of-suite triage summary: what ran, what was slow, what broke.
#[derive(Debug, Clone)]
pub struct SuiteSummary {
    /// Cells recorded.
    pub cells: usize,
    /// Evaluations across all cells.
    pub total_evals: u64,
    /// Wall-clock milliseconds across all cells (sums instance runs, so
    /// parallel runs show more than elapsed time).
    pub total_wall_ms: f64,
    /// Failed cells with their caught panics.
    pub failed: Vec<FailedCell>,
    /// The slowest cells, hottest first: `(cell, wall_ms, evals)`.
    pub slowest: Vec<(CellKey, f64, u64)>,
    /// Cells whose telemetry line was lost to a write error.
    pub lost: Vec<CellKey>,
    /// Cells replayed from a `--resume` WAL instead of re-run.
    pub replayed: usize,
    /// Supervisor lifecycle events (worker restarts, breaker trips,
    /// signal drains). Empty for in-process runs.
    pub events: Vec<SupervisorEvent>,
}

impl SuiteSummary {
    /// Whether the suite degraded in any way a caller must not ignore: a
    /// cell failed, or a telemetry record was lost. `repro` exits nonzero
    /// on this.
    pub fn degraded(&self) -> bool {
        !self.failed.is_empty() || !self.lost.is_empty()
    }

    /// The explicit failure manifest as one JSON object: every failed cell
    /// (with attempts and per-instance messages) and every lost telemetry
    /// record. Written next to the WAL when a suite degrades.
    pub fn manifest_json(&self) -> String {
        let mut s = String::with_capacity(256);
        s.push_str("{\"schema\":\"anneal-repro-manifest\",\"version\":1,");
        s.push_str(&format!(
            "\"cells\":{},\"replayed\":{},\"write_errors\":{},",
            self.cells,
            self.replayed,
            self.lost.len()
        ));
        s.push_str("\"failed_cells\":[");
        for (i, cell) in self.failed.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "{{\"table\":\"{}\",\"method\":\"{}\",\"column\":\"{}\",\"attempts\":{},\
                 \"failures\":[",
                escape_json(&cell.key.table),
                escape_json(&cell.key.method),
                escape_json(&cell.key.column),
                cell.attempts
            ));
            for (j, fail) in cell.failures.iter().enumerate() {
                if j > 0 {
                    s.push(',');
                }
                s.push_str(&format!(
                    "{{\"instance\":{},\"seed\":{},\"message\":\"{}\"}}",
                    fail.instance,
                    fail.seed,
                    escape_json(&fail.message)
                ));
            }
            s.push_str("]}");
        }
        s.push_str("],\"lost_records\":[");
        for (i, key) in self.lost.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "{{\"table\":\"{}\",\"method\":\"{}\",\"column\":\"{}\"}}",
                escape_json(&key.table),
                escape_json(&key.method),
                escape_json(&key.column)
            ));
        }
        s.push_str("]}");
        s
    }
}

impl fmt::Display for SuiteSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "telemetry: {} cells, {} failed, {} lost records, {} evals, {:.1} s of chain time",
            self.cells,
            self.failed.len(),
            self.lost.len(),
            self.total_evals,
            self.total_wall_ms / 1e3
        )?;
        if self.replayed > 0 {
            writeln!(f, "resumed: {} cells replayed from the WAL", self.replayed)?;
        }
        if !self.events.is_empty() {
            let count = |k: &str| self.events.iter().filter(|e| e.kind == k).count();
            writeln!(
                f,
                "supervisor: {} worker restarts, {} breaker trips, {} signal drains",
                count("restart"),
                count("breaker"),
                count("drain")
            )?;
        }
        if !self.slowest.is_empty() {
            writeln!(f, "slowest cells:")?;
            for (key, wall_ms, evals) in &self.slowest {
                writeln!(f, "  {key} — {:.1} ms, {evals} evals", wall_ms)?;
            }
        }
        if !self.failed.is_empty() {
            writeln!(f, "FAILED cells:")?;
            for cell in &self.failed {
                for fail in &cell.failures {
                    writeln!(
                        f,
                        "  {} — instance {} (seed {}, {} attempts): {}",
                        cell.key, fail.instance, fail.seed, cell.attempts, fail.message
                    )?;
                }
            }
        }
        if !self.lost.is_empty() {
            writeln!(f, "LOST telemetry records (write failures):")?;
            for key in &self.lost {
                writeln!(f, "  {key}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, Mutex as StdMutex};

    fn record(table: &str, wall_ms: f64, failed: bool) -> CellRecord {
        let mut r = CellRecord::empty(
            CellKey::new(table, "g = 1", "6 sec"),
            "Figure1".into(),
            Budget::evaluations(1500),
            1985,
        );
        r.instances = 2;
        r.wall_ms = wall_ms;
        r.evals = 3000;
        if failed {
            r.failures.push(CellFailure {
                instance: 1,
                seed: 7,
                message: "boom \"quoted\"\nline2".into(),
            });
        }
        r
    }

    #[test]
    fn json_is_well_formed_and_escaped() {
        let json = record("t", 1.5, true).to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"table\":\"t\""));
        assert!(json.contains("\"ok\":false"));
        assert!(json.contains("\\\"quoted\\\""), "{json}");
        assert!(json.contains("\\n"), "{json}");
        assert!(!json.contains('\n'), "must be a single line");
        // Balanced braces/brackets (cheap well-formedness check).
        let open = json.matches('{').count();
        let close = json.matches('}').count();
        assert_eq!(open, close);
    }

    #[test]
    fn nonfinite_values_become_null() {
        assert_eq!(json_f64(f64::NAN), "null");
        assert_eq!(json_f64(f64::INFINITY), "null");
        assert_eq!(json_f64(2.5), "2.5");
    }

    #[test]
    fn disabled_log_records_nothing() {
        let log = TelemetryLog::disabled();
        log.record(record("t", 1.0, false));
        assert!(log.records().is_empty());
        assert!(!log.is_enabled());
    }

    #[test]
    fn writer_receives_one_line_per_record() {
        #[derive(Clone)]
        struct Shared(Arc<StdMutex<Vec<u8>>>);
        impl Write for Shared {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let buf = Shared(Arc::new(StdMutex::new(Vec::new())));
        let log = TelemetryLog::with_writer(Box::new(buf.clone()));
        log.record(record("a", 1.0, false));
        log.record(record("b", 2.0, true));
        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        assert_eq!(text.lines().count(), 2);
        assert!(text.lines().all(|l| l.starts_with('{') && l.ends_with('}')));
    }

    #[test]
    fn summary_ranks_slowest_and_collects_failures() {
        let log = TelemetryLog::in_memory();
        for (t, w) in [("t1", 5.0), ("t2", 50.0), ("t3", 20.0)] {
            log.record(record(t, w, false));
        }
        log.record(record("bad", 1.0, true));
        let summary = log.summary();
        assert_eq!(summary.cells, 4);
        assert_eq!(summary.failed.len(), 1);
        assert_eq!(summary.failed[0].failures[0].instance, 1);
        assert_eq!(summary.slowest[0].0.table, "t2");
        assert_eq!(summary.total_evals, 4 * 3000);
        assert!(summary.degraded());
        let shown = summary.to_string();
        assert!(shown.contains("FAILED"));
        assert!(shown.contains("instance 1"));
    }

    #[test]
    fn clean_summary_is_not_degraded() {
        let log = TelemetryLog::in_memory();
        log.record(record("t", 1.0, false));
        assert!(!log.summary().degraded());
    }

    /// A writer whose every write fails.
    struct BrokenWriter;
    impl Write for BrokenWriter {
        fn write(&mut self, _: &[u8]) -> std::io::Result<usize> {
            Err(std::io::Error::other("disk on fire"))
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn write_errors_are_counted_and_named() {
        let log = TelemetryLog::with_writer(Box::new(BrokenWriter));
        log.record(record("t1", 1.0, false));
        log.record(record("t2", 2.0, false));
        assert_eq!(log.write_errors(), 2);
        // The records themselves survive in memory.
        assert_eq!(log.records().len(), 2);
        let summary = log.summary();
        assert_eq!(summary.lost.len(), 2);
        assert!(summary.degraded(), "lost records degrade the suite");
        let shown = summary.to_string();
        assert!(shown.contains("2 lost records"), "{shown}");
        assert!(shown.contains("LOST telemetry records"), "{shown}");
    }

    #[test]
    fn manifest_json_is_well_formed() {
        let log = TelemetryLog::with_writer(Box::new(BrokenWriter));
        log.record(record("bad", 1.0, true));
        let manifest = log.summary().manifest_json();
        let parsed = crate::checkpoint::Json::parse(&manifest).expect("manifest parses");
        assert_eq!(
            parsed.get("schema").unwrap().as_str(),
            Some("anneal-repro-manifest")
        );
        assert_eq!(
            parsed
                .get("write_errors")
                .unwrap()
                .as_u64_checked()
                .unwrap(),
            1
        );
        let failed = parsed.get("failed_cells").unwrap().as_arr().unwrap();
        assert_eq!(failed.len(), 1);
        assert_eq!(failed[0].get("table").unwrap().as_str(), Some("bad"));
        let msgs = failed[0].get("failures").unwrap().as_arr().unwrap();
        assert!(msgs[0]
            .get("message")
            .unwrap()
            .as_str()
            .unwrap()
            .contains("boom"));
        assert_eq!(
            parsed.get("lost_records").unwrap().as_arr().unwrap().len(),
            1
        );
    }

    /// A writer that panics on its first write, then works.
    struct PanickingWriter {
        armed: bool,
    }
    impl Write for PanickingWriter {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            if self.armed {
                self.armed = false;
                panic!("writer exploded");
            }
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn poisoned_mutex_does_not_wedge_later_cells() {
        let log = TelemetryLog::with_writer(Box::new(PanickingWriter { armed: true }));
        let boom = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            log.record(record("t1", 1.0, false));
        }));
        assert!(boom.is_err(), "first record panics in the writer");
        // The mutex is now poisoned; the log must recover, not panic.
        log.record(record("t2", 2.0, false));
        let records = log.records();
        assert_eq!(records.len(), 1, "the panicking record was lost mid-write");
        assert_eq!(records[0].key.table, "t2");
        assert_eq!(log.summary().cells, 1);
    }

    #[test]
    fn replay_cache_matches_on_full_identity() {
        let cached = record("t", 3.0, false);
        let key = cached.key.clone();
        let log = TelemetryLog::in_memory().with_resume(vec![cached]);
        assert_eq!(log.resume_cached(), 1);
        let hit = log.replay(&key, "Figure1", "1500 evals", 1985);
        assert_eq!(hit.as_ref().map(|r| r.key.clone()), Some(key.clone()));
        assert!(log.replay(&key, "Figure2", "1500 evals", 1985).is_none());
        assert!(log.replay(&key, "Figure1", "999 evals", 1985).is_none());
        assert!(log.replay(&key, "Figure1", "1500 evals", 7).is_none());
        let other = CellKey::new("other", "g = 1", "6 sec");
        assert!(log.replay(&other, "Figure1", "1500 evals", 1985).is_none());
    }

    #[test]
    fn failed_cells_are_not_cached_for_replay() {
        let bad = record("t", 3.0, true);
        let key = bad.key.clone();
        let log = TelemetryLog::in_memory().with_resume(vec![bad]);
        assert_eq!(log.resume_cached(), 0);
        assert!(log.replay(&key, "Figure1", "1500 evals", 1985).is_none());
    }

    #[test]
    fn replayed_cells_are_counted_in_summary() {
        let log = TelemetryLog::in_memory();
        log.record_replayed(record("t", 1.0, false));
        log.record(record("u", 1.0, false));
        let summary = log.summary();
        assert_eq!(summary.cells, 2);
        assert_eq!(summary.replayed, 1);
        assert!(summary.to_string().contains("1 cells replayed"));
    }
}
