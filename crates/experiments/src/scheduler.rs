//! Deterministic work-stealing fan-out for per-instance work, plus the
//! bounded task queue behind the job server.
//!
//! [`run_indexed`]: one shared atomic cursor hands out task indices to
//! worker threads as they free up, so a single slow task (a straggler)
//! never holds idle workers hostage the way static chunking does: the cell
//! finishes in roughly `max(task)` wall time, not `sum(chunk)`. Results
//! are written into fixed per-index slots and returned in index order,
//! which keeps every downstream reduction (floating-point sums, WAL
//! records) bitwise identical to a sequential run regardless of thread
//! interleaving.
//!
//! [`TaskQueue`] is the long-lived counterpart for open-ended work: a
//! bounded multi-producer/multi-consumer queue whose `push` never blocks
//! (a full queue is the caller's backpressure signal — the job server
//! turns it into HTTP 429) and whose `pop` parks consumers until work or
//! shutdown arrives. Inside each job the instances still fan out through
//! [`run_indexed`], so the two layers compose: the queue spreads *jobs*
//! across workers, the cursor spreads *instances* inside one job.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};

/// Runs `f(0..n)` over `threads` workers, returning results in index
/// order. `threads == 1` (or `n <= 1`) degenerates to a plain sequential
/// loop on the calling thread — the exact historical hot path, with no
/// thread or lock overhead.
///
/// # Panics
///
/// Panics if `threads == 0`, and propagates a panic from `f` (the worker
/// thread unwinds into the scope join).
pub fn run_indexed<T, F>(n: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    assert!(threads > 0, "need at least one thread");
    if threads == 1 || n <= 1 {
        return (0..n).map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Mutex<Vec<Option<T>>> = Mutex::new((0..n).map(|_| None).collect());
    std::thread::scope(|scope| {
        for _ in 0..threads.min(n) {
            let next = &next;
            let slots = &slots;
            let f = &f;
            scope.spawn(move || loop {
                let index = next.fetch_add(1, Ordering::Relaxed);
                if index >= n {
                    break;
                }
                let out = f(index);
                slots.lock().expect("no poisoned workers")[index] = Some(out);
            });
        }
    });
    slots
        .into_inner()
        .expect("no poisoned workers")
        .into_iter()
        .map(|o| o.expect("every slot filled"))
        .collect()
}

/// Why a [`TaskQueue::push`] was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushError {
    /// The queue holds `capacity` items: the producer must shed load
    /// (the job server answers 429).
    Full,
    /// [`TaskQueue::close`] was called: no new work is accepted.
    Closed,
}

impl std::fmt::Display for PushError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PushError::Full => write!(f, "queue full"),
            PushError::Closed => write!(f, "queue closed"),
        }
    }
}

#[derive(Debug)]
struct QueueState<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A bounded multi-producer/multi-consumer task queue.
///
/// `push` is non-blocking by design: a full queue is a *backpressure
/// signal* the producer must surface (the job server maps it to HTTP 429)
/// rather than silently absorb. `pop` blocks until an item arrives or the
/// queue is closed and drained, so consumer threads can simply loop
/// `while let Some(item) = queue.pop()`.
#[derive(Debug)]
pub struct TaskQueue<T> {
    capacity: usize,
    state: Mutex<QueueState<T>>,
    takers: Condvar,
}

impl<T> TaskQueue<T> {
    /// A queue refusing pushes beyond `capacity` queued items.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0` — a queue that can hold nothing would
    /// reject every job.
    pub fn bounded(capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be positive");
        TaskQueue {
            capacity,
            state: Mutex::new(QueueState {
                items: VecDeque::new(),
                closed: false,
            }),
            takers: Condvar::new(),
        }
    }

    fn lock(&self) -> MutexGuard<'_, QueueState<T>> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Enqueues `item`, or refuses with the reason ([`PushError::Full`] /
    /// [`PushError::Closed`]). Never blocks.
    pub fn push(&self, item: T) -> Result<(), PushError> {
        let mut state = self.lock();
        if state.closed {
            return Err(PushError::Closed);
        }
        if state.items.len() >= self.capacity {
            return Err(PushError::Full);
        }
        state.items.push_back(item);
        drop(state);
        self.takers.notify_one();
        Ok(())
    }

    /// Dequeues the oldest item, blocking while the queue is open but
    /// empty. Returns `None` once the queue is closed *and* drained —
    /// the consumer's signal to exit its loop.
    pub fn pop(&self) -> Option<T> {
        let mut state = self.lock();
        loop {
            if let Some(item) = state.items.pop_front() {
                return Some(item);
            }
            if state.closed {
                return None;
            }
            state = self
                .takers
                .wait(state)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Closes the queue: pending items still drain, new pushes are
    /// refused, and blocked consumers wake to observe the shutdown.
    pub fn close(&self) {
        self.lock().closed = true;
        self.takers.notify_all();
    }

    /// Items currently queued (racy by nature; for backpressure messages
    /// and metrics, not for flow control).
    pub fn len(&self) -> usize {
        self.lock().items.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.lock().items.is_empty()
    }

    /// The `capacity` the queue was built with.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::{Duration, Instant};

    #[test]
    fn results_come_back_in_index_order_for_any_thread_count() {
        for threads in [1, 2, 3, 8, 33] {
            let out = run_indexed(17, threads, |i| i * i);
            assert_eq!(out, (0..17).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn empty_and_single_task_sets_work() {
        assert_eq!(run_indexed(0, 4, |i| i), Vec::<usize>::new());
        assert_eq!(run_indexed(1, 4, |i| i + 10), vec![10]);
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_panics() {
        let _ = run_indexed(4, 0, |i| i);
    }

    #[test]
    fn a_single_straggler_does_not_serialize_the_set() {
        // One 400 ms task among seven 50 ms tasks over four workers. Work
        // stealing finishes in ~max(task) ≈ 400-450 ms: while one worker
        // holds the straggler, the others drain the fast tasks. A static
        // chunking that co-schedules fast tasks behind the straggler would
        // need 500+ ms, and a serial run 750 ms. The 600 ms bound leaves
        // slack for CI jitter while still ruling both out.
        let slow = Duration::from_millis(400);
        let fast = Duration::from_millis(50);
        let started = Instant::now();
        let out = run_indexed(8, 4, |i| {
            std::thread::sleep(if i == 0 { slow } else { fast });
            i
        });
        let elapsed = started.elapsed();
        assert_eq!(out, (0..8).collect::<Vec<_>>());
        assert!(elapsed >= slow, "the straggler itself ran");
        assert!(
            elapsed < Duration::from_millis(600),
            "straggler serialized the set: took {elapsed:?}"
        );
    }

    #[test]
    fn workers_steal_everything_under_a_blocked_worker() {
        // Pin worker progress: the task-0 closure blocks until every other
        // task has finished, which can only happen if the remaining workers
        // keep pulling from the shared queue while task 0 is stuck.
        use std::sync::atomic::AtomicUsize;
        let done = AtomicUsize::new(0);
        let out = run_indexed(8, 2, |i| {
            if i == 0 {
                let deadline = Instant::now() + Duration::from_secs(30);
                while done.load(Ordering::SeqCst) < 7 {
                    assert!(Instant::now() < deadline, "other worker stalled");
                    std::thread::yield_now();
                }
            } else {
                done.fetch_add(1, Ordering::SeqCst);
            }
            i * 2
        });
        assert_eq!(out, (0..8).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn queue_is_fifo_and_reports_backpressure() {
        let q = TaskQueue::bounded(2);
        assert!(q.is_empty());
        q.push(1).unwrap();
        q.push(2).unwrap();
        assert_eq!(q.push(3), Err(PushError::Full));
        assert_eq!(q.len(), 2);
        assert_eq!(q.capacity(), 2);
        assert_eq!(q.pop(), Some(1));
        // Popping freed a slot: the producer may retry.
        q.push(3).unwrap();
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(3));
    }

    #[test]
    fn close_drains_pending_items_then_stops_consumers() {
        let q = TaskQueue::bounded(4);
        q.push("a").unwrap();
        q.push("b").unwrap();
        q.close();
        assert_eq!(q.push("c"), Err(PushError::Closed));
        assert_eq!(q.pop(), Some("a"));
        assert_eq!(q.pop(), Some("b"));
        assert_eq!(q.pop(), None);
        assert_eq!(q.pop(), None, "a drained closed queue stays drained");
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_queue_panics() {
        let _ = TaskQueue::<u64>::bounded(0);
    }

    #[test]
    fn blocked_consumers_wake_on_push_and_on_close() {
        use std::sync::Arc;
        let q = Arc::new(TaskQueue::bounded(8));
        let consumers: Vec<_> = (0..3)
            .map(|_| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Some(item) = q.pop() {
                        got.push(item);
                    }
                    got
                })
            })
            .collect();
        for i in 0..10 {
            // Interleave pushes with tiny sleeps so consumers genuinely
            // park and wake rather than racing one hot loop.
            q.push(i).unwrap();
            if i % 3 == 0 {
                std::thread::sleep(Duration::from_millis(1));
            }
        }
        q.close();
        let mut all: Vec<i32> = consumers
            .into_iter()
            .flat_map(|c| c.join().expect("consumer exits cleanly"))
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..10).collect::<Vec<_>>());
    }
}
