//! Deterministic work-stealing fan-out for per-instance work.
//!
//! One shared atomic cursor hands out task indices to worker threads as
//! they free up, so a single slow task (a straggler) never holds idle
//! workers hostage the way static chunking does: the cell finishes in
//! roughly `max(task)` wall time, not `sum(chunk)`. Results are written
//! into fixed per-index slots and returned in index order, which keeps
//! every downstream reduction (floating-point sums, WAL records) bitwise
//! identical to a sequential run regardless of thread interleaving.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Runs `f(0..n)` over `threads` workers, returning results in index
/// order. `threads == 1` (or `n <= 1`) degenerates to a plain sequential
/// loop on the calling thread — the exact historical hot path, with no
/// thread or lock overhead.
///
/// # Panics
///
/// Panics if `threads == 0`, and propagates a panic from `f` (the worker
/// thread unwinds into the scope join).
pub fn run_indexed<T, F>(n: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    assert!(threads > 0, "need at least one thread");
    if threads == 1 || n <= 1 {
        return (0..n).map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Mutex<Vec<Option<T>>> = Mutex::new((0..n).map(|_| None).collect());
    std::thread::scope(|scope| {
        for _ in 0..threads.min(n) {
            let next = &next;
            let slots = &slots;
            let f = &f;
            scope.spawn(move || loop {
                let index = next.fetch_add(1, Ordering::Relaxed);
                if index >= n {
                    break;
                }
                let out = f(index);
                slots.lock().expect("no poisoned workers")[index] = Some(out);
            });
        }
    });
    slots
        .into_inner()
        .expect("no poisoned workers")
        .into_iter()
        .map(|o| o.expect("every slot filled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::{Duration, Instant};

    #[test]
    fn results_come_back_in_index_order_for_any_thread_count() {
        for threads in [1, 2, 3, 8, 33] {
            let out = run_indexed(17, threads, |i| i * i);
            assert_eq!(out, (0..17).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn empty_and_single_task_sets_work() {
        assert_eq!(run_indexed(0, 4, |i| i), Vec::<usize>::new());
        assert_eq!(run_indexed(1, 4, |i| i + 10), vec![10]);
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_panics() {
        let _ = run_indexed(4, 0, |i| i);
    }

    #[test]
    fn a_single_straggler_does_not_serialize_the_set() {
        // One 400 ms task among seven 50 ms tasks over four workers. Work
        // stealing finishes in ~max(task) ≈ 400-450 ms: while one worker
        // holds the straggler, the others drain the fast tasks. A static
        // chunking that co-schedules fast tasks behind the straggler would
        // need 500+ ms, and a serial run 750 ms. The 600 ms bound leaves
        // slack for CI jitter while still ruling both out.
        let slow = Duration::from_millis(400);
        let fast = Duration::from_millis(50);
        let started = Instant::now();
        let out = run_indexed(8, 4, |i| {
            std::thread::sleep(if i == 0 { slow } else { fast });
            i
        });
        let elapsed = started.elapsed();
        assert_eq!(out, (0..8).collect::<Vec<_>>());
        assert!(elapsed >= slow, "the straggler itself ran");
        assert!(
            elapsed < Duration::from_millis(600),
            "straggler serialized the set: took {elapsed:?}"
        );
    }

    #[test]
    fn workers_steal_everything_under_a_blocked_worker() {
        // Pin worker progress: the task-0 closure blocks until every other
        // task has finished, which can only happen if the remaining workers
        // keep pulling from the shared queue while task 0 is stuck.
        use std::sync::atomic::AtomicUsize;
        let done = AtomicUsize::new(0);
        let out = run_indexed(8, 2, |i| {
            if i == 0 {
                let deadline = Instant::now() + Duration::from_secs(30);
                while done.load(Ordering::SeqCst) < 7 {
                    assert!(Instant::now() < deadline, "other worker stalled");
                    std::thread::yield_now();
                }
            } else {
                done.fetch_add(1, Ordering::SeqCst);
            }
            i * 2
        });
        assert_eq!(out, (0..8).map(|i| i * 2).collect::<Vec<_>>());
    }
}
