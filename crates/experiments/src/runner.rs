//! Shared machinery for the arrangement tables: an instance set with fixed
//! per-instance starting states, run under any method × strategy × budget.
//!
//! Every cell run is **fault isolated**: each instance executes under
//! [`std::panic::catch_unwind`], so a panicking method (a buggy g function, a
//! degenerate instance) is recorded as a failed cell in the
//! [`TelemetryLog`] — with its method, instance index and chain seed — while
//! the rest of the table completes. Without an enabled log the panic is
//! re-raised, preserving fail-fast behavior for ad-hoc runs.
//!
//! On top of the isolation, a [`CellPolicy`] adds the rest of the failure
//! path: **retry with backoff** (failed instances are re-run up to a
//! bounded number of attempts — deterministic seeding means a retried
//! instance that succeeds produces exactly the values of a clean run), a
//! **watchdog deadline** per instance (see [`anneal_core::watchdog`]) so a
//! runaway chain cannot hang its cell, and **resume replay** (a cell whose
//! clean record is in the log's `--resume` cache is replayed from the WAL
//! instead of re-run). Chaos testing hooks in through the log's
//! [`FaultPlan`](crate::faults::FaultPlan).

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::{Duration, Instant};

use anneal_core::schedule::adaptive::{self, AcceptanceController, AdaptiveMode};
use anneal_core::{
    derive_seed, estimate_delta_stats, metrics, watchdog, Budget, ChainObserver, Figure1, Figure2,
    GFunction, NoopObserver, Rejectionless, ReplicaExchange, RunResult, RunTelemetry, Strategy,
    TraceCollector, DEFAULT_EQUILIBRIUM,
};
use anneal_linarr::{goto_arrangement, ArrangedState, LinearArrangementProblem};
use rand::{rngs::StdRng, SeedableRng};

use crate::faults::InstanceFault;
use crate::roster::{MethodCtx, MethodSpec};
use crate::telemetry::{CellFailure, CellKey, CellRecord, TelemetryLog};
use crate::trace::CellTraceWriter;

/// Seed-stream salt separating start generation from chain randomness.
pub(crate) const RUN_SALT: u64 = 0x52554E;

/// Seed-stream salt for the adaptive-schedule probe, so probing an instance
/// never perturbs its chain RNG stream: with `--schedule` the chain still
/// consumes exactly the stream a grid-swept run would.
pub(crate) const PROBE_SALT: u64 = 0x50524F4245;

/// Applies an adaptive-schedule override to one run: probes the problem's
/// delta statistics on the dedicated `probe_seed` RNG stream (independent
/// of the chain's), replaces `g`'s grid-swept schedule with a derived one
/// of the same length, and charges the probe against an evaluation budget.
/// Returns the (possibly reduced) budget and the feedback controller to
/// attach. With `mode == None` this is a no-op.
///
/// Shared by the suite runner and the job server
/// ([`crate::jobs`]) so both derive schedules — and charge probe costs —
/// identically for the same seed.
pub(crate) fn adapt_schedule_for<P: anneal_core::Problem>(
    mode: Option<AdaptiveMode>,
    probe_seed: u64,
    problem: &P,
    g: &mut GFunction,
    budget: Budget,
) -> (Budget, Option<AcceptanceController>) {
    let Some(mode) = mode else {
        return (budget, None);
    };
    let _probe_span = metrics::span("probe");
    let mut probe_rng = StdRng::seed_from_u64(probe_seed);
    let stats = estimate_delta_stats(problem, adaptive::DEFAULT_PROBE_SAMPLES, &mut probe_rng);
    let derived = adaptive::derive(
        &stats,
        mode,
        g.schedule().len(),
        adaptive::DEFAULT_PROBE_SAMPLES,
    );
    *g = g.clone().with_schedule(derived.schedule);
    let budget = match budget {
        // Floor of one evaluation: a budget smaller than the probe
        // still runs a (vanishingly short) chain instead of panicking.
        Budget::Evaluations(n) => Budget::Evaluations(n.saturating_sub(derived.probe_evals).max(1)),
        wall @ Budget::WallClock(_) => wall,
    };
    (budget, derived.controller)
}

/// Runs one chain of `strategy` on `problem` from `start` — the single
/// dispatch point deciding how a (strategy, g, ladder) triple executes.
///
/// Both the table runner ([`ArrangementSet`]) and the job server
/// ([`crate::jobs`]) call through here, so a job submitted over HTTP runs
/// byte-for-byte the chain the offline CLI would run for the same spec.
/// `replicas` rebuilds the ladder to that many geometric rungs for
/// [`Strategy::ReplicaExchange`] (the `--replicas` behavior); `controller`
/// attaches acceptance feedback to the Figure-1/Figure-2 strategies only —
/// the others run their schedule open-loop.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_strategy<P, O>(
    problem: &P,
    g: &mut GFunction,
    start: P::State,
    strategy: Strategy,
    budget: Budget,
    equilibrium: u64,
    replicas: Option<usize>,
    controller: Option<AcceptanceController>,
    rng: &mut StdRng,
    obs: &mut O,
) -> RunResult<P::State>
where
    P: anneal_core::Problem,
    O: ChainObserver,
{
    match strategy {
        Strategy::Figure1 => Figure1::with_equilibrium(equilibrium)
            .with_controller(controller)
            .run_traced(problem, g, start, budget, rng, obs),
        Strategy::Figure2 => Figure2::with_equilibrium(equilibrium)
            .with_controller(controller)
            .run_traced(problem, g, start, budget, rng, obs),
        Strategy::Rejectionless => {
            Rejectionless::default().run_traced(problem, g, start, budget, rng, obs)
        }
        Strategy::ReplicaExchange { exchange_interval } => {
            if let Some(k) = replicas {
                // `--replicas K`: one chain per rung of a K-rung
                // geometric ladder grown from the method's own top
                // temperature (the core strategy stays ladder-agnostic).
                let top = g.schedule().value(0);
                *g = g.clone().with_schedule(anneal_core::Schedule::geometric(
                    top,
                    anneal_core::KIRKPATRICK_RATIO,
                    k,
                ));
            }
            ReplicaExchange::with_interval(exchange_interval)
                .run_traced(problem, g, start, budget, rng, obs)
        }
    }
}

/// Bounded retry for failed cells: up to `attempts` runs per instance, with
/// exponential backoff between attempts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Maximum run attempts per instance (≥ 1; 1 = no retries).
    pub attempts: u32,
    /// Backoff before attempt `k+1`, doubled each retry (capped at 2⁸×).
    pub backoff: Duration,
}

impl RetryPolicy {
    /// No retries: one attempt, fail-fast into the record.
    pub fn none() -> Self {
        RetryPolicy {
            attempts: 1,
            backoff: Duration::ZERO,
        }
    }

    /// Up to `attempts` attempts with `backoff` base delay (clamped to at
    /// least one attempt).
    pub fn new(attempts: u32, backoff: Duration) -> Self {
        RetryPolicy {
            attempts: attempts.max(1),
            backoff,
        }
    }

    /// The backoff before retry number `retry` (1-based), doubling each
    /// time. Shared with the [`supervisor`](crate::supervisor), whose
    /// process respawns back off on exactly the same curve.
    pub(crate) fn delay_before(&self, retry: u32) -> Duration {
        self.backoff * 2u32.pow(retry.saturating_sub(1).min(8))
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self::none()
    }
}

/// How one table cell is executed: parallelism, retries, and the
/// per-instance watchdog deadline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CellPolicy {
    /// OS threads the instances fan out over (≥ 1; totals are identical
    /// for any thread count).
    pub threads: usize,
    /// Bounded retry for failed instances.
    pub retry: RetryPolicy,
    /// Per-instance wall-clock deadline; an instance that exceeds it is
    /// recorded as a failure (see [`anneal_core::watchdog`]).
    pub watchdog: Option<Duration>,
}

impl CellPolicy {
    /// Sequential, no retries, no watchdog — the historical behavior.
    pub fn sequential() -> Self {
        Self::with_threads(1)
    }

    /// `threads`-way fan-out, no retries, no watchdog.
    pub fn with_threads(threads: usize) -> Self {
        CellPolicy {
            threads,
            retry: RetryPolicy::none(),
            watchdog: None,
        }
    }
}

impl Default for CellPolicy {
    fn default() -> Self {
        Self::sequential()
    }
}

/// What one instance run produced: its reduction and telemetry, or the
/// message of a caught panic (or watchdog timeout).
struct InstanceOutcome {
    index: usize,
    seed: u64,
    outcome: Result<(f64, RunTelemetry), String>,
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// An instance set with one fixed starting state per instance, so every
/// method sees identical starts ("Each g class used the same initial
/// arrangement", §4.2.1).
#[derive(Debug)]
pub struct ArrangementSet {
    problems: Vec<LinearArrangementProblem>,
    starts: Vec<ArrangedState>,
    seed: u64,
    /// Equilibrium counter limit `n` for both strategies.
    pub equilibrium: u64,
    /// Rung-count override for [`Strategy::ReplicaExchange`]: rebuild each
    /// method's temperature ladder to this many geometric rungs
    /// (Kirkpatrick ratio from the method's top temperature) before
    /// tempering. `None` keeps the method's own ladder.
    pub replicas: Option<usize>,
    /// Adaptive-schedule override (`--schedule`): before each instance runs,
    /// probe its delta statistics and replace the method's grid-swept
    /// schedule with a derived one of the same length (see
    /// [`adaptive::derive`]). The probe's evaluations are charged against
    /// the instance's evaluation budget, so adaptive cells stay equal-cost
    /// with grid-swept cells *including* tuning. `None` keeps the method's
    /// tuned schedule.
    pub schedule: Option<AdaptiveMode>,
}

impl ArrangementSet {
    /// Fixed random starting arrangements, derived from `seed` (Table 4.1,
    /// 4.2(b), 4.2(c) protocol).
    pub fn with_random_starts(problems: Vec<LinearArrangementProblem>, seed: u64) -> Self {
        use anneal_core::Problem;
        let starts = problems
            .iter()
            .enumerate()
            .map(|(i, p)| {
                let mut rng = StdRng::seed_from_u64(derive_seed(seed, i as u64));
                p.random_state(&mut rng)
            })
            .collect();
        ArrangementSet {
            problems,
            starts,
            seed,
            equilibrium: DEFAULT_EQUILIBRIUM,
            replicas: None,
            schedule: None,
        }
    }

    /// Goto arrangements as starting states (Table 4.2(a)/(d) protocol).
    pub fn with_goto_starts(problems: Vec<LinearArrangementProblem>, seed: u64) -> Self {
        let starts = problems
            .iter()
            .map(|p| p.state_from(goto_arrangement(p.netlist())))
            .collect();
        ArrangementSet {
            problems,
            starts,
            seed,
            equilibrium: DEFAULT_EQUILIBRIUM,
            replicas: None,
            schedule: None,
        }
    }

    /// The instances.
    pub fn problems(&self) -> &[LinearArrangementProblem] {
        &self.problems
    }

    /// The per-instance starting states.
    pub fn starts(&self) -> &[ArrangedState] {
        &self.starts
    }

    /// Sum of starting densities (the paper reports 2594 for its GOLA set
    /// and 4254 for its NOLA set).
    pub fn start_density_sum(&self) -> f64 {
        self.starts.iter().map(|s| s.density() as f64).sum()
    }

    /// Total reduction the Goto construction achieves relative to this set's
    /// starting states (the "Goto" row of Tables 4.1 and 4.2(c)).
    pub fn goto_reduction(&self) -> f64 {
        self.problems
            .iter()
            .zip(&self.starts)
            .map(|(p, start)| {
                let goto = p.state_from(goto_arrangement(p.netlist()));
                start.density() as f64 - goto.density() as f64
            })
            .sum()
    }

    /// Runs `spec` on every instance under `strategy` with per-instance
    /// `budget`, returning the total cost reduction over the set — the cell
    /// value in the paper's tables.
    ///
    /// # Panics
    ///
    /// Re-raises any instance panic (use [`run_cell`](Self::run_cell) with an
    /// enabled [`TelemetryLog`] for fault-isolated runs).
    pub fn run_method(&self, spec: &MethodSpec, strategy: Strategy, budget: Budget) -> f64 {
        self.run_cell(
            CellKey::new("adhoc", spec.name(), budget.to_string()),
            spec,
            strategy,
            budget,
            &CellPolicy::sequential(),
            &TelemetryLog::disabled(),
        )
    }

    /// [`run_method`](Self::run_method) with instances fanned out over
    /// `threads` OS threads. Results are bitwise identical to the sequential
    /// version (each instance's chain is independently seeded).
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`, and re-raises any instance panic.
    pub fn run_method_parallel(
        &self,
        spec: &MethodSpec,
        strategy: Strategy,
        budget: Budget,
        threads: usize,
    ) -> f64 {
        self.run_cell(
            CellKey::new("adhoc", spec.name(), budget.to_string()),
            spec,
            strategy,
            budget,
            &CellPolicy::with_threads(threads),
            &TelemetryLog::disabled(),
        )
    }

    /// Runs one table cell — `spec` × `strategy` × `budget` over the whole
    /// set — under `policy`, with per-instance fault isolation, recording a
    /// [`CellRecord`] into `log`, and returns the total reduction over
    /// instances that completed.
    ///
    /// Instances are fanned out over `policy.threads` OS threads
    /// (1 = sequential); per-instance results are summed in index order, so
    /// totals are bitwise identical regardless of thread count. Failed
    /// instances are re-run up to `policy.retry.attempts` times (same
    /// derived seed, so a successful retry is indistinguishable from a
    /// clean first run), and `policy.watchdog` bounds each instance's
    /// wall-clock time.
    ///
    /// If the cell's clean record is in `log`'s `--resume` cache (same
    /// strategy, budget and base seed), it is **replayed**: re-recorded
    /// into `log` and its reduction returned without running anything.
    ///
    /// # Panics
    ///
    /// Panics if `policy.threads == 0`. When `log` is disabled an instance
    /// panic is re-raised (fail-fast); when it is enabled the panic is
    /// recorded as a [`CellFailure`] and the remaining instances still run.
    pub fn run_cell(
        &self,
        key: CellKey,
        spec: &MethodSpec,
        strategy: Strategy,
        budget: Budget,
        policy: &CellPolicy,
        log: &TelemetryLog,
    ) -> f64 {
        assert!(policy.threads > 0, "need at least one thread");
        // A worker process runs exactly one cell: its log filter skips
        // every other one. A draining parent stops starting cells: the
        // skipped cells are simply absent from the WAL and re-run on
        // `--resume`.
        if log.skips(&key) || crate::supervisor::signals::draining() {
            return 0.0;
        }
        let strategy_name = format!("{strategy:?}");
        if let Some(cached) = log.replay(&key, &strategy_name, &budget.to_string(), self.seed) {
            metrics::global().counter("runner.cells_replayed").inc();
            let total = cached.reduction;
            log.record_replayed(cached);
            return total;
        }
        // Under `--isolation process` the cell runs in a child process;
        // the supervisor records the outcome (or the process failure)
        // into `log` exactly as the code below would.
        if let Some(sup) = log.supervisor() {
            return sup.run_cell(
                &key,
                &strategy_name,
                budget,
                policy,
                self.problems.len(),
                log,
            );
        }
        metrics::global().counter("runner.cells").inc();
        // Phase timing for the ops plane: one histogram record when the
        // guard drops at the end of the cell. Never inside chain loops.
        let _cell_span = metrics::span("cell");

        // Replayed cells leave no trace file: nothing ran. A sink that
        // cannot open the cell's file degrades to an untraced cell rather
        // than failing the run.
        let tracer = log.trace_sink().and_then(|sink| {
            sink.cell_writer(&key, &strategy_name, &budget.to_string(), self.seed)
                .map_err(|e| {
                    metrics::global().counter("trace.open_errors").inc();
                    eprintln!("trace: {e}");
                })
                .ok()
        });

        let n = self.problems.len();
        let mut outcomes: Vec<Option<InstanceOutcome>> = (0..n).map(|_| None).collect();
        let mut pending: Vec<usize> = (0..n).collect();
        let mut attempts = 0u32;
        while !pending.is_empty() && attempts < policy.retry.attempts {
            if attempts > 0 {
                let backoff = policy.retry.delay_before(attempts);
                if !backoff.is_zero() {
                    std::thread::sleep(backoff);
                }
            }
            if attempts > 0 {
                metrics::global().counter("runner.retries").inc();
            }
            for outcome in self.run_instances(
                &pending,
                spec,
                strategy,
                budget,
                policy,
                attempts,
                &key,
                log,
                tracer.as_ref(),
            ) {
                let slot = outcome.index;
                outcomes[slot] = Some(outcome);
            }
            attempts += 1;
            pending = outcomes
                .iter()
                .filter_map(|o| match o {
                    Some(o) if o.outcome.is_err() => Some(o.index),
                    _ => None,
                })
                .collect();
        }

        let mut record = CellRecord::empty(key, strategy_name, budget, self.seed);
        record.instances = n;
        record.attempts = attempts.max(1);
        let mut total = 0.0;
        for o in outcomes
            .iter()
            .map(|o| o.as_ref().expect("every instance ran"))
        {
            match &o.outcome {
                Ok((reduction, telemetry)) => {
                    total += reduction;
                    record.absorb(o.index, o.seed, telemetry);
                }
                Err(message) => record.failures.push(CellFailure {
                    instance: o.index,
                    seed: o.seed,
                    message: message.clone(),
                }),
            }
        }

        if !log.is_enabled() {
            if let Some(f) = record.failures.first() {
                panic!(
                    "instance {} (seed {}) of cell {} panicked: {}",
                    f.instance, f.seed, record.key, f.message
                );
            }
        }
        log.record(record);
        total
    }

    /// Runs the instances in `indices` (one attempt each) over
    /// `policy.threads` workers, returning their outcomes in `indices`
    /// order.
    #[allow(clippy::too_many_arguments)]
    fn run_instances(
        &self,
        indices: &[usize],
        spec: &MethodSpec,
        strategy: Strategy,
        budget: Budget,
        policy: &CellPolicy,
        attempt: u32,
        key: &CellKey,
        log: &TelemetryLog,
        tracer: Option<&CellTraceWriter>,
    ) -> Vec<InstanceOutcome> {
        let n = indices.len();
        let run_one = |idx: usize| {
            let fault = log
                .faults()
                .map(|plan| plan.instance_fault(key, idx, attempt))
                .unwrap_or_default();
            self.run_instance_caught(
                idx,
                spec,
                strategy,
                budget,
                fault,
                policy.watchdog,
                tracer,
                attempt,
            )
        };
        // Per-instance results come back in slot (index) order, so the
        // floating-point total is identical to the sequential version
        // regardless of thread interleaving — see [`scheduler::run_indexed`].
        crate::scheduler::run_indexed(n, policy.threads, |slot| run_one(indices[slot]))
    }

    #[allow(clippy::too_many_arguments)]
    fn run_instance_caught(
        &self,
        idx: usize,
        spec: &MethodSpec,
        strategy: Strategy,
        budget: Budget,
        fault: InstanceFault,
        watchdog_timeout: Option<Duration>,
        tracer: Option<&CellTraceWriter>,
        attempt: u32,
    ) -> InstanceOutcome {
        let seed = derive_seed(self.seed ^ RUN_SALT, idx as u64);
        let started = Instant::now();
        // Arm the watchdog on this worker thread: every Meter the strategy
        // creates inside the closure captures the deadline, so a runaway
        // chain winds down as soon as it polls its budget.
        let guard = watchdog_timeout.map(watchdog::arm);
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            if let Some(delay) = fault.delay {
                std::thread::sleep(delay);
            }
            if let Some(hang) = fault.hang {
                // A wedge the in-process watchdog cannot catch: the
                // deadline is only observed when the chain polls its
                // budget, and a sleeping thread never does. Only the
                // supervisor's wall-clock SIGKILL bounds this (the sleep
                // itself is capped so un-supervised chaos runs still end).
                std::thread::sleep(hang);
            }
            if fault.abort {
                eprintln!("fault injection: forced abort (instance {idx})");
                std::process::abort();
            }
            if let Some(cap_mb) = fault.oom {
                crate::faults::simulate_oom(cap_mb, idx);
            }
            if fault.panic {
                panic!("fault injection: forced panic (instance {idx})");
            }
            // The traced and untraced paths are separate monomorphizations;
            // with no tracer the chain runs the exact PR 2 hot path.
            match tracer {
                Some(_) => {
                    let mut collector = TraceCollector::new();
                    let result = self.run_instance(idx, spec, strategy, budget, &mut collector);
                    (result, Some(collector.into_trace()))
                }
                None => (
                    self.run_instance(idx, spec, strategy, budget, &mut NoopObserver),
                    None,
                ),
            }
        }));
        let elapsed = started.elapsed();
        let timed_out = guard.is_some() && watchdog::expired();
        drop(guard);
        let reg = metrics::global();
        reg.counter("runner.instances").inc();
        reg.histogram("runner.instance_wall_ms")
            .record(elapsed.as_millis() as u64);
        InstanceOutcome {
            index: idx,
            seed,
            outcome: match outcome {
                Ok(_) if timed_out => Err(format!(
                    "watchdog: instance exceeded its {:.0} ms deadline (ran {:.0} ms)",
                    watchdog_timeout
                        .expect("timed out implies armed")
                        .as_secs_f64()
                        * 1e3,
                    elapsed.as_secs_f64() * 1e3
                )),
                Ok((result, trace)) => {
                    // Only clean runs leave trace events; tracing errors are
                    // counted, never fatal.
                    if let (Some(w), Some(trace)) = (tracer, trace) {
                        if let Err(e) = w.write_instance(idx, seed, attempt + 1, &trace) {
                            reg.counter("trace.write_errors").inc();
                            eprintln!("trace: {e}");
                        }
                        // Stage span timings from the walls the collector
                        // already measured: recorded here at the instance
                        // boundary, so the chain loop itself is untouched
                        // (and untraced runs skip even this).
                        let stages =
                            reg.histogram_with(metrics::SPAN_METRIC, &[("phase", "stage")]);
                        for stage in &trace.stages {
                            stages.record(stage.wall.as_micros() as u64);
                        }
                    }
                    let telemetry = RunTelemetry::capture(&result, elapsed);
                    Ok((result.reduction(), telemetry))
                }
                Err(payload) => Err(panic_message(payload)),
            },
        }
    }

    /// Applies the `--schedule` override to one instance: probes the
    /// instance's delta statistics on a salted RNG stream (independent of
    /// the chain's, so the chain randomness is untouched), replaces `g`'s
    /// grid-swept schedule with a derived adaptive one of the same length,
    /// and charges the probe against an evaluation budget — adaptive cells
    /// stay equal-cost with tuned cells *including* tuning. Returns the
    /// (possibly reduced) budget and the feedback controller to attach
    /// (acceptance mode on Figure-1/Figure-2 only; the other strategies run
    /// the derived schedule open-loop).
    fn adapt_schedule(
        &self,
        idx: usize,
        problem: &LinearArrangementProblem,
        g: &mut GFunction,
        budget: Budget,
    ) -> (Budget, Option<AcceptanceController>) {
        adapt_schedule_for(
            self.schedule,
            derive_seed(self.seed ^ PROBE_SALT, idx as u64),
            problem,
            g,
            budget,
        )
    }

    fn run_instance<O: ChainObserver>(
        &self,
        idx: usize,
        spec: &MethodSpec,
        strategy: Strategy,
        budget: Budget,
        obs: &mut O,
    ) -> RunResult<ArrangedState> {
        let problem = &self.problems[idx];
        let start = &self.starts[idx];
        let ctx = MethodCtx {
            n_nets: problem.netlist().n_nets(),
        };
        let mut g = spec.g(&ctx);
        let (budget, controller) = self.adapt_schedule(idx, problem, &mut g, budget);
        let mut rng = StdRng::seed_from_u64(derive_seed(self.seed ^ RUN_SALT, idx as u64));
        run_strategy(
            problem,
            &mut g,
            start.clone(),
            strategy,
            budget,
            self.equilibrium,
            self.replicas,
            controller,
            &mut rng,
            obs,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instances::gola_paper_set;
    use crate::roster::{full_roster, TunedY};

    fn tiny_set() -> ArrangementSet {
        let problems = gola_paper_set(3).into_iter().take(4).collect();
        ArrangementSet::with_random_starts(problems, 3)
    }

    #[test]
    fn starts_are_stable_across_constructions() {
        let a = tiny_set();
        let b = tiny_set();
        assert_eq!(a.starts()[0], b.starts()[0]);
        assert_eq!(a.start_density_sum(), b.start_density_sum());
    }

    #[test]
    fn goto_reduction_is_positive_on_random_starts() {
        let set = tiny_set();
        assert!(set.goto_reduction() > 0.0);
    }

    #[test]
    fn goto_starts_have_lower_density() {
        let problems = gola_paper_set(3).into_iter().take(4).collect();
        let random = tiny_set();
        let goto = ArrangementSet::with_goto_starts(problems, 3);
        assert!(goto.start_density_sum() < random.start_density_sum());
    }

    #[test]
    fn run_method_is_deterministic_and_nonnegative() {
        let set = tiny_set();
        let roster = full_roster(TunedY::default());
        let spec = &roster[3]; // g = 1
        let budget = Budget::evaluations(2_000);
        let a = set.run_method(spec, Strategy::Figure1, budget);
        let b = set.run_method(spec, Strategy::Figure1, budget);
        assert_eq!(a, b);
        assert!(a >= 0.0, "best never exceeds initial");
    }

    #[test]
    fn parallel_run_matches_sequential_exactly() {
        let set = tiny_set();
        let roster = full_roster(TunedY::default());
        let budget = Budget::evaluations(1_000);
        for spec in roster.iter().take(4) {
            let seq = set.run_method(spec, Strategy::Figure1, budget);
            for threads in [1, 2, 3, 8] {
                let par = set.run_method_parallel(spec, Strategy::Figure1, budget, threads);
                assert_eq!(seq, par, "{} with {threads} threads", spec.name());
            }
        }
    }

    #[test]
    fn replica_exchange_parallel_matches_sequential_bitwise() {
        let set = tiny_set();
        let roster = full_roster(TunedY::default());
        let spec = &roster[2]; // Six Temperature Annealing: a ladder to temper over
        let budget = Budget::evaluations(1_500);
        let strategy = Strategy::ReplicaExchange {
            exchange_interval: 32,
        };
        let seq = set.run_method(spec, strategy, budget);
        assert!(seq >= 0.0);
        for threads in [1, 2, 8] {
            let par = set.run_method_parallel(spec, strategy, budget, threads);
            assert_eq!(seq.to_bits(), par.to_bits(), "{threads} threads");
        }
    }

    #[test]
    fn replica_exchange_cell_records_swap_counters() {
        let set = tiny_set();
        let roster = full_roster(TunedY::default());
        let spec = &roster[2]; // Six Temperature Annealing
        let log = TelemetryLog::in_memory();
        let _ = set.run_cell(
            CellKey::new("test", spec.name(), "2000 evals"),
            spec,
            Strategy::ReplicaExchange {
                exchange_interval: 16,
            },
            Budget::evaluations(2_000),
            &CellPolicy::sequential(),
            &log,
        );
        let record = log.records().remove(0);
        assert!(record.ok());
        let attempts: u64 = record.per_temp.iter().map(|t| t.swap_attempts).sum();
        let accepts: u64 = record.per_temp.iter().map(|t| t.swap_accepts).sum();
        assert!(attempts > 0, "swaps were attempted");
        assert!(accepts <= attempts);
        assert!(record.per_temp.iter().any(|t| t.ended_exchange > 0));
    }

    #[test]
    fn adaptive_schedule_is_deterministic_and_parallel_safe() {
        let mut set = tiny_set();
        set.schedule = Some(AdaptiveMode::Acceptance);
        let roster = full_roster(TunedY::default());
        let spec = &roster[2]; // Six Temperature Annealing
        let budget = Budget::evaluations(2_000);
        let a = set.run_method(spec, Strategy::Figure1, budget);
        let b = set.run_method(spec, Strategy::Figure1, budget);
        assert_eq!(a.to_bits(), b.to_bits(), "probe + controller are pure");
        for threads in [2, 8] {
            let par = set.run_method_parallel(spec, Strategy::Figure1, budget, threads);
            assert_eq!(a.to_bits(), par.to_bits(), "{threads} threads");
        }
    }

    #[test]
    fn adaptive_cells_record_controller_telemetry_and_charge_the_probe() {
        let roster = full_roster(TunedY::default());
        let spec = &roster[2]; // Six Temperature Annealing
        let budget = Budget::evaluations(2_000);
        let run = |mode| {
            let mut set = tiny_set();
            set.schedule = mode;
            let log = TelemetryLog::in_memory();
            let _ = set.run_cell(
                CellKey::new("test", spec.name(), "2000 evals"),
                spec,
                Strategy::Figure1,
                budget,
                &CellPolicy::sequential(),
                &log,
            );
            log.records().remove(0)
        };
        let tuned = run(None);
        let acc = run(Some(AdaptiveMode::Acceptance));
        let asa = run(Some(AdaptiveMode::Asa));
        for r in [&tuned, &acc, &asa] {
            assert!(r.ok());
            assert!(r.per_temp.iter().all(|t| t.temperature.is_finite()));
        }
        // Only the acceptance controller publishes a target trajectory.
        assert!(acc.per_temp.iter().all(|t| t.target_acceptance.is_finite()));
        assert!(asa.per_temp.iter().all(|t| t.target_acceptance.is_nan()));
        assert!(tuned.per_temp.iter().all(|t| t.target_acceptance.is_nan()));
        // The probe is charged: no adaptive instance may spend more chain
        // evaluations than the reduced budget allows.
        let cap = 2_000 - adaptive::DEFAULT_PROBE_SAMPLES;
        for r in [&acc, &asa] {
            for i in &r.per_instance {
                assert!(i.evals <= cap, "instance {} spent {}", i.index, i.evals);
            }
        }
        // A derived schedule actually ran: the cell value moved off the
        // grid-swept one.
        assert_ne!(acc.reduction.to_bits(), tuned.reduction.to_bits());
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_panics() {
        let set = tiny_set();
        let roster = full_roster(TunedY::default());
        let _ = set.run_method_parallel(&roster[0], Strategy::Figure1, Budget::evaluations(10), 0);
    }

    /// Instances with distinct net counts, so a method spec can single one
    /// out (net counts 60..=63, instance index = n_nets - 60).
    fn mixed_set() -> ArrangementSet {
        use anneal_netlist::generator::random_two_pin;
        let problems = (0..4u64)
            .map(|i| {
                let mut rng = StdRng::seed_from_u64(100 + i);
                LinearArrangementProblem::new(random_two_pin(10, 60 + i as usize, &mut rng))
            })
            .collect();
        ArrangementSet::with_random_starts(problems, 7)
    }

    /// Panics while instantiating g for the instance with 62 nets (index 2).
    fn poisoned_spec() -> MethodSpec {
        use anneal_core::GFunction;
        MethodSpec::with_ctx("poisoned", |ctx| {
            assert_ne!(ctx.n_nets, 62, "injected failure");
            GFunction::unit()
        })
    }

    #[test]
    fn injected_panic_becomes_failed_cell_and_rest_completes() {
        let set = mixed_set();
        let log = TelemetryLog::in_memory();
        let key = CellKey::new("test", "poisoned", "500 evals");
        let total = set.run_cell(
            key,
            &poisoned_spec(),
            Strategy::Figure1,
            Budget::evaluations(500),
            &CellPolicy::sequential(),
            &log,
        );

        let records = log.records();
        assert_eq!(records.len(), 1);
        let r = &records[0];
        assert!(!r.ok());
        assert_eq!(r.failures.len(), 1);
        assert_eq!(r.failures[0].instance, 2);
        assert!(r.failures[0].message.contains("injected failure"));
        // The other three instances completed and were recorded.
        assert_eq!(r.instances, 4);
        let done: Vec<usize> = r.per_instance.iter().map(|i| i.index).collect();
        assert_eq!(done, vec![0, 1, 3]);
        assert_eq!(total, r.reduction);
        assert!(total > 0.0, "surviving instances still did useful work");
        // The summary surfaces the failure for triage.
        let summary = log.summary();
        assert_eq!(summary.failed.len(), 1);
        assert_eq!(summary.failed[0].failures[0].instance, 2);
        assert_eq!(summary.failed[0].attempts, 1);
    }

    #[test]
    fn parallel_cell_with_panic_matches_sequential() {
        let set = mixed_set();
        let budget = Budget::evaluations(500);
        let run = |threads| {
            let log = TelemetryLog::in_memory();
            let key = CellKey::new("test", "poisoned", "500 evals");
            let total = set.run_cell(
                key,
                &poisoned_spec(),
                Strategy::Figure1,
                budget,
                &CellPolicy::with_threads(threads),
                &log,
            );
            (total, log.records().remove(0))
        };
        // Wall times differ run to run; compare the deterministic fields.
        let fingerprint = |rec: &crate::telemetry::CellRecord| {
            (
                rec.failures.clone(),
                rec.evals,
                rec.per_temp.clone(),
                rec.per_instance
                    .iter()
                    .map(|i| (i.index, i.seed, i.reduction.to_bits(), i.evals, i.stop))
                    .collect::<Vec<_>>(),
            )
        };
        let (seq_total, seq_rec) = run(1);
        for threads in [2, 3, 8] {
            let (par_total, par_rec) = run(threads);
            assert_eq!(seq_total, par_total, "{threads} threads");
            assert_eq!(fingerprint(&seq_rec), fingerprint(&par_rec));
        }
    }

    #[test]
    #[should_panic(expected = "injected failure")]
    fn disabled_log_fails_fast_on_instance_panic() {
        let set = mixed_set();
        let _ = set.run_method(
            &poisoned_spec(),
            Strategy::Figure1,
            Budget::evaluations(500),
        );
    }

    #[test]
    fn clean_cell_record_is_consistent() {
        let set = tiny_set();
        let roster = full_roster(TunedY::default());
        let spec = &roster[3]; // g = 1
        let log = TelemetryLog::in_memory();
        let key = CellKey::new("test", spec.name(), "2000 evals");
        let total = set.run_cell(
            key,
            spec,
            Strategy::Figure1,
            Budget::evaluations(2_000),
            &CellPolicy::sequential(),
            &log,
        );
        let r = log.records().remove(0);
        assert!(r.ok());
        assert_eq!(r.instances, 4);
        assert_eq!(r.per_instance.len(), 4);
        assert_eq!(r.stops_budget + r.stops_equilibrium, 4);
        assert_eq!(r.reduction, total);
        assert!(r.evals > 0);
        assert!(r.wall_ms > 0.0);
        assert!(!r.per_temp.is_empty());
        // Per-temperature evals add up to the cell total.
        let per_temp_evals: u64 = r.per_temp.iter().map(|t| t.evals).sum();
        assert_eq!(per_temp_evals, r.evals);
        assert_eq!(r.strategy, "Figure1");
        assert_eq!(r.budget, "2000 evals");
        // Matches the plain (un-logged) runner exactly.
        assert_eq!(
            total,
            set.run_method(spec, Strategy::Figure1, Budget::evaluations(2_000))
        );
    }

    #[test]
    fn panic_message_handles_all_payload_kinds() {
        let capture = |f: Box<dyn Fn() + Send>| -> String {
            panic_message(catch_unwind(AssertUnwindSafe(f)).unwrap_err())
        };
        assert_eq!(capture(Box::new(|| panic!("plain str"))), "plain str");
        assert_eq!(
            capture(Box::new(|| panic!("formatted {}", 42))),
            "formatted 42"
        );
        assert_eq!(
            capture(Box::new(|| std::panic::panic_any(String::from("owned")))),
            "owned"
        );
        // Non-string payloads (integers, structs) must not be lost or crash
        // the fault isolation.
        assert_eq!(
            capture(Box::new(|| std::panic::panic_any(7u32))),
            "non-string panic payload"
        );
        assert_eq!(
            capture(Box::new(|| std::panic::panic_any(vec![1, 2, 3]))),
            "non-string panic payload"
        );
    }

    /// Panics on the first `fail_first` g-instantiations, then works — a
    /// flaky method that a retry can recover.
    fn flaky_spec(fail_first: u32) -> MethodSpec {
        use anneal_core::GFunction;
        use std::sync::atomic::{AtomicU32, Ordering};
        let calls = AtomicU32::new(0);
        MethodSpec::with_ctx("flaky", move |_| {
            if calls.fetch_add(1, Ordering::SeqCst) < fail_first {
                panic!("transient failure");
            }
            GFunction::unit()
        })
    }

    #[test]
    fn retry_recovers_a_transient_failure_exactly() {
        let set = tiny_set();
        let budget = Budget::evaluations(500);
        let clean = {
            let log = TelemetryLog::in_memory();
            set.run_cell(
                CellKey::new("test", "flaky", "500 evals"),
                &flaky_spec(0),
                Strategy::Figure1,
                budget,
                &CellPolicy::sequential(),
                &log,
            )
        };

        let log = TelemetryLog::in_memory();
        let policy = CellPolicy {
            retry: RetryPolicy::new(3, Duration::ZERO),
            ..CellPolicy::sequential()
        };
        let total = set.run_cell(
            CellKey::new("test", "flaky", "500 evals"),
            &flaky_spec(1),
            Strategy::Figure1,
            budget,
            &policy,
            &log,
        );
        let record = log.records().remove(0);
        assert!(record.ok(), "the retry recovered: {:?}", record.failures);
        assert_eq!(record.attempts, 2);
        assert_eq!(record.per_instance.len(), 4);
        // Deterministic per-instance seeding: the retried instance produced
        // exactly what a clean run would have.
        assert_eq!(total, clean);
    }

    #[test]
    fn retry_attempts_are_bounded_and_recorded() {
        let set = mixed_set();
        let log = TelemetryLog::in_memory();
        let policy = CellPolicy {
            retry: RetryPolicy::new(3, Duration::ZERO),
            ..CellPolicy::sequential()
        };
        let _ = set.run_cell(
            CellKey::new("test", "poisoned", "500 evals"),
            &poisoned_spec(),
            Strategy::Figure1,
            Budget::evaluations(500),
            &policy,
            &log,
        );
        let record = log.records().remove(0);
        assert!(!record.ok(), "a deterministic panic survives every retry");
        assert_eq!(record.attempts, 3);
        assert_eq!(record.failures.len(), 1);
        // The healthy instances ran once and were not re-run.
        assert_eq!(record.per_instance.len(), 3);
    }

    #[test]
    fn injected_panic_fault_is_contained() {
        use crate::faults::FaultPlan;
        let set = tiny_set();
        let log = TelemetryLog::in_memory()
            .with_faults(Some(FaultPlan::parse("seed=1,panic=1").unwrap()));
        let total = set.run_cell(
            CellKey::new("test", "g = 1", "500 evals"),
            &full_roster(TunedY::default())[3],
            Strategy::Figure1,
            Budget::evaluations(500),
            &CellPolicy::sequential(),
            &log,
        );
        let record = log.records().remove(0);
        assert_eq!(total, 0.0, "every instance was killed");
        assert_eq!(record.failures.len(), 4);
        assert!(record.failures[0].message.contains("fault injection"));
    }

    #[test]
    fn watchdog_contains_an_injected_slowdown() {
        use crate::faults::FaultPlan;
        let set = tiny_set();
        // Every instance sleeps 80 ms against a 20 ms deadline.
        let log = TelemetryLog::in_memory()
            .with_faults(Some(FaultPlan::parse("delay=1,delay_ms=80").unwrap()));
        let policy = CellPolicy {
            watchdog: Some(Duration::from_millis(20)),
            ..CellPolicy::sequential()
        };
        let started = Instant::now();
        let _ = set.run_cell(
            CellKey::new("test", "g = 1", "500 evals"),
            &full_roster(TunedY::default())[3],
            Strategy::Figure1,
            Budget::evaluations(500),
            &policy,
            &log,
        );
        let record = log.records().remove(0);
        assert!(!record.ok());
        assert_eq!(record.failures.len(), 4);
        for f in &record.failures {
            assert!(f.message.contains("watchdog"), "{}", f.message);
        }
        assert!(
            started.elapsed() < Duration::from_secs(10),
            "the cell did not hang"
        );
    }

    #[test]
    fn watchdog_leaves_fast_cells_alone() {
        let set = tiny_set();
        let log = TelemetryLog::in_memory();
        let policy = CellPolicy {
            watchdog: Some(Duration::from_secs(600)),
            ..CellPolicy::sequential()
        };
        let spec = &full_roster(TunedY::default())[3];
        let budget = Budget::evaluations(500);
        let total = set.run_cell(
            CellKey::new("test", "g = 1", "500 evals"),
            spec,
            Strategy::Figure1,
            budget,
            &policy,
            &log,
        );
        assert!(log.records().remove(0).ok());
        assert_eq!(total, set.run_method(spec, Strategy::Figure1, budget));
    }

    #[test]
    fn traced_cell_matches_untraced_and_leaves_a_parseable_trace() {
        use crate::trace::{self, TraceSink};
        let set = tiny_set();
        let roster = full_roster(TunedY::default());
        let spec = &roster[3]; // g = 1
        let budget = Budget::evaluations(1_000);
        let plain = set.run_method(spec, Strategy::Figure1, budget);

        let dir = std::env::temp_dir().join(format!(
            "anneal-runner-trace-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let sink = TraceSink::new(&dir, None).unwrap();
        let key = CellKey::new("test", "g = 1", "1000 evals");
        let path = sink.cell_path(&key);
        let log = TelemetryLog::in_memory().with_trace(Some(sink));
        let traced = set.run_cell(
            key,
            spec,
            Strategy::Figure1,
            budget,
            &CellPolicy::sequential(),
            &log,
        );
        // Tracing never touches the RNG: the cell value is bitwise identical.
        assert_eq!(plain.to_bits(), traced.to_bits());

        let loaded = trace::load(&path).unwrap();
        assert_eq!(loaded.meta.strategy, "Figure1");
        assert_eq!(loaded.meta.base_seed, 3);
        let (run_starts, temps, samples, _bests, stops) = loaded.counts();
        assert_eq!(run_starts, 4, "one run_start per instance");
        assert_eq!(stops, 4, "one stop per instance");
        assert!(temps > 0 && samples > 0);
        // The traced temp events aggregate to the WAL record's per_temp.
        let record = log.records().remove(0);
        let agg_stages: u64 = record
            .per_temp
            .iter()
            .map(|t| t.ended_budget + t.ended_equilibrium + t.ended_exchange)
            .sum();
        assert_eq!(temps as u64, agg_stages);
        assert!(record.per_temp.iter().all(|t| t.proposals > 0));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn replayed_cell_is_not_re_run() {
        let set = tiny_set();
        let spec = &full_roster(TunedY::default())[3];
        let budget = Budget::evaluations(500);
        let key = CellKey::new("test", "g = 1", "500 evals");

        let first = TelemetryLog::in_memory();
        let total = set.run_cell(
            key.clone(),
            spec,
            Strategy::Figure1,
            budget,
            &CellPolicy::sequential(),
            &first,
        );
        let cached = first.records().remove(0);

        // Replaying with a spec that always panics proves nothing ran.
        let bomb = MethodSpec::new("bomb", || panic!("must not run"));
        let resumed = TelemetryLog::in_memory().with_resume(vec![cached.clone()]);
        let replayed_total = set.run_cell(
            key,
            &bomb,
            Strategy::Figure1,
            budget,
            &CellPolicy::sequential(),
            &resumed,
        );
        assert_eq!(replayed_total, total);
        assert_eq!(resumed.records().remove(0), cached);
        assert_eq!(resumed.summary().replayed, 1);
    }
}
