//! Shared machinery for the arrangement tables: an instance set with fixed
//! per-instance starting states, run under any method × strategy × budget.

use anneal_core::{
    derive_seed, Budget, Figure1, Figure2, Rejectionless, Strategy, DEFAULT_EQUILIBRIUM,
};
use anneal_linarr::{goto_arrangement, ArrangedState, LinearArrangementProblem};
use rand::{rngs::StdRng, SeedableRng};

use crate::roster::{MethodCtx, MethodSpec};

/// Seed-stream salt separating start generation from chain randomness.
const RUN_SALT: u64 = 0x52554E;

/// An instance set with one fixed starting state per instance, so every
/// method sees identical starts ("Each g class used the same initial
/// arrangement", §4.2.1).
#[derive(Debug)]
pub struct ArrangementSet {
    problems: Vec<LinearArrangementProblem>,
    starts: Vec<ArrangedState>,
    seed: u64,
    /// Equilibrium counter limit `n` for both strategies.
    pub equilibrium: u64,
}

impl ArrangementSet {
    /// Fixed random starting arrangements, derived from `seed` (Table 4.1,
    /// 4.2(b), 4.2(c) protocol).
    pub fn with_random_starts(problems: Vec<LinearArrangementProblem>, seed: u64) -> Self {
        use anneal_core::Problem;
        let starts = problems
            .iter()
            .enumerate()
            .map(|(i, p)| {
                let mut rng = StdRng::seed_from_u64(derive_seed(seed, i as u64));
                p.random_state(&mut rng)
            })
            .collect();
        ArrangementSet {
            problems,
            starts,
            seed,
            equilibrium: DEFAULT_EQUILIBRIUM,
        }
    }

    /// Goto arrangements as starting states (Table 4.2(a)/(d) protocol).
    pub fn with_goto_starts(problems: Vec<LinearArrangementProblem>, seed: u64) -> Self {
        let starts = problems
            .iter()
            .map(|p| p.state_from(goto_arrangement(p.netlist())))
            .collect();
        ArrangementSet {
            problems,
            starts,
            seed,
            equilibrium: DEFAULT_EQUILIBRIUM,
        }
    }

    /// The instances.
    pub fn problems(&self) -> &[LinearArrangementProblem] {
        &self.problems
    }

    /// The per-instance starting states.
    pub fn starts(&self) -> &[ArrangedState] {
        &self.starts
    }

    /// Sum of starting densities (the paper reports 2594 for its GOLA set
    /// and 4254 for its NOLA set).
    pub fn start_density_sum(&self) -> f64 {
        self.starts.iter().map(|s| s.density() as f64).sum()
    }

    /// Total reduction the Goto construction achieves relative to this set's
    /// starting states (the "Goto" row of Tables 4.1 and 4.2(c)).
    pub fn goto_reduction(&self) -> f64 {
        self.problems
            .iter()
            .zip(&self.starts)
            .map(|(p, start)| {
                let goto = p.state_from(goto_arrangement(p.netlist()));
                start.density() as f64 - goto.density() as f64
            })
            .sum()
    }

    /// Runs `spec` on every instance under `strategy` with per-instance
    /// `budget`, returning the total cost reduction over the set — the cell
    /// value in the paper's tables.
    pub fn run_method(&self, spec: &MethodSpec, strategy: Strategy, budget: Budget) -> f64 {
        (0..self.problems.len())
            .map(|idx| self.run_instance(idx, spec, strategy, budget))
            .sum()
    }

    /// [`run_method`](Self::run_method) with instances fanned out over
    /// `threads` OS threads. Results are bitwise identical to the sequential
    /// version (each instance's chain is independently seeded).
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn run_method_parallel(
        &self,
        spec: &MethodSpec,
        strategy: Strategy,
        budget: Budget,
        threads: usize,
    ) -> f64 {
        assert!(threads > 0, "need at least one thread");
        let n = self.problems.len();
        let next = std::sync::atomic::AtomicUsize::new(0);
        // Per-instance results are written into fixed slots and summed in
        // index order afterwards, so the floating-point total is identical
        // to the sequential version regardless of thread interleaving.
        let results = std::sync::Mutex::new(vec![0.0f64; n]);
        std::thread::scope(|scope| {
            for _ in 0..threads.min(n.max(1)) {
                let next = &next;
                let results = &results;
                scope.spawn(move || loop {
                    let idx = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    if idx >= n {
                        break;
                    }
                    let r = self.run_instance(idx, spec, strategy, budget);
                    results.lock().expect("no poisoned workers")[idx] = r;
                });
            }
        });
        results
            .into_inner()
            .expect("no poisoned workers")
            .iter()
            .sum()
    }

    fn run_instance(
        &self,
        idx: usize,
        spec: &MethodSpec,
        strategy: Strategy,
        budget: Budget,
    ) -> f64 {
        let problem = &self.problems[idx];
        let start = &self.starts[idx];
        let ctx = MethodCtx {
            n_nets: problem.netlist().n_nets(),
        };
        let mut g = spec.g(&ctx);
        let mut rng = StdRng::seed_from_u64(derive_seed(self.seed ^ RUN_SALT, idx as u64));
        let result = match strategy {
            Strategy::Figure1 => Figure1::with_equilibrium(self.equilibrium).run(
                problem,
                &mut g,
                start.clone(),
                budget,
                &mut rng,
            ),
            Strategy::Figure2 => Figure2::with_equilibrium(self.equilibrium).run(
                problem,
                &mut g,
                start.clone(),
                budget,
                &mut rng,
            ),
            Strategy::Rejectionless => {
                Rejectionless::default().run(problem, &mut g, start.clone(), budget, &mut rng)
            }
        };
        result.reduction()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instances::gola_paper_set;
    use crate::roster::{full_roster, TunedY};

    fn tiny_set() -> ArrangementSet {
        let problems = gola_paper_set(3).into_iter().take(4).collect();
        ArrangementSet::with_random_starts(problems, 3)
    }

    #[test]
    fn starts_are_stable_across_constructions() {
        let a = tiny_set();
        let b = tiny_set();
        assert_eq!(a.starts()[0], b.starts()[0]);
        assert_eq!(a.start_density_sum(), b.start_density_sum());
    }

    #[test]
    fn goto_reduction_is_positive_on_random_starts() {
        let set = tiny_set();
        assert!(set.goto_reduction() > 0.0);
    }

    #[test]
    fn goto_starts_have_lower_density() {
        let problems = gola_paper_set(3).into_iter().take(4).collect();
        let random = tiny_set();
        let goto = ArrangementSet::with_goto_starts(problems, 3);
        assert!(goto.start_density_sum() < random.start_density_sum());
    }

    #[test]
    fn run_method_is_deterministic_and_nonnegative() {
        let set = tiny_set();
        let roster = full_roster(TunedY::default());
        let spec = &roster[3]; // g = 1
        let budget = Budget::evaluations(2_000);
        let a = set.run_method(spec, Strategy::Figure1, budget);
        let b = set.run_method(spec, Strategy::Figure1, budget);
        assert_eq!(a, b);
        assert!(a >= 0.0, "best never exceeds initial");
    }

    #[test]
    fn parallel_run_matches_sequential_exactly() {
        let set = tiny_set();
        let roster = full_roster(TunedY::default());
        let budget = Budget::evaluations(1_000);
        for spec in roster.iter().take(4) {
            let seq = set.run_method(spec, Strategy::Figure1, budget);
            for threads in [1, 2, 3, 8] {
                let par = set.run_method_parallel(spec, Strategy::Figure1, budget, threads);
                assert_eq!(seq, par, "{} with {threads} threads", spec.name());
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_panics() {
        let set = tiny_set();
        let roster = full_roster(TunedY::default());
        let _ = set.run_method_parallel(&roster[0], Strategy::Figure1, Budget::evaluations(10), 0);
    }
}
