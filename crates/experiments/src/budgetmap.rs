//! Mapping the paper's VAX 11/780 CPU-second budgets to deterministic
//! evaluation budgets.
//!
//! The paper's experimental control is equal CPU time per method (§3),
//! measured on a VAX 11/780 running Pascal. We substitute **cost
//! evaluations** as the budget currency (see DESIGN.md): one evaluation per
//! proposed perturbation, including local-search probes.
//!
//! The conversion constant is calibrated to the paper's *regime*, not just
//! its hardware: a ~0.5 MIPS VAX running a Pascal implementation that
//! recomputes a 150-net density per perturbation (~2,000 instructions)
//! manages on the order of a few hundred perturbations per second. At that
//! rate the paper's 6/9/12-second columns sit in the discriminative region
//! where method rankings spread out (Table 4.1's 447–654 range); a much
//! higher rate would let every method saturate near the optimum on
//! 15-element instances and erase the table's shape. We use 250
//! evaluations per paper-second, which reproduces the spread.

use anneal_core::Budget;

/// Evaluations per simulated VAX 11/780 CPU second, calibrated on GOLA
/// (two-pin) instances.
pub const EVALS_PER_VAX_SECOND: u64 = 250;

/// Relative cost of a NOLA evaluation: the paper's budget currency is CPU
/// *time*, and recomputing the density of 150 nets averaging 6 pins costs
/// about three times the two-pin case, so a NOLA second buys ~3× fewer
/// perturbations. The NOLA table runners divide their budgets by this
/// factor.
pub const NOLA_EVAL_COST: u64 = 3;

/// The paper's per-instance budget triple for Tables 4.1 and 4.2(a)/(c)/(d).
pub const PAPER_SECONDS: [f64; 3] = [6.0, 9.0, 12.0];

/// The paper's per-instance budget for Table 4.2(b) (3 minutes).
pub const PAPER_SECONDS_42B: f64 = 180.0;

/// An evaluation budget equivalent to `seconds` of paper CPU time.
///
/// # Panics
///
/// Panics if `seconds` is not finite and positive.
///
/// # Examples
///
/// ```
/// use anneal_core::Budget;
/// use anneal_experiments::vax_seconds;
///
/// assert_eq!(vax_seconds(6.0), Budget::evaluations(1_500));
/// ```
pub fn vax_seconds(seconds: f64) -> Budget {
    assert!(
        seconds.is_finite() && seconds > 0.0,
        "budget seconds must be finite and positive"
    );
    Budget::evaluations((seconds * EVALS_PER_VAX_SECOND as f64).round() as u64)
}

/// A global scale knob for the experiment harness: budgets are divided by
/// `divisor`, trading fidelity for wall-clock time. `Scale::FULL` is
/// paper-faithful; integration tests use larger divisors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scale {
    /// Budget divisor (≥ 1).
    pub divisor: u64,
}

impl Scale {
    /// Paper-faithful budgets.
    pub const FULL: Scale = Scale { divisor: 1 };

    /// A scale dividing every budget by `divisor`.
    ///
    /// # Panics
    ///
    /// Panics if `divisor == 0`.
    pub fn new(divisor: u64) -> Self {
        assert!(divisor > 0, "scale divisor must be positive");
        Scale { divisor }
    }

    /// Applies the scale to a budget.
    pub fn apply(&self, budget: Budget) -> Budget {
        budget.scale_div(self.divisor)
    }

    /// `vax_seconds(seconds)` scaled.
    pub fn vax_seconds(&self, seconds: f64) -> Budget {
        self.apply(vax_seconds(seconds))
    }
}

impl Default for Scale {
    fn default() -> Self {
        Scale::FULL
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_budgets() {
        assert_eq!(vax_seconds(6.0), Budget::evaluations(1_500));
        assert_eq!(vax_seconds(9.0), Budget::evaluations(2_250));
        assert_eq!(vax_seconds(12.0), Budget::evaluations(3_000));
        assert_eq!(vax_seconds(180.0), Budget::evaluations(45_000));
    }

    #[test]
    fn scale_divides() {
        let s = Scale::new(10);
        assert_eq!(s.vax_seconds(6.0), Budget::evaluations(150));
        assert_eq!(Scale::FULL.vax_seconds(6.0), Budget::evaluations(1_500));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_divisor_panics() {
        let _ = Scale::new(0);
    }

    #[test]
    #[should_panic(expected = "finite and positive")]
    fn negative_seconds_panic() {
        let _ = vax_seconds(-1.0);
    }
}
