//! Ablations of the paper's design choices (DESIGN.md §5):
//!
//! * **Gate period** — the paper hard-codes the `g = 1` rejection gate at 18
//!   (§3) without justification; sweep the period.
//! * **Schedule length** — the paper fixes `k = 6` for the multi-temperature
//!   classes (\[KIRK83\]) and cites \[GOLD84\]'s 25-point uniform schedule;
//!   sweep `k` for Boltzmann acceptance at equal total budget.
//! * **Equilibrium limit** — the counter bound `n` is unstated in the paper;
//!   sweep it.
//! * **NOLA net size** — the paper never states its NOLA net-size
//!   distribution; sweep the maximum pin count and watch the g=1-vs-annealing
//!   gap (EXPERIMENTS.md deviation 1).
//! * **Instance size** — the paper fixes 15 elements; sweep the element
//!   count at a fixed budget to see how the Goto-vs-Monte-Carlo crossover
//!   moves.

use anneal_core::{derive_seed, GFunction, Gate, Schedule, Strategy};
use anneal_linarr::LinearArrangementProblem;
use anneal_netlist::generator::{random_multi_pin, random_two_pin};
use rand::{rngs::StdRng, SeedableRng};

use crate::budgetmap::{NOLA_EVAL_COST, PAPER_SECONDS};
use crate::config::SuiteConfig;
use crate::instances::gola_paper_set;
use crate::roster::MethodSpec;
use crate::runner::ArrangementSet;
use crate::table::Table;

/// Gate periods swept by [`gate_period`].
pub const GATE_PERIODS: [u32; 6] = [2, 4, 8, 18, 32, 64];

/// Schedule lengths swept by [`schedule_length`].
pub const SCHEDULE_LENGTHS: [usize; 5] = [1, 2, 6, 12, 25];

/// Equilibrium limits swept by [`equilibrium_limit`].
pub const EQUILIBRIUM_LIMITS: [u64; 5] = [25, 100, 250, 1000, 10_000];

/// Maximum net sizes swept by [`nola_net_size`] (minimum is always 2).
pub const NOLA_MAX_PINS: [usize; 5] = [2, 4, 6, 8, 10];

/// Element counts swept by [`instance_size`] (nets scale as 10× elements).
pub const INSTANCE_SIZES: [usize; 4] = [10, 15, 25, 40];

/// Sweeps the `g = 1` gate period on the GOLA set under Figure 1.
pub fn gate_period(config: &SuiteConfig) -> Table {
    let set = ArrangementSet::with_random_starts(gola_paper_set(config.seed), config.seed);
    let columns = PAPER_SECONDS
        .iter()
        .map(|s| format!("{s:.0} sec"))
        .collect();
    let mut table = Table::new(
        "Ablation — g = 1 gate period (paper uses 18), GOLA, Figure 1",
        "gate period",
        columns,
    );
    for period in GATE_PERIODS {
        let spec = MethodSpec::new("g = 1", move || {
            GFunction::unit().with_gate(Some(Gate::new(period)))
        });
        let values = PAPER_SECONDS
            .iter()
            .map(|&s| set.run_method(&spec, Strategy::Figure1, config.scale.vax_seconds(s)))
            .collect();
        table.push_row(format!("period {period}"), values);
    }
    table
}

/// Sweeps the Boltzmann schedule length `k` at equal total budget: `k = 1`
/// (Metropolis), Kirkpatrick-style geometric schedules, and \[GOLD84\]'s
/// uniform shape at `k = 25`.
pub fn schedule_length(config: &SuiteConfig) -> Table {
    let set = ArrangementSet::with_random_starts(gola_paper_set(config.seed), config.seed);
    let y1 = config.tuned.annealing6;
    let columns = PAPER_SECONDS
        .iter()
        .map(|s| format!("{s:.0} sec"))
        .collect();
    let mut table = Table::new(
        "Ablation — Boltzmann schedule length k at equal total budget, GOLA, Figure 1",
        "schedule",
        columns,
    );
    for k in SCHEDULE_LENGTHS {
        let spec = MethodSpec::new("annealing", move || {
            GFunction::annealing(Schedule::geometric(y1, 0.9, k))
        });
        let values = PAPER_SECONDS
            .iter()
            .map(|&s| set.run_method(&spec, Strategy::Figure1, config.scale.vax_seconds(s)))
            .collect();
        table.push_row(format!("geometric k={k}"), values);
    }
    // [GOLD84]: k evenly spaced temperatures in (0, τ).
    let spec = MethodSpec::new("annealing", move || {
        GFunction::annealing(Schedule::uniform(y1, 25))
    });
    let values = PAPER_SECONDS
        .iter()
        .map(|&s| set.run_method(&spec, Strategy::Figure1, config.scale.vax_seconds(s)))
        .collect();
    table.push_row("uniform k=25 [GOLD84]", values);
    table
}

/// Compares the Figure-1 strategy against \[GREE84\]'s rejectionless method
/// at equal evaluation budgets on the GOLA set (§2: the method trades time
/// for space — each step costs a full neighborhood evaluation).
pub fn rejectionless(config: &SuiteConfig) -> Table {
    let set = ArrangementSet::with_random_starts(gola_paper_set(config.seed), config.seed);
    let columns = PAPER_SECONDS
        .iter()
        .map(|s| format!("{s:.0} sec"))
        .collect();
    let mut table = Table::new(
        "Ablation — Figure 1 vs rejectionless [GREE84] at equal budgets, GOLA",
        "strategy / g",
        columns,
    );
    let y_metro = config.tuned.metropolis;
    let y_six = config.tuned.annealing6;
    let methods: Vec<(&str, Strategy, MethodSpec)> = vec![
        (
            "Figure 1 / Metropolis",
            Strategy::Figure1,
            MethodSpec::new("Metropolis", move || GFunction::metropolis(y_metro)),
        ),
        (
            "Rejectionless / Metropolis",
            Strategy::Rejectionless,
            MethodSpec::new("Metropolis", move || GFunction::metropolis(y_metro)),
        ),
        (
            "Figure 1 / Six Temp Annealing",
            Strategy::Figure1,
            MethodSpec::new("STA", move || GFunction::six_temp_annealing(y_six)),
        ),
        (
            "Rejectionless / Six Temp Annealing",
            Strategy::Rejectionless,
            MethodSpec::new("STA", move || GFunction::six_temp_annealing(y_six)),
        ),
    ];
    for (label, strategy, spec) in methods {
        let values = PAPER_SECONDS
            .iter()
            .map(|&s| set.run_method(&spec, strategy, config.scale.vax_seconds(s)))
            .collect();
        table.push_row(label, values);
    }
    table
}

/// Sweeps the Figure-1 equilibrium limit `n` for six-temperature annealing.
pub fn equilibrium_limit(config: &SuiteConfig) -> Table {
    let problems = gola_paper_set(config.seed);
    let columns = PAPER_SECONDS
        .iter()
        .map(|s| format!("{s:.0} sec"))
        .collect();
    let mut table = Table::new(
        "Ablation — Figure-1 equilibrium limit n, six-temperature annealing, GOLA",
        "n",
        columns,
    );
    let y1 = config.tuned.annealing6;
    for n in EQUILIBRIUM_LIMITS {
        let mut set = ArrangementSet::with_random_starts(problems.clone(), config.seed);
        set.equilibrium = n;
        let spec = MethodSpec::new("annealing", move || GFunction::six_temp_annealing(y1));
        let values = PAPER_SECONDS
            .iter()
            .map(|&s| set.run_method(&spec, Strategy::Figure1, config.scale.vax_seconds(s)))
            .collect();
        table.push_row(format!("n = {n}"), values);
    }
    table
}

/// Sweeps the NOLA maximum net size: for each distribution 2..=max, builds
/// 30 instances and reports the Goto reduction and the 12-second reductions
/// of six-temperature annealing and g = 1 — probing whether the paper's
/// "g = 1 uniquely beats Goto on NOLA" claim emerges at some net-size mix.
pub fn nola_net_size(config: &SuiteConfig) -> Table {
    let mut table = Table::new(
        "Ablation — NOLA net-size distribution (2..=max), 12 sec/instance",
        "max pins",
        vec![
            "start sum".into(),
            "Goto".into(),
            "STA".into(),
            "g = 1".into(),
        ],
    );
    let budget = config
        .scale
        .vax_seconds(PAPER_SECONDS[2])
        .scale_div(NOLA_EVAL_COST);
    let y_six = config.tuned.annealing6;
    for max_pins in NOLA_MAX_PINS {
        let problems: Vec<LinearArrangementProblem> = (0..30)
            .map(|i| {
                let mut rng = StdRng::seed_from_u64(derive_seed(
                    config.seed ^ (max_pins as u64) << 32,
                    i as u64,
                ));
                LinearArrangementProblem::new(random_multi_pin(15, 150, 2, max_pins, &mut rng))
            })
            .collect();
        let set = ArrangementSet::with_random_starts(problems, config.seed);
        let sta = MethodSpec::new("STA", move || GFunction::six_temp_annealing(y_six));
        let unit = MethodSpec::new("g = 1", GFunction::unit);
        table.push_row(
            format!("2..={max_pins}"),
            vec![
                set.start_density_sum(),
                set.goto_reduction(),
                set.run_method(&sta, Strategy::Figure1, budget),
                set.run_method(&unit, Strategy::Figure1, budget),
            ],
        );
    }
    table
}

/// Sweeps the GOLA instance size at the fixed 12-second budget: as instances
/// grow, a fixed evaluation budget favors the constructive Goto heuristic
/// over the Monte Carlo chains (the §4.2.5 conclusion-2 effect, "when the
/// amount of CPU time available is small, simple greedy heuristics can be
/// expected to perform as well as any of the Monte Carlo methods").
pub fn instance_size(config: &SuiteConfig) -> Table {
    let mut table = Table::new(
        "Ablation — GOLA instance size at a fixed 12-sec budget (nets = 10×elements)",
        "elements",
        vec![
            "start sum".into(),
            "Goto".into(),
            "STA".into(),
            "g = 1".into(),
        ],
    );
    let budget = config.scale.vax_seconds(PAPER_SECONDS[2]);
    let y_six = config.tuned.annealing6;
    for n in INSTANCE_SIZES {
        let problems: Vec<LinearArrangementProblem> = (0..30)
            .map(|i| {
                let mut rng =
                    StdRng::seed_from_u64(derive_seed(config.seed ^ (n as u64) << 40, i as u64));
                LinearArrangementProblem::new(random_two_pin(n, 10 * n, &mut rng))
            })
            .collect();
        let set = ArrangementSet::with_random_starts(problems, config.seed);
        let sta = MethodSpec::new("STA", move || GFunction::six_temp_annealing(y_six));
        let unit = MethodSpec::new("g = 1", GFunction::unit);
        table.push_row(
            format!("{n}"),
            vec![
                set.start_density_sum(),
                set.goto_reduction(),
                set.run_method(&sta, Strategy::Figure1, budget),
                set.run_method(&unit, Strategy::Figure1, budget),
            ],
        );
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gate_period_sweep_shape() {
        let t = gate_period(&SuiteConfig::scaled(2));
        assert_eq!(t.rows.len(), GATE_PERIODS.len());
        for (label, values) in &t.rows {
            for v in values {
                assert!(*v >= 0.0, "{label}");
            }
        }
    }

    #[test]
    fn schedule_length_sweep_shape() {
        let t = schedule_length(&SuiteConfig::scaled(2));
        assert_eq!(t.rows.len(), SCHEDULE_LENGTHS.len() + 1);
        assert!(t.rows.last().unwrap().0.contains("GOLD84"));
    }

    #[test]
    fn equilibrium_sweep_shape() {
        let t = equilibrium_limit(&SuiteConfig::scaled(2));
        assert_eq!(t.rows.len(), EQUILIBRIUM_LIMITS.len());
    }

    #[test]
    fn rejectionless_sweep_shape() {
        let t = rejectionless(&SuiteConfig::scaled(2));
        assert_eq!(t.rows.len(), 4);
        for (label, values) in &t.rows {
            for v in values {
                assert!(*v >= 0.0, "{label}");
            }
        }
    }

    #[test]
    fn nola_net_size_start_density_grows_with_pins() {
        let t = nola_net_size(&SuiteConfig::scaled(4));
        assert_eq!(t.rows.len(), NOLA_MAX_PINS.len());
        // Larger nets cross more gaps: starting density sums must increase.
        for w in t.rows.windows(2) {
            assert!(
                w[1].1[0] > w[0].1[0],
                "{} start {} !> {} start {}",
                w[1].0,
                w[1].1[0],
                w[0].0,
                w[0].1[0]
            );
        }
    }

    #[test]
    fn instance_size_sweep_shape() {
        let t = instance_size(&SuiteConfig::scaled(4));
        assert_eq!(t.rows.len(), INSTANCE_SIZES.len());
        // Bigger instances have bigger starting sums and reductions stay
        // nonnegative everywhere.
        for w in t.rows.windows(2) {
            assert!(w[1].1[0] > w[0].1[0]);
        }
        for (label, v) in &t.rows {
            for x in &v[1..] {
                assert!(*x >= 0.0, "{label}");
            }
        }
    }
}
