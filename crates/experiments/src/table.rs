//! Plain-text table rendering in the paper's style, plus CSV export.

use std::fmt;

/// A rendered experiment table: row labels (methods), column labels
/// (budgets or strategies), and numeric cells.
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    /// Table title (e.g. "Table 4.1 — 30 instances, 15 elements, 150 nets").
    pub title: String,
    /// Header of the label column.
    pub row_header: String,
    /// Column labels.
    pub columns: Vec<String>,
    /// One row per method: label plus one value per column.
    pub rows: Vec<(String, Vec<f64>)>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(
        title: impl Into<String>,
        row_header: impl Into<String>,
        columns: Vec<String>,
    ) -> Self {
        Table {
            title: title.into(),
            row_header: row_header.into(),
            columns,
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the number of values differs from the number of columns.
    pub fn push_row(&mut self, label: impl Into<String>, values: Vec<f64>) {
        assert_eq!(
            values.len(),
            self.columns.len(),
            "row has {} values for {} columns",
            values.len(),
            self.columns.len()
        );
        self.rows.push((label.into(), values));
    }

    /// The value at (`row_label`, `column_label`), if present.
    pub fn value(&self, row_label: &str, column_label: &str) -> Option<f64> {
        let col = self.columns.iter().position(|c| c == column_label)?;
        let (_, values) = self.rows.iter().find(|(l, _)| l == row_label)?;
        values.get(col).copied()
    }

    /// The row with the largest value in `column_label`.
    pub fn best_in_column(&self, column_label: &str) -> Option<(&str, f64)> {
        let col = self.columns.iter().position(|c| c == column_label)?;
        self.rows
            .iter()
            .map(|(l, v)| (l.as_str(), v[col]))
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite cells"))
    }

    /// CSV rendering (header row, then one line per method).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.row_header);
        for c in &self.columns {
            out.push(',');
            out.push_str(c);
        }
        out.push('\n');
        for (label, values) in &self.rows {
            out.push_str(&format!("\"{label}\""));
            for v in values {
                out.push_str(&format!(",{v}"));
            }
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let label_width = self
            .rows
            .iter()
            .map(|(l, _)| l.len())
            .chain([self.row_header.len()])
            .max()
            .unwrap_or(0);
        let col_width = self
            .columns
            .iter()
            .map(String::len)
            .max()
            .unwrap_or(0)
            .max(8);

        writeln!(f, "{}", self.title)?;
        write!(f, "{:<label_width$}", self.row_header)?;
        for c in &self.columns {
            write!(f, "  {c:>col_width$}")?;
        }
        writeln!(f)?;
        writeln!(
            f,
            "{}",
            "-".repeat(label_width + (col_width + 2) * self.columns.len())
        )?;
        for (label, values) in &self.rows {
            write!(f, "{label:<label_width$}")?;
            for v in values {
                if v.fract() == 0.0 && v.abs() < 1e15 {
                    write!(f, "  {:>col_width$}", *v as i64)?;
                } else {
                    write!(f, "  {v:>col_width$.3}")?;
                }
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new(
            "Table X",
            "g function",
            vec!["6 sec".into(), "9 sec".into()],
        );
        t.push_row("g = 1", vec![598.0, 605.0]);
        t.push_row("Metropolis", vec![533.0, 558.0]);
        t
    }

    #[test]
    fn lookup_by_labels() {
        let t = sample();
        assert_eq!(t.value("g = 1", "9 sec"), Some(605.0));
        assert_eq!(t.value("nope", "9 sec"), None);
        assert_eq!(t.value("g = 1", "15 sec"), None);
    }

    #[test]
    fn best_in_column() {
        let t = sample();
        assert_eq!(t.best_in_column("6 sec"), Some(("g = 1", 598.0)));
    }

    #[test]
    fn display_contains_everything() {
        let s = sample().to_string();
        assert!(s.contains("Table X"));
        assert!(s.contains("g = 1"));
        assert!(s.contains("598"));
        assert!(s.contains("6 sec"));
    }

    #[test]
    fn csv_round_shape() {
        let csv = sample().to_csv();
        let lines: Vec<_> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0], "g function,6 sec,9 sec");
        assert!(lines[1].starts_with("\"g = 1\","));
    }

    #[test]
    #[should_panic(expected = "2 columns")]
    fn wrong_arity_panics() {
        let mut t = sample();
        t.push_row("bad", vec![1.0]);
    }
}
