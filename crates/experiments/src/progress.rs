//! Live progress reporting for `repro --progress`.
//!
//! A [`Progress`] is notified once per completed cell and redraws a single
//! stderr status line: cells done (against the expected total when it is
//! known), percent, elapsed time, a naive ETA, and running retry/failure
//! counts. Stderr keeps stdout clean for the tables themselves, and the
//! line is rewritten in place with `\r` so a long suite shows a ticker,
//! not a scroll.

use std::io::Write;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::ops::OpsBoard;

/// A thread-safe cell-completion ticker writing to stderr.
#[derive(Debug)]
pub struct Progress {
    state: Mutex<State>,
    total: Option<usize>,
    /// Live ops board: under `--isolation process` the ticker appends the
    /// supervisor's worker-liveness fragment (same state `/progress`
    /// serves).
    ops: Option<Arc<OpsBoard>>,
}

#[derive(Debug)]
struct State {
    started: Instant,
    done: usize,
    retried: usize,
    failed: usize,
    /// Length of the last line drawn, for clean `\r` overwrites.
    last_len: usize,
}

impl Progress {
    /// A ticker expecting `total` cells (`None` when the suite mix makes
    /// the count unknown — the line then shows a bare counter).
    pub fn new(total: Option<usize>) -> Self {
        Progress {
            state: Mutex::new(State {
                started: Instant::now(),
                done: 0,
                retried: 0,
                failed: 0,
                last_len: 0,
            }),
            total: total.filter(|&t| t > 0),
            ops: None,
        }
    }

    /// Attaches a live ops board (builder style): when a supervisor is
    /// feeding it, the ticker shows worker liveness (live/respawning,
    /// oldest heartbeat age). `None` clears it.
    pub fn with_ops(mut self, ops: Option<Arc<OpsBoard>>) -> Self {
        self.ops = ops;
        self
    }

    /// Notes one completed cell and redraws the status line. `ok` is
    /// whether the cell completed cleanly; `attempts` is how many tries it
    /// took (> 1 counts as a retry).
    pub fn cell_done(&self, ok: bool, attempts: u32) {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        state.done += 1;
        if attempts > 1 {
            state.retried += 1;
        }
        if !ok {
            state.failed += 1;
        }
        let line = self.render(&state);
        draw(&mut state, &line);
    }

    fn render(&self, state: &State) -> String {
        let elapsed = state.started.elapsed().as_secs_f64();
        let mut line = match self.total {
            Some(total) => {
                let pct = 100.0 * state.done as f64 / total as f64;
                let mut l = format!("cells {}/{total} ({pct:.0}%)", state.done);
                if state.done > 0 && state.done < total {
                    let eta = elapsed / state.done as f64 * (total - state.done) as f64;
                    l.push_str(&format!(", eta {}", fmt_secs(eta)));
                }
                l
            }
            None => format!("cells {}", state.done),
        };
        line.push_str(&format!(", elapsed {}", fmt_secs(elapsed)));
        if state.retried > 0 {
            line.push_str(&format!(", {} retried", state.retried));
        }
        if state.failed > 0 {
            line.push_str(&format!(", {} FAILED", state.failed));
        }
        if let Some(fragment) = self.ops.as_ref().and_then(|b| b.ticker_fragment()) {
            line.push_str(&format!(", {fragment}"));
        }
        line
    }

    /// Ends the ticker line with a newline so the summary that follows
    /// starts clean. Harmless to call when nothing was drawn.
    pub fn finish(&self) {
        let state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        if state.last_len > 0 {
            eprintln!();
        }
    }
}

fn draw(state: &mut State, line: &str) {
    let mut err = std::io::stderr().lock();
    // Pad with spaces to erase any longer previous line.
    let pad = state.last_len.saturating_sub(line.len());
    let _ = write!(err, "\r{line}{}", " ".repeat(pad));
    let _ = err.flush();
    state.last_len = line.len();
}

fn fmt_secs(secs: f64) -> String {
    if secs >= 60.0 {
        format!("{}m{:02}s", (secs / 60.0) as u64, (secs % 60.0) as u64)
    } else {
        format!("{secs:.0}s")
    }
}

/// The number of table cells the given experiment selection will record,
/// when it is statically known. Experiments whose cell count depends on
/// runtime tuning contribute `None`, which makes the whole total unknown
/// (the ticker then shows a bare counter).
pub fn expected_cells(experiments: &[String], roster_len: usize) -> Option<usize> {
    let mut total = 0usize;
    for exp in experiments {
        total += match exp.as_str() {
            // 20 g functions + the [COHO83a] baseline, 3 budget columns.
            "table4.1" => 21 * 3,
            "table4.2a" | "table4.2c" | "table4.2d" => roster_len * 3,
            "table4.2b" => roster_len * 2,
            // 3 schedule rows, 3 budget columns (the tuning-evals column is
            // computed, not run).
            "adaptive" => 3 * 3,
            // Tuning sweeps, extensions and diagnostics record no cells
            // (or a data-dependent number of them).
            _ => return None,
        };
    }
    Some(total)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_counts_eta_and_flags() {
        let p = Progress::new(Some(4));
        {
            let mut s = p.state.lock().unwrap();
            s.done = 2;
            s.retried = 1;
            s.failed = 1;
            let line = p.render(&s);
            assert!(line.contains("cells 2/4 (50%)"), "{line}");
            assert!(line.contains("eta"), "{line}");
            assert!(line.contains("1 retried"), "{line}");
            assert!(line.contains("1 FAILED"), "{line}");
        }
        p.cell_done(true, 1);
        p.finish();
    }

    #[test]
    fn unknown_total_is_a_bare_counter() {
        let p = Progress::new(None);
        let mut s = p.state.lock().unwrap();
        s.done = 7;
        let line = p.render(&s);
        assert!(line.starts_with("cells 7,"), "{line}");
        assert!(!line.contains('%'));
    }

    #[test]
    fn zero_total_behaves_like_unknown() {
        let p = Progress::new(Some(0));
        assert!(p.total.is_none());
    }

    #[test]
    fn expected_cells_counts_the_tables() {
        let exps = |names: &[&str]| names.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        assert_eq!(expected_cells(&exps(&["table4.1"]), 13), Some(63));
        assert_eq!(expected_cells(&exps(&["table4.2b"]), 13), Some(26));
        assert_eq!(expected_cells(&exps(&["adaptive"]), 13), Some(9));
        assert_eq!(
            expected_cells(&exps(&["table4.1", "table4.2a"]), 13),
            Some(63 + 39)
        );
        assert_eq!(expected_cells(&exps(&["tuning"]), 13), None);
        assert_eq!(expected_cells(&exps(&["table4.1", "tuning"]), 13), None);
    }

    #[test]
    fn ticker_appends_worker_liveness_from_the_ops_board() {
        let board = crate::ops::OpsBoard::new(Some(4));
        board.worker_spawned(0, false);
        let p = Progress::new(Some(4)).with_ops(Some(board));
        let s = p.state.lock().unwrap();
        let line = p.render(&s);
        assert!(line.contains("1 worker(s) live"), "{line}");
        assert!(line.contains("oldest hb"), "{line}");
    }

    #[test]
    fn fmt_secs_switches_to_minutes() {
        assert_eq!(fmt_secs(5.4), "5s");
        assert_eq!(fmt_secs(125.0), "2m05s");
    }
}
