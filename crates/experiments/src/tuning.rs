//! The §4.2.1 temperature-tuning experiment: for each g class that uses
//! temperatures, sweep a candidate grid on the 30-instance GOLA training set
//! under the Figure-1 strategy, and keep the best `Y₁`.
//!
//! The paper allots 5 seconds per instance, `⌈5/k⌉` per temperature.

use anneal_core::{GFunction, Tuner};

use crate::config::SuiteConfig;
use crate::instances::gola_paper_set;
use crate::roster::TunedY;
use crate::table::Table;

/// Seconds per instance in the paper's tuning runs.
pub const TUNING_SECONDS: f64 = 5.0;

/// Multiplicative grid swept around each class's default `Y₁`.
pub const GRID: [f64; 7] = [0.125, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0];

/// Outcome of the tuning sweep: the winning temperatures and the per-class
/// sweep table.
#[derive(Debug, Clone)]
pub struct TuningOutcome {
    /// Best `Y₁` per class, ready for [`full_roster`](crate::full_roster).
    pub tuned: TunedY,
    /// Rows: g classes; columns: total reduction per grid multiplier.
    pub table: Table,
    /// Classes whose winner sat on the edge of the grid (×[`GRID`]`[0]` or
    /// ×[`GRID`]`[last]`): the sweep did not bracket their optimum, so the
    /// tuned `Y₁` should be treated as a lower bound on what a wider sweep
    /// would find.
    pub boundary: Vec<String>,
}

/// Runs the tuning sweep.
pub fn run(config: &SuiteConfig) -> TuningOutcome {
    let problems = gola_paper_set(config.seed);
    let budget = config.scale.vax_seconds(TUNING_SECONDS);
    let tuner = Tuner::new(&problems, budget, config.seed);

    let base = config.tuned;
    let mut tuned = base;
    let mut table = Table::new(
        "Tuning (§4.2.1) — total reduction per Y₁ multiplier, GOLA training set",
        "g function",
        GRID.iter().map(|m| format!("×{m}")).collect(),
    );

    // Each entry: (name, base Y₁, factory, setter writing the winner back).
    type Setter = fn(&mut TunedY, f64);
    type Factory = fn(f64) -> GFunction;
    let classes: Vec<(&str, f64, Factory, Setter)> = vec![
        (
            "Metropolis",
            base.metropolis,
            GFunction::metropolis,
            |t, y| t.metropolis = y,
        ),
        (
            "Six Temperature Annealing",
            base.annealing6,
            GFunction::six_temp_annealing,
            |t, y| t.annealing6 = y,
        ),
        (
            "Linear",
            base.poly_current[0],
            |y| GFunction::poly_current(1, y),
            |t, y| t.poly_current[0] = y,
        ),
        (
            "Quadratic",
            base.poly_current[1],
            |y| GFunction::poly_current(2, y),
            |t, y| t.poly_current[1] = y,
        ),
        (
            "Cubic",
            base.poly_current[2],
            |y| GFunction::poly_current(3, y),
            |t, y| t.poly_current[2] = y,
        ),
        (
            "Exponential",
            base.exp_current,
            GFunction::exp_current,
            |t, y| t.exp_current = y,
        ),
        (
            "6 Linear",
            base.poly_current6[0],
            |y| GFunction::poly_current_six(1, y),
            |t, y| t.poly_current6[0] = y,
        ),
        (
            "6 Quadratic",
            base.poly_current6[1],
            |y| GFunction::poly_current_six(2, y),
            |t, y| t.poly_current6[1] = y,
        ),
        (
            "6 Cubic",
            base.poly_current6[2],
            |y| GFunction::poly_current_six(3, y),
            |t, y| t.poly_current6[2] = y,
        ),
        (
            "6 Exponential",
            base.exp_current6,
            GFunction::exp_current_six,
            |t, y| t.exp_current6 = y,
        ),
        (
            "Linear Diff",
            base.poly_diff[0],
            |y| GFunction::poly_difference(1, y),
            |t, y| t.poly_diff[0] = y,
        ),
        (
            "Quadratic Diff",
            base.poly_diff[1],
            |y| GFunction::poly_difference(2, y),
            |t, y| t.poly_diff[1] = y,
        ),
        (
            "Cubic Diff",
            base.poly_diff[2],
            |y| GFunction::poly_difference(3, y),
            |t, y| t.poly_diff[2] = y,
        ),
        (
            "Exponential Diff",
            base.exp_diff,
            GFunction::exp_difference,
            |t, y| t.exp_diff = y,
        ),
        (
            "6 Linear Diff",
            base.poly_diff6[0],
            |y| GFunction::poly_difference_six(1, y),
            |t, y| t.poly_diff6[0] = y,
        ),
        (
            "6 Quadratic Diff",
            base.poly_diff6[1],
            |y| GFunction::poly_difference_six(2, y),
            |t, y| t.poly_diff6[1] = y,
        ),
        (
            "6 Cubic Diff",
            base.poly_diff6[2],
            |y| GFunction::poly_difference_six(3, y),
            |t, y| t.poly_diff6[2] = y,
        ),
        (
            "6 Exponential Diff",
            base.exp_diff6,
            GFunction::exp_difference_six,
            |t, y| t.exp_diff6 = y,
        ),
    ];

    let mut boundary = Vec::new();
    for (name, base_y, factory, setter) in classes {
        let candidates: Vec<f64> = GRID.iter().map(|m| base_y * m).collect();
        let report = tuner.tune(factory, &candidates);
        table.push_row(
            name,
            report.outcomes.iter().map(|o| o.total_reduction).collect(),
        );
        if report.best_on_boundary() {
            boundary.push(name.to_string());
        }
        setter(&mut tuned, report.best.value);
    }

    TuningOutcome {
        tuned,
        table,
        boundary,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweeps_all_18_temperature_classes() {
        // g = 1 and two-level need no tuning: 20 - 2 = 18 rows.
        let out = run(&SuiteConfig::scaled(2));
        assert_eq!(out.table.rows.len(), 18);
        assert_eq!(out.table.columns.len(), GRID.len());
        // Winners are grid members.
        let grid_of = |base: f64| GRID.map(|m| base * m);
        assert!(grid_of(SuiteConfig::paper().tuned.metropolis)
            .iter()
            .any(|&c| (c - out.tuned.metropolis).abs() < 1e-12));
    }

    #[test]
    fn boundary_list_matches_the_rows_edge_winners() {
        // The boundary warnings must agree with the table: a class is
        // flagged exactly when its row's maximum sits in the first or last
        // grid column (ties resolve to the earlier column, as in the
        // tuner).
        let out = run(&SuiteConfig::scaled(4));
        for (name, row) in &out.table.rows {
            let mut best = 0usize;
            for (i, &v) in row.iter().enumerate() {
                if v > row[best] {
                    best = i;
                }
            }
            let on_edge = best == 0 || best == GRID.len() - 1;
            assert_eq!(
                out.boundary.contains(name),
                on_edge,
                "{name}: winner in column {best}, boundary list {:?}",
                out.boundary
            );
        }
    }
}
