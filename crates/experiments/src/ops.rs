//! Live ops plane for `repro --serve ADDR`: a dependency-free HTTP/1.1
//! endpoint exposing the run's metrics and health while it executes.
//!
//! Two pieces:
//!
//! * [`OpsBoard`] — shared run state fed by the telemetry log (cell
//!   completions), the supervisor (worker heartbeats, respawns, breaker
//!   trips) and the WAL writer (lost records). It also mirrors the hot
//!   facts into the global [`anneal_core::metrics`] registry as
//!   labeled gauges/counters so `/metrics` and `--metrics PATH` see them.
//! * [`OpsServer`] — a hand-rolled `std::net::TcpListener` server (the
//!   workspace is offline/vendored-only, so no hyper/axum) serving:
//!   - `GET /metrics` — Prometheus text exposition of the global registry;
//!   - `GET /healthz` — `200 ok` while the suite is healthy, `503` with
//!     the reasons once it is degraded (cell failure, lost telemetry,
//!     circuit breaker open);
//!   - `GET /progress` — JSON: per-table cell states, retries, supervisor
//!     worker liveness (heartbeat ages), and an ETA from the same
//!     estimator the `--progress` ticker uses.
//!
//! Under `repro serve` the same server additionally routes the job API
//! (`POST /jobs`, `GET /jobs`, `GET /jobs/:id`, `DELETE /jobs/:id`) to a
//! [`crate::jobs::JobServer`] — see [`crate::jobs`] for the
//! queueing, journaling and determinism contracts. Without a job server
//! attached ([`OpsServer::start`]) those paths answer `404` with a JSON
//! error body.
//!
//! Both are created only when `--serve` (or, for the board, `--progress`
//! under process isolation) is on: with the flags absent nothing binds,
//! nothing is shared, and results stay bitwise-identical. Updates happen
//! at cell boundaries and supervisor wait-loop ticks — never inside chain
//! hot loops.

use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

use anneal_core::metrics;

use crate::jobs::JobServer;
use crate::supervisor::signals;

/// Largest request body `POST /jobs` accepts (a generous bound for an
/// inline netlist; anything larger is a `413`).
const MAX_BODY: usize = 1 << 20;

/// A supervised worker slot's lifecycle state, as shown by `/progress`
/// and the `--progress` ticker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkerState {
    /// A child process is running and heartbeating.
    Live,
    /// The previous child died abnormally; a replacement was spawned.
    Respawning,
    /// The slot's last child exited; nothing is running in it.
    Idle,
}

impl WorkerState {
    fn as_str(self) -> &'static str {
        match self {
            WorkerState::Live => "live",
            WorkerState::Respawning => "respawning",
            WorkerState::Idle => "idle",
        }
    }
}

#[derive(Debug, Clone)]
struct WorkerSlot {
    state: WorkerState,
    /// Heartbeat age as last reported by the supervisor wait loop, plus
    /// when it was reported — scrape-time age adds the elapsed gap.
    beat_age: Duration,
    reported: Instant,
}

#[derive(Debug, Default)]
struct TableState {
    done: usize,
    failed: usize,
    retried: usize,
}

#[derive(Debug)]
struct BoardState {
    tables: BTreeMap<String, TableState>,
    workers: BTreeMap<usize, WorkerSlot>,
    /// Tables whose circuit breaker has tripped.
    breakers: Vec<String>,
    respawns: u64,
    /// Telemetry records lost to write errors.
    lost: u64,
    done: usize,
    failed: usize,
    retried: usize,
}

/// Shared live-run state behind `/healthz`, `/progress` and the worker
/// fragment of the `--progress` ticker. Cheap to update (one mutex, cell
/// boundaries and 5 ms supervisor ticks only) and safe to share across
/// the runner's worker threads.
pub struct OpsBoard {
    started: Instant,
    expected: Option<usize>,
    degraded: AtomicBool,
    state: Mutex<BoardState>,
}

impl std::fmt::Debug for OpsBoard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OpsBoard")
            .field("expected", &self.expected)
            .field("degraded", &self.degraded.load(Ordering::Relaxed))
            .finish()
    }
}

impl OpsBoard {
    /// A fresh board expecting `expected` cells (`None` when the suite
    /// mix makes the total unknown; `/progress` then omits the ETA).
    pub fn new(expected: Option<usize>) -> Arc<Self> {
        Arc::new(OpsBoard {
            started: Instant::now(),
            expected: expected.filter(|&t| t > 0),
            degraded: AtomicBool::new(false),
            state: Mutex::new(BoardState {
                tables: BTreeMap::new(),
                workers: BTreeMap::new(),
                breakers: Vec::new(),
                respawns: 0,
                lost: 0,
                done: 0,
                failed: 0,
                retried: 0,
            }),
        })
    }

    fn lock(&self) -> MutexGuard<'_, BoardState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Notes one completed cell (both execution paths land here via
    /// [`TelemetryLog::record`](crate::TelemetryLog::record)).
    pub fn cell_done(&self, table: &str, ok: bool, attempts: u32) {
        let mut state = self.lock();
        {
            let t = state.tables.entry(table.to_string()).or_default();
            t.done += 1;
            if attempts > 1 {
                t.retried += 1;
            }
            if !ok {
                t.failed += 1;
            }
        }
        state.done += 1;
        if attempts > 1 {
            state.retried += 1;
        }
        if !ok {
            state.failed += 1;
            self.degraded.store(true, Ordering::Relaxed);
        }
        let done = state.done as f64;
        drop(state);
        metrics::global().gauge("suite.cells_done").set(done);
        if !ok {
            metrics::global().gauge("suite.degraded").set(1.0);
        }
    }

    /// Notes one telemetry record lost to a WAL write error — the suite
    /// will exit degraded, so `/healthz` flips immediately.
    pub fn note_lost(&self) {
        self.lock().lost += 1;
        self.degraded.store(true, Ordering::Relaxed);
        metrics::global().gauge("suite.degraded").set(1.0);
    }

    /// Notes a worker child spawned into `slot` (`respawn` when it
    /// replaces an abnormal death).
    pub fn worker_spawned(&self, slot: usize, respawn: bool) {
        let mut state = self.lock();
        state.workers.insert(
            slot,
            WorkerSlot {
                state: if respawn {
                    WorkerState::Respawning
                } else {
                    WorkerState::Live
                },
                beat_age: Duration::ZERO,
                reported: Instant::now(),
            },
        );
        if respawn {
            state.respawns += 1;
        }
        let (live, respawns) = (count_live(&state), state.respawns);
        drop(state);
        metrics::global().gauge("workers.live").set(live as f64);
        if respawn {
            metrics::global().counter("supervisor.respawns").inc();
            metrics::global()
                .gauge("supervisor.respawns_total")
                .set(respawns as f64);
        }
    }

    /// Notes the worker in `slot`'s current heartbeat age, from the
    /// supervisor's wait loop. A beating worker is live, whatever it was.
    pub fn worker_beat(&self, slot: usize, beat_age: Duration) {
        let mut state = self.lock();
        if let Some(w) = state.workers.get_mut(&slot) {
            w.state = WorkerState::Live;
            w.beat_age = beat_age;
            w.reported = Instant::now();
        }
        drop(state);
        metrics::global()
            .gauge_with("worker_heartbeat_age_ms", &[("slot", &slot.to_string())])
            .set(beat_age.as_secs_f64() * 1e3);
    }

    /// Notes the worker in `slot` exited (cleanly or not).
    pub fn worker_exited(&self, slot: usize) {
        let mut state = self.lock();
        if let Some(w) = state.workers.get_mut(&slot) {
            w.state = WorkerState::Idle;
            w.reported = Instant::now();
        }
        let live = count_live(&state);
        drop(state);
        metrics::global().gauge("workers.live").set(live as f64);
    }

    /// Notes `table`'s circuit breaker tripping: the suite is degraded
    /// from here on.
    pub fn breaker_tripped(&self, table: &str) {
        let mut state = self.lock();
        if !state.breakers.iter().any(|t| t == table) {
            state.breakers.push(table.to_string());
        }
        drop(state);
        self.degraded.store(true, Ordering::Relaxed);
        metrics::global().gauge("suite.degraded").set(1.0);
        metrics::global()
            .gauge_with("breaker_open", &[("table", table)])
            .set(1.0);
    }

    /// Whether the suite has degraded (cell failure, lost record, or open
    /// breaker) — the `/healthz` predicate.
    pub fn is_degraded(&self) -> bool {
        self.degraded.load(Ordering::Relaxed)
    }

    /// The `/healthz` body: `ok` or the degradation reasons.
    fn health_body(&self) -> String {
        if !self.is_degraded() {
            return "ok\n".to_string();
        }
        let state = self.lock();
        let mut reasons = Vec::new();
        if state.failed > 0 {
            reasons.push(format!("{} cell(s) failed", state.failed));
        }
        if state.lost > 0 {
            reasons.push(format!("{} telemetry record(s) lost", state.lost));
        }
        for table in &state.breakers {
            reasons.push(format!("circuit breaker open for {table}"));
        }
        if reasons.is_empty() {
            reasons.push("degraded".to_string());
        }
        format!("degraded: {}\n", reasons.join("; "))
    }

    /// The `/progress` JSON document.
    pub fn progress_json(&self) -> String {
        let elapsed = self.started.elapsed().as_secs_f64();
        let state = self.lock();
        let eta = match self.expected {
            Some(total) if state.done > 0 && state.done < total => {
                Some(elapsed / state.done as f64 * (total - state.done) as f64)
            }
            _ => None,
        };
        let mut out = format!(
            "{{\"elapsed_s\":{elapsed:.3},\"expected\":{},\"done\":{},\"failed\":{},\
             \"retried\":{},\"eta_s\":{},\"degraded\":{},\"draining\":{},\"lost\":{},\
             \"respawns\":{},\"tables\":{{",
            match self.expected {
                Some(t) => t.to_string(),
                None => "null".to_string(),
            },
            state.done,
            state.failed,
            state.retried,
            match eta {
                Some(e) => format!("{e:.3}"),
                None => "null".to_string(),
            },
            self.is_degraded(),
            signals::draining(),
            state.lost,
            state.respawns,
        );
        for (i, (table, t)) in state.tables.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\"{}\":{{\"done\":{},\"failed\":{},\"retried\":{}}}",
                escape_json(table),
                t.done,
                t.failed,
                t.retried
            ));
        }
        out.push_str("},\"workers\":[");
        for (i, (slot, w)) in state.workers.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            // A live worker's age keeps growing between supervisor ticks.
            let age = match w.state {
                WorkerState::Idle => w.beat_age,
                _ => w.beat_age + w.reported.elapsed(),
            };
            out.push_str(&format!(
                "{{\"slot\":{slot},\"state\":\"{}\",\"heartbeat_age_ms\":{:.0}}}",
                w.state.as_str(),
                age.as_secs_f64() * 1e3
            ));
        }
        out.push_str("],\"breakers\":[");
        for (i, table) in state.breakers.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\"", escape_json(table)));
        }
        out.push_str("]}");
        out
    }

    /// The worker-liveness fragment for the `--progress` ticker, e.g.
    /// `2 workers live, oldest hb 40ms` — `None` until a worker has been
    /// seen (in-process runs never show it).
    pub fn ticker_fragment(&self) -> Option<String> {
        let state = self.lock();
        if state.workers.is_empty() {
            return None;
        }
        let live = count_live(&state);
        let respawning = state
            .workers
            .values()
            .filter(|w| w.state == WorkerState::Respawning)
            .count();
        let oldest = state
            .workers
            .values()
            .filter(|w| w.state != WorkerState::Idle)
            .map(|w| w.beat_age + w.reported.elapsed())
            .max();
        let mut s = format!("{live} worker(s) live");
        if respawning > 0 {
            s.push_str(&format!(", {respawning} respawning"));
        }
        if signals::draining() {
            s.push_str(", draining");
        }
        if let Some(age) = oldest {
            s.push_str(&format!(", oldest hb {:.0}ms", age.as_secs_f64() * 1e3));
        }
        Some(s)
    }
}

fn count_live(state: &BoardState) -> usize {
    state
        .workers
        .values()
        .filter(|w| w.state != WorkerState::Idle)
        .count()
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// The `--serve` HTTP server: a background accept loop over a
/// non-blocking [`TcpListener`], shut down when the handle drops (end of
/// the run). One request per connection (`Connection: close`), which is
/// all a scraper needs.
pub struct OpsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for OpsServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OpsServer")
            .field("addr", &self.addr)
            .finish()
    }
}

impl OpsServer {
    /// Binds `addr` (e.g. `127.0.0.1:9090`; port 0 picks a free port) and
    /// starts serving `board` in a background thread. The job API is off;
    /// `/jobs` paths answer `404`.
    pub fn start(addr: &str, board: Arc<OpsBoard>) -> Result<OpsServer, String> {
        Self::start_with_jobs(addr, board, None)
    }

    /// [`start`](OpsServer::start), plus the job API routed to `jobs`
    /// (the `repro serve` daemon mode).
    pub fn start_with_jobs(
        addr: &str,
        board: Arc<OpsBoard>,
        jobs: Option<Arc<JobServer>>,
    ) -> Result<OpsServer, String> {
        let listener =
            TcpListener::bind(addr).map_err(|e| format!("--serve: cannot bind {addr}: {e}"))?;
        let local = listener
            .local_addr()
            .map_err(|e| format!("--serve: cannot read bound address: {e}"))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| format!("--serve: cannot set non-blocking: {e}"))?;
        let stop = Arc::new(AtomicBool::new(false));
        let thread = {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    match listener.accept() {
                        Ok((stream, _)) => handle(stream, &board, jobs.as_deref()),
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            std::thread::sleep(Duration::from_millis(20));
                        }
                        Err(_) => std::thread::sleep(Duration::from_millis(20)),
                    }
                }
            })
        };
        Ok(OpsServer {
            addr: local,
            stop,
            thread: Some(thread),
        })
    }

    /// The actually-bound address (resolves `:0` to the chosen port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }
}

impl Drop for OpsServer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.thread.take() {
            t.join().ok();
        }
    }
}

/// The HTTP reason phrase for the status codes the ops plane emits.
fn status_line(status: u16) -> String {
    let reason = match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        503 => "Service Unavailable",
        _ => "Unknown",
    };
    format!("{status} {reason}")
}

/// Reads one request off `stream`: request line, headers, and (for the
/// job API) up to `Content-Length` bytes of body, bounded by [`MAX_BODY`].
/// Returns `(method, path, body)`; `Err(413)` when the declared body is
/// oversized, `Err(400)` on an unreadable request.
fn read_request(stream: &mut TcpStream) -> Result<(String, String, String), u16> {
    let mut buf = Vec::with_capacity(512);
    let mut chunk = [0u8; 512];
    let header_end = loop {
        if let Some(pos) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
            break pos + 4;
        }
        if buf.len() > 16 * 1024 {
            return Err(400);
        }
        match stream.read(&mut chunk) {
            Ok(0) => return Err(400),
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(_) => return Err(400),
        }
    };
    let head = String::from_utf8_lossy(&buf[..header_end]).into_owned();
    let mut parts = head.split_whitespace();
    let method = parts.next().unwrap_or("").to_string();
    let path = parts.next().unwrap_or("").to_string();
    let content_length = head
        .lines()
        .find_map(|line| {
            let (name, value) = line.split_once(':')?;
            name.eq_ignore_ascii_case("content-length")
                .then(|| value.trim().parse::<usize>().ok())?
        })
        .unwrap_or(0);
    if content_length > MAX_BODY {
        return Err(413);
    }
    let mut body = buf[header_end..].to_vec();
    while body.len() < content_length {
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => body.extend_from_slice(&chunk[..n]),
            Err(_) => return Err(400),
        }
    }
    body.truncate(content_length);
    Ok((method, path, String::from_utf8_lossy(&body).into_owned()))
}

/// Serves one request on `stream`. Any parse or I/O problem just drops
/// the connection — the ops plane must never take down the run.
fn handle(stream: TcpStream, board: &OpsBoard, jobs: Option<&JobServer>) {
    let mut stream = stream;
    stream.set_nonblocking(false).ok();
    stream
        .set_read_timeout(Some(Duration::from_millis(500)))
        .ok();
    let (method, path, request_body) = match read_request(&mut stream) {
        Ok(parsed) => parsed,
        Err(status) => {
            let body = if status == 413 {
                "{\"error\":\"request body too large\"}"
            } else {
                "{\"error\":\"bad request\"}"
            };
            respond(
                &mut stream,
                &status_line(status),
                "application/json; charset=utf-8",
                body,
            );
            return;
        }
    };
    const JSON: &str = "application/json; charset=utf-8";
    const TEXT: &str = "text/plain; charset=utf-8";
    let job_id = path.strip_prefix("/jobs/");
    let (list_path, query) = path.split_once('?').unwrap_or((path.as_str(), ""));
    let (status, content_type, body) = match (method.as_str(), path.as_str()) {
        ("GET", "/metrics") => (
            "200 OK".to_string(),
            "text/plain; version=0.0.4; charset=utf-8",
            metrics::global().render_prometheus(),
        ),
        ("GET", "/healthz") => {
            let body = board.health_body();
            let status = if board.is_degraded() {
                "503 Service Unavailable"
            } else {
                "200 OK"
            };
            (status.to_string(), TEXT, body)
        }
        ("GET", "/progress") => ("200 OK".to_string(), JSON, board.progress_json()),
        // The job API: delegate verb by verb, JSON all the way down.
        _ if list_path == "/jobs" || job_id.is_some() => match jobs {
            None => (
                status_line(404),
                JSON,
                "{\"error\":\"job API not enabled; run `repro serve`\"}".to_string(),
            ),
            Some(jobs) => {
                let (status, body) = match (method.as_str(), job_id) {
                    ("POST", None) if query.is_empty() => jobs.submit(&request_body),
                    ("GET", None) => jobs.list(query),
                    ("GET", Some(id)) => jobs.get(id),
                    ("DELETE", Some(id)) => jobs.cancel(id),
                    _ => (405, "{\"error\":\"method not allowed\"}".to_string()),
                };
                (status_line(status), JSON, body)
            }
        },
        ("GET", _) => (status_line(404), TEXT, "not found\n".into()),
        _ => (status_line(405), TEXT, "method not allowed\n".into()),
    };
    respond(&mut stream, &status, content_type, &body);
}

fn respond(stream: &mut TcpStream, status: &str, content_type: &str, body: &str) {
    let response = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(response.as_bytes()).ok();
    stream.flush().ok();
}

#[cfg(test)]
mod tests {
    use super::*;

    fn get(addr: SocketAddr, path: &str) -> (String, String) {
        request(addr, "GET", path, None)
    }

    fn request(addr: SocketAddr, method: &str, path: &str, body: Option<&str>) -> (String, String) {
        let mut stream = TcpStream::connect(addr).expect("connect");
        match body {
            Some(body) => write!(
                stream,
                "{method} {path} HTTP/1.1\r\nHost: x\r\nContent-Type: application/json\r\n\
                 Content-Length: {}\r\n\r\n{body}",
                body.len()
            )
            .unwrap(),
            None => write!(stream, "{method} {path} HTTP/1.1\r\nHost: x\r\n\r\n").unwrap(),
        }
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("read");
        let (head, body) = response.split_once("\r\n\r\n").expect("header split");
        let status = head.lines().next().unwrap_or("").to_string();
        (status, body.to_string())
    }

    #[test]
    fn board_tracks_cells_workers_and_degradation() {
        signals::reset_for_test();
        let board = OpsBoard::new(Some(4));
        assert!(!board.is_degraded());
        board.cell_done("table4.1", true, 1);
        board.cell_done("table4.1", true, 3);
        assert!(!board.is_degraded());
        board.worker_spawned(0, false);
        board.worker_beat(0, Duration::from_millis(40));
        let json = board.progress_json();
        assert!(json.contains("\"done\":2"), "{json}");
        assert!(json.contains("\"retried\":1"), "{json}");
        assert!(json.contains("\"expected\":4"), "{json}");
        assert!(json.contains("\"eta_s\":"), "{json}");
        assert!(json.contains("\"table4.1\":{\"done\":2"), "{json}");
        assert!(json.contains("\"slot\":0,\"state\":\"live\""), "{json}");
        let ticker = board.ticker_fragment().expect("worker fragment");
        assert!(ticker.contains("1 worker(s) live"), "{ticker}");
        assert!(ticker.contains("oldest hb"), "{ticker}");

        board.cell_done("table4.2b", false, 2);
        board.breaker_tripped("table4.2b");
        assert!(board.is_degraded());
        let health = board.health_body();
        assert!(health.contains("1 cell(s) failed"), "{health}");
        assert!(
            health.contains("circuit breaker open for table4.2b"),
            "{health}"
        );
        board.worker_exited(0);
        assert_eq!(board.ticker_fragment().unwrap(), "0 worker(s) live");
    }

    #[test]
    fn ticker_fragment_is_absent_without_workers() {
        let board = OpsBoard::new(None);
        board.cell_done("table4.1", true, 1);
        assert_eq!(board.ticker_fragment(), None);
        // No expected total: no ETA, expected is null.
        let json = board.progress_json();
        assert!(json.contains("\"expected\":null"), "{json}");
        assert!(json.contains("\"eta_s\":null"), "{json}");
    }

    #[test]
    fn server_serves_all_three_endpoints() {
        signals::reset_for_test();
        let board = OpsBoard::new(Some(2));
        board.cell_done("table4.1", true, 1);
        let server = OpsServer::start("127.0.0.1:0", Arc::clone(&board)).expect("bind");
        let addr = server.local_addr();

        let (status, body) = get(addr, "/healthz");
        assert_eq!(status, "HTTP/1.1 200 OK");
        assert_eq!(body, "ok\n");

        let (status, body) = get(addr, "/metrics");
        assert_eq!(status, "HTTP/1.1 200 OK");
        assert!(body.contains("# TYPE suite_cells_done gauge"), "{body}");

        let (status, body) = get(addr, "/progress");
        assert_eq!(status, "HTTP/1.1 200 OK");
        assert!(body.starts_with("{\"elapsed_s\":"), "{body}");

        let (status, _) = get(addr, "/nope");
        assert_eq!(status, "HTTP/1.1 404 Not Found");

        board.cell_done("table4.1", false, 1);
        let (status, body) = get(addr, "/healthz");
        assert_eq!(status, "HTTP/1.1 503 Service Unavailable");
        assert!(body.starts_with("degraded:"), "{body}");
    }

    #[test]
    fn jobs_paths_answer_404_without_a_job_server() {
        let board = OpsBoard::new(None);
        let server = OpsServer::start("127.0.0.1:0", board).expect("bind");
        let addr = server.local_addr();
        for (method, path) in [
            ("POST", "/jobs"),
            ("GET", "/jobs"),
            ("GET", "/jobs/1"),
            ("DELETE", "/jobs/1"),
        ] {
            let (status, body) = request(addr, method, path, Some("{}"));
            assert_eq!(status, "HTTP/1.1 404 Not Found", "{method} {path}");
            assert!(body.contains("job API not enabled"), "{body}");
        }
    }

    #[test]
    fn jobs_api_routes_end_to_end_over_http() {
        let board = OpsBoard::new(None);
        let jobs = Arc::new(crate::jobs::JobServer::start(1, 4, None).expect("jobs"));
        let server = OpsServer::start_with_jobs("127.0.0.1:0", board, Some(jobs)).expect("bind");
        let addr = server.local_addr();

        let spec = "{\"problem\":\"gola\",\"instances\":1,\"scale\":2000}";
        let (status, body) = request(addr, "POST", "/jobs", Some(spec));
        assert_eq!(status, "HTTP/1.1 202 Accepted", "{body}");
        assert!(body.contains("\"id\":1"), "{body}");

        let (status, body) = request(addr, "POST", "/jobs", Some("{\"problem\":\"warp\"}"));
        assert_eq!(status, "HTTP/1.1 400 Bad Request");
        assert!(body.contains("error"), "{body}");

        let deadline = std::time::Instant::now() + Duration::from_secs(60);
        loop {
            let (status, body) = get(addr, "/jobs/1");
            assert_eq!(status, "HTTP/1.1 200 OK");
            if body.contains("\"state\":\"done\"") {
                break;
            }
            assert!(
                !body.contains("\"state\":\"failed\"") && std::time::Instant::now() < deadline,
                "{body}"
            );
            std::thread::sleep(Duration::from_millis(10));
        }

        let (status, body) = get(addr, "/jobs?limit=1");
        assert_eq!(status, "HTTP/1.1 200 OK");
        assert!(body.contains("\"total\":"), "{body}");

        let (status, _) = get(addr, "/jobs/99");
        assert_eq!(status, "HTTP/1.1 404 Not Found");

        let (status, body) = request(addr, "DELETE", "/jobs/1", None);
        assert_eq!(status, "HTTP/1.1 409 Conflict", "{body}");

        let (status, _) = request(addr, "PATCH", "/jobs/1", None);
        assert_eq!(status, "HTTP/1.1 405 Method Not Allowed");

        // `jobs_state` gauges ride the shared exposition.
        let (_, metrics_body) = get(addr, "/metrics");
        assert!(
            metrics_body.contains("jobs_state{state=\"done\"}"),
            "{metrics_body}"
        );
    }
}
