//! Chain diagnostics: *why* the methods rank the way they do.
//!
//! The paper reports only endpoint reductions; this table exposes the
//! mechanics — overall acceptance rate, uphill acceptances, and how each
//! method's temperature control actually advanced — for the full Table-4.1
//! roster on the GOLA set at the 12-second budget.

use anneal_core::{derive_seed, Figure1};
use rand::{rngs::StdRng, SeedableRng};

use crate::budgetmap::PAPER_SECONDS;
use crate::config::SuiteConfig;
use crate::instances::gola_paper_set;
use crate::roster::{full_roster, MethodCtx};
use crate::runner::ArrangementSet;
use crate::table::Table;

/// Regenerates the diagnostics table. Columns:
///
/// * `accept %` — proposals accepted (either direction), percent;
/// * `nonimpr/1k` — non-improving (flat or uphill) acceptances per
///   thousand proposals;
/// * `eq adv` — equilibrium-triggered temperature advances (total over 30
///   instances);
/// * `reduction` — the Table-4.1 12-second cell, for cross-reference.
pub fn run(config: &SuiteConfig) -> Table {
    let problems = gola_paper_set(config.seed);
    let set = ArrangementSet::with_random_starts(problems, config.seed);
    let budget = config.scale.vax_seconds(PAPER_SECONDS[2]);

    let mut table = Table::new(
        "Diagnostics — chain behaviour, GOLA, Figure 1, 12 sec/instance",
        "g function",
        vec![
            "accept %".into(),
            "nonimpr/1k".into(),
            "eq adv".into(),
            "reduction".into(),
        ],
    );

    for spec in full_roster(config.tuned) {
        let mut proposals = 0u64;
        let mut accepted = 0u64;
        let mut uphill = 0u64;
        let mut eq_adv = 0u64;
        let mut reduction = 0.0;
        for (idx, (problem, start)) in set.problems().iter().zip(set.starts()).enumerate() {
            let ctx = MethodCtx {
                n_nets: problem.netlist().n_nets(),
            };
            let mut g = spec.g(&ctx);
            let mut rng = StdRng::seed_from_u64(derive_seed(config.seed ^ 0x444941, idx as u64));
            let r = Figure1::default().run(problem, &mut g, start.clone(), budget, &mut rng);
            proposals += r.stats.proposals;
            accepted += r.stats.accepted_downhill + r.stats.accepted_uphill;
            uphill += r.stats.accepted_uphill;
            eq_adv += r.stats.equilibrium_advances;
            reduction += r.reduction();
        }
        let p = proposals.max(1) as f64;
        table.push_row(
            spec.name(),
            vec![
                100.0 * accepted as f64 / p,
                1000.0 * uphill as f64 / p,
                eq_adv as f64,
                reduction,
            ],
        );
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diagnostics_are_coherent() {
        let t = run(&SuiteConfig::scaled(4));
        assert_eq!(t.rows.len(), 21);
        for (label, v) in &t.rows {
            let (accept_pct, uphill_per_k) = (v[0], v[1]);
            assert!((0.0..=100.0).contains(&accept_pct), "{label}: {accept_pct}");
            assert!((0.0..=1000.0).contains(&uphill_per_k), "{label}");
            // Uphill acceptances are a subset of acceptances.
            assert!(
                uphill_per_k <= 10.0 * accept_pct + 1e-9,
                "{label}: non-improving accepts ({uphill_per_k}/1k) exceed total accepts ({accept_pct}%)"
            );
            assert!(v[3] >= 0.0, "{label}: reductions nonnegative");
        }
        // The gate makes g = 1 accept strictly fewer uphill moves per
        // proposal than [COHO83a]'s ungated ~0.55 probability.
        let g1_up = t.value("g = 1", "nonimpr/1k").unwrap();
        let coho_up = t.value("[COHO83a]", "nonimpr/1k").unwrap();
        assert!(
            g1_up < coho_up,
            "gated g=1 ({g1_up}/1k) should accept fewer non-improving moves than COHO83a ({coho_up}/1k)"
        );
    }
}
