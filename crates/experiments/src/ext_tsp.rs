//! **Extension: traveling salesperson** (§2 via \[GOLD84\]/\[LIN73\]/\[STEW77\],
//! §5 via \[NAHA84\]).
//!
//! Reproduces the comparison the paper imports from Golden & Skiscim: on
//! random Euclidean instances, simulated annealing versus time-equalized
//! multistart 2-opt (\[LIN73\]) and the constructive heuristics
//! (nearest-neighbor and Stewart-style hull insertion, each polished with a
//! 2-opt descent). \[GOLD84\]'s finding — 2-opt beats annealing on most
//! instances at equal time — is the shape to reproduce.

use anneal_core::{derive_seed, local, Figure1, GFunction, Problem};
use anneal_tsp::{
    hull_cheapest_insertion, nearest_neighbor, two_opt_descent, TspInstance, TspProblem,
};
use rand::{rngs::StdRng, SeedableRng};

use crate::config::SuiteConfig;
use crate::table::Table;

/// Instances in the extension set (\[GOLD84\] used 10).
pub const N_INSTANCES: usize = 10;
/// Cities per instance.
pub const N_CITIES: usize = 60;
/// Paper-equivalent seconds per instance and method. \[GOLD84\]'s annealing
/// runs took tens of minutes, and one full 2-opt descent on 60 cities costs
/// on the order of 50k probe evaluations, so the comparison runs at ten
/// minutes per instance — enough for a few complete descents, which is what
/// the \[LIN73\] multistart protocol assumes.
pub const SECONDS: f64 = 600.0;

/// Regenerates the TSP extension table: rows are methods; columns are the
/// total tour length over the set (lower is better) and the number of
/// instances where the method beats six-temperature annealing.
pub fn run(config: &SuiteConfig) -> Table {
    let budget = config.scale.vax_seconds(SECONDS);
    let problems: Vec<TspProblem> = (0..N_INSTANCES)
        .map(|i| {
            let mut rng = StdRng::seed_from_u64(derive_seed(config.seed ^ 0x545350, i as u64));
            TspProblem::new(TspInstance::random_euclidean(N_CITIES, &mut rng))
        })
        .collect();

    let starts: Vec<_> = problems
        .iter()
        .enumerate()
        .map(|(i, p)| {
            let mut rng = StdRng::seed_from_u64(derive_seed(config.seed, i as u64));
            p.random_state(&mut rng)
        })
        .collect();

    let run_sa = |make_g: &dyn Fn() -> GFunction| -> Vec<f64> {
        problems
            .iter()
            .zip(&starts)
            .enumerate()
            .map(|(i, (p, start))| {
                let mut g = make_g();
                let mut rng = StdRng::seed_from_u64(derive_seed(config.seed ^ 0x52554E, i as u64));
                Figure1::default()
                    .run(p, &mut g, start.clone(), budget, &mut rng)
                    .best_cost
            })
            .collect()
    };

    let mut results: Vec<(String, Vec<f64>)> = Vec::new();
    let sa_lengths = run_sa(&|| GFunction::six_temp_annealing(0.3));
    results.push(("Six Temperature Annealing".to_string(), sa_lengths.clone()));
    results.push((
        "Metropolis".to_string(),
        run_sa(&|| GFunction::metropolis(0.1)),
    ));
    results.push(("g = 1".to_string(), run_sa(&GFunction::unit)));
    // [GOLD84]'s own protocol: 25 uniformly spaced temperatures in (0, τ).
    results.push((
        "Annealing uniform-25 [GOLD84]".to_string(),
        run_sa(&|| {
            GFunction::annealing(anneal_core::Schedule::uniform(0.3, 25))
                .named("Annealing uniform-25")
        }),
    ));

    // [LIN73] protocol: multistart 2-opt at the same budget.
    let lin73: Vec<f64> = problems
        .iter()
        .enumerate()
        .map(|(i, p)| {
            let mut rng = StdRng::seed_from_u64(derive_seed(config.seed ^ 0x4C494E, i as u64));
            local::multistart(p, budget, &mut rng).best_cost
        })
        .collect();
    results.push(("Multistart 2-opt [LIN73]".to_string(), lin73));

    // Constructives + one 2-opt descent (cheap, deterministic).
    let nn: Vec<f64> = problems
        .iter()
        .map(|p| {
            let t = nearest_neighbor(p.instance(), 0);
            two_opt_descent(p.instance(), t).0.length()
        })
        .collect();
    results.push(("Nearest neighbor + 2-opt".to_string(), nn));

    let hull: Vec<f64> = problems
        .iter()
        .map(|p| {
            let t = hull_cheapest_insertion(p.instance());
            two_opt_descent(p.instance(), t).0.length()
        })
        .collect();
    results.push(("Hull insertion + 2-opt [STEW77]".to_string(), hull));

    let mut table = Table::new(
        format!(
            "Extension — TSP: {N_INSTANCES} instances, {N_CITIES} cities, \
             {SECONDS:.0} sec/instance"
        ),
        "method",
        vec!["total length".into(), "wins vs SA".into()],
    );
    for (name, lengths) in &results {
        let total: f64 = lengths.iter().sum();
        let wins = lengths
            .iter()
            .zip(&sa_lengths)
            .filter(|(l, sa)| *l < *sa)
            .count() as f64;
        table.push_row(name.clone(), vec![total, wins]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_shape_and_sanity() {
        let table = run(&SuiteConfig::scaled(1));
        assert_eq!(table.rows.len(), 7);
        for (label, values) in &table.rows {
            assert!(values[0] > 0.0, "{label}: tour lengths are positive");
            assert!(values[1] <= N_INSTANCES as f64);
        }
        // SA never beats itself.
        assert_eq!(
            table.value("Six Temperature Annealing", "wins vs SA"),
            Some(0.0)
        );
    }

    #[test]
    fn classical_heuristics_are_competitive() {
        // The [GOLD84] shape: at equal time, 2-opt-based methods beat plain
        // annealing on most instances. At reduced scale we only require the
        // hull constructive (which ignores the budget) to win overall.
        let table = run(&SuiteConfig::scaled(1));
        let sa = table
            .value("Six Temperature Annealing", "total length")
            .unwrap();
        let hull = table
            .value("Hull insertion + 2-opt [STEW77]", "total length")
            .unwrap();
        assert!(
            hull < sa,
            "hull+2opt ({hull}) should beat budgeted SA ({sa})"
        );
    }
}
