//! The benchmark subsystem: named hot-path kernels and a machine-readable
//! perf report (`BENCH_core.json`).
//!
//! The `bench` binary (`cargo run --release -p anneal-experiments --bin
//! bench`) times every kernel returned by [`kernels`] with the vendored
//! criterion substitute's [`criterion::measure`] API and renders the results
//! with [`render_report`]. The kernel set covers the hot paths the paper's
//! equal-budget comparisons spend their time in: the linarr swap/relocate
//! delta + `CutProfile` update, the NOLA multi-pin cost, the TSP 2-opt
//! delta, the partition gain update, the Figure-1/Figure-2 decision path,
//! and full chains at a fixed seed and budget.
//!
//! Methodology, schema, and cross-commit comparison workflow are documented
//! in `BENCHMARKS.md` at the repository root.

use anneal_core::schedule::adaptive::{self, AdaptiveMode, DEFAULT_PROBE_SAMPLES};
use anneal_core::{estimate_delta_stats, Annealer, Budget, GFunction, Problem, Rng, Strategy};
use anneal_linarr::{LinearArrangementProblem, Neighborhood};
use anneal_netlist::generator::{random_multi_pin, random_two_pin};
use anneal_partition::PartitionProblem;
use anneal_tsp::{TspInstance, TspProblem};
use criterion::{measure, Bencher, MeasureConfig, Measurement};
use rand::{rngs::StdRng, SeedableRng};

/// Seed every kernel derives its instances, starting states and chains
/// from. Pinned so numbers are comparable across commits.
pub const BENCH_SEED: u64 = 1985;

/// Evaluation budget of the full-chain kernels.
pub const CHAIN_EVALS: u64 = 1_500;

/// One named benchmark kernel.
pub struct Kernel {
    /// Stable kernel identifier (`area/name`), the unit of cross-commit
    /// comparison.
    pub name: &'static str,
    /// Cost evaluations (decisions, for `accept/*`) one iteration performs;
    /// throughput is derived as `evals_per_iter / seconds_per_iter`.
    pub evals_per_iter: f64,
    run: Box<dyn FnMut(&mut Bencher)>,
}

/// A measured kernel: timing statistics plus derived throughput.
pub struct KernelResult {
    /// Stable kernel identifier.
    pub name: &'static str,
    /// Evaluations one iteration performs (copied from the [`Kernel`]).
    pub evals_per_iter: f64,
    /// Timing statistics from [`criterion::measure`].
    pub measurement: Measurement,
}

impl KernelResult {
    /// Throughput in cost evaluations per second, from the median timing.
    pub fn evals_per_sec(&self) -> f64 {
        if self.measurement.median_ns > 0.0 {
            self.evals_per_iter * 1e9 / self.measurement.median_ns
        } else {
            f64::INFINITY
        }
    }
}

fn gola(index: u64) -> LinearArrangementProblem {
    let mut rng = StdRng::seed_from_u64(BENCH_SEED.wrapping_add(index));
    LinearArrangementProblem::new(random_two_pin(15, 150, &mut rng))
}

fn nola(index: u64) -> LinearArrangementProblem {
    let mut rng = StdRng::seed_from_u64(BENCH_SEED.wrapping_add(0x4E4F).wrapping_add(index));
    LinearArrangementProblem::new(random_multi_pin(15, 150, 2, 10, &mut rng))
}

/// One propose/apply/cost/undo round trip — the Figure-1 inner loop minus
/// the acceptance decision.
fn cycle<P: Problem>(p: &P, state: &mut P::State, rng: &mut dyn Rng) -> f64 {
    let mv = p.propose(state, rng);
    p.apply(state, &mv);
    let cost = p.cost(state);
    p.undo(state, &mv);
    cost
}

fn move_cycle_kernel<P: Problem + 'static>(
    name: &'static str,
    problem: P,
    rng_seed: u64,
) -> Kernel {
    let mut rng = StdRng::seed_from_u64(rng_seed);
    let mut state = problem.random_state(&mut rng);
    Kernel {
        name,
        evals_per_iter: 1.0,
        run: Box::new(move |b| {
            b.iter(|| std::hint::black_box(cycle(&problem, &mut state, &mut rng)))
        }),
    }
}

fn chain_kernel(
    name: &'static str,
    problem: LinearArrangementProblem,
    strategy: Strategy,
    proto: GFunction,
) -> Kernel {
    // Probe run: learn exactly how many evaluations one chain charges (a
    // chain may stop just past the budget), so throughput is honest.
    let evals = {
        let mut g = proto.clone();
        Annealer::new(&problem)
            .strategy(strategy)
            .budget(Budget::evaluations(CHAIN_EVALS))
            .seed(BENCH_SEED)
            .run(&mut g)
            .stats
            .evals
    };
    Kernel {
        name,
        evals_per_iter: evals as f64,
        run: Box::new(move |b| {
            b.iter(|| {
                let mut g = proto.clone();
                let r = Annealer::new(&problem)
                    .strategy(strategy)
                    .budget(Budget::evaluations(CHAIN_EVALS))
                    .seed(BENCH_SEED)
                    .run(&mut g);
                std::hint::black_box(r.best_cost)
            })
        }),
    }
}

/// The full kernel roster, in report order.
pub fn kernels() -> Vec<Kernel> {
    let mut list = Vec::new();

    // Move kernels: perturbation delta + incremental bookkeeping update.
    list.push(move_cycle_kernel("linarr/gola_swap_cycle", gola(0), 11));
    list.push(move_cycle_kernel(
        "linarr/gola_relocate_cycle",
        gola(0).with_neighborhood(Neighborhood::SingleExchange),
        12,
    ));
    list.push(move_cycle_kernel("linarr/nola_swap_cycle", nola(0), 13));
    list.push(move_cycle_kernel(
        "partition/swap_cycle",
        {
            let mut rng = StdRng::seed_from_u64(BENCH_SEED ^ 0x5041);
            PartitionProblem::new(random_two_pin(32, 96, &mut rng))
        },
        14,
    ));
    list.push(move_cycle_kernel(
        "tsp/two_opt_cycle",
        {
            let mut rng = StdRng::seed_from_u64(BENCH_SEED ^ 0x5453);
            TspProblem::new(TspInstance::random_euclidean(60, &mut rng))
        },
        15,
    ));

    // Pure 2-opt delta evaluation (no tour mutation).
    {
        let mut rng = StdRng::seed_from_u64(BENCH_SEED ^ 0x5453);
        let instance = TspInstance::random_euclidean(60, &mut rng);
        let problem = TspProblem::new(instance.clone());
        let tour = problem.random_state(&mut rng);
        let pairs: Vec<(usize, usize)> = (0..64).map(|k| (k % 29, 30 + (k % 29))).collect();
        let mut k = 0usize;
        list.push(Kernel {
            name: "tsp/two_opt_delta",
            evals_per_iter: 1.0,
            run: Box::new(move |b| {
                b.iter(|| {
                    let (i, j) = pairs[k & 63];
                    k += 1;
                    std::hint::black_box(tour.two_opt_delta(&instance, i, j))
                })
            }),
        });
    }

    // Acceptance decisions: the Figure-1 decision path on an uphill move.
    {
        let mut g = GFunction::metropolis(1.5);
        let mut rng = StdRng::seed_from_u64(BENCH_SEED ^ 0x4143);
        list.push(Kernel {
            name: "accept/metropolis_decide",
            evals_per_iter: 1.0,
            run: Box::new(move |b| {
                b.iter(|| std::hint::black_box(g.decide_figure1(0, 80.0, 82.0, &mut rng)))
            }),
        });
    }
    {
        let mut g = GFunction::unit();
        let mut rng = StdRng::seed_from_u64(BENCH_SEED ^ 0x4144);
        list.push(Kernel {
            name: "accept/unit_gate_decide",
            evals_per_iter: 1.0,
            run: Box::new(move |b| {
                b.iter(|| std::hint::black_box(g.decide_figure1(0, 80.0, 82.0, &mut rng)))
            }),
        });
    }

    // Full chains at fixed seed and budget.
    list.push(chain_kernel(
        "chain/fig1_metropolis_gola",
        gola(1),
        Strategy::Figure1,
        GFunction::metropolis(1.5),
    ));
    list.push(chain_kernel(
        "chain/fig2_unit_gola",
        gola(1),
        Strategy::Figure2,
        GFunction::unit(),
    ));
    list.push(chain_kernel(
        "chain/rejectionless_gola",
        gola(1),
        Strategy::Rejectionless,
        GFunction::metropolis(1.5),
    ));

    // Replica exchange over the six-rung ladder: the default exchange
    // spacing, and a swap-heavy variant that stresses the swap phase (an
    // 8x higher swap rate isolates exchange overhead from chain work).
    list.push(chain_kernel(
        "replex/six_temp_gola",
        gola(1),
        Strategy::ReplicaExchange {
            exchange_interval: 64,
        },
        GFunction::six_temp_annealing(2.0),
    ));
    list.push(chain_kernel(
        "replex/six_temp_gola_swap_heavy",
        gola(1),
        Strategy::ReplicaExchange {
            exchange_interval: 8,
        },
        GFunction::six_temp_annealing(2.0),
    ));

    // Adaptive temperature control: the per-instance probe + schedule
    // derivation (the tuning cost `--schedule` charges in-run), and a full
    // controlled chain so the controller's stage-entry arithmetic is priced
    // against the plain Figure-1 chain above.
    {
        let problem = gola(1);
        let mut rng = StdRng::seed_from_u64(BENCH_SEED ^ 0x4150);
        list.push(Kernel {
            name: "adaptive/probe_derive",
            evals_per_iter: DEFAULT_PROBE_SAMPLES as f64,
            run: Box::new(move |b| {
                b.iter(|| {
                    let stats = estimate_delta_stats(&problem, DEFAULT_PROBE_SAMPLES, &mut rng);
                    std::hint::black_box(adaptive::derive(
                        &stats,
                        AdaptiveMode::Acceptance,
                        6,
                        DEFAULT_PROBE_SAMPLES,
                    ))
                })
            }),
        });
    }
    {
        let problem = gola(1);
        let mut probe_rng = StdRng::seed_from_u64(BENCH_SEED ^ 0x4151);
        let stats = estimate_delta_stats(&problem, DEFAULT_PROBE_SAMPLES, &mut probe_rng);
        let spec = adaptive::derive(&stats, AdaptiveMode::Acceptance, 6, DEFAULT_PROBE_SAMPLES);
        let proto = GFunction::annealing(spec.schedule.clone());
        let controller = spec.controller;
        let evals = {
            let mut g = proto.clone();
            Annealer::new(&problem)
                .strategy(Strategy::Figure1)
                .budget(Budget::evaluations(CHAIN_EVALS))
                .seed(BENCH_SEED)
                .controller(controller)
                .run(&mut g)
                .stats
                .evals
        };
        list.push(Kernel {
            name: "adaptive/fig1_controlled_gola",
            evals_per_iter: evals as f64,
            run: Box::new(move |b| {
                b.iter(|| {
                    let mut g = proto.clone();
                    let r = Annealer::new(&problem)
                        .strategy(Strategy::Figure1)
                        .budget(Budget::evaluations(CHAIN_EVALS))
                        .seed(BENCH_SEED)
                        .controller(controller)
                        .run(&mut g);
                    std::hint::black_box(r.best_cost)
                })
            }),
        });
    }

    // Observability overhead: one span guard open/close (an Instant read
    // plus a histogram record on drop) and one labeled-counter increment —
    // the per-cell costs the live ops plane charges at cell boundaries.
    // These guard the "spans are cheap enough to leave on" claim.
    {
        let registry = anneal_core::metrics::Registry::new();
        list.push(Kernel {
            name: "metrics/span_guard",
            evals_per_iter: 1.0,
            run: Box::new(move |b| b.iter(|| std::hint::black_box(registry.span("bench")))),
        });
    }
    {
        let registry = anneal_core::metrics::Registry::new();
        let counter = registry.counter_with("bench_cells", &[("method", "m"), ("table", "t")]);
        list.push(Kernel {
            name: "metrics/labeled_counter_inc",
            evals_per_iter: 1.0,
            run: Box::new(move |b| b.iter(|| counter.inc())),
        });
    }

    list
}

/// Measures every kernel whose name contains `filter` (all, when `None`).
pub fn run_kernels(cfg: &MeasureConfig, filter: Option<&str>) -> Vec<KernelResult> {
    kernels()
        .into_iter()
        .filter(|k| filter.is_none_or(|f| k.name.contains(f)))
        .map(|k| {
            let Kernel {
                name,
                evals_per_iter,
                mut run,
            } = k;
            let measurement = measure(name, cfg, &mut run);
            KernelResult {
                name,
                evals_per_iter,
                measurement,
            }
        })
        .collect()
}

/// Best-effort current git revision (`unknown` outside a work tree).
pub fn git_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// JSON has no NaN/Infinity; map them to null.
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Renders the `BENCH_core.json` document (schema in `BENCHMARKS.md`).
pub fn render_report(results: &[KernelResult], git_rev: &str, cfg: &MeasureConfig) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"schema\": \"annealbench-bench-v1\",\n");
    s.push_str(&format!("  \"git_rev\": \"{git_rev}\",\n"));
    s.push_str(&format!("  \"seed\": {BENCH_SEED},\n"));
    s.push_str(&format!("  \"sample_size\": {},\n", cfg.sample_size));
    s.push_str(&format!(
        "  \"min_sample_time_ns\": {},\n",
        cfg.min_sample_time.as_nanos()
    ));
    s.push_str("  \"kernels\": [\n");
    for (i, r) in results.iter().enumerate() {
        let m = &r.measurement;
        s.push_str(&format!(
            "    {{\"name\": \"{}\", \"ns_per_iter\": {}, \"lo_ns\": {}, \"hi_ns\": {}, \
             \"iters_per_sample\": {}, \"samples\": {}, \"evals_per_iter\": {}, \
             \"evals_per_sec\": {}}}{}\n",
            r.name,
            json_f64(m.median_ns),
            json_f64(m.lo_ns),
            json_f64(m.hi_ns),
            m.iters_per_sample,
            m.samples,
            json_f64(r.evals_per_iter),
            json_f64(r.evals_per_sec()),
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_roster_is_stable() {
        let names: Vec<&str> = kernels().iter().map(|k| k.name).collect();
        assert!(names.len() >= 8, "ISSUE requires >= 8 kernels: {names:?}");
        let mut unique = names.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), names.len(), "kernel names must be unique");
        for name in &names {
            assert!(name.contains('/'), "kernel names are area/name: {name}");
        }
    }

    #[test]
    fn quick_run_produces_wellformed_report() {
        let cfg = MeasureConfig::quick();
        let results = run_kernels(&cfg, Some("accept/"));
        assert_eq!(results.len(), 2);
        for r in &results {
            assert!(r.measurement.median_ns > 0.0);
            assert!(r.evals_per_sec() > 0.0);
        }
        let json = render_report(&results, "deadbeef", &cfg);
        assert!(json.contains("\"schema\": \"annealbench-bench-v1\""));
        assert!(json.contains("accept/metropolis_decide"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn chain_kernels_report_real_eval_counts() {
        let chains: Vec<Kernel> = kernels()
            .into_iter()
            .filter(|k| k.name.starts_with("chain/"))
            .collect();
        assert_eq!(chains.len(), 3);
        for k in &chains {
            assert!(
                k.evals_per_iter >= CHAIN_EVALS as f64,
                "{}: chain must charge at least its budget ({})",
                k.name,
                k.evals_per_iter
            );
        }
    }

    #[test]
    fn adaptive_kernels_probe_and_run_controlled_chains() {
        let adaptive: Vec<Kernel> = kernels()
            .into_iter()
            .filter(|k| k.name.starts_with("adaptive/"))
            .collect();
        let names: Vec<&str> = adaptive.iter().map(|k| k.name).collect();
        assert_eq!(
            names,
            ["adaptive/probe_derive", "adaptive/fig1_controlled_gola"]
        );
        // The probe kernel is priced at exactly the evaluations the runner
        // charges against the budget per instance.
        assert_eq!(adaptive[0].evals_per_iter, DEFAULT_PROBE_SAMPLES as f64);
        // The controlled chain runs a real budget's worth of work.
        assert!(adaptive[1].evals_per_iter >= CHAIN_EVALS as f64);
    }

    #[test]
    fn replica_exchange_kernels_are_present_and_budget_exact() {
        let replex: Vec<Kernel> = kernels()
            .into_iter()
            .filter(|k| k.name.starts_with("replex/"))
            .collect();
        assert_eq!(replex.len(), 2);
        for k in &replex {
            // Replica exchange stops exactly at the budget (the swap phase
            // charges nothing), so the probe reports the budget itself.
            assert_eq!(
                k.evals_per_iter, CHAIN_EVALS as f64,
                "{}: tempering charges exactly its budget",
                k.name
            );
        }
    }
}
