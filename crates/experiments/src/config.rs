//! Shared configuration for the experiment suite.

use std::time::Duration;

use anneal_core::{AdaptiveMode, Strategy};

use crate::budgetmap::Scale;
use crate::instances::DEFAULT_SEED;
use crate::roster::TunedY;
use crate::runner::{CellPolicy, RetryPolicy};

/// Configuration shared by every table runner.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SuiteConfig {
    /// Base seed: determines instance sets, starting arrangements and chain
    /// randomness.
    pub seed: u64,
    /// Budget scale (divide paper budgets for faster approximate runs).
    pub scale: Scale,
    /// Tuned temperatures for the g classes.
    pub tuned: TunedY,
    /// OS threads per table cell (instances fan out; totals are identical
    /// for any thread count).
    pub threads: usize,
    /// Bounded retry for failed cell instances (`--retries`).
    pub retry: RetryPolicy,
    /// Per-instance wall-clock deadline (`--watchdog-ms`).
    pub watchdog: Option<Duration>,
    /// Strategy override for the Figure-1 tables (`--strategy`). `None`
    /// keeps each experiment's paper-faithful strategy; table 4.2(b)'s
    /// Figure-1-vs-Figure-2 comparison always ignores the override.
    pub strategy: Option<Strategy>,
    /// Rung-count override for replica exchange (`--replicas`): rebuild
    /// each method's ladder to this many geometric rungs before tempering.
    pub replicas: Option<usize>,
    /// Adaptive-schedule override (`--schedule adaptive|asa`): derive each
    /// instance's temperature schedule from a probe of its delta statistics
    /// instead of the §4.2.1 grid-swept values, charging the probe against
    /// the run budget. `None` keeps the tuned schedules.
    pub schedule: Option<AdaptiveMode>,
}

impl SuiteConfig {
    /// Paper-faithful configuration at the default seed.
    pub fn paper() -> Self {
        SuiteConfig {
            seed: DEFAULT_SEED,
            scale: Scale::FULL,
            tuned: TunedY::gola_defaults(),
            threads: 1,
            retry: RetryPolicy::none(),
            watchdog: None,
            strategy: None,
            replicas: None,
            schedule: None,
        }
    }

    /// A configuration with budgets divided by `divisor` — the table shapes
    /// survive moderate scaling (the paper's 6/9/12-second ratios are
    /// preserved).
    pub fn scaled(divisor: u64) -> Self {
        SuiteConfig {
            scale: Scale::new(divisor),
            ..Self::paper()
        }
    }

    /// Same configuration at another seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Same configuration with table cells fanned out over `threads` OS
    /// threads (clamped to at least 1).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Same configuration with a retry policy for failed cell instances.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Same configuration with a per-instance watchdog deadline.
    pub fn with_watchdog(mut self, timeout: Option<Duration>) -> Self {
        self.watchdog = timeout;
        self
    }

    /// Same configuration running the tables under `strategy` instead of
    /// their paper-faithful default.
    pub fn with_strategy(mut self, strategy: Strategy) -> Self {
        self.strategy = Some(strategy);
        self
    }

    /// Same configuration with a replica-exchange rung-count override.
    pub fn with_replicas(mut self, replicas: usize) -> Self {
        self.replicas = Some(replicas);
        self
    }

    /// Same configuration with an adaptive-schedule override.
    pub fn with_schedule(mut self, schedule: AdaptiveMode) -> Self {
        self.schedule = Some(schedule);
        self
    }

    /// The strategy the single-strategy tables run: the `--strategy`
    /// override, or the paper's Figure 1.
    pub fn table_strategy(&self) -> Strategy {
        self.strategy.unwrap_or(Strategy::Figure1)
    }

    /// The per-cell execution policy this configuration implies.
    pub fn cell_policy(&self) -> CellPolicy {
        CellPolicy {
            threads: self.threads,
            retry: self.retry,
            watchdog: self.watchdog,
        }
    }
}

impl Default for SuiteConfig {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_is_full_scale() {
        let c = SuiteConfig::paper();
        assert_eq!(c.scale, Scale::FULL);
        assert_eq!(c.seed, DEFAULT_SEED);
    }

    #[test]
    fn scaled_divides() {
        let c = SuiteConfig::scaled(10);
        assert_eq!(c.scale.divisor, 10);
        assert_eq!(c.with_seed(4).seed, 4);
    }

    #[test]
    fn cell_policy_mirrors_config() {
        let c = SuiteConfig::paper()
            .with_threads(4)
            .with_retry(RetryPolicy::new(3, Duration::from_millis(50)))
            .with_watchdog(Some(Duration::from_secs(30)));
        let p = c.cell_policy();
        assert_eq!(p.threads, 4);
        assert_eq!(p.retry.attempts, 3);
        assert_eq!(p.watchdog, Some(Duration::from_secs(30)));
        let default = SuiteConfig::paper().cell_policy();
        assert_eq!(default, CellPolicy::sequential());
    }
}
