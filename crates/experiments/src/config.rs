//! Shared configuration for the experiment suite.

use crate::budgetmap::Scale;
use crate::instances::DEFAULT_SEED;
use crate::roster::TunedY;

/// Configuration shared by every table runner.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SuiteConfig {
    /// Base seed: determines instance sets, starting arrangements and chain
    /// randomness.
    pub seed: u64,
    /// Budget scale (divide paper budgets for faster approximate runs).
    pub scale: Scale,
    /// Tuned temperatures for the g classes.
    pub tuned: TunedY,
    /// OS threads per table cell (instances fan out; totals are identical
    /// for any thread count).
    pub threads: usize,
}

impl SuiteConfig {
    /// Paper-faithful configuration at the default seed.
    pub fn paper() -> Self {
        SuiteConfig {
            seed: DEFAULT_SEED,
            scale: Scale::FULL,
            tuned: TunedY::gola_defaults(),
            threads: 1,
        }
    }

    /// A configuration with budgets divided by `divisor` — the table shapes
    /// survive moderate scaling (the paper's 6/9/12-second ratios are
    /// preserved).
    pub fn scaled(divisor: u64) -> Self {
        SuiteConfig {
            scale: Scale::new(divisor),
            ..Self::paper()
        }
    }

    /// Same configuration at another seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Same configuration with table cells fanned out over `threads` OS
    /// threads (clamped to at least 1).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }
}

impl Default for SuiteConfig {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_is_full_scale() {
        let c = SuiteConfig::paper();
        assert_eq!(c.scale, Scale::FULL);
        assert_eq!(c.seed, DEFAULT_SEED);
    }

    #[test]
    fn scaled_divides() {
        let c = SuiteConfig::scaled(10);
        assert_eq!(c.scale.divisor, 10);
        assert_eq!(c.with_seed(4).seed, 4);
    }
}
