//! Crash-safe checkpointing: the telemetry JSONL stream as a write-ahead
//! log (WAL), plus the loader that `repro --resume` uses to replay it.
//!
//! A WAL file starts with one versioned header line identifying the schema
//! and the suite parameters, followed by one [`CellRecord`] JSON line per
//! completed table cell (appended and flushed as each cell finishes, see
//! [`TelemetryLog`](crate::telemetry::TelemetryLog)). A run that dies —
//! panic, `kill -9`, power loss — leaves a prefix of that stream, possibly
//! with a **torn final line** (the write that was in flight). [`load`]
//! tolerates exactly that: a final line that does not parse is dropped and
//! reported, while corruption anywhere else is an error.
//!
//! Because every cell is deterministically seeded from `(base_seed, table,
//! method, column, instance)`, replaying completed cells from the WAL and
//! re-running only the missing or failed ones reproduces tables
//! **bitwise-identical** to an uninterrupted run: `f64` cell values survive
//! the JSON round-trip exactly (Rust's shortest-repr `Display` → `FromStr`
//! is lossless), and the integration tests in `tests/resume.rs` lock that
//! in.
//!
//! The JSON parser here is hand-rolled like the serializer in
//! [`telemetry`](crate::telemetry) (this workspace builds with no registry
//! access, so there is no serde).

use std::io::Write;
use std::str::FromStr;

use crate::telemetry::{
    CellFailure, CellKey, CellRecord, InstanceRecord, SupervisorEvent, TempAggregate,
};

/// Schema identifier in the WAL header line.
pub const WAL_SCHEMA: &str = "anneal-repro-wal";

/// Current WAL format version. Loaders accept this version or older.
///
/// Version history:
/// * 1 — initial WAL format (PR 2), `per_temp.proposals` added in PR 4.
/// * 2 — replica exchange: `per_temp` entries carry `ended_exchange`,
///   `swap_attempts` and `swap_accepts` (all default to 0 when loading v1).
/// * 3 — adaptive temperature control: `per_temp` entries carry
///   `temperature` and `target_acceptance` sums (both default to NaN when
///   loading v1/v2, rendering as "no data" rather than a wrong mean).
/// * 4 — process supervisor: record lines are prefixed with a `"seq"`
///   field (the write-order sequence number, used to merge per-worker
///   shards deterministically), and the stream may carry supervisor event
///   lines (`{"sup":...}`) which older loaders never see and this loader
///   collects separately. Records without `seq` still load.
pub const WAL_VERSION: u64 = 4;

/// Suite parameters recorded in the WAL header, used by `--resume` to warn
/// when a log is replayed under different settings (per-cell validation in
/// the runner still guards correctness either way).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalMeta {
    /// WAL format version.
    pub version: u64,
    /// Suite base seed.
    pub seed: u64,
    /// Budget scale divisor.
    pub scale: u64,
}

impl WalMeta {
    /// The header for a fresh WAL at the current version.
    pub fn new(seed: u64, scale: u64) -> Self {
        WalMeta {
            version: WAL_VERSION,
            seed,
            scale,
        }
    }

    /// The header as one JSON line (no trailing newline).
    pub fn header_line(&self) -> String {
        format!(
            "{{\"wal\":\"{WAL_SCHEMA}\",\"version\":{},\"seed\":{},\"scale\":{}}}",
            self.version, self.seed, self.scale
        )
    }
}

/// A loaded WAL: header (if present), the parsed cell records, and whether
/// a torn final line was dropped.
#[derive(Debug)]
pub struct Checkpoint {
    /// Header metadata; `None` for headerless (pre-WAL telemetry) logs,
    /// which remain loadable.
    pub meta: Option<WalMeta>,
    /// Every intact cell record, in append order.
    pub cells: Vec<CellRecord>,
    /// Supervisor lifecycle events interleaved in the stream (WAL v4;
    /// always empty for older logs).
    pub events: Vec<SupervisorEvent>,
    /// Whether the final line was torn (incomplete write) and dropped.
    pub torn: bool,
}

/// Splices the WAL v4 write-order sequence number into a serialized record
/// line: `{"a":1}` with seq 7 becomes `{"seq":7,"a":1}`. The loader treats
/// `seq` as just another (ignorable) field, so pre-v4 readers of individual
/// records are unaffected.
pub fn wal_line(record_json: &str, seq: u64) -> String {
    debug_assert!(record_json.starts_with('{'));
    format!("{{\"seq\":{seq},{}", &record_json[1..])
}

/// Creates a WAL file at `path`, writes and flushes its header, and returns
/// the writer for [`TelemetryLog::with_writer`]. The header is written
/// before any fault-injection wrapper is applied, so even a chaos run
/// leaves a well-formed (if shorter) WAL.
///
/// [`TelemetryLog::with_writer`]: crate::telemetry::TelemetryLog::with_writer
pub fn create_wal(path: &str, meta: &WalMeta) -> Result<Box<dyn Write + Send>, String> {
    let file =
        std::fs::File::create(path).map_err(|e| format!("cannot create WAL `{path}`: {e}"))?;
    let mut writer = std::io::BufWriter::new(file);
    writeln!(writer, "{}", meta.header_line())
        .and_then(|()| writer.flush())
        .map_err(|e| format!("cannot write WAL header to `{path}`: {e}"))?;
    Ok(Box::new(writer))
}

/// Loads a WAL (or a headerless telemetry JSONL) from `path`, tolerating a
/// torn final line. Corruption anywhere else is an error naming the line.
pub fn load(path: &str) -> Result<Checkpoint, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read WAL `{path}`: {e}"))?;
    load_str(&text).map_err(|e| format!("WAL `{path}`: {e}"))
}

/// [`load`] on in-memory WAL text.
pub fn load_str(text: &str) -> Result<Checkpoint, String> {
    let mut checkpoint = Checkpoint {
        meta: None,
        cells: Vec::new(),
        events: Vec::new(),
        torn: false,
    };
    checkpoint.torn = scan_wal_lines(text, |i, value| {
        if i == 0 && value.get("wal").is_some() {
            checkpoint.meta = Some(meta_from_json(value)?);
        } else if value.get("sup").is_some() {
            checkpoint.events.push(event_from_json(value)?);
        } else {
            checkpoint.cells.push(record_from_json(value)?);
        }
        Ok(())
    })?;
    Ok(checkpoint)
}

/// The torn-line-tolerant scan every WAL-disciplined log in the workspace
/// shares (the telemetry WAL here, the job journal in
/// [`jobs`](crate::jobs)): parse each non-empty line as JSON and hand it —
/// with its 0-based line index — to `visit`. A parse or visit failure on
/// the *final* line is the expected signature of a killed writer: the line
/// is dropped and the scan reports `Ok(true)` (torn). A failure anywhere
/// earlier means real corruption and becomes an `Err` naming the 1-based
/// line.
pub fn scan_wal_lines<F>(text: &str, mut visit: F) -> Result<bool, String>
where
    F: FnMut(usize, &Json) -> Result<(), String>,
{
    let lines: Vec<&str> = text.lines().collect();
    let n = lines.len();
    let mut torn = false;
    for (i, line) in lines.iter().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let last = i + 1 == n;
        match Json::parse(line).and_then(|value| visit(i, &value)) {
            Ok(()) => {}
            Err(_) if last => torn = true,
            Err(e) => return Err(format!("corrupt record at line {}: {e}", i + 1)),
        }
    }
    Ok(torn)
}

fn meta_from_json(v: &Json) -> Result<WalMeta, String> {
    let schema = v.get("wal").and_then(Json::as_str).unwrap_or_default();
    if schema != WAL_SCHEMA {
        return Err(format!("unknown WAL schema `{schema}`"));
    }
    let version = field_u64(v, "version")?;
    if version > WAL_VERSION {
        return Err(format!(
            "WAL version {version} is newer than supported {WAL_VERSION}"
        ));
    }
    Ok(WalMeta {
        version,
        seed: field_u64(v, "seed")?,
        scale: field_u64(v, "scale")?,
    })
}

/// Rebuilds a [`CellRecord`] from its parsed JSON line.
pub fn record_from_json(v: &Json) -> Result<CellRecord, String> {
    let key = CellKey::new(
        field_str(v, "table")?,
        field_str(v, "method")?,
        field_str(v, "column")?,
    );
    let mut per_temp = Vec::new();
    for t in field_arr(v, "per_temp")? {
        per_temp.push(TempAggregate {
            temp: field_u64(t, "temp")? as usize,
            evals: field_u64(t, "evals")?,
            // Absent in pre-PR-4 records, where proposals were not tracked
            // per temperature.
            proposals: t.get("proposals").map_or(Ok(0), Json::as_u64_checked)?,
            accepted_downhill: field_u64(t, "accepted_downhill")?,
            accepted_uphill: field_u64(t, "accepted_uphill")?,
            rejected_uphill: field_u64(t, "rejected_uphill")?,
            ended_budget: field_u64(t, "ended_budget")?,
            ended_equilibrium: field_u64(t, "ended_equilibrium")?,
            // Absent before WAL v2 (no replica-exchange strategy yet).
            ended_exchange: t
                .get("ended_exchange")
                .map_or(Ok(0), Json::as_u64_checked)?,
            swap_attempts: t.get("swap_attempts").map_or(Ok(0), Json::as_u64_checked)?,
            swap_accepts: t.get("swap_accepts").map_or(Ok(0), Json::as_u64_checked)?,
            // Absent before WAL v3 (adaptive temperature control).
            temperature: optional_f64(t, "temperature")?,
            target_acceptance: optional_f64(t, "target_acceptance")?,
        });
    }
    let mut per_instance = Vec::new();
    for r in field_arr(v, "per_instance")? {
        per_instance.push(InstanceRecord {
            index: field_u64(r, "instance")? as usize,
            seed: field_u64(r, "seed")?,
            reduction: field_f64(r, "reduction")?,
            evals: field_u64(r, "evals")?,
            wall_ms: field_f64(r, "wall_ms")?,
            stop: stop_label(field_str(r, "stop")?)?,
            accepted_downhill: field_u64(r, "accepted_downhill")?,
            accepted_uphill: field_u64(r, "accepted_uphill")?,
            rejected_uphill: field_u64(r, "rejected_uphill")?,
        });
    }
    let mut failures = Vec::new();
    for f in field_arr(v, "failures")? {
        failures.push(CellFailure {
            instance: field_u64(f, "instance")? as usize,
            seed: field_u64(f, "seed")?,
            message: field_str(f, "message")?.to_string(),
        });
    }
    Ok(CellRecord {
        key,
        strategy: field_str(v, "strategy")?.to_string(),
        budget: field_str(v, "budget")?.to_string(),
        base_seed: field_u64(v, "base_seed")?,
        instances: field_u64(v, "instances")? as usize,
        reduction: field_f64(v, "reduction")?,
        evals: field_u64(v, "evals")?,
        wall_ms: field_f64(v, "wall_ms")?,
        accepted_downhill: field_u64(v, "accepted_downhill")?,
        accepted_uphill: field_u64(v, "accepted_uphill")?,
        rejected_uphill: field_u64(v, "rejected_uphill")?,
        stops_budget: field_u64(v, "stops_budget")? as usize,
        stops_equilibrium: field_u64(v, "stops_equilibrium")? as usize,
        // Absent in pre-WAL (v0) telemetry lines: one attempt was made.
        attempts: v.get("attempts").map_or(Ok(1), Json::as_u64_checked)? as u32,
        per_temp,
        per_instance,
        failures,
    })
}

/// Rebuilds a [`SupervisorEvent`] from its parsed WAL line (an object
/// carrying a `"sup"` key).
pub fn event_from_json(v: &Json) -> Result<SupervisorEvent, String> {
    let cell = match v.get("table") {
        Some(_) => Some(CellKey::new(
            field_str(v, "table")?,
            field_str(v, "method")?,
            field_str(v, "column")?,
        )),
        None => None,
    };
    Ok(SupervisorEvent {
        kind: field_str(v, "sup")?.to_string(),
        cell,
        detail: field_str(v, "detail")?.to_string(),
    })
}

/// Opens (creating if absent) a per-worker WAL shard at `path` in append
/// mode and returns the writer. A new or empty shard gets the versioned
/// header first, so every shard follows the same torn-line-tolerant
/// discipline as the main WAL; an existing shard is appended to, which is
/// how a retried worker continues the same file.
pub fn open_shard(path: &str, meta: &WalMeta) -> Result<Box<dyn Write + Send>, String> {
    let file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .map_err(|e| format!("cannot open WAL shard `{path}`: {e}"))?;
    let fresh = file
        .metadata()
        .map(|m| m.len() == 0)
        .map_err(|e| format!("cannot stat WAL shard `{path}`: {e}"))?;
    let mut writer = std::io::BufWriter::new(file);
    if fresh {
        writeln!(writer, "{}", meta.header_line())
            .and_then(|()| writer.flush())
            .map_err(|e| format!("cannot write WAL shard header to `{path}`: {e}"))?;
    }
    Ok(Box::new(writer))
}

/// Deterministically merges WAL shard texts into one single-writer WAL.
///
/// Every input must carry a header and the headers must agree. Record
/// lines are keyed by their WAL v4 `seq` number: the merge orders them by
/// sequence, with a later input winning a sequence collision (a retried
/// cell supersedes the attempt it replaced). A torn final line in any
/// input is dropped, exactly as [`load`] would. Supervisor event lines are
/// not merged — they have no sequence numbers and remain advisory to the
/// stream that recorded them.
///
/// The output is byte-for-byte the WAL a single writer would have
/// produced for the same records: header line, then each surviving record
/// line verbatim in sequence order.
pub fn merge_shards(texts: &[&str]) -> Result<String, String> {
    let _merge_span = anneal_core::metrics::span("merge");
    let mut meta: Option<WalMeta> = None;
    let mut by_seq: std::collections::BTreeMap<u64, String> = std::collections::BTreeMap::new();
    for (shard_idx, text) in texts.iter().enumerate() {
        let lines: Vec<&str> = text.lines().collect();
        let n = lines.len();
        for (i, line) in lines.iter().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let last = i + 1 == n;
            // A parseable header that *disagrees* is a real conflict, not
            // a torn tail — check it before the torn-line tolerance below
            // (a shard may hold nothing but its header line).
            if i == 0 {
                if let Ok(value) = Json::parse(line) {
                    if value.get("wal").is_some() {
                        let this = meta_from_json(&value)?;
                        match meta {
                            None => meta = Some(this),
                            Some(first) if first == this => {}
                            Some(first) => {
                                return Err(format!(
                                    "shard {shard_idx}: header disagrees with shard 0: \
                                     {this:?} vs {first:?}"
                                ));
                            }
                        }
                        continue;
                    }
                }
            }
            let parsed: Result<(), String> = (|| {
                let value = Json::parse(line)?;
                if value.get("sup").is_some() {
                    event_from_json(&value)?;
                } else {
                    // Validate the whole record, not just the seq field — a
                    // half-written line must count as torn, not merge.
                    record_from_json(&value)?;
                    let seq = field_u64(&value, "seq")
                        .map_err(|e| format!("record without a mergeable seq: {e}"))?;
                    by_seq.insert(seq, line.to_string());
                }
                Ok(())
            })();
            match parsed {
                Ok(()) => {}
                Err(_) if last => {}
                Err(e) => {
                    return Err(format!("shard {shard_idx}: corrupt line {}: {e}", i + 1));
                }
            }
        }
    }
    let meta = meta.ok_or("no shard carried a WAL header")?;
    let mut out = meta.header_line();
    out.push('\n');
    for line in by_seq.values() {
        out.push_str(line);
        out.push('\n');
    }
    Ok(out)
}

/// Maps a parsed stop string back onto the `&'static str` labels
/// [`anneal_core::StopReason::as_str`] produces.
fn stop_label(s: &str) -> Result<&'static str, String> {
    match s {
        "budget" => Ok("budget"),
        "equilibrium" => Ok("equilibrium"),
        other => Err(format!("unknown stop reason `{other}`")),
    }
}

fn field<'a>(v: &'a Json, key: &str) -> Result<&'a Json, String> {
    v.get(key).ok_or_else(|| format!("missing field `{key}`"))
}

fn field_str<'a>(v: &'a Json, key: &str) -> Result<&'a str, String> {
    field(v, key)?
        .as_str()
        .ok_or_else(|| format!("field `{key}` is not a string"))
}

fn field_u64(v: &Json, key: &str) -> Result<u64, String> {
    field(v, key)?.as_u64_checked()
}

/// `null` maps back to NaN (the serializer writes non-finite floats as
/// `null`).
fn field_f64(v: &Json, key: &str) -> Result<f64, String> {
    match field(v, key)? {
        Json::Null => Ok(f64::NAN),
        other => other
            .as_f64()
            .ok_or_else(|| format!("field `{key}` is not a number")),
    }
}

/// [`field_f64`] for fields older schema versions did not write: absent
/// and `null` both map to NaN ("no data").
fn optional_f64(v: &Json, key: &str) -> Result<f64, String> {
    match v.get(key) {
        None | Some(Json::Null) => Ok(f64::NAN),
        Some(other) => other
            .as_f64()
            .ok_or_else(|| format!("field `{key}` is not a number")),
    }
}

/// A parsed JSON value. Numbers keep their source lexeme so `u64` seeds
/// round-trip without `f64` precision loss and `f64` values round-trip
/// bitwise.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A number, as its source lexeme.
    Num(String),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object (insertion order preserved).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses one JSON value; trailing garbage is an error.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing garbage at byte {}", p.pos));
        }
        Ok(value)
    }

    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The number as `f64`, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(lexeme) => f64::from_str(lexeme).ok(),
            _ => None,
        }
    }

    /// The number as `u64` (exact, no float round-trip), with an error
    /// naming the problem otherwise.
    pub fn as_u64_checked(&self) -> Result<u64, String> {
        match self {
            Json::Num(lexeme) => u64::from_str(lexeme)
                .map_err(|_| format!("number `{lexeme}` is not an unsigned integer")),
            _ => Err("value is not a number".to_string()),
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The fields in insertion order, if this is an object. Strict parsers
    /// (the job-spec parser) walk this to reject unknown keys instead of
    /// silently ignoring a client's typo.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(fields) => Some(fields),
            _ => None,
        }
    }
}

fn field_arr<'a>(v: &'a Json, key: &str) -> Result<&'a [Json], String> {
    field(v, key)?
        .as_arr()
        .ok_or_else(|| format!("field `{key}` is not an array"))
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b' ' | b'\t' | b'\n' | b'\r') = self.bytes.get(self.pos) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            fields.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| "non-ASCII \\u escape".to_string())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape `{hex}`"))?;
                            self.pos += 4;
                            // The serializer only emits \u for control
                            // characters (< 0x20); surrogate pairs are not
                            // produced and not supported.
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| format!("invalid \\u code point {code:#x}"))?,
                            );
                        }
                        other => return Err(format!("bad escape `\\{}`", other as char)),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 character (the input is a &str, so
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    /// Consumes a run of ASCII digits, returning how many there were.
    fn digit_run(&mut self) -> usize {
        let start = self.pos;
        while let Some(b'0'..=b'9') = self.peek() {
            self.pos += 1;
        }
        self.pos - start
    }

    /// Scans one number by the JSON grammar — `-? digits (. digits)?
    /// ([eE] [+-]? digits)?` — stopping at the first byte that cannot
    /// continue it. Malformed tokens like `1e+`, `--5` or a bare `-` fail
    /// here with a positioned message instead of being consumed whole and
    /// surfacing as an opaque `from_str` failure; a token like `1-2` stops
    /// after `1` and the `-` is rejected by the caller as trailing input.
    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        if self.digit_run() == 0 {
            return Err(format!("expected digit in number at byte {}", self.pos));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if self.digit_run() == 0 {
                return Err(format!(
                    "expected digit after `.` in number at byte {}",
                    self.pos
                ));
            }
        }
        if let Some(b'e' | b'E') = self.peek() {
            self.pos += 1;
            if let Some(b'+' | b'-') = self.peek() {
                self.pos += 1;
            }
            if self.digit_run() == 0 {
                return Err(format!("expected digit in exponent at byte {}", self.pos));
            }
        }
        let lexeme = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("ASCII number lexeme")
            .to_string();
        if f64::from_str(&lexeme).is_err() {
            return Err(format!("bad number `{lexeme}` at byte {start}"));
        }
        Ok(Json::Num(lexeme))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anneal_core::Budget;

    #[test]
    fn parser_handles_the_basics() {
        let v = Json::parse(r#"{"a":1,"b":[true,null,"x\n\"y"],"c":{"d":-2.5e3}}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_u64_checked().unwrap(), 1);
        let arr = v.get("b").unwrap().as_arr().unwrap();
        assert_eq!(arr[0], Json::Bool(true));
        assert_eq!(arr[1], Json::Null);
        assert_eq!(arr[2].as_str().unwrap(), "x\n\"y");
        assert_eq!(
            v.get("c").unwrap().get("d").unwrap().as_f64(),
            Some(-2500.0)
        );
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("{\"a\":}").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{} trailing").is_err());
        assert!(Json::parse("\"unterminated").is_err());
    }

    #[test]
    fn u64_seeds_round_trip_exactly() {
        let big = u64::MAX - 3;
        let v = Json::parse(&format!("{{\"seed\":{big}}}")).unwrap();
        assert_eq!(v.get("seed").unwrap().as_u64_checked().unwrap(), big);
    }

    fn sample_record(reduction: f64) -> CellRecord {
        let mut r = CellRecord::empty(
            CellKey::new("table4.1", "g = 1", "6 sec"),
            "Figure1".into(),
            Budget::evaluations(1500),
            1985,
        );
        r.instances = 2;
        r.reduction = reduction;
        r.evals = 2718;
        r.wall_ms = 12.75;
        r.accepted_downhill = 5;
        r.attempts = 3;
        r.per_temp.push(TempAggregate {
            temp: 0,
            evals: 2718,
            proposals: 8,
            accepted_downhill: 5,
            accepted_uphill: 2,
            rejected_uphill: 1,
            ended_budget: 2,
            ended_equilibrium: 0,
            ended_exchange: 1,
            swap_attempts: 4,
            swap_accepts: 2,
            temperature: 3.25,
            target_acceptance: 0.625,
        });
        r.per_instance.push(InstanceRecord {
            index: 0,
            seed: 42,
            reduction: reduction / 2.0,
            evals: 1359,
            wall_ms: 6.5,
            stop: "budget",
            accepted_downhill: 5,
            accepted_uphill: 2,
            rejected_uphill: 1,
        });
        r.failures.push(CellFailure {
            instance: 1,
            seed: 43,
            message: "boom \"quoted\"\nline2".into(),
        });
        r
    }

    #[test]
    fn cell_record_round_trips_bitwise() {
        // An f64 with a long shortest-repr: exercises exact round-trip.
        let reduction = 123.456_789_012_345_67_f64;
        let original = sample_record(reduction);
        let parsed = record_from_json(&Json::parse(&original.to_json()).unwrap()).unwrap();
        assert_eq!(parsed, original);
        assert_eq!(parsed.reduction.to_bits(), original.reduction.to_bits());
        assert_eq!(
            parsed.per_instance[0].reduction.to_bits(),
            original.per_instance[0].reduction.to_bits()
        );
    }

    #[test]
    fn nan_round_trips_as_nan() {
        let parsed = record_from_json(&Json::parse(&sample_record(f64::NAN).to_json()).unwrap());
        assert!(parsed.unwrap().reduction.is_nan());
    }

    #[test]
    fn wal_header_round_trips() {
        let meta = WalMeta::new(1985, 40);
        let cp = load_str(&format!(
            "{}\n{}\n",
            meta.header_line(),
            sample_record(1.0).to_json()
        ))
        .unwrap();
        assert_eq!(cp.meta, Some(meta));
        assert_eq!(cp.cells.len(), 1);
        assert!(!cp.torn);
    }

    #[test]
    fn torn_final_line_is_dropped_and_flagged() {
        let meta = WalMeta::new(1, 1);
        let full = sample_record(1.0).to_json();
        let torn = &full[..full.len() / 2];
        let cp = load_str(&format!("{}\n{full}\n{torn}", meta.header_line())).unwrap();
        assert!(cp.torn);
        assert_eq!(cp.cells.len(), 1);
    }

    #[test]
    fn corruption_before_the_end_is_an_error() {
        let text = format!("not json at all\n{}\n", sample_record(1.0).to_json());
        let err = load_str(&text).unwrap_err();
        assert!(err.contains("line 1"), "{err}");
    }

    #[test]
    fn headerless_telemetry_loads_with_no_meta() {
        let cp = load_str(&format!("{}\n", sample_record(2.0).to_json())).unwrap();
        assert_eq!(cp.meta, None);
        assert_eq!(cp.cells.len(), 1);
    }

    #[test]
    fn newer_wal_version_is_refused() {
        let line = format!("{{\"wal\":\"{WAL_SCHEMA}\",\"version\":999,\"seed\":1,\"scale\":1}}");
        // A lone unparseable-as-meta final line counts as torn, so append a
        // record to force the header through the strict path.
        let text = format!("{line}\n{}\n", sample_record(1.0).to_json());
        let err = load_str(&text).unwrap_err();
        assert!(err.contains("newer"), "{err}");
    }

    #[test]
    fn empty_file_is_an_empty_checkpoint() {
        let cp = load_str("").unwrap();
        assert!(cp.meta.is_none() && cp.cells.is_empty() && !cp.torn);
    }

    #[test]
    fn attempts_field_defaults_for_old_logs() {
        let mut json = sample_record(1.0).to_json();
        // Strip the attempts field to simulate a pre-WAL record.
        json = json.replace("\"attempts\":3,", "");
        let parsed = record_from_json(&Json::parse(&json).unwrap()).unwrap();
        assert_eq!(parsed.attempts, 1);
    }

    #[test]
    fn per_temp_proposals_default_for_old_logs() {
        let mut json = sample_record(1.0).to_json();
        // Strip the proposals field to simulate a pre-PR-4 record.
        json = json.replace("\"proposals\":8,", "");
        let parsed = record_from_json(&Json::parse(&json).unwrap()).unwrap();
        assert_eq!(parsed.per_temp[0].proposals, 0);
    }

    #[test]
    fn swap_fields_default_for_v1_logs() {
        let mut json = sample_record(1.0).to_json();
        // Strip the v2 fields to simulate a v1 (pre-replica-exchange) record.
        json = json.replace(
            ",\"ended_exchange\":1,\"swap_attempts\":4,\"swap_accepts\":2",
            "",
        );
        let parsed = record_from_json(&Json::parse(&json).unwrap()).unwrap();
        assert_eq!(parsed.per_temp[0].ended_exchange, 0);
        assert_eq!(parsed.per_temp[0].swap_attempts, 0);
        assert_eq!(parsed.per_temp[0].swap_accepts, 0);
    }

    #[test]
    fn temperature_fields_default_for_v2_logs() {
        let mut json = sample_record(1.0).to_json();
        // Strip the v3 fields to simulate a v2 (pre-adaptive) record.
        json = json.replace(",\"temperature\":3.25,\"target_acceptance\":0.625", "");
        assert!(!json.contains("temperature"), "strip actually removed them");
        let parsed = record_from_json(&Json::parse(&json).unwrap()).unwrap();
        assert!(parsed.per_temp[0].temperature.is_nan());
        assert!(parsed.per_temp[0].target_acceptance.is_nan());
    }

    #[test]
    fn nan_temperature_sums_round_trip_as_nan() {
        let mut original = sample_record(1.0);
        original.per_temp[0].target_acceptance = f64::NAN;
        let json = original.to_json();
        assert!(json.contains("\"target_acceptance\":null"), "{json}");
        let parsed = record_from_json(&Json::parse(&json).unwrap()).unwrap();
        assert!(parsed.per_temp[0].target_acceptance.is_nan());
        assert_eq!(
            parsed.per_temp[0].temperature.to_bits(),
            original.per_temp[0].temperature.to_bits()
        );
        // The bitwise TempAggregate equality keeps NaN reflexive, so whole
        // records still compare equal after the round trip.
        assert_eq!(parsed, original);
    }

    #[test]
    fn older_wal_headers_still_load() {
        for version in [1u64, 2, 3] {
            let line = format!(
                "{{\"wal\":\"{WAL_SCHEMA}\",\"version\":{version},\"seed\":9,\"scale\":4}}"
            );
            let cp = load_str(&format!("{line}\n{}\n", sample_record(1.0).to_json())).unwrap();
            assert_eq!(
                cp.meta,
                Some(WalMeta {
                    version,
                    seed: 9,
                    scale: 4
                })
            );
            assert_eq!(cp.cells.len(), 1);
        }
    }

    #[test]
    fn v1_wal_headers_still_load() {
        let line = format!("{{\"wal\":\"{WAL_SCHEMA}\",\"version\":1,\"seed\":9,\"scale\":4}}");
        let cp = load_str(&format!("{line}\n{}\n", sample_record(1.0).to_json())).unwrap();
        assert_eq!(
            cp.meta,
            Some(WalMeta {
                version: 1,
                seed: 9,
                scale: 4
            })
        );
        assert_eq!(cp.cells.len(), 1);
    }

    #[test]
    fn wal_line_splices_a_seq_prefix_the_loader_ignores() {
        let original = sample_record(2.5);
        let line = wal_line(&original.to_json(), 7);
        assert!(line.starts_with("{\"seq\":7,\"table\":"), "{line}");
        let meta = WalMeta::new(1, 1);
        let cp = load_str(&format!("{}\n{line}\n", meta.header_line())).unwrap();
        assert_eq!(cp.cells.len(), 1);
        assert_eq!(cp.cells[0], original, "seq is transparent to the loader");
    }

    #[test]
    fn event_lines_load_separately_from_records() {
        let meta = WalMeta::new(1, 1);
        let event = SupervisorEvent::new(
            "restart",
            Some(CellKey::new("table4.1", "g = 1", "6 sec")),
            "worker exited with signal 9",
        );
        let drain = SupervisorEvent::new("drain", None, "SIGTERM");
        // Events interleave with records mid-stream, not only at the end.
        let text = format!(
            "{}\n{}\n{}\n{}\n",
            meta.header_line(),
            event.to_json(),
            wal_line(&sample_record(1.0).to_json(), 0),
            drain.to_json()
        );
        let cp = load_str(&text).unwrap();
        assert!(!cp.torn);
        assert_eq!(cp.cells.len(), 1);
        assert_eq!(cp.events, vec![event, drain]);
    }

    #[test]
    fn pre_v4_wals_load_with_no_events() {
        let line = format!("{{\"wal\":\"{WAL_SCHEMA}\",\"version\":3,\"seed\":9,\"scale\":4}}");
        let cp = load_str(&format!("{line}\n{}\n", sample_record(1.0).to_json())).unwrap();
        assert!(cp.events.is_empty());
        assert_eq!(cp.cells.len(), 1);
    }

    fn numbered_line(i: u64) -> String {
        let mut r = sample_record(i as f64 + 0.125);
        r.key.table = format!("t{i}");
        wal_line(&r.to_json(), i)
    }

    fn with_header(meta: &WalMeta, lines: &[String]) -> String {
        let mut out = meta.header_line();
        out.push('\n');
        for line in lines {
            out.push_str(line);
            out.push('\n');
        }
        out
    }

    #[test]
    fn merge_reorders_by_seq_and_drops_torn_tails() {
        let meta = WalMeta::new(1985, 40);
        let lines: Vec<String> = (0..5).map(numbered_line).collect();
        // Interleaved, out-of-order shards + a torn tail on the second.
        let shard_a = with_header(&meta, &[lines[4].clone(), lines[0].clone()]);
        let mut shard_b = with_header(&meta, &[lines[2].clone(), lines[1].clone()]);
        shard_b.push_str(&lines[3][..lines[3].len() / 2]);
        let shard_c = with_header(&meta, &[lines[3].clone()]);
        let merged = merge_shards(&[&shard_a, &shard_b, &shard_c]).unwrap();
        assert_eq!(merged, with_header(&meta, &lines), "byte-for-byte");
    }

    #[test]
    fn merge_collision_is_last_wins() {
        let meta = WalMeta::new(1, 1);
        let old = wal_line(&sample_record(1.0).to_json(), 0);
        let new = wal_line(&sample_record(2.0).to_json(), 0);
        let merged = merge_shards(&[
            &with_header(&meta, std::slice::from_ref(&old)),
            &with_header(&meta, std::slice::from_ref(&new)),
        ])
        .unwrap();
        assert_eq!(merged, with_header(&meta, &[new]));
    }

    #[test]
    fn merge_rejects_disagreeing_headers_and_missing_seq() {
        let a = with_header(&WalMeta::new(1, 1), &[]);
        let b = with_header(&WalMeta::new(2, 1), &[]);
        let err = merge_shards(&[&a, &b]).unwrap_err();
        assert!(err.contains("disagrees"), "{err}");

        // A seq-less record anywhere but a torn tail cannot be merged.
        let noseq = format!(
            "{}{}\n{}\n",
            with_header(&WalMeta::new(1, 1), &[]),
            sample_record(1.0).to_json(),
            numbered_line(0)
        );
        let err = merge_shards(&[&noseq]).unwrap_err();
        assert!(err.contains("seq"), "{err}");

        assert!(merge_shards(&["\n"]).is_err(), "headerless input");
    }

    mod merge_properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// Merging arbitrarily interleaved (and possibly torn)
            /// per-worker shards reproduces the single-writer WAL
            /// byte-for-byte.
            #[test]
            fn merged_shards_match_the_single_writer_wal(
                assign in proptest::collection::vec(0..3usize, 1..12),
                torn_choice in 0..4usize,
            ) {
                // 3 = no torn shard; 0..3 = which shard gets a torn tail.
                let torn_shard = (torn_choice < 3).then_some(torn_choice);
                let meta = WalMeta::new(1985, 40);
                let lines: Vec<String> =
                    (0..assign.len() as u64).map(numbered_line).collect();
                let single_writer = with_header(&meta, &lines);

                let mut shards: [Vec<String>; 3] = Default::default();
                // Deterministic interleave: reverse order, so shards are
                // genuinely out of sequence relative to the single writer.
                for (i, &s) in assign.iter().enumerate().rev() {
                    shards[s].push(lines[i].clone());
                }
                let mut texts: Vec<String> =
                    shards.iter().map(|s| with_header(&meta, s)).collect();
                if let Some(t) = torn_shard {
                    // A torn final line (always strictly partial) is
                    // dropped; the record it duplicates still arrives
                    // intact from its own shard.
                    texts[t].push_str(&lines[0][..lines[0].len() / 2]);
                }
                let shard_refs: Vec<&str> =
                    texts.iter().map(String::as_str).collect();
                prop_assert_eq!(merge_shards(&shard_refs).unwrap(), single_writer);
            }
        }
    }

    #[test]
    fn open_shard_writes_one_header_across_reopens() {
        let path =
            std::env::temp_dir().join(format!("anneal-shard-test-{}.jsonl", std::process::id()));
        let path_str = path.to_str().unwrap();
        let _ = std::fs::remove_file(&path);
        let meta = WalMeta::new(7, 2);
        {
            let mut w = open_shard(path_str, &meta).unwrap();
            writeln!(w, "{}", numbered_line(0)).unwrap();
            w.flush().unwrap();
        }
        {
            let mut w = open_shard(path_str, &meta).unwrap();
            writeln!(w, "{}", numbered_line(1)).unwrap();
            w.flush().unwrap();
        }
        let text = std::fs::read_to_string(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        assert_eq!(
            text.lines().filter(|l| l.contains("\"wal\"")).count(),
            1,
            "header written once: {text}"
        );
        let cp = load_str(&text).unwrap();
        assert_eq!(cp.meta, Some(meta));
        assert_eq!(cp.cells.len(), 2, "append across reopens kept both");
    }

    #[test]
    fn number_scanner_rejects_malformed_tokens_with_position() {
        // Tokens the old scanner consumed whole and failed on opaquely.
        for (text, expect) in [
            ("{\"a\":1e+}", "exponent"),
            ("{\"a\":-}", "digit in number"),
            ("{\"a\":1e}", "exponent"),
            ("{\"a\":--5}", "digit in number"),
            ("{\"a\":1.}", "digit after `.`"),
        ] {
            let err = Json::parse(text).unwrap_err();
            assert!(err.contains(expect), "`{text}` → `{err}`");
            assert!(err.contains("byte"), "`{text}` error is positioned: {err}");
        }
        // Grammar stops after a complete number; what follows is rejected
        // by the caller with its own position.
        let err = Json::parse("{\"a\":1.2.3}").unwrap_err();
        assert!(err.contains("byte 8"), "{err}");
        let err = Json::parse("{\"a\":1-2}").unwrap_err();
        assert!(err.contains("byte 6"), "{err}");
        // Healthy lexemes still parse, including negative exponents.
        let v = Json::parse("{\"a\":-2.5e-3}").unwrap();
        assert_eq!(v.get("a").unwrap().as_f64(), Some(-0.0025));
    }
}
