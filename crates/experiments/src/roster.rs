//! The method roster: the paper's 20 g-function classes (plus \[COHO83a\])
//! with their tuned temperatures, in the paper's table order.

use anneal_core::GFunction;

/// Per-instance context a method may need when instantiating its g function
/// (the \[COHO83a\] function depends on the instance's net count).
#[derive(Debug, Clone, Copy)]
pub struct MethodCtx {
    /// Number of nets `m` in the instance.
    pub n_nets: usize,
}

/// A named acceptance-function factory.
pub struct MethodSpec {
    name: &'static str,
    make: Box<dyn Fn(&MethodCtx) -> GFunction + Send + Sync>,
}

impl MethodSpec {
    /// A method with a context-independent g function.
    pub fn new(name: &'static str, g: impl Fn() -> GFunction + Send + Sync + 'static) -> Self {
        MethodSpec {
            name,
            make: Box::new(move |_| g()),
        }
    }

    /// A method whose g function depends on the instance.
    pub fn with_ctx(
        name: &'static str,
        g: impl Fn(&MethodCtx) -> GFunction + Send + Sync + 'static,
    ) -> Self {
        MethodSpec {
            name,
            make: Box::new(g),
        }
    }

    /// The display name (matches the paper's table rows).
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Instantiates the g function for an instance.
    pub fn g(&self, ctx: &MethodCtx) -> GFunction {
        (self.make)(ctx)
    }
}

impl std::fmt::Debug for MethodSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MethodSpec")
            .field("name", &self.name)
            .finish()
    }
}

/// Tuned temperature parameters per g class, found with the §4.2.1 procedure
/// (`repro tuning` re-derives them; see EXPERIMENTS.md).
///
/// The paper's GOLA instances have random-arrangement densities around
/// 80–90 and uphill deltas concentrated on {0, 1, 2}, which sets the scale
/// of each class's usable temperature.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TunedY {
    /// Class 1 (Metropolis) `Y₁`.
    pub metropolis: f64,
    /// Class 2 (six-temperature annealing) starting `Y₁` (ratio 0.9).
    pub annealing6: f64,
    /// Classes 5–7 (`Y·h(i)^d`) `Y₁` by degree.
    pub poly_current: [f64; 3],
    /// Class 8 (`(e^{h/Y}-1)/(e-1)`) `Y₁`.
    pub exp_current: f64,
    /// Classes 9–11 starting `Y₁` by degree.
    pub poly_current6: [f64; 3],
    /// Class 12 starting `Y₁`.
    pub exp_current6: f64,
    /// Classes 13–15 (`Y/Δ^d`) `Y₁` by degree.
    pub poly_diff: [f64; 3],
    /// Class 16 (`(e^{Y/Δ}-1)/(e-1)`) `Y₁`.
    pub exp_diff: f64,
    /// Classes 17–19 starting `Y₁` by degree.
    pub poly_diff6: [f64; 3],
    /// Class 20 starting `Y₁`.
    pub exp_diff6: f64,
}

impl TunedY {
    /// Temperatures tuned on the paper's 30-instance GOLA training set
    /// (15 elements, 150 two-pin nets) with the Figure-1 strategy, as in
    /// §4.2.1 — the winners of two full-scale `repro tuning` sweeps
    /// (5 paper-seconds per instance, ×⅛…×8 multiplicative grid, recentered
    /// between sweeps).
    pub fn gola_defaults() -> Self {
        TunedY {
            metropolis: 0.75,
            annealing6: 1.0,
            poly_current: [3.125e-4, 3.75e-6, 5e-8],
            exp_current: 2400.0,
            poly_current6: [3.125e-4, 7.5e-6, 5e-8],
            exp_current6: 2400.0,
            poly_diff: [0.05, 0.1, 0.2],
            exp_diff: 0.175,
            poly_diff6: [0.125, 0.25, 0.25],
            exp_diff6: 0.225,
        }
    }
}

impl Default for TunedY {
    fn default() -> Self {
        Self::gola_defaults()
    }
}

/// The full Table-4.1 roster: \[COHO83a\] plus all 20 g classes, in the
/// paper's row order. (The Goto constructive is not a g class and is handled
/// by the table runners directly.)
pub fn full_roster(t: TunedY) -> Vec<MethodSpec> {
    let mut roster = vec![
        MethodSpec::with_ctx("[COHO83a]", |ctx| GFunction::coho83a(ctx.n_nets)),
        MethodSpec::new("Metropolis", move || GFunction::metropolis(t.metropolis)),
        MethodSpec::new("Six Temperature Annealing", move || {
            GFunction::six_temp_annealing(t.annealing6)
        }),
        MethodSpec::new("g = 1", GFunction::unit),
        MethodSpec::new("Two level g", GFunction::two_level),
        MethodSpec::new("Linear", move || {
            GFunction::poly_current(1, t.poly_current[0])
        }),
        MethodSpec::new("Quadratic", move || {
            GFunction::poly_current(2, t.poly_current[1])
        }),
        MethodSpec::new("Cubic", move || {
            GFunction::poly_current(3, t.poly_current[2])
        }),
        MethodSpec::new("Exponential", move || GFunction::exp_current(t.exp_current)),
        MethodSpec::new("6 Linear", move || {
            GFunction::poly_current_six(1, t.poly_current6[0])
        }),
        MethodSpec::new("6 Quadratic", move || {
            GFunction::poly_current_six(2, t.poly_current6[1])
        }),
        MethodSpec::new("6 Cubic", move || {
            GFunction::poly_current_six(3, t.poly_current6[2])
        }),
        MethodSpec::new("6 Exponential", move || {
            GFunction::exp_current_six(t.exp_current6)
        }),
    ];
    roster.extend(diff_classes(t));
    roster
}

/// The reduced roster used by Tables 4.2(a)–(d): the paper drops classes
/// 5–12 "because of their poor performance on the GOLA instances" (§4.3.1),
/// leaving 13 methods.
pub fn reduced_roster(t: TunedY) -> Vec<MethodSpec> {
    let mut roster = vec![
        MethodSpec::with_ctx("[COHO83a]", |ctx| GFunction::coho83a(ctx.n_nets)),
        MethodSpec::new("Metropolis", move || GFunction::metropolis(t.metropolis)),
        MethodSpec::new("Six Temperature Annealing", move || {
            GFunction::six_temp_annealing(t.annealing6)
        }),
        MethodSpec::new("g = 1", GFunction::unit),
        MethodSpec::new("Two level g", GFunction::two_level),
    ];
    roster.extend(diff_classes(t));
    roster
}

/// The subset of [`full_roster`] with a multi-rung temperature ladder —
/// the methods replica exchange (`--strategy replica-exchange`) can temper
/// over. A single-rung method has no swap partner; it still *runs* under
/// the strategy (degenerating to a plain Metropolis chain), but these are
/// the rows where tempering does anything, so the replica-exchange smoke
/// cells and bench kernels draw from here.
pub fn replica_exchange_roster(t: TunedY) -> Vec<MethodSpec> {
    const LADDERED: [&str; 5] = [
        "Six Temperature Annealing",
        "6 Linear",
        "6 Quadratic",
        "6 Cubic",
        "6 Exponential",
    ];
    full_roster(t)
        .into_iter()
        .filter(|spec| LADDERED.contains(&spec.name()))
        .collect()
}

fn diff_classes(t: TunedY) -> Vec<MethodSpec> {
    vec![
        MethodSpec::new("Linear Diff", move || {
            GFunction::poly_difference(1, t.poly_diff[0])
        }),
        MethodSpec::new("Quadratic Diff", move || {
            GFunction::poly_difference(2, t.poly_diff[1])
        }),
        MethodSpec::new("Cubic Diff", move || {
            GFunction::poly_difference(3, t.poly_diff[2])
        }),
        MethodSpec::new("Exponential Diff", move || {
            GFunction::exp_difference(t.exp_diff)
        }),
        MethodSpec::new("6 Linear Diff", move || {
            GFunction::poly_difference_six(1, t.poly_diff6[0])
        }),
        MethodSpec::new("6 Quadratic Diff", move || {
            GFunction::poly_difference_six(2, t.poly_diff6[1])
        }),
        MethodSpec::new("6 Cubic Diff", move || {
            GFunction::poly_difference_six(3, t.poly_diff6[2])
        }),
        MethodSpec::new("6 Exponential Diff", move || {
            GFunction::exp_difference_six(t.exp_diff6)
        }),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_roster_has_21_methods() {
        // 20 g classes + [COHO83a].
        let r = full_roster(TunedY::default());
        assert_eq!(r.len(), 21);
        let names: Vec<_> = r.iter().map(|m| m.name()).collect();
        assert_eq!(names[0], "[COHO83a]");
        assert!(names.contains(&"g = 1"));
        assert!(names.contains(&"6 Exponential Diff"));
        // No duplicates.
        let mut uniq = names.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), names.len());
    }

    #[test]
    fn replica_exchange_roster_is_entirely_multi_rung() {
        let r = replica_exchange_roster(TunedY::default());
        assert_eq!(r.len(), 5);
        let ctx = MethodCtx { n_nets: 150 };
        for spec in &r {
            let g = spec.g(&ctx);
            assert!(
                g.temperatures() > 1,
                "{}: needs at least two rungs to swap",
                spec.name()
            );
        }
    }

    #[test]
    fn reduced_roster_has_13_methods() {
        let r = reduced_roster(TunedY::default());
        assert_eq!(r.len(), 13);
        let names: Vec<_> = r.iter().map(|m| m.name()).collect();
        assert!(!names.contains(&"Linear"), "classes 5–12 dropped");
        assert!(!names.contains(&"6 Exponential"));
        assert!(names.contains(&"Cubic Diff"));
    }

    #[test]
    fn g_names_match_spec_names() {
        let ctx = MethodCtx { n_nets: 150 };
        for spec in full_roster(TunedY::default()) {
            let g = spec.g(&ctx);
            assert_eq!(g.name(), spec.name(), "constructor name mismatch");
        }
    }

    #[test]
    fn coho_uses_instance_net_count() {
        let spec = MethodSpec::with_ctx("[COHO83a]", |ctx| GFunction::coho83a(ctx.n_nets));
        let g = spec.g(&MethodCtx { n_nets: 150 });
        // p = min(h/(m+5), .9) → at h = 31, p = 31/155 = 0.2.
        assert!((g.probability(0, 31.0, 32.0) - 0.2).abs() < 1e-12);
    }
}
