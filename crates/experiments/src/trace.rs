//! Per-cell chain-trace files: the JSONL serialization of
//! [`anneal_core::ChainTrace`] that `repro --trace DIR` writes and the
//! `report` tool reads back.
//!
//! Each table cell gets one file in the trace directory, named from its
//! key (`table__method__column.jsonl` after sanitization). The file starts
//! with one versioned header line identifying the cell, followed by one
//! event line per chain event, in instance order. Like the telemetry WAL
//! (see [`checkpoint`](crate::checkpoint)), the header is written and
//! flushed before any fault-injection wrapper is applied, every instance's
//! events go out in a single write, and the parser tolerates a torn final
//! line — so a killed or chaos run still leaves parseable traces.
//!
//! Event lines (all carry the `instance` index):
//!
//! ```text
//! {"event":"run_start","instance":0,"seed":..,"attempt":1,"initial_cost":..,"temperatures":..}
//! {"event":"temp","instance":0,"temp":0,"evals":..,"proposals":..,"accepted_downhill":..,
//!  "accepted_uphill":..,"rejected_uphill":..,"swap_attempts":..,"swap_accepts":..,
//!  "temperature":..,"target_acceptance":..,"ended_by":"budget","wall_ms":..}
//! {"event":"sample","instance":0,"evals":..,"cost":..}
//! {"event":"best","instance":0,"evals":..,"cost":..}
//! {"event":"stop","instance":0,"reason":"budget","evals":..,"final_cost":..,"best_cost":..,
//!  "energy_callbacks":..}
//! ```

use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use anneal_core::{AdvanceReason, ChainTrace, StopReason};

use crate::checkpoint::Json;
use crate::faults::{ChaosWriter, FaultPlan};
use crate::telemetry::CellKey;

/// Schema identifier in a trace file's header line.
pub const TRACE_SCHEMA: &str = "anneal-chain-trace";

/// Current trace format version. Loaders accept this version or older.
///
/// History: v1 had no replica-exchange swap counters on `temp` events;
/// v2 added `swap_attempts`/`swap_accepts` (absent fields load as 0);
/// v3 added `temperature`/`target_acceptance` on `temp` events for the
/// adaptive temperature controller (absent fields load as NaN).
pub const TRACE_VERSION: u64 = 3;

/// Creates per-cell trace writers under one directory; the `--trace DIR`
/// half of the observability pipeline.
#[derive(Debug)]
pub struct TraceSink {
    dir: PathBuf,
    faults: Option<FaultPlan>,
}

impl TraceSink {
    /// A sink writing under `dir` (created if missing). When `faults`
    /// carries an active I/O fault probability, every cell writer is
    /// wrapped in a [`ChaosWriter`] — headers stay intact either way.
    pub fn new(dir: impl Into<PathBuf>, faults: Option<FaultPlan>) -> Result<Self, String> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)
            .map_err(|e| format!("cannot create trace directory `{}`: {e}", dir.display()))?;
        Ok(TraceSink {
            dir,
            faults: faults.filter(|p| p.io_p > 0.0),
        })
    }

    /// The trace file path for `key`.
    pub fn cell_path(&self, key: &CellKey) -> PathBuf {
        self.dir.join(cell_file_name(key))
    }

    /// Opens the trace file for one cell, writing and flushing its header
    /// line. Chaos wrapping (if armed) applies only to event lines.
    pub fn cell_writer(
        &self,
        key: &CellKey,
        strategy: &str,
        budget: &str,
        base_seed: u64,
    ) -> Result<CellTraceWriter, String> {
        let path = self.cell_path(key);
        let file = std::fs::File::create(&path)
            .map_err(|e| format!("cannot create trace file `{}`: {e}", path.display()))?;
        let mut writer = std::io::BufWriter::new(file);
        writeln!(writer, "{}", header_line(key, strategy, budget, base_seed))
            .and_then(|()| writer.flush())
            .map_err(|e| format!("cannot write trace header to `{}`: {e}", path.display()))?;
        let boxed: Box<dyn Write + Send> = match self.faults {
            Some(plan) => Box::new(ChaosWriter::new(writer, plan)),
            None => Box::new(writer),
        };
        Ok(CellTraceWriter {
            inner: Mutex::new(boxed),
        })
    }
}

/// `table__method__column.jsonl` with every non-filename character mapped
/// to `_` (keeps `.` and `-`), so cell keys like `"g = 1"` become stable,
/// shell-safe names.
pub fn cell_file_name(key: &CellKey) -> String {
    let sanitize = |s: &str| -> String {
        s.chars()
            .map(|c| {
                if c.is_ascii_alphanumeric() || c == '.' || c == '-' {
                    c
                } else {
                    '_'
                }
            })
            .collect()
    };
    format!(
        "{}__{}__{}.jsonl",
        sanitize(&key.table),
        sanitize(&key.method),
        sanitize(&key.column)
    )
}

fn header_line(key: &CellKey, strategy: &str, budget: &str, base_seed: u64) -> String {
    format!(
        "{{\"trace\":\"{TRACE_SCHEMA}\",\"version\":{TRACE_VERSION},\
         \"table\":\"{}\",\"method\":\"{}\",\"column\":\"{}\",\
         \"strategy\":\"{}\",\"budget\":\"{}\",\"base_seed\":{}}}",
        escape(&key.table),
        escape(&key.method),
        escape(&key.column),
        escape(strategy),
        escape(budget),
        base_seed
    )
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// JSON has no NaN/Infinity; map them to null (mirrors the WAL serializer).
fn num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// One cell's trace file, shared across the runner's instance threads.
pub struct CellTraceWriter {
    inner: Mutex<Box<dyn Write + Send>>,
}

impl std::fmt::Debug for CellTraceWriter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CellTraceWriter").finish()
    }
}

impl CellTraceWriter {
    /// Appends every event of one instance's [`ChainTrace`] and flushes.
    /// All lines go out in a single write, so a crash tears at most the
    /// final instance. Returns `Err` on I/O failure (the runner counts it
    /// and keeps going — tracing must never take down the run).
    pub fn write_instance(
        &self,
        instance: usize,
        seed: u64,
        attempt: u32,
        trace: &ChainTrace,
    ) -> Result<(), String> {
        let text = instance_lines(instance, seed, attempt, trace);
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner
            .write_all(text.as_bytes())
            .and_then(|()| inner.flush())
            .map_err(|e| format!("trace write for instance {instance} failed: {e}"))
    }
}

/// The event lines (newline-terminated) for one instance's trace.
pub fn instance_lines(instance: usize, seed: u64, attempt: u32, trace: &ChainTrace) -> String {
    let mut s = String::with_capacity(256 + 64 * (trace.samples.len() + trace.stages.len()));
    s.push_str(&format!(
        "{{\"event\":\"run_start\",\"instance\":{instance},\"seed\":{seed},\
         \"attempt\":{attempt},\"initial_cost\":{},\"temperatures\":{}}}\n",
        num(trace.initial_cost),
        trace.temperatures
    ));
    for stage in &trace.stages {
        let t = &stage.stats;
        s.push_str(&format!(
            "{{\"event\":\"temp\",\"instance\":{instance},\"temp\":{},\"evals\":{},\
             \"proposals\":{},\"accepted_downhill\":{},\"accepted_uphill\":{},\
             \"rejected_uphill\":{},\"swap_attempts\":{},\"swap_accepts\":{},\
             \"temperature\":{},\"target_acceptance\":{},\
             \"ended_by\":\"{}\",\"wall_ms\":{}}}\n",
            t.temp,
            t.evals,
            t.proposals,
            t.accepted_downhill,
            t.accepted_uphill,
            t.rejected_uphill,
            t.swap_attempts,
            t.swap_accepts,
            num(t.temperature),
            num(t.target_acceptance),
            t.ended_by.as_str(),
            num(stage.wall.as_secs_f64() * 1e3)
        ));
    }
    for &(evals, cost) in &trace.samples {
        s.push_str(&format!(
            "{{\"event\":\"sample\",\"instance\":{instance},\"evals\":{evals},\"cost\":{}}}\n",
            num(cost)
        ));
    }
    for &(evals, cost) in &trace.bests {
        s.push_str(&format!(
            "{{\"event\":\"best\",\"instance\":{instance},\"evals\":{evals},\"cost\":{}}}\n",
            num(cost)
        ));
    }
    if let Some(stop) = &trace.stop {
        s.push_str(&format!(
            "{{\"event\":\"stop\",\"instance\":{instance},\"reason\":\"{}\",\"evals\":{},\
             \"final_cost\":{},\"best_cost\":{},\"energy_callbacks\":{}}}\n",
            stop.reason.as_str(),
            stop.evals,
            num(stop.final_cost),
            num(stop.best_cost),
            trace.energy_events
        ));
    }
    s
}

/// A trace file's parsed header.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceMeta {
    /// Trace format version.
    pub version: u64,
    /// Cell identity.
    pub key: CellKey,
    /// Strategy name.
    pub strategy: String,
    /// Per-instance budget label.
    pub budget: String,
    /// The instance set's base seed.
    pub base_seed: u64,
}

/// One parsed trace event line.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// A chain started.
    RunStart {
        /// Instance index.
        instance: usize,
        /// Chain seed.
        seed: u64,
        /// Run attempt (1 = first try).
        attempt: u32,
        /// Cost of the starting state.
        initial_cost: f64,
        /// Temperature count `k` of the acceptance schedule.
        temperatures: usize,
    },
    /// A temperature stage closed.
    Temp {
        /// Instance index.
        instance: usize,
        /// Temperature index.
        temp: usize,
        /// Evaluations charged during the stage.
        evals: u64,
        /// Proposals made during the stage.
        proposals: u64,
        /// Downhill acceptances.
        accepted_downhill: u64,
        /// Uphill acceptances.
        accepted_uphill: u64,
        /// Uphill rejections.
        rejected_uphill: u64,
        /// Replica-exchange swaps attempted at this rung (0 pre-v2 and
        /// outside the replica-exchange strategy).
        swap_attempts: u64,
        /// Replica-exchange swaps accepted.
        swap_accepts: u64,
        /// Controlled stage temperature (trace v3; NaN in older traces
        /// and for schedule-free acceptance functions).
        temperature: f64,
        /// Adaptive-controller target acceptance rate for the stage
        /// (trace v3; NaN when no controller ran).
        target_acceptance: f64,
        /// Why the stage ended.
        ended_by: AdvanceReason,
        /// Wall-clock milliseconds spent in the stage.
        wall_ms: f64,
    },
    /// A sampled point on the energy trajectory.
    Sample {
        /// Instance index.
        instance: usize,
        /// Evaluations charged when sampled.
        evals: u64,
        /// Current cost.
        cost: f64,
    },
    /// The best-so-far cost improved.
    Best {
        /// Instance index.
        instance: usize,
        /// Evaluations charged at the improvement.
        evals: u64,
        /// The new best cost.
        cost: f64,
    },
    /// The chain stopped.
    Stop {
        /// Instance index.
        instance: usize,
        /// Why the chain stopped.
        reason: StopReason,
        /// Total evaluations charged.
        evals: u64,
        /// Cost of the final state.
        final_cost: f64,
        /// Best cost seen.
        best_cost: f64,
        /// Total energy callbacks fired (sampling kept a subset).
        energy_callbacks: u64,
    },
}

impl TraceEvent {
    /// The instance index the event belongs to.
    pub fn instance(&self) -> usize {
        match self {
            TraceEvent::RunStart { instance, .. }
            | TraceEvent::Temp { instance, .. }
            | TraceEvent::Sample { instance, .. }
            | TraceEvent::Best { instance, .. }
            | TraceEvent::Stop { instance, .. } => *instance,
        }
    }
}

/// A loaded cell trace: header, events in file order, and whether a torn
/// final line was dropped.
#[derive(Debug)]
pub struct CellTrace {
    /// The file's header.
    pub meta: TraceMeta,
    /// Every intact event, in append order.
    pub events: Vec<TraceEvent>,
    /// Whether the final line was torn (incomplete write) and dropped.
    pub torn: bool,
}

impl CellTrace {
    /// Event counts by kind: `(run_starts, temps, samples, bests, stops)`.
    pub fn counts(&self) -> (usize, usize, usize, usize, usize) {
        let mut c = (0, 0, 0, 0, 0);
        for e in &self.events {
            match e {
                TraceEvent::RunStart { .. } => c.0 += 1,
                TraceEvent::Temp { .. } => c.1 += 1,
                TraceEvent::Sample { .. } => c.2 += 1,
                TraceEvent::Best { .. } => c.3 += 1,
                TraceEvent::Stop { .. } => c.4 += 1,
            }
        }
        c
    }
}

/// Loads one trace file, tolerating a torn final line.
pub fn load(path: &Path) -> Result<CellTrace, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read trace `{}`: {e}", path.display()))?;
    parse_str(&text).map_err(|e| format!("trace `{}`: {e}", path.display()))
}

/// [`load`] on in-memory trace text.
pub fn parse_str(text: &str) -> Result<CellTrace, String> {
    let lines: Vec<&str> = text.lines().collect();
    let mut meta = None;
    let mut events = Vec::new();
    let mut torn = false;
    let n = lines.len();
    for (i, line) in lines.iter().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let last = i + 1 == n;
        let parsed: Result<(), String> = (|| {
            let value = Json::parse(line)?;
            if i == 0 {
                meta = Some(meta_from_json(&value)?);
            } else {
                events.push(event_from_json(&value)?);
            }
            Ok(())
        })();
        match parsed {
            Ok(()) => {}
            // Same WAL discipline as `checkpoint::load_str`: a torn final
            // line is the signature of a killed run, anything earlier is
            // real corruption.
            Err(e) if i == 0 => return Err(format!("bad trace header: {e}")),
            Err(_) if last => torn = true,
            Err(e) => return Err(format!("corrupt event at line {}: {e}", i + 1)),
        }
    }
    let meta = meta.ok_or("empty trace file (no header)")?;
    Ok(CellTrace { meta, events, torn })
}

/// Loads every `*.jsonl` trace in `dir`, sorted by file name. Unparseable
/// files are skipped with a message on stderr rather than failing the
/// whole report.
pub fn load_dir(dir: &Path) -> Result<Vec<CellTrace>, String> {
    let entries = std::fs::read_dir(dir)
        .map_err(|e| format!("cannot read trace directory `{}`: {e}", dir.display()))?;
    let mut paths: Vec<PathBuf> = entries
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|ext| ext == "jsonl"))
        .collect();
    paths.sort();
    let mut traces = Vec::new();
    for path in paths {
        match load(&path) {
            Ok(t) => traces.push(t),
            Err(e) => eprintln!("report: skipping {e}"),
        }
    }
    Ok(traces)
}

fn meta_from_json(v: &Json) -> Result<TraceMeta, String> {
    let schema = v.get("trace").and_then(Json::as_str).unwrap_or_default();
    if schema != TRACE_SCHEMA {
        return Err(format!("unknown trace schema `{schema}`"));
    }
    let version = u64_field(v, "version")?;
    if version > TRACE_VERSION {
        return Err(format!(
            "trace version {version} is newer than supported {TRACE_VERSION}"
        ));
    }
    Ok(TraceMeta {
        version,
        key: CellKey::new(
            str_field(v, "table")?,
            str_field(v, "method")?,
            str_field(v, "column")?,
        ),
        strategy: str_field(v, "strategy")?.to_string(),
        budget: str_field(v, "budget")?.to_string(),
        base_seed: u64_field(v, "base_seed")?,
    })
}

fn event_from_json(v: &Json) -> Result<TraceEvent, String> {
    let instance = u64_field(v, "instance")? as usize;
    match str_field(v, "event")? {
        "run_start" => Ok(TraceEvent::RunStart {
            instance,
            seed: u64_field(v, "seed")?,
            attempt: u64_field(v, "attempt")? as u32,
            initial_cost: f64_field(v, "initial_cost")?,
            temperatures: u64_field(v, "temperatures")? as usize,
        }),
        "temp" => Ok(TraceEvent::Temp {
            instance,
            temp: u64_field(v, "temp")? as usize,
            evals: u64_field(v, "evals")?,
            proposals: u64_field(v, "proposals")?,
            accepted_downhill: u64_field(v, "accepted_downhill")?,
            accepted_uphill: u64_field(v, "accepted_uphill")?,
            rejected_uphill: u64_field(v, "rejected_uphill")?,
            // Absent in v1 traces (pre replica-exchange).
            swap_attempts: v.get("swap_attempts").map_or(Ok(0), Json::as_u64_checked)?,
            swap_accepts: v.get("swap_accepts").map_or(Ok(0), Json::as_u64_checked)?,
            // Absent before v3 (pre adaptive temperature control).
            temperature: optional_f64_field(v, "temperature")?,
            target_acceptance: optional_f64_field(v, "target_acceptance")?,
            ended_by: str_field(v, "ended_by")?.parse()?,
            wall_ms: f64_field(v, "wall_ms")?,
        }),
        "sample" => Ok(TraceEvent::Sample {
            instance,
            evals: u64_field(v, "evals")?,
            cost: f64_field(v, "cost")?,
        }),
        "best" => Ok(TraceEvent::Best {
            instance,
            evals: u64_field(v, "evals")?,
            cost: f64_field(v, "cost")?,
        }),
        "stop" => Ok(TraceEvent::Stop {
            instance,
            reason: str_field(v, "reason")?.parse()?,
            evals: u64_field(v, "evals")?,
            final_cost: f64_field(v, "final_cost")?,
            best_cost: f64_field(v, "best_cost")?,
            energy_callbacks: u64_field(v, "energy_callbacks")?,
        }),
        other => Err(format!("unknown event kind `{other}`")),
    }
}

fn str_field<'a>(v: &'a Json, key: &str) -> Result<&'a str, String> {
    v.get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| format!("missing string field `{key}`"))
}

fn u64_field(v: &Json, key: &str) -> Result<u64, String> {
    v.get(key)
        .ok_or_else(|| format!("missing field `{key}`"))?
        .as_u64_checked()
}

fn f64_field(v: &Json, key: &str) -> Result<f64, String> {
    match v.get(key) {
        Some(Json::Null) => Ok(f64::NAN),
        Some(other) => other
            .as_f64()
            .ok_or_else(|| format!("field `{key}` is not a number")),
        None => Err(format!("missing field `{key}`")),
    }
}

/// [`f64_field`] for fields older trace versions did not write: absent and
/// `null` both map to NaN.
fn optional_f64_field(v: &Json, key: &str) -> Result<f64, String> {
    match v.get(key) {
        None | Some(Json::Null) => Ok(f64::NAN),
        Some(other) => other
            .as_f64()
            .ok_or_else(|| format!("field `{key}` is not a number")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anneal_core::{StageTrace, StopTrace, TempStats};
    use std::time::Duration;

    fn key() -> CellKey {
        CellKey::new("table4.1", "g = 1", "6 sec")
    }

    fn sample_trace() -> ChainTrace {
        let mut trace = ChainTrace {
            initial_cost: 100.0,
            temperatures: 2,
            stages: Vec::new(),
            samples: vec![(1, 100.0), (5, 80.0)],
            bests: vec![(1, 100.0), (5, 80.0)],
            stop: Some(StopTrace {
                reason: StopReason::Budget,
                evals: 10,
                final_cost: 80.0,
                best_cost: 80.0,
            }),
            energy_events: 10,
        };
        trace.stages.push(StageTrace {
            stats: TempStats {
                temp: 0,
                temperature: 2.5,
                target_acceptance: 0.4,
                evals: 10,
                proposals: 10,
                accepted_downhill: 3,
                accepted_uphill: 2,
                rejected_uphill: 5,
                swap_attempts: 0,
                swap_accepts: 0,
                ended_by: AdvanceReason::Budget,
            },
            wall: Duration::from_millis(4),
        });
        trace
    }

    #[test]
    fn file_name_is_sanitized_and_stable() {
        let name = cell_file_name(&key());
        assert_eq!(name, "table4.1__g___1__6_sec.jsonl");
    }

    #[test]
    fn instance_round_trips_through_parse() {
        let header = header_line(&key(), "Figure1", "1500 evals", 1985);
        let body = instance_lines(0, 42, 1, &sample_trace());
        let parsed = parse_str(&format!("{header}\n{body}")).unwrap();
        assert_eq!(parsed.meta.key, key());
        assert_eq!(parsed.meta.version, TRACE_VERSION);
        assert_eq!(parsed.meta.strategy, "Figure1");
        assert_eq!(parsed.counts(), (1, 1, 2, 2, 1));
        assert!(!parsed.torn);
        match &parsed.events[1] {
            TraceEvent::Temp {
                proposals,
                ended_by,
                temperature,
                target_acceptance,
                ..
            } => {
                assert_eq!(*proposals, 10);
                assert_eq!(*ended_by, AdvanceReason::Budget);
                assert_eq!(temperature.to_bits(), 2.5f64.to_bits());
                assert_eq!(target_acceptance.to_bits(), 0.4f64.to_bits());
            }
            other => panic!("expected temp event, got {other:?}"),
        }
    }

    #[test]
    fn v1_temp_events_load_with_zero_swap_fields() {
        let header = format!(
            "{{\"trace\":\"{TRACE_SCHEMA}\",\"version\":1,\"table\":\"t\",\"method\":\"m\",\
             \"column\":\"c\",\"strategy\":\"Figure1\",\"budget\":\"b\",\"base_seed\":1}}"
        );
        let temp = "{\"event\":\"temp\",\"instance\":0,\"temp\":0,\"evals\":9,\
             \"proposals\":9,\"accepted_downhill\":3,\"accepted_uphill\":2,\
             \"rejected_uphill\":4,\"ended_by\":\"budget\",\"wall_ms\":1.5}";
        let parsed = parse_str(&format!("{header}\n{temp}\n")).unwrap();
        assert_eq!(parsed.meta.version, 1);
        match &parsed.events[0] {
            TraceEvent::Temp {
                swap_attempts,
                swap_accepts,
                temperature,
                target_acceptance,
                ..
            } => {
                assert_eq!(*swap_attempts, 0);
                assert_eq!(*swap_accepts, 0);
                assert!(temperature.is_nan(), "absent pre-v3 field loads as NaN");
                assert!(target_acceptance.is_nan());
            }
            other => panic!("expected temp event, got {other:?}"),
        }
    }

    #[test]
    fn v2_temp_events_load_with_nan_temperature() {
        let header = format!(
            "{{\"trace\":\"{TRACE_SCHEMA}\",\"version\":2,\"table\":\"t\",\"method\":\"m\",\
             \"column\":\"c\",\"strategy\":\"Figure1\",\"budget\":\"b\",\"base_seed\":1}}"
        );
        let temp = "{\"event\":\"temp\",\"instance\":0,\"temp\":0,\"evals\":9,\
             \"proposals\":9,\"accepted_downhill\":3,\"accepted_uphill\":2,\
             \"rejected_uphill\":4,\"swap_attempts\":1,\"swap_accepts\":1,\
             \"ended_by\":\"budget\",\"wall_ms\":1.5}";
        let parsed = parse_str(&format!("{header}\n{temp}\n")).unwrap();
        assert_eq!(parsed.meta.version, 2);
        match &parsed.events[0] {
            TraceEvent::Temp {
                swap_attempts,
                temperature,
                target_acceptance,
                ..
            } => {
                assert_eq!(*swap_attempts, 1);
                assert!(temperature.is_nan());
                assert!(target_acceptance.is_nan());
            }
            other => panic!("expected temp event, got {other:?}"),
        }
    }

    #[test]
    fn torn_final_line_is_tolerated() {
        let header = header_line(&key(), "Figure1", "1500 evals", 1985);
        let body = instance_lines(0, 42, 1, &sample_trace());
        let torn_at = header.len() + 1 + body.len() / 2;
        let text = format!("{header}\n{body}");
        let parsed = parse_str(&text[..torn_at]).unwrap();
        assert!(parsed.torn);
    }

    #[test]
    fn corruption_in_the_middle_is_an_error() {
        let header = header_line(&key(), "Figure1", "1500 evals", 1985);
        let err = parse_str(&format!("{header}\nnot json\n{{\"event\":\"x\"}}\n")).unwrap_err();
        assert!(err.contains("line 2"), "{err}");
    }

    #[test]
    fn bad_header_is_an_error() {
        assert!(parse_str("").is_err());
        assert!(parse_str("{\"wal\":\"anneal-repro-wal\"}\n").is_err());
        let newer = format!("{{\"trace\":\"{TRACE_SCHEMA}\",\"version\":999}}\n");
        assert!(parse_str(&newer).unwrap_err().contains("newer"));
    }

    #[test]
    fn sink_writes_header_then_events() {
        let dir = std::env::temp_dir().join(format!("anneal-trace-test-{}", std::process::id()));
        let sink = TraceSink::new(&dir, None).unwrap();
        let writer = sink
            .cell_writer(&key(), "Figure1", "1500 evals", 1985)
            .unwrap();
        writer.write_instance(0, 42, 1, &sample_trace()).unwrap();
        let loaded = load(&sink.cell_path(&key())).unwrap();
        assert_eq!(loaded.meta.base_seed, 1985);
        assert_eq!(loaded.counts(), (1, 1, 2, 2, 1));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn chaos_sink_keeps_the_header_intact() {
        let dir = std::env::temp_dir().join(format!("anneal-trace-chaos-{}", std::process::id()));
        let plan = FaultPlan::parse("seed=9,io=1.0").unwrap();
        let sink = TraceSink::new(&dir, Some(plan)).unwrap();
        let writer = sink
            .cell_writer(&key(), "Figure1", "1500 evals", 1985)
            .unwrap();
        // Every event write fails, but the header survives.
        assert!(writer.write_instance(0, 42, 1, &sample_trace()).is_err());
        let loaded = load(&sink.cell_path(&key())).unwrap();
        assert_eq!(loaded.meta.key, key());
        assert_eq!(loaded.events.len(), 0);
        std::fs::remove_dir_all(&dir).ok();
    }
}
