//! The paper's instance sets (§4.2.1, §4.3.1), regenerated deterministically
//! from a base seed.

use anneal_core::derive_seed;
use anneal_linarr::LinearArrangementProblem;
use anneal_netlist::generator::{random_multi_pin, random_two_pin, PAPER_INSTANCES};
use rand::{rngs::StdRng, SeedableRng};

/// Base seed of the default experiment suite (the publication year).
pub const DEFAULT_SEED: u64 = 1985;

/// NOLA net sizes: the paper only says "150 nets", but its starting random
/// arrangements sum to density 4254 (≈ 142 per instance of 150 nets), which
/// pins down fairly large nets; pin counts uniform in 2..=10 reproduce that
/// starting density (documented substitution, DESIGN.md).
pub const NOLA_PIN_RANGE: (usize, usize) = (2, 10);

/// The 30 GOLA instances: 15 elements, 150 two-pin nets each (§4.2.1).
pub fn gola_paper_set(seed: u64) -> Vec<LinearArrangementProblem> {
    (0..PAPER_INSTANCES)
        .map(|i| {
            let mut rng = StdRng::seed_from_u64(derive_seed(seed, i as u64));
            LinearArrangementProblem::new(random_two_pin(15, 150, &mut rng))
        })
        .collect()
}

/// The 30 NOLA instances: 15 elements, 150 multi-pin nets each (§4.3.1).
pub fn nola_paper_set(seed: u64) -> Vec<LinearArrangementProblem> {
    (0..PAPER_INSTANCES)
        .map(|i| {
            let mut rng = StdRng::seed_from_u64(derive_seed(seed.wrapping_add(0x4E4F), i as u64));
            LinearArrangementProblem::new(random_multi_pin(
                15,
                150,
                NOLA_PIN_RANGE.0,
                NOLA_PIN_RANGE.1,
                &mut rng,
            ))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gola_set_shape() {
        let set = gola_paper_set(DEFAULT_SEED);
        assert_eq!(set.len(), 30);
        for p in &set {
            assert_eq!(p.netlist().n_elements(), 15);
            assert_eq!(p.netlist().n_nets(), 150);
            assert!(p.is_gola());
        }
    }

    #[test]
    fn nola_set_shape() {
        let set = nola_paper_set(DEFAULT_SEED);
        assert_eq!(set.len(), 30);
        let mut any_multi = false;
        for p in &set {
            assert_eq!(p.netlist().n_nets(), 150);
            any_multi |= !p.is_gola();
        }
        assert!(any_multi, "NOLA instances must contain multi-pin nets");
    }

    #[test]
    fn sets_are_deterministic_and_distinct() {
        let a = gola_paper_set(7);
        let b = gola_paper_set(7);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.netlist(), y.netlist());
        }
        let c = gola_paper_set(8);
        assert_ne!(a[0].netlist(), c[0].netlist());
        // GOLA and NOLA sets differ even at the same seed.
        let n = nola_paper_set(7);
        assert_ne!(a[0].netlist(), n[0].netlist());
    }
}
