//! Markdown analysis reports over a run's telemetry WAL and chain traces,
//! plus benchmark-snapshot comparison — the logic behind the `report`
//! binary, split out so every section is unit-testable.
//!
//! Two modes:
//!
//! * [`render_report`] joins a WAL (see [`checkpoint`](crate::checkpoint))
//!   with optional per-cell traces (see [`trace`](crate::trace)) into a
//!   Markdown document: suite overview, acceptance-rate-vs-temperature
//!   tables per method, time-per-temperature breakdowns, energy-trajectory
//!   sparklines, and a section checking the paper's headline claim.
//! * [`compare_benchmarks`] + [`render_compare`] diff two `BENCH_core.json`
//!   snapshots (schema in BENCHMARKS.md), flagging kernels that got slower
//!   than a threshold.

use std::collections::HashMap;
use std::fmt::Write as _;

use crate::checkpoint::{Checkpoint, Json};
use crate::telemetry::{CellRecord, TempAggregate};
use crate::trace::{CellTrace, TraceEvent};

/// Block-drawing ramp used for sparklines.
const SPARKS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];

/// A compact sparkline over `values` (empty input → empty string). A flat
/// series renders at the floor; non-finite points render as spaces.
pub fn sparkline(values: &[f64]) -> String {
    let (lo, hi) = values
        .iter()
        .filter(|v| v.is_finite())
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &v| {
            (lo.min(v), hi.max(v))
        });
    values
        .iter()
        .map(|&v| {
            if !v.is_finite() {
                ' '
            } else if hi <= lo {
                SPARKS[0]
            } else {
                let t = (v - lo) / (hi - lo);
                SPARKS[((t * 7.0).round() as usize).min(7)]
            }
        })
        .collect()
}

/// Acceptance rate (percent) of one per-temperature aggregate: accepted
/// moves over proposals. Falls back to the acceptance-event total as the
/// denominator for pre-v1.1 WAL records that lack proposal counts; `None`
/// when nothing happened at the temperature.
pub fn acceptance_rate(agg: &TempAggregate) -> Option<f64> {
    let accepted = agg.accepted_downhill + agg.accepted_uphill;
    let denom = if agg.proposals > 0 {
        agg.proposals
    } else {
        accepted + agg.rejected_uphill
    };
    (denom > 0).then(|| 100.0 * accepted as f64 / denom as f64)
}

/// Sums per-temperature aggregates element-wise (the longer schedule
/// decides the length).
fn merge_per_temp(into: &mut Vec<TempAggregate>, from: &[TempAggregate]) {
    if into.len() < from.len() {
        into.resize(from.len(), TempAggregate::default());
        for (i, agg) in into.iter_mut().enumerate() {
            agg.temp = i;
        }
    }
    for (agg, t) in into.iter_mut().zip(from) {
        agg.evals += t.evals;
        agg.proposals += t.proposals;
        agg.accepted_downhill += t.accepted_downhill;
        agg.accepted_uphill += t.accepted_uphill;
        agg.rejected_uphill += t.rejected_uphill;
        agg.ended_budget += t.ended_budget;
        agg.ended_equilibrium += t.ended_equilibrium;
        agg.ended_exchange += t.ended_exchange;
        agg.swap_attempts += t.swap_attempts;
        agg.swap_accepts += t.swap_accepts;
        agg.temperature += t.temperature;
        agg.target_acceptance += t.target_acceptance;
    }
}

/// Number of stages closed at an aggregate's temperature index.
fn closed_stages(agg: &TempAggregate) -> u64 {
    agg.ended_budget + agg.ended_equilibrium + agg.ended_exchange
}

/// Mean controlled stage temperature of one aggregate: the temperature sum
/// over the closed-stage count. `None` when the sum is non-finite (a
/// pre-v3 WAL loads it as NaN) or no stage closed.
pub fn mean_temperature(agg: &TempAggregate) -> Option<f64> {
    let stages = closed_stages(agg);
    (stages > 0 && agg.temperature.is_finite()).then(|| agg.temperature / stages as f64)
}

/// Mean adaptive-controller target acceptance (percent) of one aggregate;
/// `None` when no controller ran (the sum is NaN) or no stage closed.
pub fn mean_target_acceptance(agg: &TempAggregate) -> Option<f64> {
    let stages = closed_stages(agg);
    (stages > 0 && agg.target_acceptance.is_finite())
        .then(|| 100.0 * agg.target_acceptance / stages as f64)
}

/// `v` to `precision` decimals, or `n/a` for the NaN/∞ that nulls in old
/// WAL schemas load as — a report must never print `NaN`.
fn fin(v: f64, precision: usize) -> String {
    if v.is_finite() {
        format!("{v:.precision$}")
    } else {
        "n/a".to_string()
    }
}

/// Groups `items` by a key, preserving first-seen order (the WAL keeps the
/// tables' row/column order, which the report should mirror).
fn group_by<'a, T, K, F>(items: impl IntoIterator<Item = &'a T>, key: F) -> Vec<(K, Vec<&'a T>)>
where
    K: PartialEq,
    F: Fn(&'a T) -> K,
{
    let mut groups: Vec<(K, Vec<&'a T>)> = Vec::new();
    for item in items {
        let k = key(item);
        match groups.iter_mut().find(|(g, _)| *g == k) {
            Some((_, v)) => v.push(item),
            None => groups.push((k, vec![item])),
        }
    }
    groups
}

/// Renders the Markdown report for a loaded WAL and any matching traces.
pub fn render_report(cp: &Checkpoint, traces: &[CellTrace]) -> String {
    let mut out = String::with_capacity(4096);
    out.push_str("# Annealing run report\n\n");
    overview(&mut out, cp);
    for (table, cells) in group_by(&cp.cells, |c| c.key.table.clone()) {
        let _ = writeln!(out, "## {table}\n");
        acceptance_section(&mut out, &cells);
        temperature_section(&mut out, &cells);
        swap_section(&mut out, &cells);
        claims_section(&mut out, &cells);
        let table_traces: Vec<&CellTrace> = traces
            .iter()
            .filter(|t| t.meta.key.table == table)
            .collect();
        time_section(&mut out, &table_traces);
        energy_section(&mut out, &table_traces);
    }
    supervisor_section(&mut out, cp);
    failures_section(&mut out, &cp.cells);
    out
}

/// Process-supervision history: worker restarts, circuit-breaker trips and
/// signal drains. Pre-v4 WALs predate supervisor events, so the section
/// honestly reports `n/a` instead of implying a clean supervised run.
fn supervisor_section(out: &mut String, cp: &Checkpoint) {
    out.push_str("## Supervisor events\n\n");
    let pre_v4 = cp.meta.as_ref().is_some_and(|m| m.version < 4);
    if pre_v4 {
        out.push_str("n/a — this WAL predates supervisor events (v4).\n\n");
        return;
    }
    if cp.events.is_empty() {
        out.push_str("None: no worker restarts, breaker trips or signal drains.\n\n");
        return;
    }
    let count = |kind: &str| cp.events.iter().filter(|e| e.kind == kind).count();
    let _ = writeln!(
        out,
        "{} worker restart(s), {} breaker trip(s), {} signal drain(s).\n",
        count("restart"),
        count("breaker"),
        count("drain")
    );
    for event in &cp.events {
        match &event.cell {
            Some(cell) => {
                let _ = writeln!(out, "- {} `{}` — {}", event.kind, cell, event.detail);
            }
            None => {
                let _ = writeln!(out, "- {} — {}", event.kind, event.detail);
            }
        }
    }
    out.push('\n');
}

fn overview(out: &mut String, cp: &Checkpoint) {
    if let Some(meta) = &cp.meta {
        let _ = writeln!(
            out,
            "Suite: seed {}, scale {} (WAL v{}).",
            meta.seed, meta.scale, meta.version
        );
    }
    let evals: u64 = cp.cells.iter().map(|c| c.evals).sum();
    let wall_s: f64 = cp.cells.iter().map(|c| c.wall_ms).sum::<f64>() / 1e3;
    let failed = cp.cells.iter().filter(|c| !c.ok()).count();
    let _ = writeln!(
        out,
        "{} cells, {evals} evaluations, {} s of chain time, {failed} failed.{}\n",
        cp.cells.len(),
        fin(wall_s, 1),
        if cp.torn {
            " The WAL ended in a torn record (interrupted run)."
        } else {
            ""
        }
    );
}

/// Acceptance rate vs temperature, one row per method, aggregated over the
/// table's budget columns.
fn acceptance_section(out: &mut String, cells: &[&CellRecord]) {
    let methods = group_by(cells.iter().copied(), |c| c.key.method.clone());
    let k = cells.iter().map(|c| c.per_temp.len()).max().unwrap_or(0);
    if k == 0 {
        return;
    }
    out.push_str("### Acceptance rate vs temperature\n\n");
    out.push_str(
        "Accepted moves as a percentage of proposals, per temperature index, \
         aggregated over the table's budget columns.\n\n",
    );
    out.push_str("| Method |");
    for t in 0..k {
        let _ = write!(out, " t{t} |");
    }
    out.push('\n');
    out.push_str("|---|");
    out.push_str(&"---:|".repeat(k));
    out.push('\n');
    for (method, cells) in &methods {
        let mut merged: Vec<TempAggregate> = Vec::new();
        for c in cells {
            merge_per_temp(&mut merged, &c.per_temp);
        }
        let _ = write!(out, "| {method} |");
        for t in 0..k {
            match merged.get(t).and_then(acceptance_rate) {
                Some(rate) => {
                    let _ = write!(out, " {rate:.1}% |");
                }
                None => out.push_str(" — |"),
            }
        }
        out.push('\n');
    }
    out.push('\n');
}

/// Controlled stage temperature vs stage index, with the adaptive
/// controller's acceptance targets next to the observed rates. Omitted when
/// no cell carries stage temperatures (pre-v3 WALs load them as NaN).
fn temperature_section(out: &mut String, cells: &[&CellRecord]) {
    if !cells
        .iter()
        .any(|c| c.per_temp.iter().any(|t| mean_temperature(t).is_some()))
    {
        return;
    }
    let methods = group_by(cells.iter().copied(), |c| c.key.method.clone());
    let k = cells.iter().map(|c| c.per_temp.len()).max().unwrap_or(0);
    out.push_str("### Stage temperature and controller targets\n\n");
    out.push_str(
        "Mean controlled temperature per stage, aggregated over the table's \
         budget columns. Where the adaptive controller ran, the cell also \
         shows observed acceptance against the controller's target \
         (`obs%→tgt%`).\n\n",
    );
    out.push_str("| Method |");
    for t in 0..k {
        let _ = write!(out, " t{t} |");
    }
    out.push('\n');
    out.push_str("|---|");
    out.push_str(&"---:|".repeat(k));
    out.push('\n');
    for (method, cells) in &methods {
        let mut merged: Vec<TempAggregate> = Vec::new();
        for c in cells {
            merge_per_temp(&mut merged, &c.per_temp);
        }
        let _ = write!(out, "| {method} |");
        for t in 0..k {
            match merged.get(t).and_then(mean_temperature) {
                Some(temp) => {
                    let _ = write!(out, " {}", fin(temp, 3));
                    if let Some(target) = merged.get(t).and_then(mean_target_acceptance) {
                        let observed = merged
                            .get(t)
                            .and_then(acceptance_rate)
                            .map_or("n/a".to_string(), |r| format!("{r:.0}%"));
                        let _ = write!(out, " ({observed}→{target:.0}%)");
                    }
                    out.push_str(" |");
                }
                None => out.push_str(" — |"),
            }
        }
        out.push('\n');
    }
    out.push('\n');
}

/// Replica-exchange swap acceptance vs temperature: swaps accepted over
/// swaps attempted at each rung (the lower member of each adjacent pair),
/// aggregated over a method's budget columns. Omitted when no cell in the
/// table attempted a swap — non-tempering strategies and pre-v2 WALs.
fn swap_section(out: &mut String, cells: &[&CellRecord]) {
    if !cells
        .iter()
        .any(|c| c.per_temp.iter().any(|t| t.swap_attempts > 0))
    {
        return;
    }
    let methods = group_by(cells.iter().copied(), |c| c.key.method.clone());
    let k = cells.iter().map(|c| c.per_temp.len()).max().unwrap_or(0);
    out.push_str("### Replica-exchange swap acceptance vs temperature\n\n");
    out.push_str(
        "Accepted swaps as a percentage of attempts at each rung (attempts \
         are counted on the colder member of the pair, so the hottest rung \
         shows no attempts).\n\n",
    );
    out.push_str("| Method |");
    for t in 0..k {
        let _ = write!(out, " t{t} |");
    }
    out.push('\n');
    out.push_str("|---|");
    out.push_str(&"---:|".repeat(k));
    out.push('\n');
    for (method, cells) in &methods {
        let mut merged: Vec<TempAggregate> = Vec::new();
        for c in cells {
            merge_per_temp(&mut merged, &c.per_temp);
        }
        let _ = write!(out, "| {method} |");
        for t in 0..k {
            match merged.get(t) {
                Some(agg) if agg.swap_attempts > 0 => {
                    let rate = 100.0 * agg.swap_accepts as f64 / agg.swap_attempts as f64;
                    let _ = write!(
                        out,
                        " {rate:.1}% ({}/{}) |",
                        agg.swap_accepts, agg.swap_attempts
                    );
                }
                _ => out.push_str(" — |"),
            }
        }
        out.push('\n');
    }
    out.push('\n');
}

/// The paper's headline comparison: how the trivial `g = 1` acceptance
/// function fares against tuned annealing, per budget column (§4.2.2 claims
/// they are competitive at equal cost).
fn claims_section(out: &mut String, cells: &[&CellRecord]) {
    const BASELINES: [&str; 2] = ["Six Temperature Annealing", "Metropolis"];
    let find = |method: &str, column: &str| -> Option<f64> {
        cells
            .iter()
            .find(|c| c.key.method == method && c.key.column == column)
            .map(|c| c.reduction)
    };
    let mut rows = String::new();
    for (column, _) in group_by(cells.iter().copied(), |c| c.key.column.clone()) {
        let Some(unit) = find("g = 1", &column) else {
            continue;
        };
        for baseline in BASELINES {
            if let Some(b) = find(baseline, &column) {
                // A null reduction (old-WAL field) loads as NaN: neither
                // side can win, and the numbers render as `n/a`.
                let verdict = if !unit.is_finite() || !b.is_finite() {
                    "n/a"
                } else if unit >= b {
                    "g = 1 wins"
                } else {
                    "annealing wins"
                };
                let _ = writeln!(
                    rows,
                    "| {column} | {baseline} | {} | {} | {verdict} |",
                    fin(unit, 0),
                    fin(b, 0)
                );
            }
        }
    }
    if rows.is_empty() {
        return;
    }
    out.push_str("### Paper claim: g = 1 vs tuned annealing\n\n");
    out.push_str("| Column | Baseline | g = 1 reduction | Baseline reduction | Outcome |\n");
    out.push_str("|---|---|---:|---:|---|\n");
    out.push_str(&rows);
    out.push('\n');
}

/// Wall time per temperature index, aggregated over a table's traces.
/// Per-stage p50/p99 come from a log-linear histogram of the individual
/// stage walls; a temperature index with no samples renders `n/a`
/// ([`Histogram::try_quantile`](anneal_core::metrics::Histogram::try_quantile)
/// distinguishes "no samples" from "all zero").
fn time_section(out: &mut String, traces: &[&CellTrace]) {
    use anneal_core::metrics::Histogram;
    let mut wall_by_temp: Vec<f64> = Vec::new();
    let mut hist_by_temp: Vec<Histogram> = Vec::new();
    for trace in traces {
        for event in &trace.events {
            if let TraceEvent::Temp { temp, wall_ms, .. } = event {
                if wall_by_temp.len() <= *temp {
                    wall_by_temp.resize(temp + 1, 0.0);
                    hist_by_temp.resize_with(temp + 1, Histogram::new);
                }
                if wall_ms.is_finite() {
                    wall_by_temp[*temp] += wall_ms;
                    // Microsecond samples: stage walls are often < 1 ms at
                    // small scales, which would all collapse into bucket 0.
                    hist_by_temp[*temp].record((wall_ms * 1e3) as u64);
                }
            }
        }
    }
    let total: f64 = wall_by_temp.iter().sum();
    if total <= 0.0 {
        return;
    }
    let q = |h: &Histogram, q: f64| match h.try_quantile(q) {
        Some(us) => format!("{:.2}", us as f64 / 1e3),
        None => "n/a".to_string(),
    };
    out.push_str("### Time per temperature\n\n");
    out.push_str(
        "| Temperature | Wall time (ms) | p50 stage (ms) | p99 stage (ms) | Share |\n\
         |---|---:|---:|---:|---:|\n",
    );
    for (t, wall) in wall_by_temp.iter().enumerate() {
        let _ = writeln!(
            out,
            "| t{t} | {wall:.1} | {} | {} | {:.1}% |",
            q(&hist_by_temp[t], 0.50),
            q(&hist_by_temp[t], 0.99),
            100.0 * wall / total
        );
    }
    out.push('\n');
}

/// One sparkline per traced cell: instance 0's sampled energy trajectory.
fn energy_section(out: &mut String, traces: &[&CellTrace]) {
    let mut rows = String::new();
    for trace in traces {
        let costs: Vec<f64> = trace
            .events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::Sample {
                    instance: 0, cost, ..
                } => Some(*cost),
                _ => None,
            })
            .collect();
        if costs.len() < 2 {
            continue;
        }
        let _ = writeln!(
            rows,
            "| {} | {} | `{}` | {} → {} |",
            trace.meta.key.method,
            trace.meta.key.column,
            sparkline(&costs),
            fin(costs[0], 0),
            fin(costs[costs.len() - 1], 0)
        );
    }
    if rows.is_empty() {
        return;
    }
    out.push_str("### Energy trajectories (instance 0)\n\n");
    out.push_str("| Method | Column | Energy | First → last sample |\n|---|---|---|---|\n");
    out.push_str(&rows);
    out.push('\n');
}

fn failures_section(out: &mut String, cells: &[CellRecord]) {
    let failed: Vec<&CellRecord> = cells.iter().filter(|c| !c.ok()).collect();
    if failed.is_empty() {
        return;
    }
    out.push_str("## Failures\n\n");
    for cell in failed {
        for f in &cell.failures {
            let _ = writeln!(
                out,
                "- `{}` — instance {} (seed {}, {} attempts): {}",
                cell.key, f.instance, f.seed, cell.attempts, f.message
            );
        }
    }
    out.push('\n');
}

/// One kernel's delta between two benchmark snapshots.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelDelta {
    /// Kernel name.
    pub name: String,
    /// Old median ns/iter (`None` when the kernel is new).
    pub old_ns: Option<f64>,
    /// New median ns/iter.
    pub new_ns: f64,
    /// Relative change in percent (`None` when there is no old value).
    pub delta_pct: Option<f64>,
}

impl KernelDelta {
    /// Whether the kernel got slower than `threshold_pct`.
    pub fn regressed(&self, threshold_pct: f64) -> bool {
        self.delta_pct.is_some_and(|d| d > threshold_pct)
    }
}

/// The result of comparing two benchmark snapshots.
#[derive(Debug)]
pub struct BenchComparison {
    /// Per-kernel deltas, in the new snapshot's order.
    pub deltas: Vec<KernelDelta>,
    /// Kernels present in the old snapshot but missing from the new one.
    pub removed: Vec<String>,
    /// The regression threshold used, in percent.
    pub threshold_pct: f64,
}

impl BenchComparison {
    /// The kernels that got slower than the threshold.
    pub fn regressions(&self) -> Vec<&KernelDelta> {
        self.deltas
            .iter()
            .filter(|d| d.regressed(self.threshold_pct))
            .collect()
    }
}

fn bench_kernels(text: &str, which: &str) -> Result<Vec<(String, f64)>, String> {
    let v = Json::parse(text).map_err(|e| format!("{which} snapshot: {e}"))?;
    let schema = v.get("schema").and_then(Json::as_str).unwrap_or_default();
    if schema != "annealbench-bench-v1" {
        return Err(format!("{which} snapshot has unknown schema `{schema}`"));
    }
    let kernels = v
        .get("kernels")
        .and_then(Json::as_arr)
        .ok_or_else(|| format!("{which} snapshot has no kernels array"))?;
    kernels
        .iter()
        .map(|k| {
            let name = k
                .get("name")
                .and_then(Json::as_str)
                .ok_or_else(|| format!("{which} snapshot has a kernel without a name"))?
                .to_string();
            let ns = k
                .get("ns_per_iter")
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("kernel `{name}` has no ns_per_iter"))?;
            Ok((name, ns))
        })
        .collect()
}

/// Compares two `BENCH_core.json` documents. `threshold_pct` is the slowdown
/// (in percent of the old median) above which a kernel counts as regressed.
pub fn compare_benchmarks(
    old_text: &str,
    new_text: &str,
    threshold_pct: f64,
) -> Result<BenchComparison, String> {
    let old = bench_kernels(old_text, "old")?;
    let new = bench_kernels(new_text, "new")?;
    let old_by_name: HashMap<&str, f64> = old.iter().map(|(n, v)| (n.as_str(), *v)).collect();
    let deltas: Vec<KernelDelta> = new
        .iter()
        .map(|(name, new_ns)| {
            let old_ns = old_by_name.get(name.as_str()).copied();
            KernelDelta {
                name: name.clone(),
                old_ns,
                new_ns: *new_ns,
                delta_pct: old_ns
                    .filter(|&o| o > 0.0)
                    .map(|o| 100.0 * (new_ns - o) / o),
            }
        })
        .collect();
    let removed = old
        .iter()
        .filter(|(n, _)| !new.iter().any(|(m, _)| m == n))
        .map(|(n, _)| n.clone())
        .collect();
    Ok(BenchComparison {
        deltas,
        removed,
        threshold_pct,
    })
}

/// Renders a [`BenchComparison`] as Markdown.
pub fn render_compare(cmp: &BenchComparison) -> String {
    let mut out = String::with_capacity(1024);
    out.push_str("# Benchmark comparison\n\n");
    out.push_str("| Kernel | Old (ns/iter) | New (ns/iter) | Delta | Status |\n");
    out.push_str("|---|---:|---:|---:|---|\n");
    for d in &cmp.deltas {
        let (old, delta, status) = match (d.old_ns, d.delta_pct) {
            (Some(o), Some(pct)) => (
                format!("{o:.1}"),
                format!("{pct:+.1}%"),
                if d.regressed(cmp.threshold_pct) {
                    "**REGRESSED**"
                } else if pct < -cmp.threshold_pct {
                    "improved"
                } else {
                    "ok"
                },
            ),
            _ => ("—".to_string(), "—".to_string(), "new"),
        };
        let _ = writeln!(
            out,
            "| {} | {old} | {:.1} | {delta} | {status} |",
            d.name, d.new_ns
        );
    }
    for name in &cmp.removed {
        let _ = writeln!(out, "| {name} | — | — | — | removed |");
    }
    let regressions = cmp.regressions();
    out.push('\n');
    if regressions.is_empty() {
        let _ = writeln!(
            out,
            "No kernel regressed by more than {:.0}%.",
            cmp.threshold_pct
        );
    } else {
        let _ = writeln!(
            out,
            "**{} kernel(s) regressed by more than {:.0}%.**",
            regressions.len(),
            cmp.threshold_pct
        );
    }
    out
}

/// Escapes a string for embedding in a JSON string literal.
fn esc_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Converts loaded chain traces into Chrome Trace Event JSON (the
/// `{"traceEvents": [...]}` object format), loadable in `chrome://tracing`
/// and Perfetto — the `report --chrome-trace OUT.json` exporter.
///
/// Layout: one pid per table (sorted by name), one tid per
/// `(cell, instance)` within the table (cells sorted by method/column, so
/// replicas line up under their cell), each closed temperature stage as a
/// `"ph":"X"` duration event named `t<temp>`. Trace files carry no
/// absolute timestamps, so each tid's timeline is synthesized by
/// accumulating its own stage walls from zero — stages within a chain are
/// sequential, which is exactly what the chain executed. `ts`/`dur` are
/// microseconds per the Trace Event format.
pub fn chrome_trace_json(traces: &[CellTrace]) -> String {
    let mut tables: Vec<&str> = traces.iter().map(|t| t.meta.key.table.as_str()).collect();
    tables.sort_unstable();
    tables.dedup();

    let mut events: Vec<String> = Vec::new();
    for (ti, table) in tables.iter().enumerate() {
        let pid = ti + 1;
        events.push(format!(
            "{{\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\"name\":\"process_name\",\
             \"args\":{{\"name\":\"{}\"}}}}",
            esc_json(table)
        ));
        let mut cells: Vec<&CellTrace> = traces
            .iter()
            .filter(|t| t.meta.key.table == *table)
            .collect();
        cells.sort_by(|a, b| {
            (&a.meta.key.method, &a.meta.key.column).cmp(&(&b.meta.key.method, &b.meta.key.column))
        });
        let mut tid = 0usize;
        for trace in cells {
            let key = &trace.meta.key;
            // Instance index → that chain's closed stages, in file order.
            let mut instances: std::collections::BTreeMap<usize, Vec<&TraceEvent>> =
                std::collections::BTreeMap::new();
            for event in &trace.events {
                if let TraceEvent::Temp { instance, .. } = event {
                    instances.entry(*instance).or_default().push(event);
                }
            }
            for (instance, stages) in instances {
                tid += 1;
                events.push(format!(
                    "{{\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\"name\":\"thread_name\",\
                     \"args\":{{\"name\":\"{} / {} #{instance}\"}}}}",
                    esc_json(&key.method),
                    esc_json(&key.column)
                ));
                let mut ts_us = 0f64;
                for stage in stages {
                    let TraceEvent::Temp {
                        temp,
                        evals,
                        proposals,
                        ended_by,
                        temperature,
                        wall_ms,
                        ..
                    } = stage
                    else {
                        unreachable!("only Temp events are collected");
                    };
                    let dur_us = if wall_ms.is_finite() {
                        (wall_ms.max(0.0)) * 1e3
                    } else {
                        0.0
                    };
                    let temperature_arg = if temperature.is_finite() {
                        format!(",\"temperature\":{temperature}")
                    } else {
                        String::new()
                    };
                    events.push(format!(
                        "{{\"ph\":\"X\",\"pid\":{pid},\"tid\":{tid},\"ts\":{ts_us:.0},\
                         \"dur\":{dur_us:.0},\"name\":\"t{temp}\",\"cat\":\"stage\",\
                         \"args\":{{\"evals\":{evals},\"proposals\":{proposals},\
                         \"ended_by\":\"{}\"{temperature_arg}}}}}",
                        ended_by.as_str()
                    ));
                    ts_us += dur_us;
                }
            }
        }
    }
    format!(
        "{{\"displayTimeUnit\":\"ms\",\"traceEvents\":[{}]}}",
        events.join(",")
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checkpoint::load_str;
    use crate::telemetry::{CellFailure, CellKey};
    use crate::trace;
    use anneal_core::Budget;

    fn cell(table: &str, method: &str, column: &str, reduction: f64) -> CellRecord {
        let mut r = CellRecord::empty(
            CellKey::new(table, method, column),
            "Figure1".into(),
            Budget::evaluations(1500),
            1985,
        );
        r.instances = 2;
        r.reduction = reduction;
        r.evals = 3000;
        r.wall_ms = 10.0;
        r.per_temp.push(TempAggregate {
            temp: 0,
            evals: 3000,
            proposals: 100,
            accepted_downhill: 40,
            accepted_uphill: 20,
            rejected_uphill: 40,
            ended_budget: 2,
            ended_equilibrium: 0,
            ended_exchange: 0,
            swap_attempts: 0,
            swap_accepts: 0,
            temperature: 4.0,
            target_acceptance: f64::NAN,
        });
        r
    }

    fn checkpoint(cells: Vec<CellRecord>) -> Checkpoint {
        Checkpoint {
            meta: None,
            cells,
            events: Vec::new(),
            torn: false,
        }
    }

    #[test]
    fn sparkline_maps_range_to_ramp() {
        let s = sparkline(&[0.0, 1.0, 2.0, 3.0]);
        assert_eq!(s.chars().count(), 4);
        assert!(s.starts_with('▁') && s.ends_with('█'), "{s}");
        assert_eq!(sparkline(&[5.0, 5.0]), "▁▁", "flat series uses the floor");
        assert_eq!(sparkline(&[]), "");
    }

    #[test]
    fn acceptance_rate_prefers_proposals() {
        let mut agg = TempAggregate {
            proposals: 200,
            accepted_downhill: 30,
            accepted_uphill: 20,
            rejected_uphill: 10,
            ..TempAggregate::default()
        };
        assert_eq!(acceptance_rate(&agg), Some(25.0));
        // A pre-PR-4 record: no proposals tracked.
        agg.proposals = 0;
        assert_eq!(acceptance_rate(&agg), Some(100.0 * 50.0 / 60.0));
        assert_eq!(acceptance_rate(&TempAggregate::default()), None);
    }

    #[test]
    fn report_has_acceptance_rows_for_every_method() {
        let cells = vec![
            cell("table4.1", "g = 1", "6 sec", 2000.0),
            cell("table4.1", "g = 1", "12 sec", 2100.0),
            cell("table4.1", "Metropolis", "6 sec", 1900.0),
        ];
        let report = render_report(&checkpoint(cells), &[]);
        assert!(report.contains("## table4.1"), "{report}");
        assert!(report.contains("### Acceptance rate vs temperature"));
        assert!(report.contains("| g = 1 | 60.0% |"), "{report}");
        assert!(report.contains("| Metropolis | 60.0% |"), "{report}");
    }

    #[test]
    fn report_checks_the_paper_claim() {
        let cells = vec![
            cell("table4.1", "g = 1", "6 sec", 2000.0),
            cell("table4.1", "Metropolis", "6 sec", 1900.0),
            cell("table4.1", "Six Temperature Annealing", "6 sec", 2050.0),
        ];
        let report = render_report(&checkpoint(cells), &[]);
        assert!(report.contains("### Paper claim"), "{report}");
        assert!(
            report.contains("| 6 sec | Metropolis | 2000 | 1900 | g = 1 wins |"),
            "{report}"
        );
        assert!(
            report.contains("| 6 sec | Six Temperature Annealing | 2000 | 2050 | annealing wins |"),
            "{report}"
        );
    }

    #[test]
    fn report_lists_failures() {
        let mut bad = cell("table4.1", "g = 1", "6 sec", 0.0);
        bad.failures.push(CellFailure {
            instance: 1,
            seed: 7,
            message: "boom".into(),
        });
        let report = render_report(&checkpoint(vec![bad]), &[]);
        assert!(report.contains("## Failures"));
        assert!(report.contains("instance 1 (seed 7"), "{report}");
    }

    #[test]
    fn report_renders_trace_sections() {
        let text = "{\"trace\":\"anneal-chain-trace\",\"version\":1,\"table\":\"table4.1\",\
                    \"method\":\"g = 1\",\"column\":\"6 sec\",\"strategy\":\"Figure1\",\
                    \"budget\":\"1500 evals\",\"base_seed\":1985}\n\
                    {\"event\":\"temp\",\"instance\":0,\"temp\":0,\"evals\":10,\"proposals\":10,\
                    \"accepted_downhill\":1,\"accepted_uphill\":1,\"rejected_uphill\":8,\
                    \"ended_by\":\"budget\",\"wall_ms\":3.5}\n\
                    {\"event\":\"sample\",\"instance\":0,\"evals\":1,\"cost\":100}\n\
                    {\"event\":\"sample\",\"instance\":0,\"evals\":5,\"cost\":60}\n";
        let traces = vec![trace::parse_str(text).unwrap()];
        let cells = vec![cell("table4.1", "g = 1", "6 sec", 2000.0)];
        let report = render_report(&checkpoint(cells), &traces);
        assert!(report.contains("### Time per temperature"), "{report}");
        // 3.5 ms lands in the log-linear bucket whose lower bound is
        // 3.328 ms, so both stage quantiles render as 3.33.
        assert!(
            report.contains("| t0 | 3.5 | 3.33 | 3.33 | 100.0% |"),
            "{report}"
        );
        assert!(report.contains("### Energy trajectories"), "{report}");
        assert!(report.contains("100 → 60"), "{report}");
    }

    #[test]
    fn chrome_trace_exporter_matches_the_golden_output() {
        let text = "{\"trace\":\"anneal-chain-trace\",\"version\":1,\"table\":\"table4.1\",\
                    \"method\":\"g = 1\",\"column\":\"6 sec\",\"strategy\":\"Figure1\",\
                    \"budget\":\"1500 evals\",\"base_seed\":1985}\n\
                    {\"event\":\"temp\",\"instance\":0,\"temp\":0,\"evals\":10,\"proposals\":10,\
                    \"accepted_downhill\":1,\"accepted_uphill\":1,\"rejected_uphill\":8,\
                    \"ended_by\":\"budget\",\"wall_ms\":3.5}\n\
                    {\"event\":\"temp\",\"instance\":0,\"temp\":1,\"evals\":20,\"proposals\":25,\
                    \"accepted_downhill\":2,\"accepted_uphill\":0,\"rejected_uphill\":23,\
                    \"temperature\":0.9,\"ended_by\":\"equilibrium\",\"wall_ms\":1.25}\n\
                    {\"event\":\"temp\",\"instance\":1,\"temp\":0,\"evals\":5,\"proposals\":5,\
                    \"accepted_downhill\":1,\"accepted_uphill\":0,\"rejected_uphill\":4,\
                    \"ended_by\":\"budget\",\"wall_ms\":2}\n";
        let traces = vec![trace::parse_str(text).unwrap()];
        let json = chrome_trace_json(&traces);
        let expected = concat!(
            "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[",
            "{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"process_name\",",
            "\"args\":{\"name\":\"table4.1\"}},",
            "{\"ph\":\"M\",\"pid\":1,\"tid\":1,\"name\":\"thread_name\",",
            "\"args\":{\"name\":\"g = 1 / 6 sec #0\"}},",
            "{\"ph\":\"X\",\"pid\":1,\"tid\":1,\"ts\":0,\"dur\":3500,\"name\":\"t0\",",
            "\"cat\":\"stage\",\"args\":{\"evals\":10,\"proposals\":10,",
            "\"ended_by\":\"budget\"}},",
            "{\"ph\":\"X\",\"pid\":1,\"tid\":1,\"ts\":3500,\"dur\":1250,\"name\":\"t1\",",
            "\"cat\":\"stage\",\"args\":{\"evals\":20,\"proposals\":25,",
            "\"ended_by\":\"equilibrium\",\"temperature\":0.9}},",
            "{\"ph\":\"M\",\"pid\":1,\"tid\":2,\"name\":\"thread_name\",",
            "\"args\":{\"name\":\"g = 1 / 6 sec #1\"}},",
            "{\"ph\":\"X\",\"pid\":1,\"tid\":2,\"ts\":0,\"dur\":2000,\"name\":\"t0\",",
            "\"cat\":\"stage\",\"args\":{\"evals\":5,\"proposals\":5,",
            "\"ended_by\":\"budget\"}}",
            "]}"
        );
        assert_eq!(json, expected);
    }

    #[test]
    fn supervisor_section_counts_events() {
        use crate::telemetry::SupervisorEvent;
        let mut cp = checkpoint(vec![cell("table4.1", "g = 1", "6 sec", 2000.0)]);
        cp.events = vec![
            SupervisorEvent::new(
                "restart",
                Some(CellKey::new("table4.1", "g = 1", "6 sec")),
                "attempt 2: worker died on signal 6".to_string(),
            ),
            SupervisorEvent::new("drain", None, "signal 15".to_string()),
        ];
        let report = render_report(&cp, &[]);
        assert!(report.contains("## Supervisor events"), "{report}");
        assert!(
            report.contains("1 worker restart(s), 0 breaker trip(s), 1 signal drain(s)."),
            "{report}"
        );
        assert!(
            report.contains("- restart `table4.1 / g = 1 / 6 sec` — attempt 2"),
            "{report}"
        );
        assert!(report.contains("- drain — signal 15"), "{report}");
    }

    #[test]
    fn supervisor_section_is_na_for_pre_v4_wals_and_none_when_quiet() {
        use crate::checkpoint::WalMeta;
        let mut cp = checkpoint(vec![cell("table4.1", "g = 1", "6 sec", 2000.0)]);
        let mut meta = WalMeta::new(1985, 1);
        meta.version = 3;
        cp.meta = Some(meta);
        let report = render_report(&cp, &[]);
        assert!(
            report.contains("n/a — this WAL predates supervisor events"),
            "{report}"
        );

        cp.meta = Some(WalMeta::new(1985, 1));
        let report = render_report(&cp, &[]);
        assert!(
            report.contains("None: no worker restarts, breaker trips or signal drains."),
            "{report}"
        );
    }

    #[test]
    fn report_reads_a_real_wal_line() {
        let line = cell("table4.1", "g = 1", "6 sec", 1.5).to_json();
        let cp = load_str(&format!("{line}\n")).unwrap();
        let report = render_report(&cp, &[]);
        assert!(report.contains("1 cells"), "{report}");
    }

    #[test]
    fn report_renders_temperature_section_with_targets() {
        // One adaptive cell: two closed stages, temperature sum 4.0
        // (mean 2.0), target sum 0.8 (mean 40%), observed acceptance 60%.
        let mut adaptive = cell("table4.1", "Adaptive", "6 sec", 2000.0);
        adaptive.per_temp[0].target_acceptance = 0.8;
        let plain = cell("table4.1", "g = 1", "6 sec", 1900.0);
        let report = render_report(&checkpoint(vec![adaptive, plain]), &[]);
        assert!(
            report.contains("### Stage temperature and controller targets"),
            "{report}"
        );
        assert!(
            report.contains("| Adaptive | 2.000 (60%→40%) |"),
            "{report}"
        );
        // No controller → temperature only, no target annotation.
        assert!(report.contains("| g = 1 | 2.000 |"), "{report}");

        // A pre-v3 WAL (NaN temperature sums) keeps the section out.
        let mut old = cell("t", "g = 1", "6 sec", 1.0);
        old.per_temp[0].temperature = f64::NAN;
        let report = render_report(&checkpoint(vec![old]), &[]);
        assert!(!report.contains("Stage temperature"), "{report}");
    }

    #[test]
    fn mean_temperature_and_target_handle_missing_data() {
        let agg = TempAggregate {
            ended_budget: 2,
            temperature: 5.0,
            target_acceptance: 1.0,
            ..TempAggregate::default()
        };
        assert_eq!(mean_temperature(&agg), Some(2.5));
        assert_eq!(mean_target_acceptance(&agg), Some(50.0));
        let nan = TempAggregate {
            ended_budget: 2,
            temperature: f64::NAN,
            target_acceptance: f64::NAN,
            ..TempAggregate::default()
        };
        assert_eq!(mean_temperature(&nan), None);
        assert_eq!(mean_target_acceptance(&nan), None);
        // No closed stage → no mean, even with a finite sum.
        let idle = TempAggregate {
            temperature: 5.0,
            ..TempAggregate::default()
        };
        assert_eq!(mean_temperature(&idle), None);
    }

    #[test]
    fn report_renders_swap_section_for_replica_exchange_cells() {
        let mut rec = cell("table4.1", "Metropolis", "6 sec", 1500.0);
        rec.per_temp[0].swap_attempts = 10;
        rec.per_temp[0].swap_accepts = 4;
        rec.per_temp.push(TempAggregate {
            temp: 1,
            evals: 100,
            proposals: 100,
            ..TempAggregate::default()
        });
        let report = render_report(&checkpoint(vec![rec]), &[]);
        assert!(
            report.contains("### Replica-exchange swap acceptance vs temperature"),
            "{report}"
        );
        assert!(
            report.contains("| Metropolis | 40.0% (4/10) | — |"),
            "{report}"
        );
        // Cells without swaps keep the section out entirely.
        let plain = render_report(&checkpoint(vec![cell("t", "g = 1", "6 sec", 1.0)]), &[]);
        assert!(!plain.contains("swap acceptance"), "{plain}");
    }

    #[test]
    fn old_schema_wal_renders_without_nan() {
        // A pre-PR-4 WAL record: no wall_ms/reduction (both null) and no
        // swap counters on its per_temp entries. The report must say `n/a`,
        // never `NaN`.
        let line = cell("table4.1", "g = 1", "6 sec", 2000.0)
            .to_json()
            .replace("\"reduction\":2000", "\"reduction\":null")
            .replace("\"wall_ms\":10", "\"wall_ms\":null")
            .replace(
                ",\"ended_exchange\":0,\"swap_attempts\":0,\"swap_accepts\":0",
                "",
            )
            .replace(",\"temperature\":4,\"target_acceptance\":null", "");
        let baseline = cell("table4.1", "Metropolis", "6 sec", 1900.0).to_json();
        let cp = load_str(&format!("{line}\n{baseline}\n")).unwrap();
        assert!(cp.cells[0].reduction.is_nan(), "null loads as NaN");
        assert_eq!(cp.cells[0].per_temp[0].swap_attempts, 0);
        let report = render_report(&cp, &[]);
        assert!(!report.contains("NaN"), "{report}");
        assert!(report.contains("n/a s of chain time"), "{report}");
        assert!(
            report.contains("| 6 sec | Metropolis | n/a | 1900 | n/a |"),
            "{report}"
        );
    }

    fn bench_json(kernels: &[(&str, f64)]) -> String {
        let body: Vec<String> = kernels
            .iter()
            .map(|(n, ns)| format!("{{\"name\":\"{n}\",\"ns_per_iter\":{ns}}}"))
            .collect();
        format!(
            "{{\"schema\":\"annealbench-bench-v1\",\"kernels\":[{}]}}",
            body.join(",")
        )
    }

    #[test]
    fn compare_flags_regressions_over_threshold() {
        let old = bench_json(&[("a", 100.0), ("b", 100.0), ("gone", 5.0)]);
        let new = bench_json(&[("a", 105.0), ("b", 150.0), ("fresh", 9.0)]);
        let cmp = compare_benchmarks(&old, &new, 10.0).unwrap();
        assert_eq!(cmp.regressions().len(), 1);
        assert_eq!(cmp.regressions()[0].name, "b");
        assert_eq!(cmp.removed, vec!["gone".to_string()]);
        let md = render_compare(&cmp);
        assert!(
            md.contains("| b | 100.0 | 150.0 | +50.0% | **REGRESSED** |"),
            "{md}"
        );
        assert!(md.contains("| a | 100.0 | 105.0 | +5.0% | ok |"), "{md}");
        assert!(md.contains("| fresh | — | 9.0 | — | new |"), "{md}");
        assert!(md.contains("| gone | — | — | — | removed |"), "{md}");
        assert!(md.contains("1 kernel(s) regressed"), "{md}");
    }

    #[test]
    fn compare_is_clean_when_nothing_regressed() {
        let old = bench_json(&[("a", 100.0)]);
        let new = bench_json(&[("a", 80.0)]);
        let cmp = compare_benchmarks(&old, &new, 10.0).unwrap();
        assert!(cmp.regressions().is_empty());
        let md = render_compare(&cmp);
        assert!(md.contains("No kernel regressed"), "{md}");
        assert!(md.contains("improved"), "{md}");
    }

    #[test]
    fn compare_rejects_foreign_documents() {
        assert!(compare_benchmarks("{}", "{}", 10.0).is_err());
        let good = bench_json(&[("a", 1.0)]);
        assert!(compare_benchmarks(&good, "not json", 10.0).is_err());
    }
}
