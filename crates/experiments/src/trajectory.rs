//! Best-cost trajectories: the convergence series behind the paper's
//! tables. The paper reports only endpoint reductions; the trajectory view
//! shows *how* each method gets there (and is the natural companion to the
//! asymptotic-convergence discussion it cites from \[ROME84a/b\], \[LUND83\]
//! and \[GEM83\]).

use anneal_core::{derive_seed, Figure1};
use rand::{rngs::StdRng, SeedableRng};

use crate::budgetmap::PAPER_SECONDS;
use crate::config::SuiteConfig;
use crate::instances::gola_paper_set;
use crate::roster::{MethodCtx, MethodSpec, TunedY};
use crate::runner::ArrangementSet;
use crate::table::Table;

/// Number of trajectory samples per run.
pub const SAMPLES: u64 = 24;

/// Methods shown in the trajectory table: the paper's headline trio plus
/// Metropolis.
pub fn trajectory_roster(t: TunedY) -> Vec<MethodSpec> {
    use anneal_core::GFunction;
    vec![
        MethodSpec::new("Metropolis", move || GFunction::metropolis(t.metropolis)),
        MethodSpec::new("Six Temperature Annealing", move || {
            GFunction::six_temp_annealing(t.annealing6)
        }),
        MethodSpec::new("g = 1", GFunction::unit),
        MethodSpec::new("Cubic Diff", move || {
            GFunction::poly_difference(3, t.poly_diff[2])
        }),
    ]
}

/// Runs the headline methods on instance 0 of the GOLA set and returns the
/// best-density series, sampled [`SAMPLES`] times over a 12-second budget.
/// Columns are evaluation counts; each row is one method's best density at
/// that point.
pub fn run(config: &SuiteConfig) -> Table {
    let problems = gola_paper_set(config.seed);
    let set = ArrangementSet::with_random_starts(problems, config.seed);
    let problem = &set.problems()[0];
    let start = &set.starts()[0];

    let budget = config.scale.vax_seconds(PAPER_SECONDS[2]);
    let total_evals = match budget {
        anneal_core::Budget::Evaluations(n) => n,
        anneal_core::Budget::WallClock(_) => unreachable!("vax budgets are eval-counted"),
    };
    let every = (total_evals / SAMPLES).max(1);

    let mut table = Table::new(
        format!(
            "Trajectory — best density vs evaluations, GOLA instance 0 \
             (start density {})",
            start.density()
        ),
        "method",
        (1..=SAMPLES).map(|i| format!("{}", i * every)).collect(),
    );

    for spec in trajectory_roster(config.tuned) {
        let ctx = MethodCtx {
            n_nets: problem.netlist().n_nets(),
        };
        let mut g = spec.g(&ctx);
        let mut rng = StdRng::seed_from_u64(derive_seed(config.seed ^ 0x54524A, 0));
        let strategy = Figure1::default().trajectory(every);
        let result = strategy.run(problem, &mut g, start.clone(), budget, &mut rng);

        // Resample the recorded trajectory onto the fixed grid (runs may
        // stop early on equilibrium; extend with the final best).
        let mut series = Vec::with_capacity(SAMPLES as usize);
        let mut ti = 0;
        let mut last = start.density() as f64;
        for i in 1..=SAMPLES {
            let at = i * every;
            while ti < result.stats.trajectory.len() && result.stats.trajectory[ti].0 <= at {
                last = result.stats.trajectory[ti].1;
                ti += 1;
            }
            series.push(last);
        }
        // The final sample reflects the run's overall best.
        if let Some(v) = series.last_mut() {
            *v = result.best_cost;
        }
        table.push_row(spec.name(), series);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_are_monotone_nonincreasing() {
        let t = run(&SuiteConfig::scaled(1));
        assert_eq!(t.rows.len(), 4);
        assert_eq!(t.columns.len(), SAMPLES as usize);
        for (label, series) in &t.rows {
            for w in series.windows(2) {
                assert!(w[0] >= w[1], "{label}: best density must not increase");
            }
        }
    }
}
