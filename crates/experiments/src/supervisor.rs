//! Process-level supervision for the experiment suite.
//!
//! The in-process failure path (PR 3) contains *panics*: `catch_unwind`
//! plus the [`anneal_core::watchdog`] deadline turn a panicking or
//! overrunning instance into a failed-cell record. What it cannot contain
//! is anything that takes the whole process with it — `abort()`, a stack
//! overflow, a runaway allocation the kernel OOM-kills, or an evaluation
//! loop that never polls `Meter::exhausted` and therefore never notices
//! its deadline. Long annealing campaigns hit exactly these (Ingber's ASA
//! "lessons learned"); one bad cell must not cost the other hundred.
//!
//! [`Supervisor`] closes that gap by re-execing the current binary in a
//! hidden `--worker-cell` mode and running each table cell in a child
//! process:
//!
//! * the child runs exactly one cell (the [`TelemetryLog`] filter skips
//!   every other one), appends its record to a per-worker **WAL shard**
//!   (same versioned, torn-line-tolerant discipline as the main WAL), and
//!   emits `{"hb":k}` heartbeat lines on stdout;
//! * the parent enforces a **wall-clock deadline** (derived from
//!   `--watchdog-ms`) and a **heartbeat staleness** bound with SIGKILL —
//!   catching the hangs the in-process watchdog cannot;
//! * abnormal exits are **retried** under the existing deterministic
//!   [`RetryPolicy`](crate::runner::RetryPolicy) backoff, with the
//!   attempt base forwarded so fault-injection decisions roll
//!   independently across respawns;
//! * a per-problem-class **circuit breaker** skips a table after N
//!   consecutive hard process failures (recorded in the failure manifest;
//!   the suite completes degraded instead of dying);
//! * [`signals`] drains on SIGINT/SIGTERM: the in-flight child finishes,
//!   subsequent cells are skipped, and the WAL is left clean and
//!   resumable.
//!
//! The parent stays the single writer of the main WAL: it parses the
//! child's shard record and re-records it, with [`TelemetryLog`] sequence
//! numbers aligned (the child starts its counter at the parent's next
//! sequence) so the main WAL line and the shard line are byte-identical —
//! which is what keeps `--resume` f64-bit-identical and lets
//! [`checkpoint::merge_shards`](crate::checkpoint::merge_shards) rebuild
//! the single-writer stream from shards.

use std::collections::{HashMap, HashSet};
use std::io::BufRead;
use std::sync::{Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

use anneal_core::{Budget, Strategy};

use crate::config::SuiteConfig;
use crate::exit_codes;
use crate::faults::FaultPlan;
use crate::runner::CellPolicy;
use crate::telemetry::{CellFailure, CellKey, CellRecord, SupervisorEvent, TelemetryLog};

/// Graceful-shutdown signal handling for `repro`.
///
/// [`install`](signals::install) registers SIGINT/SIGTERM handlers that
/// only set an atomic flag; the run loop and the supervisor poll
/// [`draining`](signals::draining) and wind down cleanly — the in-flight
/// cell finishes, later cells are skipped, the WAL is flushed, and the
/// process exits `128 + signal`. Worker processes call
/// [`ignore`](signals::ignore) instead, so only the supervisor decides
/// when a child dies.
pub mod signals {
    use std::sync::atomic::{AtomicI32, Ordering};

    /// The signal that requested shutdown (0 = none).
    static SHUTDOWN: AtomicI32 = AtomicI32::new(0);

    #[cfg(unix)]
    extern "C" {
        /// `signal(2)` from the C library std already links. Using it
        /// directly keeps the workspace free of new dependencies; the
        /// handler below is async-signal-safe (one atomic store).
        fn signal(signum: i32, handler: usize) -> usize;
    }

    #[cfg(unix)]
    extern "C" fn on_signal(sig: i32) {
        SHUTDOWN.store(sig, Ordering::SeqCst);
    }

    /// Installs the SIGINT/SIGTERM drain handlers (idempotent).
    pub fn install() {
        #[cfg(unix)]
        unsafe {
            signal(crate::exit_codes::SIGINT, on_signal as *const () as usize);
            signal(crate::exit_codes::SIGTERM, on_signal as *const () as usize);
        }
    }

    /// Ignores SIGINT/SIGTERM — worker processes must outlive a Ctrl-C
    /// aimed at the parent (the supervisor drains them deliberately).
    pub fn ignore() {
        // SIG_IGN is 1 in every Unix ABI this builds on.
        #[cfg(unix)]
        unsafe {
            signal(crate::exit_codes::SIGINT, 1);
            signal(crate::exit_codes::SIGTERM, 1);
        }
    }

    /// Whether a shutdown signal has been received.
    pub fn draining() -> bool {
        SHUTDOWN.load(Ordering::SeqCst) != 0
    }

    /// The received shutdown signal, if any.
    pub fn shutdown_signal() -> Option<i32> {
        match SHUTDOWN.load(Ordering::SeqCst) {
            0 => None,
            sig => Some(sig),
        }
    }

    #[cfg(test)]
    pub(crate) fn reset_for_test() {
        SHUTDOWN.store(0, Ordering::SeqCst);
    }
}

/// Default heartbeat interval for worker processes (`--heartbeat-ms`).
pub const DEFAULT_HEARTBEAT: Duration = Duration::from_millis(250);

/// Default circuit-breaker threshold (`--breaker-threshold`): consecutive
/// hard process failures in one table before the rest of that table is
/// skipped.
pub const DEFAULT_BREAKER_THRESHOLD: u32 = 3;

/// Unit separator: joins the three [`CellKey`] fields into the single
/// hidden `--worker-cell` argument (cell labels contain spaces and
/// punctuation, but never control characters).
pub const CELL_FIELD_SEP: char = '\x1f';

/// What killed a worker, when the supervisor had to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum KillReason {
    Deadline,
    Heartbeat,
}

/// Mutable supervisor state, per run.
#[derive(Default)]
struct State {
    /// Consecutive hard process failures per table (reset by any success).
    consecutive: HashMap<String, u32>,
    /// Tables whose circuit breaker has tripped.
    open: HashSet<String>,
    /// Rotating worker-slot counter (selects the WAL shard).
    spawned: usize,
}

/// The process supervisor: spawns one worker per table cell, enforces
/// deadlines, retries process deaths, and trips a per-table circuit
/// breaker. Attach to a [`TelemetryLog`] via
/// [`with_supervisor`](TelemetryLog::with_supervisor); the runner then
/// delegates every non-replayed cell here.
pub struct Supervisor {
    /// Path of the current binary, re-exec'd for each worker.
    exe: std::path::PathBuf,
    /// Flags every worker invocation shares (suite configuration).
    base_args: Vec<String>,
    /// Shard path prefix; worker slot `s` writes `{base}.shard.{s}`.
    shard_base: String,
    /// Number of worker slots the shards rotate over.
    shards: usize,
    /// Worker heartbeat interval.
    heartbeat: Duration,
    /// Circuit-breaker threshold (consecutive hard failures per table).
    breaker_threshold: u32,
    /// Suite base seed (validates worker records).
    seed: u64,
    /// Per-instance watchdog deadline, used to derive the wall-clock
    /// deadline for a whole worker.
    watchdog: Option<Duration>,
    /// Live ops board: worker spawn/beat/exit, respawns and breaker
    /// trips are mirrored there for `--serve` and the `--progress`
    /// ticker. `None` keeps the supervisor observability-free.
    ops: Option<std::sync::Arc<crate::ops::OpsBoard>>,
    state: Mutex<State>,
}

impl std::fmt::Debug for Supervisor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Supervisor")
            .field("shard_base", &self.shard_base)
            .field("shards", &self.shards)
            .field("heartbeat", &self.heartbeat)
            .field("breaker_threshold", &self.breaker_threshold)
            .finish()
    }
}

impl Supervisor {
    /// A supervisor re-execing the current binary, forwarding `config`
    /// (and the chaos/trace flags) to every worker. `shard_base` is the
    /// path prefix for per-worker WAL shards — conventionally the main
    /// WAL path, so shards sit next to it.
    pub fn new(
        config: &SuiteConfig,
        faults: Option<&FaultPlan>,
        trace: Option<&str>,
        heartbeat: Duration,
        breaker_threshold: u32,
        shard_base: String,
    ) -> Result<Self, String> {
        let exe = std::env::current_exe()
            .map_err(|e| format!("cannot locate the current executable: {e}"))?;
        let mut base_args: Vec<String> = vec![
            "--scale".into(),
            config.scale.divisor.to_string(),
            "--seed".into(),
            config.seed.to_string(),
            "--threads".into(),
            config.threads.to_string(),
            "--retries".into(),
            config.retry.attempts.to_string(),
            "--backoff-ms".into(),
            config.retry.backoff.as_millis().to_string(),
            "--heartbeat-ms".into(),
            heartbeat.as_millis().max(1).to_string(),
        ];
        if let Some(w) = config.watchdog {
            base_args.push("--watchdog-ms".into());
            base_args.push(w.as_millis().max(1).to_string());
        }
        match config.strategy {
            None => {}
            Some(Strategy::Figure1) => {
                base_args.extend(["--strategy".into(), "figure1".into()]);
            }
            Some(Strategy::Figure2) => {
                base_args.extend(["--strategy".into(), "figure2".into()]);
            }
            Some(Strategy::Rejectionless) => {
                base_args.extend(["--strategy".into(), "rejectionless".into()]);
            }
            Some(Strategy::ReplicaExchange { exchange_interval }) => {
                base_args.extend([
                    "--strategy".into(),
                    "replica-exchange".into(),
                    "--exchange-interval".into(),
                    exchange_interval.to_string(),
                ]);
            }
        }
        if let Some(k) = config.replicas {
            base_args.push("--replicas".into());
            base_args.push(k.to_string());
        }
        if let Some(mode) = config.schedule {
            base_args.push("--schedule".into());
            base_args.push(mode.as_str().into());
        }
        if let Some(plan) = faults {
            base_args.push("--faults".into());
            base_args.push(plan.to_spec());
        }
        if let Some(dir) = trace {
            base_args.push("--trace".into());
            base_args.push(dir.into());
        }
        Ok(Supervisor {
            exe,
            base_args,
            shard_base,
            shards: config.threads,
            heartbeat,
            breaker_threshold: breaker_threshold.max(1),
            seed: config.seed,
            watchdog: config.watchdog,
            ops: None,
            state: Mutex::new(State::default()),
        })
    }

    /// Attaches a live ops board (builder style): worker lifecycle and
    /// breaker state feed the `--serve` endpoints. `None` clears it.
    pub fn with_ops(mut self, ops: Option<std::sync::Arc<crate::ops::OpsBoard>>) -> Self {
        self.ops = ops;
        self
    }

    fn lock(&self) -> MutexGuard<'_, State> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// The shard path for worker slot `slot`.
    pub fn shard_path(&self, slot: usize) -> String {
        format!("{}.shard.{}", self.shard_base, slot)
    }

    /// Wall-clock deadline for one worker running `n_instances` instances
    /// under `policy`: the per-instance watchdog times the worst-case
    /// instance count across in-child retries, plus the child's backoff
    /// sleeps and one second of process overhead. `None` (no watchdog)
    /// leaves only the heartbeat staleness bound.
    fn worker_deadline(&self, n_instances: usize, policy: &CellPolicy) -> Option<Duration> {
        let per_instance = self.watchdog?;
        let attempts = policy.retry.attempts.max(1);
        let mut deadline = per_instance * n_instances.max(1) as u32 * attempts;
        for retry in 1..attempts {
            deadline += policy.retry.delay_before(retry);
        }
        Some(deadline + Duration::from_secs(1))
    }

    /// How stale the last heartbeat may grow before the worker is
    /// presumed wedged: generous (8 intervals, at least 2 s) because a
    /// missed beat means SIGKILL.
    fn staleness_limit(&self) -> Duration {
        (self.heartbeat * 8).max(Duration::from_secs(2))
    }

    /// Runs one table cell in a worker process, recording the outcome
    /// into `log` exactly as the in-process runner would. Returns the
    /// cell's total reduction (0.0 for a failed or skipped cell).
    pub fn run_cell(
        &self,
        key: &CellKey,
        strategy_name: &str,
        budget: Budget,
        policy: &CellPolicy,
        n_instances: usize,
        log: &TelemetryLog,
    ) -> f64 {
        if self.lock().open.contains(&key.table) {
            let mut record =
                CellRecord::empty(key.clone(), strategy_name.to_string(), budget, self.seed);
            record.instances = n_instances;
            record.failures.push(CellFailure {
                instance: 0,
                seed: self.seed,
                message: format!(
                    "circuit breaker open for {}: cell skipped after {} consecutive \
                     process failures",
                    key.table, self.breaker_threshold
                ),
            });
            log.record(record);
            return 0.0;
        }

        let attempts = policy.retry.attempts.max(1);
        let mut last_err = String::new();
        for attempt in 0..attempts {
            if attempt > 0 {
                log.log_event(SupervisorEvent::new(
                    "restart",
                    Some(key.clone()),
                    format!("attempt {}: {last_err}", attempt + 1),
                ));
                let backoff = policy.retry.delay_before(attempt);
                if !backoff.is_zero() {
                    std::thread::sleep(backoff);
                }
            }
            match self.spawn_and_wait(
                key,
                strategy_name,
                budget,
                policy,
                n_instances,
                attempt,
                log,
            ) {
                Ok(record) => {
                    self.lock().consecutive.remove(&key.table);
                    let total = record.reduction;
                    log.record(record);
                    return total;
                }
                Err(e) => last_err = e,
            }
            if signals::draining() {
                // A drain mid-retry: leave the cell unrecorded (it will
                // simply re-run on --resume) instead of burning the
                // remaining attempts against the shutdown.
                return 0.0;
            }
        }

        // Hard process failure: every attempt died abnormally.
        {
            let mut state = self.lock();
            let count = state.consecutive.entry(key.table.clone()).or_insert(0);
            *count += 1;
            if *count >= self.breaker_threshold {
                state.open.insert(key.table.clone());
                drop(state);
                if let Some(board) = &self.ops {
                    board.breaker_tripped(&key.table);
                }
                log.log_event(SupervisorEvent::new(
                    "breaker",
                    Some(key.clone()),
                    format!(
                        "circuit breaker for {} opened after {} consecutive hard failures",
                        key.table, self.breaker_threshold
                    ),
                ));
            }
        }
        let mut record =
            CellRecord::empty(key.clone(), strategy_name.to_string(), budget, self.seed);
        record.instances = n_instances;
        record.attempts = attempts;
        record.failures.push(CellFailure {
            instance: 0,
            seed: self.seed,
            message: format!("process worker failed after {attempts} attempts: {last_err}"),
        });
        log.record(record);
        0.0
    }

    /// Spawns one worker for `key`, supervises it to completion, and
    /// parses its recorded cell out of the shard. Any abnormal outcome
    /// truncates the shard back to its pre-spawn length (so shards only
    /// ever hold successful records, keeping the merge deterministic) and
    /// returns the failure as an error for the retry loop.
    #[allow(clippy::too_many_arguments)]
    fn spawn_and_wait(
        &self,
        key: &CellKey,
        strategy_name: &str,
        budget: Budget,
        policy: &CellPolicy,
        n_instances: usize,
        attempt: u32,
        log: &TelemetryLog,
    ) -> Result<CellRecord, String> {
        let slot = {
            let mut state = self.lock();
            let slot = state.spawned % self.shards.max(1);
            state.spawned += 1;
            slot
        };
        let shard = self.shard_path(slot);
        let pre_len = std::fs::metadata(&shard).map(|m| m.len()).unwrap_or(0);
        let seq = log.peek_seq();
        // Fault decisions in the child start where this process attempt's
        // in-child retries live: process attempt k covers attempt numbers
        // [k*retries, (k+1)*retries), so respawns roll independently.
        let attempt_base = attempt * policy.retry.attempts.max(1);

        let cell_arg = format!(
            "{}{sep}{}{sep}{}",
            key.table,
            key.method,
            key.column,
            sep = CELL_FIELD_SEP
        );
        let mut child = std::process::Command::new(&self.exe)
            .args(&self.base_args)
            .arg("--worker-cell")
            .arg(&cell_arg)
            .arg("--worker-shard")
            .arg(&shard)
            .arg("--worker-seq")
            .arg(seq.to_string())
            .arg("--worker-attempt")
            .arg(attempt_base.to_string())
            .arg(&key.table)
            .stdin(std::process::Stdio::null())
            .stdout(std::process::Stdio::piped())
            .stderr(std::process::Stdio::inherit())
            .spawn()
            .map_err(|e| format!("cannot spawn worker: {e}"))?;
        if let Some(board) = &self.ops {
            board.worker_spawned(slot, attempt > 0);
        }

        // Heartbeat listener: any stdout line from the child counts as a
        // beat. The thread exits when the pipe closes (child exit or
        // SIGKILL).
        let last_beat = std::sync::Arc::new(Mutex::new(Instant::now()));
        let reader = child.stdout.take().map(|stdout| {
            let last_beat = std::sync::Arc::clone(&last_beat);
            std::thread::spawn(move || {
                for line in std::io::BufReader::new(stdout).lines() {
                    if line.is_err() {
                        break;
                    }
                    *last_beat.lock().unwrap_or_else(PoisonError::into_inner) = Instant::now();
                }
            })
        });

        let started = Instant::now();
        let deadline = self.worker_deadline(n_instances, policy);
        let staleness = self.staleness_limit();
        let mut killed: Option<KillReason> = None;
        let status = loop {
            match child.try_wait() {
                Ok(Some(status)) => break status,
                Ok(None) => {}
                Err(e) => {
                    child.kill().ok();
                    let _ = child.wait();
                    return self.fail(&shard, pre_len, format!("cannot wait for worker: {e}"));
                }
            }
            if killed.is_none() {
                let beat_age = last_beat
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .elapsed();
                if let Some(board) = &self.ops {
                    board.worker_beat(slot, beat_age);
                }
                if deadline.is_some_and(|d| started.elapsed() > d) {
                    killed = Some(KillReason::Deadline);
                } else if beat_age > staleness {
                    killed = Some(KillReason::Heartbeat);
                }
                if killed.is_some() {
                    child.kill().ok();
                }
            }
            std::thread::sleep(Duration::from_millis(5));
        };
        if let Some(handle) = reader {
            handle.join().ok();
        }
        if let Some(board) = &self.ops {
            board.worker_exited(slot);
        }

        match killed {
            Some(KillReason::Deadline) => {
                return self.fail(
                    &shard,
                    pre_len,
                    format!(
                        "worker killed: exceeded its {:.0} ms wall-clock deadline",
                        deadline
                            .expect("deadline kill implies deadline")
                            .as_secs_f64()
                            * 1e3
                    ),
                );
            }
            Some(KillReason::Heartbeat) => {
                return self.fail(
                    &shard,
                    pre_len,
                    format!(
                        "worker killed: no heartbeat for {:.0} ms",
                        staleness.as_secs_f64() * 1e3
                    ),
                );
            }
            None => {}
        }
        if !status.success() {
            return self.fail(&shard, pre_len, describe_exit(&status));
        }

        // Exit 0: the worker claims its cell is in the shard. Find it.
        let checkpoint = match crate::checkpoint::load(&shard) {
            Ok(cp) => cp,
            Err(e) => return self.fail(&shard, pre_len, format!("unreadable shard: {e}")),
        };
        let budget_label = budget.to_string();
        let record = checkpoint.cells.into_iter().rev().find(|r| {
            r.key == *key
                && r.strategy == strategy_name
                && r.budget == budget_label
                && r.base_seed == self.seed
        });
        match record {
            Some(record) => Ok(record),
            None => self.fail(
                &shard,
                pre_len,
                "worker exited 0 without recording its cell".to_string(),
            ),
        }
    }

    /// Rolls the shard back to its pre-spawn length (a failed attempt
    /// must not leave stale or torn records for the merge) and returns
    /// the error.
    fn fail(&self, shard: &str, pre_len: u64, message: String) -> Result<CellRecord, String> {
        if std::fs::metadata(shard).map(|m| m.len()).unwrap_or(0) > pre_len {
            if let Ok(file) = std::fs::OpenOptions::new().write(true).open(shard) {
                file.set_len(pre_len).ok();
            }
        }
        Err(message)
    }
}

/// A human-readable description of an abnormal worker exit.
fn describe_exit(status: &std::process::ExitStatus) -> String {
    if let Some(code) = status.code() {
        if code == i32::from(exit_codes::WORKER_NO_RECORD) {
            return format!("worker exited with code {code} (ran but recorded no cell)");
        }
        return format!("worker exited with code {code}");
    }
    match exit_signal(status) {
        Some(sig) => format!("worker died on signal {sig}"),
        None => "worker exited abnormally".to_string(),
    }
}

#[cfg(unix)]
fn exit_signal(status: &std::process::ExitStatus) -> Option<i32> {
    std::os::unix::process::ExitStatusExt::signal(status)
}

#[cfg(not(unix))]
fn exit_signal(_status: &std::process::ExitStatus) -> Option<i32> {
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::RetryPolicy;

    fn supervisor(config: &SuiteConfig) -> Supervisor {
        Supervisor::new(
            config,
            None,
            None,
            DEFAULT_HEARTBEAT,
            DEFAULT_BREAKER_THRESHOLD,
            "/tmp/anneal-test-wal.jsonl".into(),
        )
        .unwrap()
    }

    #[test]
    fn worker_args_forward_the_suite_configuration() {
        let config = SuiteConfig::scaled(40)
            .with_seed(7)
            .with_threads(3)
            .with_retry(RetryPolicy::new(2, Duration::from_millis(10)))
            .with_watchdog(Some(Duration::from_millis(500)))
            .with_strategy(Strategy::ReplicaExchange {
                exchange_interval: 32,
            })
            .with_replicas(4);
        let sup = supervisor(&config);
        let args = sup.base_args.join(" ");
        for expected in [
            "--scale 40",
            "--seed 7",
            "--threads 3",
            "--retries 2",
            "--backoff-ms 10",
            "--watchdog-ms 500",
            "--strategy replica-exchange",
            "--exchange-interval 32",
            "--replicas 4",
            "--heartbeat-ms 250",
        ] {
            assert!(args.contains(expected), "`{expected}` missing from {args}");
        }
        // The forwarded args round-trip through the real CLI parser in
        // worker mode.
        let mut full: Vec<String> = sup.base_args.clone();
        full.extend(
            [
                "--worker-cell",
                "table4.1\u{1f}g = 1\u{1f}6 sec",
                "--worker-shard",
                "wal.shard.0",
                "--worker-seq",
                "5",
                "--worker-attempt",
                "2",
                "table4.1",
            ]
            .map(String::from),
        );
        let parsed = crate::cli::parse(&full).expect("worker args parse");
        let worker = parsed.worker.expect("worker mode");
        assert_eq!(worker.cell, CellKey::new("table4.1", "g = 1", "6 sec"));
        assert_eq!(worker.seq, 5);
        assert_eq!(worker.attempt, 2);
        assert_eq!(parsed.config.seed, 7);
        assert_eq!(parsed.config.scale.divisor, 40);
    }

    #[test]
    fn worker_deadline_scales_with_instances_and_retries() {
        let config = SuiteConfig::paper()
            .with_watchdog(Some(Duration::from_millis(100)))
            .with_retry(RetryPolicy::new(2, Duration::from_millis(50)));
        let sup = supervisor(&config);
        let policy = config.cell_policy();
        // 100 ms × 4 instances × 2 attempts + 50 ms backoff + 1 s headroom.
        assert_eq!(
            sup.worker_deadline(4, &policy),
            Some(Duration::from_millis(100 * 4 * 2 + 50 + 1000))
        );
        let unbounded = supervisor(&SuiteConfig::paper());
        assert_eq!(unbounded.worker_deadline(4, &policy), None);
    }

    #[test]
    fn staleness_limit_has_a_floor() {
        let config = SuiteConfig::paper();
        let mut sup = supervisor(&config);
        sup.heartbeat = Duration::from_millis(10);
        assert_eq!(sup.staleness_limit(), Duration::from_secs(2));
        sup.heartbeat = Duration::from_secs(1);
        assert_eq!(sup.staleness_limit(), Duration::from_secs(8));
    }

    #[test]
    fn breaker_opens_after_threshold_and_skips_cells() {
        let config = SuiteConfig::paper();
        let sup = supervisor(&config);
        // Trip the breaker by hand (the integration tests exercise the
        // real spawn path).
        for _ in 0..DEFAULT_BREAKER_THRESHOLD {
            let mut state = sup.lock();
            *state.consecutive.entry("table4.1".into()).or_insert(0) += 1;
            let tripped = state.consecutive["table4.1"] >= sup.breaker_threshold;
            if tripped {
                state.open.insert("table4.1".into());
            }
        }
        let log = TelemetryLog::in_memory();
        let key = CellKey::new("table4.1", "g = 1", "6 sec");
        let total = sup.run_cell(
            &key,
            "Figure1",
            Budget::evaluations(100),
            &CellPolicy::sequential(),
            4,
            &log,
        );
        assert_eq!(total, 0.0);
        let record = log.records().remove(0);
        assert!(!record.ok());
        assert!(
            record.failures[0].message.contains("circuit breaker open"),
            "{}",
            record.failures[0].message
        );
        // Other tables are unaffected by this table's breaker.
        assert!(!sup.lock().open.contains("table4.2a"));
    }

    #[test]
    fn shard_paths_rotate_over_worker_slots() {
        let sup = supervisor(&SuiteConfig::paper().with_threads(3));
        assert_eq!(sup.shard_path(0), "/tmp/anneal-test-wal.jsonl.shard.0");
        assert_eq!(sup.shard_path(2), "/tmp/anneal-test-wal.jsonl.shard.2");
    }

    #[test]
    fn signals_report_idle_before_install() {
        signals::reset_for_test();
        assert!(!signals::draining());
        assert_eq!(signals::shutdown_signal(), None);
    }

    #[test]
    fn describe_exit_names_codes() {
        // A real status is awkward to fabricate portably; exercise the
        // code paths through a child that exits nonzero.
        let status = std::process::Command::new("sh")
            .args(["-c", "exit 4"])
            .status()
            .unwrap();
        let msg = describe_exit(&status);
        assert!(msg.contains("code 4"), "{msg}");
        assert!(msg.contains("recorded no cell"), "{msg}");
    }
}
