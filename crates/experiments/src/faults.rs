//! Deterministic fault injection ("chaos") for the experiment harness.
//!
//! A [`FaultPlan`] decides — purely from its seed and the identity of the
//! site — whether to inject a panic into an instance run, an I/O error into
//! the telemetry sink, or an artificial slowdown. The same plan always makes
//! the same decisions, so a chaos run is reproducible: the CI chaos job and
//! the kill-and-resume tests rely on that.
//!
//! Plans are written as comma-separated `key=value` specs, from the
//! `--faults` CLI flag or the `ANNEAL_FAULTS` environment variable:
//!
//! ```text
//! seed=7,panic=0.25,io=0.1,delay=0.5,delay_ms=200,abort=0.01,hang=0.01,oom=0.01
//! ```
//!
//! | key | meaning | default |
//! |---|---|---|
//! | `seed` | decision seed | 0 |
//! | `panic` | probability an instance run panics at the start of its strategy step | 0 |
//! | `io` | probability a telemetry sink write fails | 0 |
//! | `delay` | probability an instance run is slowed before it starts | 0 |
//! | `delay_ms` | slowdown length in milliseconds | 100 |
//! | `abort` | probability an instance run calls `std::process::abort()` | 0 |
//! | `hang` | probability an instance run hangs without polling its budget | 0 |
//! | `hang_ms` | hang length in milliseconds | 60000 |
//! | `oom` | probability an instance run allocates until a cap, then aborts | 0 |
//! | `oom_mb` | allocation cap in MiB for `oom` faults | 256 |
//!
//! Each fault path exercises a distinct containment mechanism: `panic` the
//! `catch_unwind` isolation in the runner, `io` the telemetry
//! write-error accounting, and `delay` (together with `--watchdog-ms`) the
//! [`anneal_core::watchdog`] deadline. The process-fatal kinds target the
//! [`supervisor`](crate::supervisor): `abort` and `oom` kill the worker
//! process outright (`catch_unwind` cannot contain them), and `hang` sleeps
//! without ever polling a `Meter`, which the in-process watchdog cannot
//! interrupt — only the supervisor's wall-clock SIGKILL can.

use std::io::{self, Write};
use std::time::Duration;

use crate::telemetry::CellKey;

/// Environment variable holding a fault-plan spec.
pub const FAULTS_ENV: &str = "ANNEAL_FAULTS";

/// A seeded, deterministic fault-injection plan.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// Decision seed; the same seed reproduces the same faults.
    pub seed: u64,
    /// Probability an instance run panics.
    pub panic_p: f64,
    /// Probability a telemetry sink write fails.
    pub io_p: f64,
    /// Probability an instance run is delayed.
    pub delay_p: f64,
    /// Injected delay length.
    pub delay: Duration,
    /// Probability an instance run aborts the whole process.
    pub abort_p: f64,
    /// Probability an instance run hangs without polling its budget.
    pub hang_p: f64,
    /// Injected hang length (bounded so a run without a supervisor still
    /// terminates eventually).
    pub hang: Duration,
    /// Probability an instance run allocates up to [`oom_mb`](Self::oom_mb)
    /// MiB and then aborts (a safe stand-in for an OOM kill).
    pub oom_p: f64,
    /// Allocation cap for `oom` faults, in MiB.
    pub oom_mb: usize,
    /// Attempt-number offset folded into every decision. The supervisor
    /// sets this (via the hidden `--worker-attempt` flag) when it re-spawns
    /// a worker after a process death, so fault decisions roll
    /// independently across process-level retries exactly as they do
    /// across in-process retries — deterministically either way.
    pub attempt_base: u32,
}

/// What a [`FaultPlan`] injects into one instance run attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct InstanceFault {
    /// Panic at the start of the strategy step.
    pub panic: bool,
    /// Sleep this long before the strategy step (watchdog fodder).
    pub delay: Option<Duration>,
    /// Abort the whole process at the start of the strategy step.
    pub abort: bool,
    /// Hang this long without polling the budget (supervisor fodder).
    pub hang: Option<Duration>,
    /// Allocate up to this many MiB, then abort.
    pub oom: Option<usize>,
}

impl InstanceFault {
    /// Whether this fault kills or wedges the whole process (rather than
    /// just failing the instance).
    pub fn process_fatal(&self) -> bool {
        self.abort || self.oom.is_some()
    }
}

impl Default for FaultPlan {
    /// A plan that injects nothing.
    fn default() -> Self {
        FaultPlan {
            seed: 0,
            panic_p: 0.0,
            io_p: 0.0,
            delay_p: 0.0,
            delay: Duration::from_millis(100),
            abort_p: 0.0,
            hang_p: 0.0,
            hang: Duration::from_millis(60_000),
            oom_p: 0.0,
            oom_mb: 256,
            attempt_base: 0,
        }
    }
}

impl FaultPlan {
    /// Parses a `key=value,key=value` spec (see module docs).
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut plan = FaultPlan::default();
        for part in spec.split(',').filter(|p| !p.trim().is_empty()) {
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("fault spec item `{part}` is not key=value"))?;
            let (key, value) = (key.trim(), value.trim());
            let prob = |v: &str| -> Result<f64, String> {
                let p: f64 = v
                    .parse()
                    .map_err(|_| format!("bad probability `{v}` for fault `{key}`"))?;
                if !(0.0..=1.0).contains(&p) {
                    return Err(format!("fault probability `{key}={v}` must be in [0, 1]"));
                }
                Ok(p)
            };
            match key {
                "seed" => {
                    plan.seed = value
                        .parse()
                        .map_err(|_| format!("bad fault seed `{value}`"))?;
                }
                "panic" => plan.panic_p = prob(value)?,
                "io" => plan.io_p = prob(value)?,
                "delay" => plan.delay_p = prob(value)?,
                "delay_ms" => {
                    let ms: u64 = value
                        .parse()
                        .map_err(|_| format!("bad delay_ms `{value}`"))?;
                    plan.delay = Duration::from_millis(ms);
                }
                "abort" => plan.abort_p = prob(value)?,
                "hang" => plan.hang_p = prob(value)?,
                "hang_ms" => {
                    let ms: u64 = value
                        .parse()
                        .map_err(|_| format!("bad hang_ms `{value}`"))?;
                    plan.hang = Duration::from_millis(ms);
                }
                "oom" => plan.oom_p = prob(value)?,
                "oom_mb" => {
                    plan.oom_mb = value.parse().map_err(|_| format!("bad oom_mb `{value}`"))?;
                }
                other => return Err(format!("unknown fault key `{other}`")),
            }
        }
        Ok(plan)
    }

    /// The plan as a `key=value,...` spec that [`parse`](Self::parse)
    /// round-trips (used by the supervisor to forward its plan to worker
    /// processes). `attempt_base` is intentionally not part of the spec —
    /// it travels on the hidden `--worker-attempt` flag instead.
    pub fn to_spec(&self) -> String {
        format!(
            "seed={},panic={},io={},delay={},delay_ms={},abort={},hang={},hang_ms={},\
             oom={},oom_mb={}",
            self.seed,
            self.panic_p,
            self.io_p,
            self.delay_p,
            self.delay.as_millis(),
            self.abort_p,
            self.hang_p,
            self.hang.as_millis(),
            self.oom_p,
            self.oom_mb
        )
    }

    /// The same plan with `base` folded into every attempt number (see
    /// [`attempt_base`](Self::attempt_base)).
    pub fn with_attempt_base(mut self, base: u32) -> Self {
        self.attempt_base = base;
        self
    }

    /// The plan from the `ANNEAL_FAULTS` environment variable, if set.
    pub fn from_env() -> Result<Option<Self>, String> {
        match std::env::var(FAULTS_ENV) {
            Ok(spec) if !spec.trim().is_empty() => Self::parse(&spec).map(Some),
            _ => Ok(None),
        }
    }

    /// Whether this plan can inject anything at all.
    pub fn is_active(&self) -> bool {
        self.panic_p > 0.0
            || self.io_p > 0.0
            || self.delay_p > 0.0
            || self.abort_p > 0.0
            || self.hang_p > 0.0
            || self.oom_p > 0.0
    }

    /// The faults (if any) for one `(cell, instance, attempt)` run. Pure:
    /// the same arguments always produce the same decision, and distinct
    /// attempts roll independently — which is what lets retry-with-backoff
    /// recover from sub-certain fault probabilities.
    pub fn instance_fault(&self, key: &CellKey, instance: usize, attempt: u32) -> InstanceFault {
        let attempt = attempt.wrapping_add(self.attempt_base);
        let site = |label: &str| {
            let mut h = mix(self.seed, hash_str(label));
            h = mix(h, hash_str(&key.table));
            h = mix(h, hash_str(&key.method));
            h = mix(h, hash_str(&key.column));
            h = mix(h, instance as u64);
            mix(h, attempt as u64)
        };
        InstanceFault {
            panic: decide(site("panic"), self.panic_p),
            delay: decide(site("delay"), self.delay_p).then_some(self.delay),
            abort: decide(site("abort"), self.abort_p),
            hang: decide(site("hang"), self.hang_p).then_some(self.hang),
            oom: decide(site("oom"), self.oom_p).then_some(self.oom_mb),
        }
    }

    /// Whether the `index`-th write to the telemetry sink should fail.
    pub fn write_fails(&self, index: u64) -> bool {
        decide(mix(mix(self.seed, hash_str("io")), index), self.io_p)
    }
}

/// splitmix64 finalizer — decorrelates the site hash from its inputs.
fn mix(state: u64, value: u64) -> u64 {
    let mut z = state
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(value)
        .wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn hash_str(s: &str) -> u64 {
    s.bytes().fold(0xcbf2_9ce4_8422_2325, |h, b| {
        (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3)
    })
}

/// Maps a hash to `[0, 1)` and compares against the probability.
fn decide(hash: u64, p: f64) -> bool {
    if p <= 0.0 {
        return false;
    }
    if p >= 1.0 {
        return true;
    }
    ((hash >> 11) as f64 / (1u64 << 53) as f64) < p
}

/// Carries out an injected OOM: allocates touched memory up to `cap_mb`
/// MiB, then aborts the process — a contained, deterministic stand-in for a
/// runaway allocation that the kernel would OOM-kill. Never returns.
pub(crate) fn simulate_oom(cap_mb: usize, instance: usize) -> ! {
    eprintln!("fault injection: simulated OOM (instance {instance}, cap {cap_mb} MiB); aborting");
    let cap = cap_mb.saturating_mul(1024 * 1024);
    let mut hoard: Vec<Vec<u8>> = Vec::new();
    let mut total = 0usize;
    while total < cap {
        let len = (16 * 1024 * 1024).min(cap - total);
        let mut block = vec![0u8; len];
        // Touch one byte per page so the pages are actually committed.
        for i in (0..block.len()).step_by(4096) {
            block[i] = 1;
        }
        total += block.len();
        hoard.push(block);
    }
    std::process::abort();
}

/// A telemetry sink wrapper that fails writes according to a [`FaultPlan`]
/// (the `io` probability), deterministically by write index.
pub struct ChaosWriter<W> {
    inner: W,
    plan: FaultPlan,
    writes: u64,
}

impl<W: Write> ChaosWriter<W> {
    /// Wraps `inner` under `plan`.
    pub fn new(inner: W, plan: FaultPlan) -> Self {
        ChaosWriter {
            inner,
            plan,
            writes: 0,
        }
    }
}

impl<W: Write> Write for ChaosWriter<W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let index = self.writes;
        self.writes += 1;
        if self.plan.write_fails(index) {
            return Err(io::Error::other(format!(
                "fault injection: telemetry write {index} failed"
            )));
        }
        self.inner.write(buf)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key() -> CellKey {
        CellKey::new("table4.1", "g = 1", "6 sec")
    }

    #[test]
    fn parse_full_spec() {
        let plan = FaultPlan::parse("seed=7, panic=0.25,io=0.1,delay=0.5,delay_ms=200").unwrap();
        assert_eq!(plan.seed, 7);
        assert_eq!(plan.panic_p, 0.25);
        assert_eq!(plan.io_p, 0.1);
        assert_eq!(plan.delay_p, 0.5);
        assert_eq!(plan.delay, Duration::from_millis(200));
        assert!(plan.is_active());
    }

    #[test]
    fn parse_rejects_bad_specs() {
        assert!(FaultPlan::parse("panic").is_err());
        assert!(FaultPlan::parse("panic=2.0").is_err());
        assert!(FaultPlan::parse("panic=-0.1").is_err());
        assert!(FaultPlan::parse("bogus=1").is_err());
        assert!(FaultPlan::parse("seed=notanumber").is_err());
        assert!(FaultPlan::parse("delay_ms=abc").is_err());
    }

    #[test]
    fn empty_spec_is_inactive() {
        let plan = FaultPlan::parse("").unwrap();
        assert_eq!(plan, FaultPlan::default());
        assert!(!plan.is_active());
        assert_eq!(plan.instance_fault(&key(), 0, 0), InstanceFault::default());
        assert!(!plan.write_fails(0));
    }

    #[test]
    fn decisions_are_deterministic_and_seed_dependent() {
        let a = FaultPlan::parse("seed=1,panic=0.5").unwrap();
        let b = FaultPlan::parse("seed=2,panic=0.5").unwrap();
        let roll = |plan: &FaultPlan| -> Vec<bool> {
            (0..64)
                .map(|i| plan.instance_fault(&key(), i, 0).panic)
                .collect()
        };
        assert_eq!(roll(&a), roll(&a), "same plan, same decisions");
        assert_ne!(roll(&a), roll(&b), "different seeds diverge");
        let hits = roll(&a).iter().filter(|&&x| x).count();
        assert!((10..55).contains(&hits), "p=0.5 over 64 sites: {hits}");
    }

    #[test]
    fn attempts_roll_independently() {
        let plan = FaultPlan::parse("seed=3,panic=0.5").unwrap();
        let per_attempt: Vec<bool> = (0..64)
            .map(|a| plan.instance_fault(&key(), 0, a).panic)
            .collect();
        assert!(per_attempt.iter().any(|&x| x));
        assert!(per_attempt.iter().any(|&x| !x), "a retry can succeed");
    }

    #[test]
    fn certain_probabilities_are_certain() {
        let plan = FaultPlan::parse("panic=1,delay=1,io=1,delay_ms=5").unwrap();
        for i in 0..16 {
            let f = plan.instance_fault(&key(), i, 0);
            assert!(f.panic);
            assert_eq!(f.delay, Some(Duration::from_millis(5)));
            assert!(plan.write_fails(i as u64));
        }
    }

    #[test]
    fn chaos_writer_fails_deterministically() {
        let plan = FaultPlan::parse("seed=9,io=0.5").unwrap();
        let run = || -> Vec<bool> {
            let mut w = ChaosWriter::new(Vec::new(), plan);
            (0..32).map(|_| w.write(b"x").is_ok()).collect()
        };
        let a = run();
        assert_eq!(a, run());
        assert!(a.iter().any(|&ok| ok) && a.iter().any(|&ok| !ok));
    }

    #[test]
    fn process_fatal_kinds_parse_and_round_trip_as_a_spec() {
        let plan =
            FaultPlan::parse("seed=5,abort=0.25,hang=0.5,hang_ms=1234,oom=0.125,oom_mb=8").unwrap();
        assert_eq!(plan.abort_p, 0.25);
        assert_eq!(plan.hang_p, 0.5);
        assert_eq!(plan.hang, Duration::from_millis(1234));
        assert_eq!(plan.oom_p, 0.125);
        assert_eq!(plan.oom_mb, 8);
        assert!(plan.is_active());
        assert_eq!(FaultPlan::parse(&plan.to_spec()).unwrap(), plan);
        assert!(FaultPlan::parse("abort=2").is_err());
        assert!(FaultPlan::parse("hang_ms=abc").is_err());
        assert!(FaultPlan::parse("oom_mb=-1").is_err());
    }

    #[test]
    fn certain_process_fatal_faults_fire() {
        let plan = FaultPlan::parse("abort=1,hang=1,hang_ms=7,oom=1,oom_mb=4").unwrap();
        let f = plan.instance_fault(&key(), 0, 0);
        assert!(f.abort);
        assert_eq!(f.hang, Some(Duration::from_millis(7)));
        assert_eq!(f.oom, Some(4));
        assert!(f.process_fatal());
        assert!(!InstanceFault::default().process_fatal());
    }

    #[test]
    fn attempt_base_shifts_decisions_like_real_attempts() {
        let plan = FaultPlan::parse("seed=3,abort=0.5").unwrap();
        let direct: Vec<bool> = (0..32)
            .map(|a| plan.instance_fault(&key(), 0, a).abort)
            .collect();
        let offset: Vec<bool> = (0..22)
            .map(|a| {
                plan.with_attempt_base(10)
                    .instance_fault(&key(), 0, a)
                    .abort
            })
            .collect();
        // A worker re-spawned at attempt base 10 rolls the same decisions a
        // single process would have rolled at attempts 10, 11, ...
        assert_eq!(direct[10..], offset[..]);
        assert_ne!(
            direct[..22],
            offset[..],
            "the base actually shifts the stream"
        );
    }

    #[test]
    fn chaos_writer_passes_data_through() {
        let mut w = ChaosWriter::new(Vec::new(), FaultPlan::default());
        w.write_all(b"hello").unwrap();
        w.flush().unwrap();
        assert_eq!(w.inner, b"hello");
    }
}
