//! Deterministic fault injection ("chaos") for the experiment harness.
//!
//! A [`FaultPlan`] decides — purely from its seed and the identity of the
//! site — whether to inject a panic into an instance run, an I/O error into
//! the telemetry sink, or an artificial slowdown. The same plan always makes
//! the same decisions, so a chaos run is reproducible: the CI chaos job and
//! the kill-and-resume tests rely on that.
//!
//! Plans are written as comma-separated `key=value` specs, from the
//! `--faults` CLI flag or the `ANNEAL_FAULTS` environment variable:
//!
//! ```text
//! seed=7,panic=0.25,io=0.1,delay=0.5,delay_ms=200
//! ```
//!
//! | key | meaning | default |
//! |---|---|---|
//! | `seed` | decision seed | 0 |
//! | `panic` | probability an instance run panics at the start of its strategy step | 0 |
//! | `io` | probability a telemetry sink write fails | 0 |
//! | `delay` | probability an instance run is slowed before it starts | 0 |
//! | `delay_ms` | slowdown length in milliseconds | 100 |
//!
//! Each fault path exercises a distinct containment mechanism: `panic` the
//! `catch_unwind` isolation in the runner, `io` the telemetry
//! write-error accounting, and `delay` (together with `--watchdog-ms`) the
//! [`anneal_core::watchdog`] deadline.

use std::io::{self, Write};
use std::time::Duration;

use crate::telemetry::CellKey;

/// Environment variable holding a fault-plan spec.
pub const FAULTS_ENV: &str = "ANNEAL_FAULTS";

/// A seeded, deterministic fault-injection plan.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// Decision seed; the same seed reproduces the same faults.
    pub seed: u64,
    /// Probability an instance run panics.
    pub panic_p: f64,
    /// Probability a telemetry sink write fails.
    pub io_p: f64,
    /// Probability an instance run is delayed.
    pub delay_p: f64,
    /// Injected delay length.
    pub delay: Duration,
}

/// What a [`FaultPlan`] injects into one instance run attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct InstanceFault {
    /// Panic at the start of the strategy step.
    pub panic: bool,
    /// Sleep this long before the strategy step (watchdog fodder).
    pub delay: Option<Duration>,
}

impl Default for FaultPlan {
    /// A plan that injects nothing.
    fn default() -> Self {
        FaultPlan {
            seed: 0,
            panic_p: 0.0,
            io_p: 0.0,
            delay_p: 0.0,
            delay: Duration::from_millis(100),
        }
    }
}

impl FaultPlan {
    /// Parses a `key=value,key=value` spec (see module docs).
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut plan = FaultPlan::default();
        for part in spec.split(',').filter(|p| !p.trim().is_empty()) {
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("fault spec item `{part}` is not key=value"))?;
            let (key, value) = (key.trim(), value.trim());
            let prob = |v: &str| -> Result<f64, String> {
                let p: f64 = v
                    .parse()
                    .map_err(|_| format!("bad probability `{v}` for fault `{key}`"))?;
                if !(0.0..=1.0).contains(&p) {
                    return Err(format!("fault probability `{key}={v}` must be in [0, 1]"));
                }
                Ok(p)
            };
            match key {
                "seed" => {
                    plan.seed = value
                        .parse()
                        .map_err(|_| format!("bad fault seed `{value}`"))?;
                }
                "panic" => plan.panic_p = prob(value)?,
                "io" => plan.io_p = prob(value)?,
                "delay" => plan.delay_p = prob(value)?,
                "delay_ms" => {
                    let ms: u64 = value
                        .parse()
                        .map_err(|_| format!("bad delay_ms `{value}`"))?;
                    plan.delay = Duration::from_millis(ms);
                }
                other => return Err(format!("unknown fault key `{other}`")),
            }
        }
        Ok(plan)
    }

    /// The plan from the `ANNEAL_FAULTS` environment variable, if set.
    pub fn from_env() -> Result<Option<Self>, String> {
        match std::env::var(FAULTS_ENV) {
            Ok(spec) if !spec.trim().is_empty() => Self::parse(&spec).map(Some),
            _ => Ok(None),
        }
    }

    /// Whether this plan can inject anything at all.
    pub fn is_active(&self) -> bool {
        self.panic_p > 0.0 || self.io_p > 0.0 || self.delay_p > 0.0
    }

    /// The faults (if any) for one `(cell, instance, attempt)` run. Pure:
    /// the same arguments always produce the same decision, and distinct
    /// attempts roll independently — which is what lets retry-with-backoff
    /// recover from sub-certain fault probabilities.
    pub fn instance_fault(&self, key: &CellKey, instance: usize, attempt: u32) -> InstanceFault {
        let site = |label: &str| {
            let mut h = mix(self.seed, hash_str(label));
            h = mix(h, hash_str(&key.table));
            h = mix(h, hash_str(&key.method));
            h = mix(h, hash_str(&key.column));
            h = mix(h, instance as u64);
            mix(h, attempt as u64)
        };
        InstanceFault {
            panic: decide(site("panic"), self.panic_p),
            delay: decide(site("delay"), self.delay_p).then_some(self.delay),
        }
    }

    /// Whether the `index`-th write to the telemetry sink should fail.
    pub fn write_fails(&self, index: u64) -> bool {
        decide(mix(mix(self.seed, hash_str("io")), index), self.io_p)
    }
}

/// splitmix64 finalizer — decorrelates the site hash from its inputs.
fn mix(state: u64, value: u64) -> u64 {
    let mut z = state
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(value)
        .wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn hash_str(s: &str) -> u64 {
    s.bytes().fold(0xcbf2_9ce4_8422_2325, |h, b| {
        (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3)
    })
}

/// Maps a hash to `[0, 1)` and compares against the probability.
fn decide(hash: u64, p: f64) -> bool {
    if p <= 0.0 {
        return false;
    }
    if p >= 1.0 {
        return true;
    }
    ((hash >> 11) as f64 / (1u64 << 53) as f64) < p
}

/// A telemetry sink wrapper that fails writes according to a [`FaultPlan`]
/// (the `io` probability), deterministically by write index.
pub struct ChaosWriter<W> {
    inner: W,
    plan: FaultPlan,
    writes: u64,
}

impl<W: Write> ChaosWriter<W> {
    /// Wraps `inner` under `plan`.
    pub fn new(inner: W, plan: FaultPlan) -> Self {
        ChaosWriter {
            inner,
            plan,
            writes: 0,
        }
    }
}

impl<W: Write> Write for ChaosWriter<W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let index = self.writes;
        self.writes += 1;
        if self.plan.write_fails(index) {
            return Err(io::Error::other(format!(
                "fault injection: telemetry write {index} failed"
            )));
        }
        self.inner.write(buf)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key() -> CellKey {
        CellKey::new("table4.1", "g = 1", "6 sec")
    }

    #[test]
    fn parse_full_spec() {
        let plan = FaultPlan::parse("seed=7, panic=0.25,io=0.1,delay=0.5,delay_ms=200").unwrap();
        assert_eq!(plan.seed, 7);
        assert_eq!(plan.panic_p, 0.25);
        assert_eq!(plan.io_p, 0.1);
        assert_eq!(plan.delay_p, 0.5);
        assert_eq!(plan.delay, Duration::from_millis(200));
        assert!(plan.is_active());
    }

    #[test]
    fn parse_rejects_bad_specs() {
        assert!(FaultPlan::parse("panic").is_err());
        assert!(FaultPlan::parse("panic=2.0").is_err());
        assert!(FaultPlan::parse("panic=-0.1").is_err());
        assert!(FaultPlan::parse("bogus=1").is_err());
        assert!(FaultPlan::parse("seed=notanumber").is_err());
        assert!(FaultPlan::parse("delay_ms=abc").is_err());
    }

    #[test]
    fn empty_spec_is_inactive() {
        let plan = FaultPlan::parse("").unwrap();
        assert_eq!(plan, FaultPlan::default());
        assert!(!plan.is_active());
        assert_eq!(plan.instance_fault(&key(), 0, 0), InstanceFault::default());
        assert!(!plan.write_fails(0));
    }

    #[test]
    fn decisions_are_deterministic_and_seed_dependent() {
        let a = FaultPlan::parse("seed=1,panic=0.5").unwrap();
        let b = FaultPlan::parse("seed=2,panic=0.5").unwrap();
        let roll = |plan: &FaultPlan| -> Vec<bool> {
            (0..64)
                .map(|i| plan.instance_fault(&key(), i, 0).panic)
                .collect()
        };
        assert_eq!(roll(&a), roll(&a), "same plan, same decisions");
        assert_ne!(roll(&a), roll(&b), "different seeds diverge");
        let hits = roll(&a).iter().filter(|&&x| x).count();
        assert!((10..55).contains(&hits), "p=0.5 over 64 sites: {hits}");
    }

    #[test]
    fn attempts_roll_independently() {
        let plan = FaultPlan::parse("seed=3,panic=0.5").unwrap();
        let per_attempt: Vec<bool> = (0..64)
            .map(|a| plan.instance_fault(&key(), 0, a).panic)
            .collect();
        assert!(per_attempt.iter().any(|&x| x));
        assert!(per_attempt.iter().any(|&x| !x), "a retry can succeed");
    }

    #[test]
    fn certain_probabilities_are_certain() {
        let plan = FaultPlan::parse("panic=1,delay=1,io=1,delay_ms=5").unwrap();
        for i in 0..16 {
            let f = plan.instance_fault(&key(), i, 0);
            assert!(f.panic);
            assert_eq!(f.delay, Some(Duration::from_millis(5)));
            assert!(plan.write_fails(i as u64));
        }
    }

    #[test]
    fn chaos_writer_fails_deterministically() {
        let plan = FaultPlan::parse("seed=9,io=0.5").unwrap();
        let run = || -> Vec<bool> {
            let mut w = ChaosWriter::new(Vec::new(), plan);
            (0..32).map(|_| w.write(b"x").is_ok()).collect()
        };
        let a = run();
        assert_eq!(a, run());
        assert!(a.iter().any(|&ok| ok) && a.iter().any(|&ok| !ok));
    }

    #[test]
    fn chaos_writer_passes_data_through() {
        let mut w = ChaosWriter::new(Vec::new(), FaultPlan::default());
        w.write_all(b"hello").unwrap();
        w.flush().unwrap();
        assert_eq!(w.inner, b"hello");
    }
}
