//! **Extension: circuit partition** (§5 / \[NAHA84\], \[KIRK83\]).
//!
//! The paper's conclusion reports that circuit-partition experiments were
//! also performed (full tables in the \[NAHA84\] technical report). This
//! module reproduces the comparison the DAC paper implies: simulated
//! annealing at Kirkpatrick's schedule versus `g = 1` versus the classical
//! Kernighan–Lin heuristic and time-equalized multistart descent, on random
//! two-pin netlists.

use anneal_core::{derive_seed, local, Figure1, GFunction, Problem};
use anneal_netlist::generator::random_two_pin;
use anneal_partition::{fiduccia_mattheyses, kernighan_lin, PartitionProblem, PartitionState};
use rand::{rngs::StdRng, SeedableRng};

use crate::config::SuiteConfig;
use crate::table::Table;

/// Instances in the extension set.
pub const N_INSTANCES: usize = 10;
/// Elements per instance.
pub const N_ELEMENTS: usize = 32;
/// Two-pin nets per instance.
pub const N_NETS: usize = 96;
/// Paper-equivalent seconds per instance and method.
pub const SECONDS: f64 = 6.0;

/// Regenerates the partition extension table: rows are methods, columns are
/// the total best cut over the instance set (lower is better) and the number
/// of instances on which the method matches the best cut found by any
/// method.
pub fn run(config: &SuiteConfig) -> Table {
    let budget = config.scale.vax_seconds(SECONDS);
    let problems: Vec<PartitionProblem> = (0..N_INSTANCES)
        .map(|i| {
            let mut rng = StdRng::seed_from_u64(derive_seed(config.seed ^ 0x504152, i as u64));
            PartitionProblem::new(random_two_pin(N_ELEMENTS, N_NETS, &mut rng))
        })
        .collect();

    // Fixed random starting partitions shared by the Monte Carlo methods.
    let starts: Vec<PartitionState> = problems
        .iter()
        .enumerate()
        .map(|(i, p)| {
            let mut rng = StdRng::seed_from_u64(derive_seed(config.seed, i as u64));
            p.random_state(&mut rng)
        })
        .collect();

    type GFactory = fn() -> GFunction;
    let monte_carlo: Vec<(&str, GFactory)> = vec![
        ("Six Temperature Annealing (Y₁=10)", || {
            GFunction::six_temp_annealing(10.0)
        }),
        ("Metropolis", || GFunction::metropolis(2.0)),
        ("g = 1", GFunction::unit),
        ("Two level g", GFunction::two_level),
    ];

    // Collect per-method best cuts per instance.
    let mut results: Vec<(String, Vec<f64>)> = Vec::new();

    for (name, make_g) in &monte_carlo {
        let cuts: Vec<f64> = problems
            .iter()
            .zip(&starts)
            .enumerate()
            .map(|(i, (p, start))| {
                let mut g = make_g();
                let mut rng = StdRng::seed_from_u64(derive_seed(config.seed ^ 0x52554E, i as u64));
                Figure1::default()
                    .run(p, &mut g, start.clone(), budget, &mut rng)
                    .best_cost
            })
            .collect();
        results.push((name.to_string(), cuts));
    }

    // Kernighan–Lin from the same starts (deterministic).
    let kl_cuts: Vec<f64> = problems
        .iter()
        .zip(&starts)
        .map(|(p, start)| kernighan_lin(p.netlist(), start.clone()).state.cut() as f64)
        .collect();
    results.push(("Kernighan-Lin".to_string(), kl_cuts));

    // Fiduccia–Mattheyses from the same starts (deterministic, net-native).
    let fm_cuts: Vec<f64> = problems
        .iter()
        .zip(&starts)
        .map(|(p, start)| fiduccia_mattheyses(p.netlist(), start.clone()).state.cut() as f64)
        .collect();
    results.push(("Fiduccia-Mattheyses".to_string(), fm_cuts));

    // Time-equalized multistart descent ([LIN73]-style protocol).
    let ms_cuts: Vec<f64> = problems
        .iter()
        .enumerate()
        .map(|(i, p)| {
            let mut rng = StdRng::seed_from_u64(derive_seed(config.seed ^ 0x4D53, i as u64));
            local::multistart(p, budget, &mut rng).best_cost
        })
        .collect();
    results.push(("Multistart descent".to_string(), ms_cuts));

    // Per-instance best across methods, for the "wins" column.
    let best_per_instance: Vec<f64> = (0..N_INSTANCES)
        .map(|i| {
            results
                .iter()
                .map(|(_, cuts)| cuts[i])
                .fold(f64::INFINITY, f64::min)
        })
        .collect();

    let mut table = Table::new(
        format!(
            "Extension — circuit partition: {N_INSTANCES} instances, \
             {N_ELEMENTS} elements, {N_NETS} nets, {SECONDS:.0} sec/instance"
        ),
        "method",
        vec!["total cut".into(), "ties best".into()],
    );
    for (name, cuts) in &results {
        let total: f64 = cuts.iter().sum();
        let wins = cuts
            .iter()
            .zip(&best_per_instance)
            .filter(|(c, b)| (*c - *b).abs() < 0.5)
            .count() as f64;
        table.push_row(name.clone(), vec![total, wins]);
    }
    table
}

/// The method names in the table, in order.
pub fn method_names() -> [&'static str; 7] {
    [
        "Six Temperature Annealing (Y₁=10)",
        "Metropolis",
        "g = 1",
        "Two level g",
        "Kernighan-Lin",
        "Fiduccia-Mattheyses",
        "Multistart descent",
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_shape_and_sanity() {
        let table = run(&SuiteConfig::scaled(1));
        assert_eq!(table.rows.len(), 7);
        for name in method_names() {
            assert!(
                table.value(name, "total cut").is_some(),
                "missing row {name}"
            );
        }
        // Cuts are nonnegative and bounded by the net count.
        for (label, values) in &table.rows {
            assert!(
                values[0] >= 0.0 && values[0] <= (N_INSTANCES * N_NETS) as f64,
                "{label}"
            );
            assert!(values[1] >= 0.0 && values[1] <= N_INSTANCES as f64);
        }
    }
}
