//! The annealing job server: queued multi-client submission on the ops
//! plane.
//!
//! PR 9's [`ops`](crate::ops) endpoint only *observes* a run; this module
//! lets clients *submit* one. A [`JobServer`] owns a bounded
//! [`crate::scheduler::TaskQueue`] of accepted jobs and a pool
//! of worker threads draining it; [`ops::OpsServer`](crate::ops::OpsServer)
//! exposes it over HTTP as `POST /jobs`, `GET /jobs`, `GET /jobs/:id` and
//! `DELETE /jobs/:id` (see EXPERIMENTS.md "Job server" for the wire
//! contract).
//!
//! # Determinism contract
//!
//! A [`JobSpec`] pins everything a run depends on — problem generator,
//! method, strategy, budget and base seed — and execution flows through the
//! same `runner` dispatch the offline CLI uses (`run_strategy`,
//! `adapt_schedule_for`, the same seed-stream salts).
//! A job's result [record](JobSpec::execute) therefore contains no
//! wall-clock fields and is **byte-identical** to running
//! `repro job SPEC.json` offline with the same spec. The only
//! determinism escape hatch is the opt-in `watchdog_ms` runaway guard,
//! which can stop an instance early on wall time.
//!
//! # Crash safety
//!
//! Accepted jobs are journaled under the same WAL discipline as the
//! telemetry log (versioned header, per-record flush, torn-final-line
//! tolerance; see [`checkpoint`](crate::checkpoint)): a `submitted` event
//! is flushed *before* the HTTP 202 goes out, so killing the server
//! mid-queue and restarting with the same `--journal` loses no accepted
//! job — non-terminal jobs are re-enqueued, terminal ones keep their
//! recorded outcome.

use std::collections::BTreeMap;
use std::io::Write;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::Duration;

use anneal_core::schedule::adaptive::AdaptiveMode;
use anneal_core::{
    derive_seed, metrics, watchdog, Budget, GFunction, NoopObserver, Problem, Strategy,
    DEFAULT_EQUILIBRIUM, DEFAULT_EXCHANGE_INTERVAL,
};
use anneal_linarr::LinearArrangementProblem;
use anneal_netlist::generator::{random_multi_pin, random_two_pin};
use anneal_netlist::Netlist;
use anneal_partition::PartitionProblem;
use anneal_tsp::{TspInstance, TspProblem};
use rand::{rngs::StdRng, SeedableRng};

use crate::budgetmap::Scale;
use crate::checkpoint::{scan_wal_lines, wal_line, Json};
use crate::instances::{DEFAULT_SEED, NOLA_PIN_RANGE};
use crate::runner::{adapt_schedule_for, run_strategy, PROBE_SALT, RUN_SALT};
use crate::scheduler::{PushError, TaskQueue};
use crate::telemetry::{escape_json, json_f64};

/// Schema tag of a job result record.
pub const JOB_SCHEMA: &str = "anneal-job-record";
/// Current job record version.
pub const JOB_VERSION: u64 = 1;
/// Schema tag of the job journal's WAL header.
pub const JOURNAL_SCHEMA: &str = "anneal-jobs-wal";
/// Current job journal version.
pub const JOURNAL_VERSION: u64 = 1;
/// Default bounded-queue capacity (`repro serve --queue` overrides).
pub const DEFAULT_QUEUE_CAPACITY: usize = 64;
/// Default worker-thread count (`repro serve --job-threads` overrides).
pub const DEFAULT_JOB_THREADS: usize = 2;
/// Most instances one job may request.
pub const MAX_INSTANCES: u64 = 64;
/// Largest per-instance paper-seconds budget one job may request.
pub const MAX_SECONDS: f64 = 36_000.0;
/// Default `GET /jobs` page size.
pub const DEFAULT_LIST_LIMIT: u64 = 50;
/// Largest `GET /jobs` page size.
pub const MAX_LIST_LIMIT: u64 = 500;

/// Seed salt for TSP instance generation (mirrors `ext_tsp`).
const TSP_SALT: u64 = 0x545350;
/// Seed salt for partition instance generation (mirrors `ext_partition`).
const PARTITION_SALT: u64 = 0x504152;
/// Additive seed offset for NOLA instance generation (mirrors `instances`).
const NOLA_OFFSET: u64 = 0x4E4F;

/// Which problem family a job solves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProblemKind {
    /// Gate-oriented linear arrangement (two-pin nets).
    Gola,
    /// Net-oriented linear arrangement (multi-pin nets).
    Nola,
    /// Euclidean traveling salesperson.
    Tsp,
    /// Balanced two-way netlist partitioning.
    Partition,
}

impl ProblemKind {
    /// Stable lower-case name used on the wire and in metric labels.
    pub fn as_str(&self) -> &'static str {
        match self {
            ProblemKind::Gola => "gola",
            ProblemKind::Nola => "nola",
            ProblemKind::Tsp => "tsp",
            ProblemKind::Partition => "partition",
        }
    }

    fn parse(s: &str) -> Result<Self, String> {
        match s {
            "gola" => Ok(ProblemKind::Gola),
            "nola" => Ok(ProblemKind::Nola),
            "tsp" => Ok(ProblemKind::Tsp),
            "partition" => Ok(ProblemKind::Partition),
            other => Err(format!(
                "field `problem` must be one of gola, nola, tsp, partition; got `{other}`"
            )),
        }
    }

    fn is_netlist(&self) -> bool {
        !matches!(self, ProblemKind::Tsp)
    }
}

/// Which acceptance function (`g`) a job runs, mirroring the suite's
/// method roster.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// Six-temperature annealing (the paper's tuned STA).
    Sta,
    /// Single-temperature Metropolis.
    Metropolis,
    /// `g = 1` (always accept, paper-gated).
    Unit,
    /// Two-level g.
    TwoLevel,
}

impl Method {
    /// Stable lower-case name used on the wire.
    pub fn as_str(&self) -> &'static str {
        match self {
            Method::Sta => "sta",
            Method::Metropolis => "metropolis",
            Method::Unit => "g1",
            Method::TwoLevel => "two-level",
        }
    }

    fn parse(s: &str) -> Result<Self, String> {
        match s {
            "sta" => Ok(Method::Sta),
            "metropolis" => Ok(Method::Metropolis),
            "g1" => Ok(Method::Unit),
            "two-level" => Ok(Method::TwoLevel),
            other => Err(format!(
                "field `method` must be one of sta, metropolis, g1, two-level; got `{other}`"
            )),
        }
    }
}

/// Stable lower-case strategy name (the CLI's `--strategy` vocabulary).
pub fn strategy_str(strategy: Strategy) -> &'static str {
    match strategy {
        Strategy::Figure1 => "figure1",
        Strategy::Figure2 => "figure2",
        Strategy::Rejectionless => "rejectionless",
        Strategy::ReplicaExchange { .. } => "replica-exchange",
    }
}

/// A fully validated job specification: everything a deterministic run
/// depends on. Parsed strictly from client JSON ([`JobSpec::parse`]
/// rejects unknown fields, out-of-range budgets and malformed netlists
/// with precise messages that become HTTP 400 bodies) and re-serialized
/// canonically by [`JobSpec::to_json`] (`parse(to_json(s)) == s`).
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Problem family.
    pub problem: ProblemKind,
    /// Instances to solve (1..=[`MAX_INSTANCES`]).
    pub instances: u64,
    /// Elements per generated netlist instance (netlist problems).
    pub elements: u64,
    /// Nets per generated netlist instance (netlist problems).
    pub nets: u64,
    /// Cities per generated instance (TSP only).
    pub cities: u64,
    /// Inline netlist (pins per net); replaces the generator, so every
    /// instance solves this exact netlist from a different start.
    pub netlist: Option<Vec<Vec<u64>>>,
    /// Acceptance function.
    pub method: Method,
    /// `y1` override for `sta`/`metropolis` (family default otherwise).
    pub temperature: Option<f64>,
    /// Control strategy (exchange interval riding inside
    /// [`Strategy::ReplicaExchange`]).
    pub strategy: Strategy,
    /// Ladder size for replica-exchange (`--replicas` semantics).
    pub replicas: Option<usize>,
    /// Adaptive-schedule override (`--schedule` semantics).
    pub schedule: Option<AdaptiveMode>,
    /// Per-instance budget in paper (VAX) seconds.
    pub seconds: f64,
    /// Budget divisor (`--scale` semantics).
    pub scale: u64,
    /// Base seed; every instance derives its streams from it.
    pub seed: u64,
    /// Optional per-instance wall-clock runaway guard (the thread-local
    /// watchdog). The one knob that can make a record time-dependent.
    pub watchdog_ms: Option<u64>,
}

/// Every field name [`JobSpec::parse`] accepts.
const SPEC_FIELDS: [&str; 16] = [
    "problem",
    "instances",
    "elements",
    "nets",
    "cities",
    "netlist",
    "method",
    "temperature",
    "strategy",
    "replicas",
    "exchange_interval",
    "schedule",
    "seconds",
    "scale",
    "seed",
    "watchdog_ms",
];

fn ranged_u64(v: &Json, key: &str, lo: u64, hi: u64) -> Result<u64, String> {
    let n = v
        .as_u64_checked()
        .map_err(|e| format!("field `{key}`: {e}"))?;
    if n < lo || n > hi {
        return Err(format!("field `{key}` must be in {lo}..={hi}, got {n}"));
    }
    Ok(n)
}

fn reject_for(fields: &[(String, Json)], key: &str, why: &str) -> Result<(), String> {
    if fields.iter().any(|(k, _)| k == key) {
        return Err(format!("field `{key}` {why}"));
    }
    Ok(())
}

impl JobSpec {
    /// Parses and validates a job spec from client JSON text.
    ///
    /// # Errors
    ///
    /// Returns a precise, field-naming message (the HTTP 400 body) for
    /// unknown or duplicate fields, type mismatches, out-of-range values,
    /// malformed netlists, or options that do not apply to the chosen
    /// problem, method or strategy.
    pub fn parse(text: &str) -> Result<JobSpec, String> {
        let value = Json::parse(text).map_err(|e| format!("invalid JSON: {e}"))?;
        Self::from_value(&value)
    }

    /// [`parse`](JobSpec::parse) on an already parsed JSON value (used by
    /// journal replay).
    pub fn from_value(value: &Json) -> Result<JobSpec, String> {
        let fields = value
            .as_obj()
            .ok_or_else(|| "job spec must be a JSON object".to_string())?;
        for (i, (key, _)) in fields.iter().enumerate() {
            if !SPEC_FIELDS.contains(&key.as_str()) {
                return Err(format!("unknown field `{key}`"));
            }
            if fields[..i].iter().any(|(k, _)| k == key) {
                return Err(format!("duplicate field `{key}`"));
            }
        }

        let problem = ProblemKind::parse(
            value
                .get("problem")
                .ok_or_else(|| "missing required field `problem`".to_string())?
                .as_str()
                .ok_or_else(|| "field `problem` must be a string".to_string())?,
        )?;

        let instances = match value.get("instances") {
            Some(v) => ranged_u64(v, "instances", 1, MAX_INSTANCES)?,
            None => 4,
        };

        // Problem-family parameters: each knob only exists for the family
        // it configures, so a typo'd spec fails loudly instead of being
        // silently ignored.
        let netlist = match value.get("netlist") {
            Some(v) => {
                if !problem.is_netlist() {
                    return Err(format!(
                        "field `netlist` does not apply to problem `{}`",
                        problem.as_str()
                    ));
                }
                Some(parse_netlist(v)?)
            }
            None => None,
        };
        let (elements, nets) = if problem.is_netlist() {
            reject_for(
                fields,
                "cities",
                &format!("does not apply to problem `{}`", problem.as_str()),
            )?;
            let elements = match value.get("elements") {
                Some(v) => ranged_u64(v, "elements", 2, 1024)?,
                None if netlist.is_some() => {
                    return Err("inline `netlist` requires `elements`".to_string())
                }
                None => 15,
            };
            let nets = match value.get("nets") {
                Some(_) if netlist.is_some() => {
                    return Err("field `nets` conflicts with inline `netlist`".to_string())
                }
                Some(v) => ranged_u64(v, "nets", 1, 100_000)?,
                None => 150,
            };
            if let Some(nl) = &netlist {
                validate_netlist(problem, elements, nl)?;
            }
            (elements, nets)
        } else {
            for key in ["elements", "nets"] {
                reject_for(fields, key, "does not apply to problem `tsp`")?;
            }
            (15, 150)
        };
        let cities = if problem == ProblemKind::Tsp {
            match value.get("cities") {
                Some(v) => ranged_u64(v, "cities", 3, 10_000)?,
                None => 60,
            }
        } else {
            60
        };

        let method = match value.get("method") {
            Some(v) => Method::parse(
                v.as_str()
                    .ok_or_else(|| "field `method` must be a string".to_string())?,
            )?,
            None => Method::Sta,
        };
        let temperature = match value.get("temperature") {
            Some(v) => {
                if matches!(method, Method::Unit | Method::TwoLevel) {
                    return Err(format!(
                        "field `temperature` does not apply to method `{}`",
                        method.as_str()
                    ));
                }
                let t = v
                    .as_f64()
                    .ok_or_else(|| "field `temperature` must be a number".to_string())?;
                if !t.is_finite() || t <= 0.0 {
                    return Err(format!(
                        "field `temperature` must be finite and positive, got {t}"
                    ));
                }
                Some(t)
            }
            None => None,
        };

        let strategy_name = match value.get("strategy") {
            Some(v) => v
                .as_str()
                .ok_or_else(|| "field `strategy` must be a string".to_string())?,
            None => "figure1",
        };
        let exchange_interval = match value.get("exchange_interval") {
            Some(v) => Some(ranged_u64(v, "exchange_interval", 1, 1_000_000)?),
            None => None,
        };
        let replicas = match value.get("replicas") {
            Some(v) => Some(ranged_u64(v, "replicas", 2, 16)? as usize),
            None => None,
        };
        let strategy = match strategy_name {
            "figure1" => Strategy::Figure1,
            "figure2" => Strategy::Figure2,
            "rejectionless" => Strategy::Rejectionless,
            "replica-exchange" => Strategy::ReplicaExchange {
                exchange_interval: exchange_interval.unwrap_or(DEFAULT_EXCHANGE_INTERVAL),
            },
            other => {
                return Err(format!(
                    "field `strategy` must be one of figure1, figure2, rejectionless, \
                     replica-exchange; got `{other}`"
                ))
            }
        };
        if !matches!(strategy, Strategy::ReplicaExchange { .. })
            && (replicas.is_some() || exchange_interval.is_some())
        {
            return Err(
                "fields `replicas` and `exchange_interval` require strategy replica-exchange"
                    .to_string(),
            );
        }

        let schedule =
            match value.get("schedule") {
                Some(v) => {
                    let s = v
                        .as_str()
                        .ok_or_else(|| "field `schedule` must be a string".to_string())?;
                    Some(s.parse::<AdaptiveMode>().map_err(|_| {
                        format!("field `schedule` must be adaptive or asa; got `{s}`")
                    })?)
                }
                None => None,
            };

        let seconds = match value.get("seconds") {
            Some(v) => {
                let s = v
                    .as_f64()
                    .ok_or_else(|| "field `seconds` must be a number".to_string())?;
                if !s.is_finite() || s <= 0.0 || s > MAX_SECONDS {
                    return Err(format!(
                        "field `seconds` must be in (0, {MAX_SECONDS:.0}], got {s}"
                    ));
                }
                s
            }
            None => 6.0,
        };
        let scale = match value.get("scale") {
            Some(v) => ranged_u64(v, "scale", 1, 1_000_000_000)?,
            None => 1,
        };
        let seed = match value.get("seed") {
            Some(v) => v
                .as_u64_checked()
                .map_err(|e| format!("field `seed`: {e}"))?,
            None => DEFAULT_SEED,
        };
        let watchdog_ms = match value.get("watchdog_ms") {
            Some(v) => Some(ranged_u64(v, "watchdog_ms", 1, 600_000)?),
            None => None,
        };

        Ok(JobSpec {
            problem,
            instances,
            elements,
            nets,
            cities,
            netlist,
            method,
            temperature,
            strategy,
            replicas,
            schedule,
            seconds,
            scale,
            seed,
            watchdog_ms,
        })
    }

    /// The canonical serialization: fixed field order, family-specific
    /// knobs only for the family that owns them, optional fields omitted
    /// when unset. `parse(to_json(spec)) == spec`.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(160);
        s.push_str(&format!(
            "{{\"problem\":\"{}\",\"instances\":{}",
            self.problem.as_str(),
            self.instances
        ));
        if self.problem.is_netlist() {
            s.push_str(&format!(",\"elements\":{}", self.elements));
            match &self.netlist {
                Some(nets) => {
                    s.push_str(",\"netlist\":[");
                    for (i, net) in nets.iter().enumerate() {
                        if i > 0 {
                            s.push(',');
                        }
                        s.push('[');
                        for (j, pin) in net.iter().enumerate() {
                            if j > 0 {
                                s.push(',');
                            }
                            s.push_str(&pin.to_string());
                        }
                        s.push(']');
                    }
                    s.push(']');
                }
                None => s.push_str(&format!(",\"nets\":{}", self.nets)),
            }
        } else {
            s.push_str(&format!(",\"cities\":{}", self.cities));
        }
        s.push_str(&format!(",\"method\":\"{}\"", self.method.as_str()));
        if let Some(t) = self.temperature {
            s.push_str(&format!(",\"temperature\":{}", json_f64(t)));
        }
        s.push_str(&format!(
            ",\"strategy\":\"{}\"",
            strategy_str(self.strategy)
        ));
        if let Some(k) = self.replicas {
            s.push_str(&format!(",\"replicas\":{k}"));
        }
        if let Strategy::ReplicaExchange { exchange_interval } = self.strategy {
            s.push_str(&format!(",\"exchange_interval\":{exchange_interval}"));
        }
        if let Some(mode) = self.schedule {
            s.push_str(&format!(",\"schedule\":\"{mode}\""));
        }
        s.push_str(&format!(
            ",\"seconds\":{},\"scale\":{},\"seed\":{}",
            json_f64(self.seconds),
            self.scale,
            self.seed
        ));
        if let Some(ms) = self.watchdog_ms {
            s.push_str(&format!(",\"watchdog_ms\":{ms}"));
        }
        s.push('}');
        s
    }

    /// The per-instance evaluation budget this spec buys.
    pub fn budget(&self) -> Budget {
        Scale::new(self.scale).vax_seconds(self.seconds)
    }

    /// The spec's `repro job` command line — how to reproduce a served
    /// job's record offline, bit for bit.
    pub fn repro_hint(&self) -> String {
        "save the spec to SPEC.json and run: repro job SPEC.json".to_string()
    }

    /// Runs the job to completion, checking `cancel` between instances
    /// (cancellation is cooperative at instance boundaries; the optional
    /// `watchdog_ms` guard bounds a runaway instance from within). The
    /// `Done` record is pure f64-shortest-representation JSON with no
    /// wall-clock fields — the byte-determinism contract.
    pub fn execute(&self, cancel: &AtomicBool) -> JobOutcome {
        let _wall =
            metrics::global().span_into("job_wall_us", &[("problem", self.problem.as_str())]);
        let mut outs = Vec::with_capacity(self.instances as usize);
        for i in 0..self.instances {
            if cancel.load(Ordering::SeqCst) {
                return JobOutcome::Cancelled;
            }
            match catch_unwind(AssertUnwindSafe(|| self.run_instance(i))) {
                Ok(out) => outs.push(out),
                Err(payload) => {
                    let msg = payload
                        .downcast_ref::<&str>()
                        .map(|s| s.to_string())
                        .or_else(|| payload.downcast_ref::<String>().cloned())
                        .unwrap_or_else(|| "instance panicked".to_string());
                    return JobOutcome::Failed {
                        error: format!("instance {i}: {msg}"),
                    };
                }
            }
        }
        JobOutcome::Done {
            record: self.record_json(&outs),
        }
    }

    fn run_instance(&self, i: u64) -> InstanceOut {
        let _guard = self
            .watchdog_ms
            .map(|ms| watchdog::arm(Duration::from_millis(ms)));
        match self.problem {
            ProblemKind::Gola | ProblemKind::Nola => {
                let p = LinearArrangementProblem::new(self.netlist_for(i));
                self.run_generic(&p, i)
            }
            ProblemKind::Partition => {
                let p = PartitionProblem::new(self.netlist_for(i));
                self.run_generic(&p, i)
            }
            ProblemKind::Tsp => {
                let mut rng = StdRng::seed_from_u64(derive_seed(self.seed ^ TSP_SALT, i));
                let p = TspProblem::new(TspInstance::random_euclidean(
                    self.cities as usize,
                    &mut rng,
                ));
                self.run_generic(&p, i)
            }
        }
    }

    /// Instance `i`'s netlist: the inline one verbatim, or the family
    /// generator on the same salted seed streams the suite uses
    /// ([`crate::instances`], `ext_partition`).
    fn netlist_for(&self, i: u64) -> Netlist {
        if let Some(nets) = &self.netlist {
            let pins = nets
                .iter()
                .map(|net| net.iter().map(|&p| p as u32).collect::<Vec<_>>());
            return Netlist::builder(self.elements as usize)
                .nets(pins)
                .build()
                .expect("netlist validated at parse time");
        }
        match self.problem {
            ProblemKind::Gola => {
                let mut rng = StdRng::seed_from_u64(derive_seed(self.seed, i));
                random_two_pin(self.elements as usize, self.nets as usize, &mut rng)
            }
            ProblemKind::Nola => {
                let mut rng =
                    StdRng::seed_from_u64(derive_seed(self.seed.wrapping_add(NOLA_OFFSET), i));
                random_multi_pin(
                    self.elements as usize,
                    self.nets as usize,
                    NOLA_PIN_RANGE.0,
                    NOLA_PIN_RANGE.1,
                    &mut rng,
                )
            }
            ProblemKind::Partition => {
                let mut rng = StdRng::seed_from_u64(derive_seed(self.seed ^ PARTITION_SALT, i));
                random_two_pin(self.elements as usize, self.nets as usize, &mut rng)
            }
            ProblemKind::Tsp => unreachable!("TSP has no netlist"),
        }
    }

    fn run_generic<P: Problem>(&self, p: &P, i: u64) -> InstanceOut {
        let mut start_rng = StdRng::seed_from_u64(derive_seed(self.seed, i));
        let start = p.random_state(&mut start_rng);
        let mut g = self.g_function();
        let (budget, controller) = adapt_schedule_for(
            self.schedule,
            derive_seed(self.seed ^ PROBE_SALT, i),
            p,
            &mut g,
            self.budget(),
        );
        let chain_seed = derive_seed(self.seed ^ RUN_SALT, i);
        let mut rng = StdRng::seed_from_u64(chain_seed);
        let result = run_strategy(
            p,
            &mut g,
            start,
            self.strategy,
            budget,
            DEFAULT_EQUILIBRIUM,
            self.replicas,
            controller,
            &mut rng,
            &mut NoopObserver,
        );
        InstanceOut {
            seed: chain_seed,
            initial: result.initial_cost,
            best: result.best_cost,
            final_cost: result.final_cost,
            reduction: result.reduction(),
            evals: result.stats.evals,
            stop: result.stop.as_str(),
            accepted_downhill: result.stats.accepted_downhill,
            accepted_uphill: result.stats.accepted_uphill,
            rejected_uphill: result.stats.rejected_uphill,
        }
    }

    /// The method's `g` with the family's tuned default `y1` (GOLA-scale
    /// costs vs unit-square tour lengths) unless `temperature` overrides.
    fn g_function(&self) -> GFunction {
        let tsp = self.problem == ProblemKind::Tsp;
        match self.method {
            Method::Sta => GFunction::six_temp_annealing(self.temperature.unwrap_or(if tsp {
                0.3
            } else {
                10.0
            })),
            Method::Metropolis => {
                GFunction::metropolis(self.temperature.unwrap_or(if tsp { 0.1 } else { 2.0 }))
            }
            Method::Unit => GFunction::unit(),
            Method::TwoLevel => GFunction::two_level(),
        }
    }

    fn record_json(&self, outs: &[InstanceOut]) -> String {
        let reduction: f64 = outs.iter().map(|o| o.reduction).sum();
        let evals: u64 = outs.iter().map(|o| o.evals).sum();
        let mut s = String::with_capacity(256);
        s.push_str(&format!(
            "{{\"schema\":\"{JOB_SCHEMA}\",\"version\":{JOB_VERSION},\"spec\":{},\
             \"budget\":\"{}\",\"reduction\":{},\"evals\":{evals},\"per_instance\":[",
            self.to_json(),
            self.budget(),
            json_f64(reduction),
        ));
        for (i, o) in outs.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "{{\"instance\":{i},\"seed\":{},\"initial\":{},\"best\":{},\"final\":{},\
                 \"reduction\":{},\"evals\":{},\"stop\":\"{}\",\"accepted_downhill\":{},\
                 \"accepted_uphill\":{},\"rejected_uphill\":{}}}",
                o.seed,
                json_f64(o.initial),
                json_f64(o.best),
                json_f64(o.final_cost),
                json_f64(o.reduction),
                o.evals,
                o.stop,
                o.accepted_downhill,
                o.accepted_uphill,
                o.rejected_uphill,
            ));
        }
        s.push_str("]}");
        s
    }
}

fn parse_netlist(v: &Json) -> Result<Vec<Vec<u64>>, String> {
    let nets = v
        .as_arr()
        .ok_or_else(|| "field `netlist` must be an array of nets".to_string())?;
    if nets.is_empty() {
        return Err("field `netlist` must contain at least one net".to_string());
    }
    if nets.len() > 100_000 {
        return Err("field `netlist` has too many nets (max 100000)".to_string());
    }
    let mut out = Vec::with_capacity(nets.len());
    for (i, net) in nets.iter().enumerate() {
        let pins = net
            .as_arr()
            .ok_or_else(|| format!("netlist net {i} must be an array of element indices"))?;
        let mut p = Vec::with_capacity(pins.len());
        for pin in pins {
            p.push(
                pin.as_u64_checked()
                    .map_err(|e| format!("netlist net {i}: {e}"))?,
            );
        }
        out.push(p);
    }
    Ok(out)
}

fn validate_netlist(problem: ProblemKind, elements: u64, nets: &[Vec<u64>]) -> Result<(), String> {
    if problem == ProblemKind::Gola {
        if let Some((i, net)) = nets.iter().enumerate().find(|(_, n)| n.len() != 2) {
            return Err(format!(
                "problem `gola` requires two-pin nets; net {i} has {} pins",
                net.len()
            ));
        }
    }
    let pins = nets.iter().map(|net| {
        net.iter()
            .map(|&p| p.min(u32::MAX as u64) as u32)
            .collect::<Vec<_>>()
    });
    Netlist::builder(elements as usize)
        .nets(pins)
        .build()
        .map(|_| ())
        .map_err(|e| format!("invalid netlist: {e}"))
}

/// One instance's wall-free result numbers.
struct InstanceOut {
    seed: u64,
    initial: f64,
    best: f64,
    final_cost: f64,
    reduction: f64,
    evals: u64,
    stop: &'static str,
    accepted_downhill: u64,
    accepted_uphill: u64,
    rejected_uphill: u64,
}

/// How a job execution ended.
#[derive(Debug, Clone, PartialEq)]
pub enum JobOutcome {
    /// All instances completed; `record` is the canonical result JSON.
    Done {
        /// The byte-deterministic result record.
        record: String,
    },
    /// An instance panicked (or its input was rejected at run time).
    Failed {
        /// What went wrong, naming the instance.
        error: String,
    },
    /// The cancel flag was observed at an instance boundary.
    Cancelled,
}

/// The job lifecycle: `queued → running → done | failed | cancelled`,
/// with `queued → cancelled` for jobs cancelled before a worker claims
/// them. Terminal states absorb — in particular, cancel is terminal and
/// `done` can never regress to `running`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Accepted and journaled, waiting for a worker.
    Queued,
    /// A worker is executing it.
    Running,
    /// Completed with a result record.
    Done,
    /// Execution failed.
    Failed,
    /// Cancelled by a client.
    Cancelled,
}

/// Every job state, in display order (the order `jobs_state` gauges are
/// exported in).
pub const JOB_STATES: [JobState; 5] = [
    JobState::Queued,
    JobState::Running,
    JobState::Done,
    JobState::Failed,
    JobState::Cancelled,
];

impl JobState {
    /// Stable lower-case name used on the wire, in the journal and as the
    /// `jobs_state{state=...}` gauge label.
    pub fn as_str(&self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed => "failed",
            JobState::Cancelled => "cancelled",
        }
    }

    /// Whether no further transition can leave this state.
    pub fn is_terminal(&self) -> bool {
        matches!(
            self,
            JobState::Done | JobState::Failed | JobState::Cancelled
        )
    }

    /// Whether the state machine allows `self → to`.
    pub fn can_transition(&self, to: JobState) -> bool {
        matches!(
            (self, to),
            (JobState::Queued, JobState::Running)
                | (JobState::Queued, JobState::Cancelled)
                | (JobState::Running, JobState::Done)
                | (JobState::Running, JobState::Failed)
                | (JobState::Running, JobState::Cancelled)
        )
    }
}

impl std::fmt::Display for JobState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

#[derive(Debug)]
struct JobEntry {
    spec: JobSpec,
    state: JobState,
    error: Option<String>,
    record: Option<String>,
    cancel: Arc<AtomicBool>,
}

impl JobEntry {
    fn new(spec: JobSpec, state: JobState) -> Self {
        JobEntry {
            spec,
            state,
            error: None,
            record: None,
            cancel: Arc::new(AtomicBool::new(false)),
        }
    }

    /// The wire shape of one job (`GET /jobs/:id`). The `record` object is
    /// deliberately the *last* field so clients (and the determinism e2e
    /// test) can slice it off the tail verbatim.
    fn to_json(&self, id: u64) -> String {
        let mut s = format!(
            "{{\"id\":{id},\"state\":\"{}\",\"spec\":{}",
            self.state,
            self.spec.to_json()
        );
        if self.state == JobState::Running && self.cancel.load(Ordering::SeqCst) {
            s.push_str(",\"cancel_requested\":true");
        }
        if let Some(e) = &self.error {
            s.push_str(&format!(",\"error\":\"{}\"", escape_json(e)));
        }
        if let Some(r) = &self.record {
            s.push_str(&format!(",\"record\":{r}"));
        }
        s.push('}');
        s
    }
}

struct Journal {
    writer: std::io::BufWriter<std::fs::File>,
    path: String,
    seq: u64,
}

impl Journal {
    /// Appends one event line under WAL discipline: `seq` spliced in,
    /// written and flushed before the caller's HTTP response leaves.
    fn append(&mut self, event_json: &str) -> Result<(), String> {
        self.seq += 1;
        writeln!(self.writer, "{}", wal_line(event_json, self.seq))
            .and_then(|()| self.writer.flush())
            .map_err(|e| format!("cannot append to job journal `{}`: {e}", self.path))
    }
}

struct JobsRegistry {
    jobs: BTreeMap<u64, JobEntry>,
    next_id: u64,
    journal: Option<Journal>,
}

struct Inner {
    queue: TaskQueue<u64>,
    draining: AtomicBool,
    state: Mutex<JobsRegistry>,
}

impl Inner {
    fn lock(&self) -> MutexGuard<'_, JobsRegistry> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mirrors per-state job counts into the `jobs_state{state=...}`
    /// gauges after every transition.
    fn update_gauges(reg: &JobsRegistry) {
        let m = metrics::global();
        for state in JOB_STATES {
            let count = reg.jobs.values().filter(|j| j.state == state).count();
            m.gauge_with("jobs_state", &[("state", state.as_str())])
                .set(count as f64);
        }
    }

    /// Journals a job event; journal write failures degrade to stderr (the
    /// in-memory state machine stays authoritative for this process's
    /// lifetime).
    fn journal_event(reg: &mut JobsRegistry, event_json: &str) {
        if let Some(journal) = reg.journal.as_mut() {
            if let Err(e) = journal.append(event_json) {
                metrics::global().counter("jobs.journal_errors").inc();
                eprintln!("jobs: {e}");
            }
        }
    }
}

fn error_body(message: &str) -> String {
    format!("{{\"error\":\"{}\"}}", escape_json(message))
}

/// The queued job server: a bounded submission queue, a worker pool
/// executing [`JobSpec`]s deterministically, and an optional WAL-style
/// journal making accepted jobs survive a crash. The HTTP verbs map to
/// [`submit`](JobServer::submit) / [`get`](JobServer::get) /
/// [`list`](JobServer::list) / [`cancel`](JobServer::cancel), each
/// returning `(status, json_body)` so [`crate::ops`] stays a thin router
/// and tests can drive the server without sockets.
pub struct JobServer {
    inner: Arc<Inner>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl JobServer {
    /// Starts `threads` workers over a queue of `capacity`. With a journal
    /// path, replays any existing journal first: terminal jobs keep their
    /// outcome, non-terminal (accepted but unfinished) jobs are re-queued —
    /// the capacity grows to fit them all, since they were already
    /// accepted once.
    ///
    /// # Errors
    ///
    /// Returns an error for an unreadable or corrupt journal (a torn
    /// final line is tolerated, as for any WAL).
    pub fn start(
        threads: usize,
        capacity: usize,
        journal_path: Option<&str>,
    ) -> Result<JobServer, String> {
        let threads = threads.max(1);
        let capacity = capacity.max(1);
        let (jobs, next_id, journal) = match journal_path {
            Some(path) => {
                let (jobs, next_id) = replay_journal(path)?;
                let journal = open_journal(path)?;
                (jobs, next_id, Some(journal))
            }
            None => (BTreeMap::new(), 1, None),
        };
        let requeue: Vec<u64> = jobs
            .iter()
            .filter(|(_, j)| j.state == JobState::Queued)
            .map(|(&id, _)| id)
            .collect();
        let inner = Arc::new(Inner {
            queue: TaskQueue::bounded(capacity.max(requeue.len())),
            draining: AtomicBool::new(false),
            state: Mutex::new(JobsRegistry {
                jobs,
                next_id,
                journal,
            }),
        });
        for id in requeue {
            inner
                .queue
                .push(id)
                .expect("capacity covers every replayed job");
        }
        Inner::update_gauges(&inner.lock());
        let workers = (0..threads)
            .map(|_| {
                let inner = Arc::clone(&inner);
                std::thread::spawn(move || worker_loop(&inner))
            })
            .collect();
        Ok(JobServer {
            inner,
            workers: Mutex::new(workers),
        })
    }

    /// `POST /jobs`: validates `body` as a [`JobSpec`], journals and
    /// enqueues it. `202` with the job resource on acceptance, `400` with
    /// a precise message on a bad spec, `429` when the queue is full (the
    /// backpressure contract) and `503` while shutting down.
    pub fn submit(&self, body: &str) -> (u16, String) {
        let spec = match JobSpec::parse(body) {
            Ok(spec) => spec,
            Err(e) => {
                metrics::global().counter("jobs.rejected_invalid").inc();
                return (400, error_body(&e));
            }
        };
        let mut reg = self.inner.lock();
        if self.inner.draining.load(Ordering::SeqCst) {
            return (503, error_body("server is draining"));
        }
        let id = reg.next_id;
        reg.jobs
            .insert(id, JobEntry::new(spec.clone(), JobState::Queued));
        match self.inner.queue.push(id) {
            Ok(()) => {}
            Err(PushError::Full) => {
                reg.jobs.remove(&id);
                metrics::global()
                    .counter("jobs.rejected_backpressure")
                    .inc();
                return (
                    429,
                    format!(
                        "{{\"error\":\"queue full\",\"capacity\":{}}}",
                        self.inner.queue.capacity()
                    ),
                );
            }
            Err(PushError::Closed) => {
                reg.jobs.remove(&id);
                return (503, error_body("server is shutting down"));
            }
        }
        reg.next_id = id + 1;
        // Flush the journal before the 202 leaves: an acknowledged job
        // must survive a crash.
        Inner::journal_event(
            &mut reg,
            &format!(
                "{{\"job\":{id},\"event\":\"submitted\",\"spec\":{}}}",
                spec.to_json()
            ),
        );
        Inner::update_gauges(&reg);
        metrics::global().counter("jobs.submitted").inc();
        let body = reg.jobs[&id].to_json(id);
        (202, body)
    }

    /// `GET /jobs/:id`: the job resource, or `404`.
    pub fn get(&self, id_str: &str) -> (u16, String) {
        let reg = self.inner.lock();
        match parse_id(id_str).and_then(|id| reg.jobs.get(&id).map(|j| (id, j))) {
            Some((id, job)) => (200, job.to_json(id)),
            None => (404, error_body(&format!("no such job `{id_str}`"))),
        }
    }

    /// `GET /jobs?offset=N&limit=M`: a paginated id-ordered listing.
    pub fn list(&self, query: &str) -> (u16, String) {
        let mut offset: u64 = 0;
        let mut limit: u64 = DEFAULT_LIST_LIMIT;
        for pair in query.split('&').filter(|p| !p.is_empty()) {
            let (key, value) = pair.split_once('=').unwrap_or((pair, ""));
            let parsed: Result<u64, _> = value.parse();
            match (key, parsed) {
                ("offset", Ok(n)) => offset = n,
                ("limit", Ok(n)) if (1..=MAX_LIST_LIMIT).contains(&n) => limit = n,
                _ => {
                    return (
                        400,
                        error_body(&format!(
                            "bad query parameter `{pair}` (offset=N, limit=1..={MAX_LIST_LIMIT})"
                        )),
                    )
                }
            }
        }
        let reg = self.inner.lock();
        let total = reg.jobs.len();
        let mut s = format!("{{\"total\":{total},\"offset\":{offset},\"limit\":{limit},\"jobs\":[");
        for (i, (id, job)) in reg
            .jobs
            .iter()
            .skip(offset as usize)
            .take(limit as usize)
            .enumerate()
        {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!("{{\"id\":{id},\"state\":\"{}\"}}", job.state));
        }
        s.push_str("]}");
        (200, s)
    }

    /// `DELETE /jobs/:id`: cancellation. A queued job cancels immediately
    /// (`200`); a running one gets its cancel flag raised and finishes
    /// cancelling at the next instance boundary (`202`); a terminal job is
    /// a `409` conflict; unknown ids are `404`.
    pub fn cancel(&self, id_str: &str) -> (u16, String) {
        let mut reg = self.inner.lock();
        let Some(id) = parse_id(id_str) else {
            return (404, error_body(&format!("no such job `{id_str}`")));
        };
        let Some(job) = reg.jobs.get_mut(&id) else {
            return (404, error_body(&format!("no such job `{id_str}`")));
        };
        match job.state {
            JobState::Queued => {
                job.state = JobState::Cancelled;
                // The queued id stays in the queue; the worker skips
                // entries that are no longer `queued` when it pops them.
                Inner::journal_event(
                    &mut reg,
                    &format!("{{\"job\":{id},\"event\":\"cancelled\"}}"),
                );
                Inner::update_gauges(&reg);
                let body = reg.jobs[&id].to_json(id);
                (200, body)
            }
            JobState::Running => {
                job.cancel.store(true, Ordering::SeqCst);
                let body = job.to_json(id);
                (202, body)
            }
            state => (
                409,
                error_body(&format!("job {id} is already {state}; cancel is terminal")),
            ),
        }
    }

    /// Jobs currently waiting in the queue (for ops surfaces).
    pub fn queued(&self) -> usize {
        self.inner.queue.len()
    }

    /// Stops accepting *and starting* jobs, drains the in-flight ones, and
    /// joins the workers. Queued-but-unstarted jobs stay journaled as
    /// accepted and re-run after a restart — the SIGTERM drain contract.
    pub fn shutdown(&self) {
        self.inner.draining.store(true, Ordering::SeqCst);
        self.inner.queue.close();
        let workers: Vec<_> = {
            let mut guard = self.workers.lock().unwrap_or_else(PoisonError::into_inner);
            guard.drain(..).collect()
        };
        for handle in workers {
            let _ = handle.join();
        }
    }
}

impl Drop for JobServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn parse_id(s: &str) -> Option<u64> {
    // Strict digits-only: "+3", "3x" and "" are all unknown ids.
    if s.is_empty() || !s.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    s.parse().ok()
}

fn worker_loop(inner: &Inner) {
    while let Some(id) = inner.queue.pop() {
        if inner.draining.load(Ordering::SeqCst) {
            // Drain: leave the job `queued` (it is journaled as accepted
            // and will re-run after a restart).
            continue;
        }
        let (spec, cancel) = {
            let mut reg = inner.lock();
            let Some(job) = reg.jobs.get_mut(&id) else {
                continue;
            };
            if job.state != JobState::Queued {
                // Cancelled while waiting; its queue entry is stale.
                continue;
            }
            job.state = JobState::Running;
            let claimed = (job.spec.clone(), Arc::clone(&job.cancel));
            Inner::journal_event(&mut reg, &format!("{{\"job\":{id},\"event\":\"running\"}}"));
            Inner::update_gauges(&reg);
            claimed
        };
        let outcome = spec.execute(&cancel);
        let mut reg = inner.lock();
        let Some(job) = reg.jobs.get_mut(&id) else {
            continue;
        };
        let (to, event) = match outcome {
            JobOutcome::Done { record } => {
                job.record = Some(record.clone());
                (
                    JobState::Done,
                    format!(
                        "{{\"job\":{id},\"event\":\"done\",\"record\":\"{}\"}}",
                        escape_json(&record)
                    ),
                )
            }
            JobOutcome::Failed { error } => {
                job.error = Some(error.clone());
                (
                    JobState::Failed,
                    format!(
                        "{{\"job\":{id},\"event\":\"failed\",\"error\":\"{}\"}}",
                        escape_json(&error)
                    ),
                )
            }
            JobOutcome::Cancelled => (
                JobState::Cancelled,
                format!("{{\"job\":{id},\"event\":\"cancelled\"}}"),
            ),
        };
        debug_assert!(job.state.can_transition(to));
        job.state = to;
        Inner::journal_event(&mut reg, &event);
        Inner::update_gauges(&reg);
    }
}

fn journal_header() -> String {
    format!("{{\"wal\":\"{JOURNAL_SCHEMA}\",\"version\":{JOURNAL_VERSION}}}")
}

/// Opens (creating if absent) the journal in append mode, writing the
/// versioned header only when the file is fresh — `open_shard`'s
/// discipline with the jobs schema.
fn open_journal(path: &str) -> Result<Journal, String> {
    let file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .map_err(|e| format!("cannot open job journal `{path}`: {e}"))?;
    let fresh = file
        .metadata()
        .map(|m| m.len() == 0)
        .map_err(|e| format!("cannot stat job journal `{path}`: {e}"))?;
    let mut writer = std::io::BufWriter::new(file);
    if fresh {
        writeln!(writer, "{}", journal_header())
            .and_then(|()| writer.flush())
            .map_err(|e| format!("cannot write job journal header to `{path}`: {e}"))?;
    }
    Ok(Journal {
        writer,
        path: path.to_string(),
        seq: 0,
    })
}

/// Replays a journal into the job map: the last event per job wins, and
/// jobs whose last event is non-terminal come back `queued` (a `running`
/// job's worker died with the process — the accepted spec re-runs, and
/// determinism makes the re-run equivalent). Returns the map and the next
/// fresh id.
fn replay_journal(path: &str) -> Result<(BTreeMap<u64, JobEntry>, u64), String> {
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            return Ok((BTreeMap::new(), 1));
        }
        Err(e) => return Err(format!("cannot read job journal `{path}`: {e}")),
    };
    let mut jobs: BTreeMap<u64, JobEntry> = BTreeMap::new();
    let mut max_id = 0u64;
    scan_wal_lines(&text, |i, value| {
        if i == 0 {
            let schema = value.get("wal").and_then(Json::as_str).unwrap_or_default();
            if schema != JOURNAL_SCHEMA {
                return Err(format!("unknown journal schema `{schema}`"));
            }
            let version = value
                .get("version")
                .ok_or_else(|| "journal header missing `version`".to_string())?
                .as_u64_checked()?;
            if version > JOURNAL_VERSION {
                return Err(format!(
                    "journal version {version} is newer than supported {JOURNAL_VERSION}"
                ));
            }
            return Ok(());
        }
        let id = value
            .get("job")
            .ok_or_else(|| "journal record missing `job`".to_string())?
            .as_u64_checked()?;
        let event = value
            .get("event")
            .and_then(Json::as_str)
            .ok_or_else(|| "journal record missing `event`".to_string())?;
        max_id = max_id.max(id);
        match event {
            "submitted" => {
                let spec_value = value
                    .get("spec")
                    .ok_or_else(|| "submitted event missing `spec`".to_string())?;
                let spec = JobSpec::from_value(spec_value)?;
                jobs.insert(id, JobEntry::new(spec, JobState::Queued));
                Ok(())
            }
            "running" => match jobs.get_mut(&id) {
                // The process died mid-run; the job goes back to the queue.
                Some(job) => {
                    job.state = JobState::Queued;
                    Ok(())
                }
                None => Err(format!("running event for unknown job {id}")),
            },
            "done" => {
                let record = value
                    .get("record")
                    .and_then(Json::as_str)
                    .ok_or_else(|| "done event missing `record`".to_string())?
                    .to_string();
                match jobs.get_mut(&id) {
                    Some(job) => {
                        job.state = JobState::Done;
                        job.record = Some(record);
                        Ok(())
                    }
                    None => Err(format!("done event for unknown job {id}")),
                }
            }
            "failed" => {
                let error = value
                    .get("error")
                    .and_then(Json::as_str)
                    .ok_or_else(|| "failed event missing `error`".to_string())?
                    .to_string();
                match jobs.get_mut(&id) {
                    Some(job) => {
                        job.state = JobState::Failed;
                        job.error = Some(error);
                        Ok(())
                    }
                    None => Err(format!("failed event for unknown job {id}")),
                }
            }
            "cancelled" => match jobs.get_mut(&id) {
                Some(job) => {
                    job.state = JobState::Cancelled;
                    Ok(())
                }
                None => Err(format!("cancelled event for unknown job {id}")),
            },
            other => Err(format!("unknown journal event `{other}`")),
        }
    })
    .map_err(|e| format!("job journal `{path}`: {e}"))?;
    Ok((jobs, max_id + 1))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gola_spec(extra: &str) -> String {
        format!("{{\"problem\":\"gola\",\"scale\":2000{extra}}}")
    }

    #[test]
    fn minimal_specs_parse_with_defaults() {
        let spec = JobSpec::parse("{\"problem\":\"gola\"}").unwrap();
        assert_eq!(spec.problem, ProblemKind::Gola);
        assert_eq!(spec.instances, 4);
        assert_eq!((spec.elements, spec.nets), (15, 150));
        assert_eq!(spec.method, Method::Sta);
        assert_eq!(spec.strategy, Strategy::Figure1);
        assert_eq!(spec.seconds, 6.0);
        assert_eq!(spec.scale, 1);
        assert_eq!(spec.seed, DEFAULT_SEED);
        let tsp = JobSpec::parse("{\"problem\":\"tsp\"}").unwrap();
        assert_eq!(tsp.cities, 60);
    }

    #[test]
    fn parse_rejects_precisely() {
        for (body, needle) in [
            ("nonsense", "invalid JSON"),
            ("[1,2]", "must be a JSON object"),
            ("{}", "missing required field `problem`"),
            (
                "{\"problem\":\"sudoku\"}",
                "one of gola, nola, tsp, partition",
            ),
            (
                "{\"problem\":\"gola\",\"bogus\":1}",
                "unknown field `bogus`",
            ),
            (
                "{\"problem\":\"gola\",\"seed\":1,\"seed\":2}",
                "duplicate field `seed`",
            ),
            (
                "{\"problem\":\"gola\",\"instances\":0}",
                "must be in 1..=64",
            ),
            (
                "{\"problem\":\"gola\",\"seconds\":0}",
                "field `seconds` must be in (0, 36000]",
            ),
            (
                "{\"problem\":\"gola\",\"seconds\":-3}",
                "field `seconds` must be in",
            ),
            ("{\"problem\":\"gola\",\"scale\":0}", "field `scale`"),
            (
                "{\"problem\":\"tsp\",\"nets\":3}",
                "does not apply to problem `tsp`",
            ),
            (
                "{\"problem\":\"tsp\",\"netlist\":[[0,1]]}",
                "field `netlist` does not apply",
            ),
            (
                "{\"problem\":\"gola\",\"cities\":4}",
                "does not apply to problem `gola`",
            ),
            (
                "{\"problem\":\"gola\",\"replicas\":4}",
                "require strategy replica-exchange",
            ),
            (
                "{\"problem\":\"gola\",\"method\":\"g1\",\"temperature\":2}",
                "does not apply to method `g1`",
            ),
            (
                "{\"problem\":\"gola\",\"temperature\":0}",
                "finite and positive",
            ),
            (
                "{\"problem\":\"gola\",\"netlist\":[[0,1]]}",
                "requires `elements`",
            ),
            (
                "{\"problem\":\"gola\",\"elements\":4,\"nets\":2,\"netlist\":[[0,1]]}",
                "conflicts with inline `netlist`",
            ),
            (
                "{\"problem\":\"gola\",\"elements\":4,\"netlist\":[[0,1,2]]}",
                "requires two-pin nets",
            ),
            (
                "{\"problem\":\"nola\",\"elements\":4,\"netlist\":[[0,9]]}",
                "only 4 elements exist",
            ),
            (
                "{\"problem\":\"nola\",\"elements\":4,\"netlist\":[[1,1]]}",
                "more than once",
            ),
            (
                "{\"problem\":\"gola\",\"schedule\":\"magic\"}",
                "must be adaptive or asa",
            ),
            (
                "{\"problem\":\"gola\",\"strategy\":\"anneal\"}",
                "field `strategy` must be one of",
            ),
        ] {
            let err = JobSpec::parse(body).unwrap_err();
            assert!(err.contains(needle), "body {body}: got `{err}`");
        }
    }

    #[test]
    fn canonical_json_round_trips() {
        for body in [
            "{\"problem\":\"gola\"}",
            "{\"problem\":\"nola\",\"instances\":2,\"elements\":10,\"nets\":40}",
            "{\"problem\":\"tsp\",\"cities\":12,\"method\":\"metropolis\",\"temperature\":0.25}",
            "{\"problem\":\"partition\",\"elements\":6,\"netlist\":[[0,1],[2,3,4]],\
             \"watchdog_ms\":500}",
            "{\"problem\":\"gola\",\"strategy\":\"replica-exchange\",\"replicas\":4,\
             \"exchange_interval\":16,\"schedule\":\"asa\",\"seconds\":9,\"scale\":100,\
             \"seed\":42}",
        ] {
            let spec = JobSpec::parse(body).unwrap();
            let canonical = spec.to_json();
            let reparsed = JobSpec::parse(&canonical).unwrap();
            assert_eq!(spec, reparsed, "round-trip failed for {body}");
            assert_eq!(canonical, reparsed.to_json());
        }
    }

    #[test]
    fn execution_is_deterministic_across_calls() {
        let spec = JobSpec::parse(&gola_spec(",\"instances\":2,\"seed\":7")).unwrap();
        let flag = AtomicBool::new(false);
        let a = spec.execute(&flag);
        let b = spec.execute(&flag);
        assert_eq!(a, b);
        let JobOutcome::Done { record } = a else {
            panic!("expected Done, got {a:?}");
        };
        assert!(
            record.starts_with("{\"schema\":\"anneal-job-record\""),
            "{record}"
        );
        assert!(
            !record.contains("wall"),
            "records must be wall-free: {record}"
        );
        // Another seed gives a different record.
        let other = JobSpec::parse(&gola_spec(",\"instances\":2,\"seed\":8")).unwrap();
        assert_ne!(other.execute(&flag), b);
    }

    #[test]
    fn every_problem_family_executes() {
        for body in [
            "{\"problem\":\"gola\",\"instances\":1,\"scale\":2000}",
            "{\"problem\":\"nola\",\"instances\":1,\"scale\":2000}",
            "{\"problem\":\"tsp\",\"cities\":8,\"instances\":1,\"scale\":2000}",
            "{\"problem\":\"partition\",\"instances\":1,\"scale\":2000}",
            "{\"problem\":\"gola\",\"instances\":1,\"scale\":2000,\"schedule\":\"adaptive\"}",
            "{\"problem\":\"gola\",\"instances\":1,\"scale\":2000,\
             \"strategy\":\"replica-exchange\",\"replicas\":3}",
            "{\"problem\":\"gola\",\"instances\":1,\"scale\":2000,\"elements\":4,\
             \"netlist\":[[0,1],[1,2],[2,3]]}",
        ] {
            let spec = JobSpec::parse(body).unwrap();
            let outcome = spec.execute(&AtomicBool::new(false));
            assert!(
                matches!(outcome, JobOutcome::Done { .. }),
                "{body}: {outcome:?}"
            );
        }
    }

    #[test]
    fn a_pre_set_cancel_flag_cancels_before_work() {
        let spec = JobSpec::parse(&gola_spec("")).unwrap();
        let outcome = spec.execute(&AtomicBool::new(true));
        assert_eq!(outcome, JobOutcome::Cancelled);
    }

    #[test]
    fn state_machine_shape() {
        use JobState::*;
        assert!(Queued.can_transition(Running));
        assert!(Queued.can_transition(Cancelled));
        assert!(Running.can_transition(Done));
        assert!(Running.can_transition(Failed));
        assert!(Running.can_transition(Cancelled));
        // No resurrection, no regression.
        assert!(!Done.can_transition(Running));
        assert!(!Queued.can_transition(Done));
        for terminal in [Done, Failed, Cancelled] {
            assert!(terminal.is_terminal());
            for to in JOB_STATES {
                assert!(!terminal.can_transition(to), "{terminal} -> {to}");
            }
        }
    }

    #[test]
    fn server_runs_a_job_end_to_end() {
        let server = JobServer::start(1, 4, None).unwrap();
        let (status, body) = server.submit(&gola_spec(",\"instances\":1"));
        assert_eq!(status, 202, "{body}");
        assert!(body.contains("\"id\":1"), "{body}");
        // Poll until terminal.
        let deadline = std::time::Instant::now() + Duration::from_secs(60);
        loop {
            let (status, body) = server.get("1");
            assert_eq!(status, 200);
            if body.contains("\"state\":\"done\"") {
                assert!(
                    body.contains(",\"record\":{\"schema\":\"anneal-job-record\""),
                    "{body}"
                );
                assert!(
                    body.ends_with("]}}"),
                    "record must be the last field: {body}"
                );
                break;
            }
            assert!(
                !body.contains("\"state\":\"failed\"") && std::time::Instant::now() < deadline,
                "{body}"
            );
            std::thread::sleep(Duration::from_millis(10));
        }
        let (status, listing) = server.list("");
        assert_eq!(status, 200);
        assert!(listing.contains("\"total\":1"), "{listing}");
        let (status, _) = server.get("99");
        assert_eq!(status, 404);
        let (status, body) = server.submit("{\"problem\":\"warp\"}");
        assert_eq!(status, 400);
        assert!(body.contains("error"), "{body}");
    }

    #[test]
    fn cancelling_a_terminal_job_conflicts() {
        let server = JobServer::start(1, 4, None).unwrap();
        server.submit(&gola_spec(",\"instances\":1"));
        let deadline = std::time::Instant::now() + Duration::from_secs(60);
        while !server.get("1").1.contains("\"state\":\"done\"") {
            assert!(std::time::Instant::now() < deadline);
            std::thread::sleep(Duration::from_millis(10));
        }
        let (status, body) = server.cancel("1");
        assert_eq!(status, 409, "{body}");
        assert!(body.contains("cancel is terminal"), "{body}");
        let (status, _) = server.cancel("notanid");
        assert_eq!(status, 404);
    }

    #[test]
    fn list_paginates_in_id_order() {
        let server = JobServer::start(1, 16, None).unwrap();
        // Saturate the single worker with a slow job so the rest stay put.
        for _ in 0..5 {
            let (status, _) = server.submit(&gola_spec(",\"instances\":1"));
            assert_eq!(status, 202);
        }
        let (_, page) = server.list("offset=1&limit=2");
        assert!(page.contains("\"total\":5"), "{page}");
        assert!(
            page.contains("\"id\":2") && page.contains("\"id\":3"),
            "{page}"
        );
        assert!(!page.contains("\"id\":4"), "{page}");
        let (status, body) = server.list("limit=0");
        assert_eq!(status, 400, "{body}");
        let (status, _) = server.list("frobnicate=1");
        assert_eq!(status, 400);
    }

    #[test]
    fn journal_replays_after_restart() {
        let dir = std::env::temp_dir().join(format!("jobs-journal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("restart.journal");
        let path = path.to_str().unwrap();
        let _ = std::fs::remove_file(path);
        {
            // Zero-progress server: workers exist but we shut down before
            // polling, so some jobs may stay queued — all must survive.
            let server = JobServer::start(1, 8, Some(path)).unwrap();
            for _ in 0..3 {
                let (status, _) = server.submit(&gola_spec(",\"instances\":1"));
                assert_eq!(status, 202);
            }
        }
        let server = JobServer::start(1, 8, Some(path)).unwrap();
        let (_, listing) = server.list("");
        assert!(listing.contains("\"total\":3"), "{listing}");
        // Every accepted job eventually completes after the restart.
        let deadline = std::time::Instant::now() + Duration::from_secs(120);
        for id in ["1", "2", "3"] {
            loop {
                let (_, body) = server.get(id);
                if body.contains("\"state\":\"done\"") {
                    break;
                }
                assert!(std::time::Instant::now() < deadline, "job {id}: {body}");
                std::thread::sleep(Duration::from_millis(10));
            }
        }
        drop(server);
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn journal_tolerates_a_torn_final_line() {
        let dir = std::env::temp_dir().join(format!("jobs-journal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("torn.journal");
        let path = path.to_str().unwrap();
        let spec = JobSpec::parse("{\"problem\":\"gola\"}").unwrap();
        std::fs::write(
            path,
            format!(
                "{}\n{}\n{{\"seq\":2,\"job\":2,\"event\":\"submitt",
                journal_header(),
                wal_line(
                    &format!(
                        "{{\"job\":1,\"event\":\"submitted\",\"spec\":{}}}",
                        spec.to_json()
                    ),
                    1
                ),
            ),
        )
        .unwrap();
        let (jobs, next_id) = replay_journal(path).unwrap();
        assert_eq!(jobs.len(), 1, "torn line dropped");
        assert_eq!(next_id, 2);
        // Corruption before the final line is an error, not a shrug.
        std::fs::write(
            path,
            format!(
                "{}\nnot json at all\n{{\"seq\":1,\"job\":1,\"event\":\"cancelled\"}}",
                journal_header()
            ),
        )
        .unwrap();
        let err = replay_journal(path).unwrap_err();
        assert!(err.contains("corrupt record at line 2"), "{err}");
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn backpressure_responds_429_and_drains() {
        // No workers consuming (queue capacity 1, one slow worker blocked
        // by an artificial long job is racy — instead submit to a server
        // whose single worker is busy on a big job).
        let server = JobServer::start(1, 1, None).unwrap();
        // Big enough to keep the worker busy through the saturation check.
        let slow = "{\"problem\":\"gola\",\"instances\":64,\"seconds\":36000,\"scale\":1000000}";
        let (status, _) = server.submit(slow);
        assert_eq!(status, 202);
        // Fill the queue slot, then overflow it.
        let mut saw_429 = false;
        for _ in 0..3 {
            let (status, body) = server.submit(&gola_spec(""));
            if status == 429 {
                assert!(body.contains("queue full"), "{body}");
                assert!(body.contains("\"capacity\":1"), "{body}");
                saw_429 = true;
                break;
            }
            assert_eq!(status, 202);
        }
        assert!(saw_429, "queue never saturated");
    }

    mod spec_properties {
        use super::*;
        use proptest::prelude::*;
        use proptest::Strategy as PropStrategy;

        proptest! {
            // Any spec the parser accepts must round-trip through its
            // canonical serialization — the schema-stability property the
            // golden files pin from the outside.
            #[test]
            fn canonical_round_trip(
                problem in prop_oneof![
                    Just("gola"), Just("nola"), Just("tsp"), Just("partition")
                ],
                instances in 1u64..=8,
                seconds in prop_oneof![
                    Just(0.5f64), Just(1.0), Just(6.0), Just(9.5), Just(36000.0)
                ],
                scale in 1u64..=1_000_000,
                seed in any::<u64>(),
                method in prop_oneof![
                    Just("sta"), Just("metropolis"), Just("g1"), Just("two-level")
                ],
            ) {
                let body = format!(
                    "{{\"problem\":\"{problem}\",\"instances\":{instances},\
                     \"seconds\":{seconds},\"scale\":{scale},\"seed\":{seed},\
                     \"method\":\"{method}\"}}"
                );
                let spec = JobSpec::parse(&body).unwrap();
                let reparsed = JobSpec::parse(&spec.to_json()).unwrap();
                prop_assert_eq!(spec, reparsed);
            }

            #[test]
            fn out_of_range_budgets_are_rejected(
                instances in prop_oneof![Just(0u64), Just(65u64), 1000u64..=100_000],
            ) {
                let err = JobSpec::parse(
                    &format!("{{\"problem\":\"gola\",\"instances\":{instances}}}")
                ).unwrap_err();
                prop_assert!(err.contains("field `instances`"), "{}", err);
                let err = JobSpec::parse(
                    "{\"problem\":\"gola\",\"scale\":0}"
                ).unwrap_err();
                prop_assert!(err.contains("field `scale`"), "{}", err);
            }

            // Unknown fields never pass, wherever they appear (the `zz`
            // prefix guarantees the generated name is not in the schema).
            #[test]
            fn unknown_fields_are_rejected(
                name in proptest::collection::vec(0u8..26, 1..12).prop_map(|bytes| {
                    let suffix: String = bytes.iter().map(|b| (b'a' + b) as char).collect();
                    format!("zz{suffix}")
                }),
            ) {
                let err = JobSpec::parse(
                    &format!("{{\"problem\":\"gola\",\"{name}\":1}}")
                ).unwrap_err();
                prop_assert!(err.contains("unknown field"), "{}", err);
            }

            // Malformed netlists get precise 400 bodies naming the net.
            #[test]
            fn malformed_netlists_are_rejected(pin in 4u64..=4000) {
                let err = JobSpec::parse(
                    &format!(
                        "{{\"problem\":\"nola\",\"elements\":4,\"netlist\":[[0,{pin}]]}}"
                    )
                ).unwrap_err();
                prop_assert!(err.contains("invalid netlist"), "{}", err);
            }
        }
    }

    mod state_properties {
        use super::*;
        use proptest::prelude::{
            prop_assert, prop_oneof, proptest, BoxedStrategy, Just, Strategy as PropStrategy,
        };

        fn any_state() -> BoxedStrategy<JobState> {
            prop_oneof![
                Just(JobState::Queued),
                Just(JobState::Running),
                Just(JobState::Done),
                Just(JobState::Failed),
                Just(JobState::Cancelled),
            ]
            .boxed()
        }

        proptest! {
            // Terminal states absorb: no transition leaves them, ever.
            #[test]
            fn terminal_states_absorb(from in any_state(), to in any_state()) {
                if from.is_terminal() {
                    prop_assert!(!from.can_transition(to));
                }
            }

            // Every legal transition moves strictly forward: its target is
            // either running or terminal, and never queued.
            #[test]
            fn transitions_never_regress(from in any_state(), to in any_state()) {
                if from.can_transition(to) {
                    prop_assert!(to == JobState::Running || to.is_terminal());
                    prop_assert!(to != JobState::Queued);
                    prop_assert!(from != to);
                }
            }

            // A self-loop is never legal.
            #[test]
            fn no_self_loops(state in any_state()) {
                prop_assert!(!state.can_transition(state));
            }
        }
    }
}
