//! `bench` — times the named hot-path kernels and writes `BENCH_core.json`.
//!
//! ```text
//! bench [--out PATH] [--quick] [--sample-size N] [--filter SUBSTR] [--list]
//! ```
//!
//! Prints one human-readable line per kernel to stdout and writes the
//! machine-readable report (schema documented in `BENCHMARKS.md`) to
//! `--out` (default `BENCH_core.json`). `--quick` switches to the smoke
//! configuration used by CI: every kernel still runs, but with few samples
//! and a short calibration target, so numbers are noisy. `--filter` limits
//! the run to kernels whose name contains the substring; the report then
//! covers only those kernels.

use std::process::ExitCode;

use anneal_experiments::bench::{git_rev, kernels, render_report, run_kernels};
use criterion::MeasureConfig;

fn usage() -> ! {
    eprintln!("usage: bench [--out PATH] [--quick] [--sample-size N] [--filter SUBSTR] [--list]");
    std::process::exit(2);
}

fn main() -> ExitCode {
    let mut out = String::from("BENCH_core.json");
    let mut cfg = MeasureConfig::default();
    let mut filter: Option<String> = None;
    let mut list_only = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => out = args.next().unwrap_or_else(|| usage()),
            "--quick" => {
                let quick = MeasureConfig::quick();
                cfg.min_sample_time = quick.min_sample_time;
                cfg.max_iters = quick.max_iters;
                cfg.sample_size = quick.sample_size;
            }
            "--sample-size" => {
                cfg.sample_size = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--filter" => filter = Some(args.next().unwrap_or_else(|| usage())),
            "--list" => list_only = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument: {other}");
                usage()
            }
        }
    }

    if list_only {
        for k in kernels() {
            println!("{}", k.name);
        }
        return ExitCode::SUCCESS;
    }

    let results = run_kernels(&cfg, filter.as_deref());
    if results.is_empty() {
        eprintln!("no kernel matches filter {filter:?}");
        return ExitCode::FAILURE;
    }
    for r in &results {
        println!(
            "{}   {:>12.0} evals/s",
            r.measurement.summary_line(),
            r.evals_per_sec()
        );
    }

    let report = render_report(&results, &git_rev(), &cfg);
    if let Err(e) = std::fs::write(&out, report) {
        eprintln!("cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!("wrote {out} ({} kernels)", results.len());
    ExitCode::SUCCESS
}
