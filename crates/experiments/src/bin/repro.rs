//! `repro` — regenerate the paper's tables from the command line.
//!
//! ```text
//! repro [OPTIONS] <EXPERIMENT>...
//!
//! EXPERIMENTS:
//!   tuning      §4.2.1 temperature sweep
//!   table4.1    GOLA, random starts, 20 g classes + baselines
//!   table4.2a   GOLA from Goto arrangements
//!   table4.2b   Figure 1 vs Figure 2 at 180 sec
//!   table4.2c   NOLA, random starts
//!   table4.2d   NOLA from Goto arrangements
//!   partition   circuit-partition extension ([NAHA84])
//!   tsp         TSP extension ([GOLD84]/[NAHA84])
//!   ablation    design-choice ablations (gate period, schedule length, n)
//!   trajectory  best-density convergence series for the headline methods
//!   diagnostics chain-behaviour statistics for the full roster
//!   all         everything above
//!
//! OPTIONS:
//!   --scale N         divide every budget by N (default 1 = paper-faithful)
//!   --seed N          base seed (default 1985)
//!   --csv             emit CSV instead of aligned text
//!   --threads N       OS threads per table cell (default 1; totals identical)
//!   --telemetry PATH  stream one JSON-lines record per table cell to PATH,
//!                     isolate cell panics as failed cells, and print an
//!                     end-of-suite summary (slowest cells, total evals,
//!                     failed cells) to stderr; see EXPERIMENTS.md
//! ```

use std::process::ExitCode;

use anneal_experiments::{
    ablation, diagnostics, ext_partition, ext_tsp, tables, trajectory, tuning, SuiteConfig, Table,
    TelemetryLog,
};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!(
                "usage: repro [--scale N] [--seed N] [--csv] [--threads N] \
                 [--telemetry PATH] <experiment>..."
            );
            eprintln!(
                "experiments: tuning table4.1 table4.2a table4.2b table4.2c table4.2d \
                 partition tsp ablation trajectory diagnostics all"
            );
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let mut config = SuiteConfig::paper();
    let mut csv = false;
    let mut telemetry_path: Option<String> = None;
    let mut experiments: Vec<String> = Vec::new();

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--scale" => {
                let v = it.next().ok_or("--scale needs a value")?;
                let n: u64 = v.parse().map_err(|_| format!("bad --scale value `{v}`"))?;
                if n == 0 {
                    return Err("--scale must be positive".into());
                }
                config = SuiteConfig {
                    scale: anneal_experiments::Scale::new(n),
                    ..config
                };
            }
            "--seed" => {
                let v = it.next().ok_or("--seed needs a value")?;
                let seed: u64 = v.parse().map_err(|_| format!("bad --seed value `{v}`"))?;
                config = config.with_seed(seed);
            }
            "--threads" => {
                let v = it.next().ok_or("--threads needs a value")?;
                let n: usize = v
                    .parse()
                    .map_err(|_| format!("bad --threads value `{v}`"))?;
                if n == 0 {
                    return Err("--threads must be positive".into());
                }
                config = config.with_threads(n);
            }
            "--telemetry" => {
                let v = it.next().ok_or("--telemetry needs a path")?;
                telemetry_path = Some(v.clone());
            }
            "--csv" => csv = true,
            other if other.starts_with('-') => {
                return Err(format!("unknown option `{other}`"));
            }
            exp => experiments.push(exp.to_string()),
        }
    }

    let log = match &telemetry_path {
        Some(path) => {
            let file = std::fs::File::create(path)
                .map_err(|e| format!("cannot create telemetry file `{path}`: {e}"))?;
            TelemetryLog::with_writer(Box::new(std::io::BufWriter::new(file)))
        }
        None => TelemetryLog::disabled(),
    };

    if experiments.is_empty() {
        return Err("no experiment given".into());
    }
    if experiments.iter().any(|e| e == "all") {
        experiments = [
            "tuning",
            "table4.1",
            "table4.2a",
            "table4.2b",
            "table4.2c",
            "table4.2d",
            "partition",
            "tsp",
            "ablation",
            "trajectory",
            "diagnostics",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
    }

    for exp in &experiments {
        for table in dispatch(exp, &config, &log)? {
            if csv {
                print!("{}", table.to_csv());
            } else {
                println!("{table}");
            }
        }
    }
    if log.is_enabled() {
        eprint!("{}", log.summary());
        if let Some(path) = &telemetry_path {
            eprintln!("telemetry records written to {path}");
        }
    }
    Ok(())
}

fn dispatch(exp: &str, config: &SuiteConfig, log: &TelemetryLog) -> Result<Vec<Table>, String> {
    Ok(match exp {
        "tuning" => {
            let out = tuning::run(config);
            eprintln!("tuned: {:?}", out.tuned);
            vec![out.table]
        }
        "table4.1" => vec![tables::table4_1::run_logged(config, log)],
        "table4.2a" => vec![tables::table4_2a::run_logged(config, log)],
        "table4.2b" => vec![tables::table4_2b::run_logged(config, log)],
        "table4.2c" => vec![tables::table4_2c::run_logged(config, log)],
        "table4.2d" => vec![tables::table4_2d::run_logged(config, log)],
        "partition" => vec![ext_partition::run(config)],
        "tsp" => vec![ext_tsp::run(config)],
        "ablation" => vec![
            ablation::gate_period(config),
            ablation::schedule_length(config),
            ablation::equilibrium_limit(config),
            ablation::rejectionless(config),
            ablation::nola_net_size(config),
            ablation::instance_size(config),
        ],
        "trajectory" => vec![trajectory::run(config)],
        "diagnostics" => vec![diagnostics::run(config)],
        other => return Err(format!("unknown experiment `{other}`")),
    })
}
