//! `repro` — regenerate the paper's tables from the command line.
//!
//! ```text
//! repro [OPTIONS] <EXPERIMENT>...
//!
//! EXPERIMENTS:
//!   tuning      §4.2.1 temperature sweep
//!   table4.1    GOLA, random starts, 20 g classes + baselines
//!   table4.2a   GOLA from Goto arrangements
//!   table4.2b   Figure 1 vs Figure 2 at 180 sec
//!   table4.2c   NOLA, random starts
//!   table4.2d   NOLA from Goto arrangements
//!   partition   circuit-partition extension ([NAHA84])
//!   tsp         TSP extension ([GOLD84]/[NAHA84])
//!   ablation    design-choice ablations (gate period, schedule length, n)
//!   trajectory  best-density convergence series for the headline methods
//!   diagnostics chain-behaviour statistics for the full roster
//!   all         everything above
//!
//! OPTIONS:
//!   --scale N   divide every budget by N (default 1 = paper-faithful)
//!   --seed N    base seed (default 1985)
//!   --csv       emit CSV instead of aligned text
//! ```

use std::process::ExitCode;

use anneal_experiments::{
    ablation, diagnostics, ext_partition, ext_tsp, tables, trajectory, tuning, SuiteConfig, Table,
};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!("usage: repro [--scale N] [--seed N] [--csv] <experiment>...");
            eprintln!(
                "experiments: tuning table4.1 table4.2a table4.2b table4.2c table4.2d \
                 partition tsp ablation trajectory diagnostics all"
            );
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let mut config = SuiteConfig::paper();
    let mut csv = false;
    let mut experiments: Vec<String> = Vec::new();

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--scale" => {
                let v = it.next().ok_or("--scale needs a value")?;
                let n: u64 = v.parse().map_err(|_| format!("bad --scale value `{v}`"))?;
                if n == 0 {
                    return Err("--scale must be positive".into());
                }
                config = SuiteConfig {
                    scale: anneal_experiments::Scale::new(n),
                    ..config
                };
            }
            "--seed" => {
                let v = it.next().ok_or("--seed needs a value")?;
                let seed: u64 = v.parse().map_err(|_| format!("bad --seed value `{v}`"))?;
                config = config.with_seed(seed);
            }
            "--csv" => csv = true,
            other if other.starts_with('-') => {
                return Err(format!("unknown option `{other}`"));
            }
            exp => experiments.push(exp.to_string()),
        }
    }

    if experiments.is_empty() {
        return Err("no experiment given".into());
    }
    if experiments.iter().any(|e| e == "all") {
        experiments = [
            "tuning",
            "table4.1",
            "table4.2a",
            "table4.2b",
            "table4.2c",
            "table4.2d",
            "partition",
            "tsp",
            "ablation",
            "trajectory",
            "diagnostics",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
    }

    for exp in &experiments {
        for table in dispatch(exp, &config)? {
            if csv {
                print!("{}", table.to_csv());
            } else {
                println!("{table}");
            }
        }
    }
    Ok(())
}

fn dispatch(exp: &str, config: &SuiteConfig) -> Result<Vec<Table>, String> {
    Ok(match exp {
        "tuning" => {
            let out = tuning::run(config);
            eprintln!("tuned: {:?}", out.tuned);
            vec![out.table]
        }
        "table4.1" => vec![tables::table4_1::run(config)],
        "table4.2a" => vec![tables::table4_2a::run(config)],
        "table4.2b" => vec![tables::table4_2b::run(config)],
        "table4.2c" => vec![tables::table4_2c::run(config)],
        "table4.2d" => vec![tables::table4_2d::run(config)],
        "partition" => vec![ext_partition::run(config)],
        "tsp" => vec![ext_tsp::run(config)],
        "ablation" => vec![
            ablation::gate_period(config),
            ablation::schedule_length(config),
            ablation::equilibrium_limit(config),
            ablation::rejectionless(config),
            ablation::nola_net_size(config),
            ablation::instance_size(config),
        ],
        "trajectory" => vec![trajectory::run(config)],
        "diagnostics" => vec![diagnostics::run(config)],
        other => return Err(format!("unknown experiment `{other}`")),
    })
}
