//! `repro` — regenerate the paper's tables from the command line.
//!
//! ```text
//! repro [OPTIONS] <EXPERIMENT>...
//!
//! EXPERIMENTS:
//!   tuning      §4.2.1 temperature sweep
//!   table4.1    GOLA, random starts, 20 g classes + baselines
//!   table4.2a   GOLA from Goto arrangements
//!   table4.2b   Figure 1 vs Figure 2 at 180 sec
//!   table4.2c   NOLA, random starts
//!   table4.2d   NOLA from Goto arrangements
//!   adaptive    grid-swept vs feedback schedules at equal budget incl. tuning
//!   partition   circuit-partition extension ([NAHA84])
//!   tsp         TSP extension ([GOLD84]/[NAHA84])
//!   ablation    design-choice ablations (gate period, schedule length, n)
//!   trajectory  best-density convergence series for the headline methods
//!   diagnostics chain-behaviour statistics for the full roster
//!   all         everything above
//!
//! OPTIONS:
//!   --scale N         divide every budget by N (default 1 = paper-faithful)
//!   --seed N          base seed (default 1985)
//!   --csv             emit CSV instead of aligned text
//!   --threads N       OS threads per table cell (default 1; totals identical)
//!   --strategy NAME   run the Figure-1 tables under another control strategy:
//!                     figure1 (default), figure2, rejectionless, or
//!                     replica-exchange (parallel tempering: one chain per
//!                     temperature rung, adjacent rungs swapping
//!                     configurations); table4.2b always compares Figure 1
//!                     vs Figure 2 regardless
//!   --schedule MODE   replace every method's grid-swept temperature schedule
//!                     with one derived per instance from a delta-statistics
//!                     probe charged against the run budget: adaptive
//!                     (acceptance-ratio feedback control) or asa
//!                     (ASA-style sqrt-i reannealing, open loop)
//!   --replicas K      replica-exchange only: rebuild each method's ladder to
//!                     K geometric rungs (one chain per rung; K >= 2)
//!   --exchange-interval N
//!                     replica-exchange only: within-chain proposals per rung
//!                     between swap phases (default 64)
//!   --telemetry PATH  stream the telemetry WAL (one JSON-lines record per
//!                     table cell) to PATH, isolate cell panics as failed
//!                     cells, and print an end-of-suite summary to stderr
//!   --resume WAL      replay completed cells from a prior run's WAL; only
//!                     missing or failed cells are recomputed, and the
//!                     finished tables are bitwise-identical to a clean run
//!   --trace DIR       write one chain-trace JSONL file per table cell into
//!                     DIR (temperature stages, energy samples, best-so-far
//!                     improvements, stop events); results stay
//!                     bitwise-identical to an untraced run
//!   --progress        live cells-done ticker on stderr (count, %, ETA,
//!                     retries, failures)
//!   --metrics PATH    write the process metrics snapshot (counters and
//!                     histograms, JSON) to PATH at exit
//!   --faults SPEC     deterministic fault injection, e.g.
//!                     "seed=7,panic=0.05,io=0.02,delay=0.1,delay_ms=200"
//!                     (also via the ANNEAL_FAULTS environment variable)
//!   --retries N       attempts per cell before it is recorded as failed
//!                     (default 1 = no retries)
//!   --backoff-ms N    base delay before a retry, doubled per attempt
//!   --watchdog-ms N   per-instance wall-clock deadline; see EXPERIMENTS.md
//!   --isolation MODE  thread (default: in-process catch_unwind + watchdog)
//!                     or process: run every table cell in a supervised
//!                     child process — survives aborts, OOM kills and true
//!                     hangs, retries dead workers under the --retries
//!                     backoff, and trips a per-table circuit breaker
//!   --heartbeat-ms N  process isolation: worker heartbeat interval
//!                     (default 250); a silent worker is presumed wedged
//!                     and killed
//!   --breaker-threshold N
//!                     process isolation: consecutive hard process failures
//!                     in one table before the rest of that table is
//!                     skipped (default 3)
//!   --serve ADDR      serve the live ops endpoints on ADDR (e.g.
//!                     127.0.0.1:9090; port 0 picks a free port):
//!                     GET /metrics (Prometheus text exposition),
//!                     GET /healthz (200 while healthy, 503 once the suite
//!                     is degraded), GET /progress (JSON: per-table cell
//!                     states, ETA, supervisor worker heartbeat ages).
//!                     Absent: nothing binds; results are identical
//!
//! Exit status: 0 on success, 1 on usage errors, 2 when the suite is
//! degraded (failed cells, tripped breakers or lost telemetry records) — a
//! failure manifest is written next to the WAL in that case. A run ended
//! by SIGINT/SIGTERM drains its in-flight work, leaves a clean resumable
//! WAL, and exits 128 + signal (130 / 143).
//!
//! SUBCOMMANDS:
//!   repro serve ADDR [--queue N] [--job-threads N] [--journal PATH]
//!                     run the annealing job server: the ops endpoints
//!                     above plus POST /jobs, GET /jobs, GET /jobs/:id and
//!                     DELETE /jobs/:id (bounded queue, 429 backpressure,
//!                     crash-safe job journal; see EXPERIMENTS.md "Job
//!                     server"). Drains on SIGINT/SIGTERM, exits
//!                     128 + signal
//!   repro job SPEC.json
//!                     execute one job spec offline and print its result
//!                     record to stdout — byte-identical to the record the
//!                     server stores for the same spec. Exits 5 when the
//!                     job ends failed or cancelled
//! ```

use std::process::ExitCode;
use std::sync::atomic::AtomicBool;
use std::sync::Arc;
use std::time::Duration;

use anneal_experiments::{
    ablation, checkpoint, cli, diagnostics, exit_codes, ext_partition, ext_tsp, full_roster,
    progress, supervisor, tables, trajectory, tuning, ChaosWriter, FaultPlan, JobOutcome,
    JobServer, JobSpec, OpsBoard, OpsServer, Progress, SuiteConfig, Supervisor, SupervisorEvent,
    Table, TelemetryLog, TraceSink, TunedY,
};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!("{}", cli::USAGE);
            eprintln!("experiments: {} all", cli::EXPERIMENTS.join(" "));
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<ExitCode, String> {
    let parsed = cli::parse(args)?;
    match &parsed.command {
        Some(cli::Command::Serve(opts)) => return run_serve(opts),
        Some(cli::Command::Job(path)) => return run_job(path),
        None => {}
    }

    // The CLI flag wins over the environment so a chaos run can be narrowed
    // from a shell that exports ANNEAL_FAULTS globally.
    let faults = match parsed.faults {
        Some(plan) => Some(plan),
        None => FaultPlan::from_env()?,
    };

    if parsed.worker.is_some() {
        return run_worker(&parsed, faults);
    }
    // From here on this is the supervising (or plain) process: wind down
    // gracefully on SIGINT/SIGTERM instead of dying mid-WAL-record.
    supervisor::signals::install();
    let config = parsed.config;

    // Live ops plane: the board is shared run state behind /healthz,
    // /progress and the --progress worker fragment; the server binds only
    // under --serve. With neither flag nothing is created or bound.
    let expected_cells = {
        let roster_len = full_roster(TunedY::default()).len();
        progress::expected_cells(&parsed.experiments, roster_len)
    };
    let board = (parsed.serve.is_some()
        || (parsed.progress && parsed.isolation == cli::Isolation::Process))
        .then(|| OpsBoard::new(expected_cells));
    let _server = match (&parsed.serve, &board) {
        (Some(addr), Some(board)) => {
            let server = OpsServer::start(addr, Arc::clone(board))?;
            eprintln!("ops: serving on {}", server.local_addr());
            Some(server)
        }
        _ => None,
    };

    let resumed = match &parsed.resume {
        Some(path) => {
            let checkpoint = checkpoint::load(path)?;
            if checkpoint.torn {
                eprintln!("resume: dropped a torn final record in {path} (interrupted write)");
            }
            match &checkpoint.meta {
                Some(meta) if meta.seed != config.seed || meta.scale != config.scale.divisor => {
                    eprintln!(
                        "resume: WAL {path} was recorded at seed {} scale {}, current run \
                         uses seed {} scale {}; ignoring its cells",
                        meta.seed, meta.scale, config.seed, config.scale.divisor
                    );
                    Vec::new()
                }
                _ => {
                    let ok = checkpoint.cells.iter().filter(|c| c.ok()).count();
                    eprintln!(
                        "resume: loaded {} cells from {path} ({ok} completed, {} failed \
                         will re-run)",
                        checkpoint.cells.len(),
                        checkpoint.cells.len() - ok
                    );
                    checkpoint.cells
                }
            }
        }
        None => Vec::new(),
    };

    let log = match &parsed.telemetry {
        Some(path) => {
            let meta = checkpoint::WalMeta::new(config.seed, config.scale.divisor);
            let writer = checkpoint::create_wal(path, &meta)?;
            let writer: Box<dyn std::io::Write + Send> = match &faults {
                Some(plan) if plan.io_p > 0.0 => Box::new(ChaosWriter::new(writer, *plan)),
                _ => writer,
            };
            TelemetryLog::with_writer(writer)
        }
        // Resume replay, fault accounting, tracing, the progress ticker
        // and the ops plane all need a live log even without a WAL on
        // disk.
        None if parsed.resume.is_some()
            || faults.is_some()
            || parsed.trace.is_some()
            || parsed.progress
            || parsed.serve.is_some() =>
        {
            TelemetryLog::in_memory()
        }
        None => TelemetryLog::disabled(),
    };
    let trace = match &parsed.trace {
        Some(dir) => Some(TraceSink::new(dir, faults)?),
        None => None,
    };
    let ticker = parsed
        .progress
        .then(|| Progress::new(expected_cells).with_ops(board.clone()));
    let log = log
        .with_faults(faults)
        .with_resume(resumed)
        .with_trace(trace)
        .with_progress(ticker)
        .with_ops(board.clone());
    let log = match parsed.isolation {
        cli::Isolation::Thread => log,
        cli::Isolation::Process => {
            // Shards sit next to the WAL; without one they go to a
            // per-process temp prefix (the records still flow into the
            // in-memory log, which process isolation always needs).
            let shard_base = parsed.telemetry.clone().unwrap_or_else(|| {
                std::env::temp_dir()
                    .join(format!("anneal-worker-{}.jsonl", std::process::id()))
                    .to_string_lossy()
                    .into_owned()
            });
            let sup = Supervisor::new(
                &config,
                faults.as_ref(),
                parsed.trace.as_deref(),
                parsed.heartbeat,
                parsed.breaker_threshold,
                shard_base,
            )?
            .with_ops(board.clone());
            let log = if log.is_enabled() {
                log
            } else {
                TelemetryLog::in_memory()
            };
            log.with_supervisor(Some(Arc::new(sup)))
        }
    };

    for exp in &parsed.experiments {
        if supervisor::signals::draining() {
            break;
        }
        for table in dispatch(exp, &config, &log)? {
            if supervisor::signals::draining() {
                // The table is partial (cells were skipped): printing it
                // would look like a result.
                break;
            }
            if parsed.csv {
                print!("{}", table.to_csv());
            } else {
                println!("{table}");
            }
        }
    }

    log.finish_progress();
    if let Some(sig) = supervisor::signals::shutdown_signal() {
        log.log_event(SupervisorEvent::new(
            "drain",
            None,
            format!("signal {sig}: drained in-flight work, WAL left resumable"),
        ));
        eprintln!(
            "interrupted by signal {sig}: in-flight work drained, remaining cells skipped; \
             re-run with --resume to finish"
        );
        return Ok(ExitCode::from(exit_codes::for_signal(sig)));
    }
    if let Some(path) = &parsed.metrics {
        std::fs::write(path, anneal_core::metrics::global().snapshot_json())
            .map_err(|e| format!("cannot write metrics snapshot `{path}`: {e}"))?;
        eprintln!("metrics snapshot written to {path}");
    }

    if !log.is_enabled() {
        return Ok(ExitCode::SUCCESS);
    }
    let summary = log.summary();
    eprint!("{summary}");
    if let Some(path) = &parsed.telemetry {
        eprintln!("telemetry records written to {path}");
    }
    if summary.degraded() {
        let manifest = summary.manifest_json();
        match &parsed.telemetry {
            Some(path) => {
                let manifest_path = format!("{path}.manifest.json");
                std::fs::write(&manifest_path, &manifest)
                    .map_err(|e| format!("cannot write manifest `{manifest_path}`: {e}"))?;
                eprintln!("suite degraded: failure manifest written to {manifest_path}");
            }
            None => {
                eprintln!("suite degraded: failure manifest follows");
                eprintln!("{manifest}");
            }
        }
        return Ok(ExitCode::from(exit_codes::DEGRADED));
    }
    Ok(ExitCode::SUCCESS)
}

/// `repro serve`: the annealing job-server daemon. Binds the ops plane
/// with the job API attached, then idles until a SIGINT/SIGTERM drain:
/// in-flight jobs finish, queued jobs stay journaled for the next start,
/// and the process exits `128 + signal` like a drained suite run.
fn run_serve(opts: &cli::ServeOpts) -> Result<ExitCode, String> {
    supervisor::signals::install();
    let jobs = Arc::new(JobServer::start(
        opts.job_threads,
        opts.queue,
        opts.journal.as_deref(),
    )?);
    let board = OpsBoard::new(None);
    let server = OpsServer::start_with_jobs(&opts.addr, board, Some(Arc::clone(&jobs)))?;
    eprintln!("ops: serving on {}", server.local_addr());
    if let Some(path) = &opts.journal {
        let queued = jobs.queued();
        if queued > 0 {
            eprintln!("serve: journal {path}: re-queued {queued} unfinished job(s)");
        }
    }
    while !supervisor::signals::draining() {
        std::thread::sleep(Duration::from_millis(50));
    }
    let sig = supervisor::signals::shutdown_signal().unwrap_or(exit_codes::SIGTERM);
    eprintln!(
        "serve: signal {sig}: draining in-flight jobs; queued jobs stay journaled \
         for the next start"
    );
    jobs.shutdown();
    drop(server);
    Ok(ExitCode::from(exit_codes::for_signal(sig)))
}

/// `repro job SPEC.json`: execute one job spec offline and print the
/// result record — the determinism contract's other half: these bytes are
/// identical to the `record` the server stores for the same spec.
fn run_job(path: &str) -> Result<ExitCode, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read job spec `{path}`: {e}"))?;
    let spec = JobSpec::parse(&text).map_err(|e| format!("job spec `{path}`: {e}"))?;
    match spec.execute(&AtomicBool::new(false)) {
        JobOutcome::Done { record } => {
            println!("{record}");
            Ok(ExitCode::SUCCESS)
        }
        JobOutcome::Failed { error } => {
            eprintln!("job failed: {error}");
            Ok(ExitCode::from(exit_codes::JOB_FAILED))
        }
        JobOutcome::Cancelled => {
            eprintln!("job cancelled");
            Ok(ExitCode::from(exit_codes::JOB_FAILED))
        }
    }
}

/// The hidden `--worker-cell` mode: this process is a supervisor child.
/// It runs exactly one table cell (the log's filter skips the others),
/// appends the record to its WAL shard with the sequence number the
/// parent dictated, and reports liveness as `{"hb":k}` lines on stdout.
/// Exit code [`exit_codes::OK`] means "the cell's record is in the
/// shard"; anything else is a retryable process failure.
fn run_worker(parsed: &cli::Cli, faults: Option<FaultPlan>) -> Result<ExitCode, String> {
    let worker = parsed.worker.as_ref().expect("worker mode");
    let config = &parsed.config;
    // The parent drains us deliberately; a Ctrl-C aimed at the group must
    // not kill workers mid-record.
    supervisor::signals::ignore();

    let heartbeat = parsed.heartbeat;
    std::thread::spawn(move || {
        use std::io::Write;
        let mut beats = 0u64;
        loop {
            let mut out = std::io::stdout();
            if writeln!(out, "{{\"hb\":{beats}}}")
                .and_then(|()| out.flush())
                .is_err()
            {
                return; // parent gone; its deadline owns us now
            }
            beats += 1;
            std::thread::sleep(heartbeat);
        }
    });

    // Respawned workers roll fresh fault decisions: the supervisor folds
    // this process attempt into every instance's attempt number.
    let faults = faults.map(|plan| plan.with_attempt_base(worker.attempt));
    let meta = checkpoint::WalMeta::new(config.seed, config.scale.divisor);
    let writer = checkpoint::open_shard(&worker.shard, &meta)?;
    let writer: Box<dyn std::io::Write + Send> = match &faults {
        Some(plan) if plan.io_p > 0.0 => Box::new(ChaosWriter::new(writer, *plan)),
        _ => writer,
    };
    let trace = match &parsed.trace {
        Some(dir) => Some(TraceSink::new(dir, faults)?),
        None => None,
    };
    let log = TelemetryLog::with_writer(writer)
        .with_faults(faults)
        .with_trace(trace)
        .with_filter(Some(worker.cell.clone()))
        .with_seq_start(worker.seq);

    for exp in &parsed.experiments {
        // The tables themselves are the parent's to print.
        let _ = dispatch(exp, config, &log)?;
    }

    let recorded = log.records().iter().any(|r| r.key == worker.cell);
    if recorded && log.write_errors() == 0 {
        Ok(ExitCode::SUCCESS)
    } else {
        Ok(ExitCode::from(exit_codes::WORKER_NO_RECORD))
    }
}

fn dispatch(exp: &str, config: &SuiteConfig, log: &TelemetryLog) -> Result<Vec<Table>, String> {
    Ok(match exp {
        "tuning" => {
            let out = tuning::run(config);
            eprintln!("tuned: {:?}", out.tuned);
            for class in &out.boundary {
                eprintln!(
                    "warning: {class}: winner sits on the edge of the \
                     ×{}..×{} grid; widen the sweep to bracket its optimum",
                    tuning::GRID[0],
                    tuning::GRID[tuning::GRID.len() - 1]
                );
            }
            vec![out.table]
        }
        "table4.1" => vec![tables::table4_1::run_logged(config, log)],
        "table4.2a" => vec![tables::table4_2a::run_logged(config, log)],
        "table4.2b" => vec![tables::table4_2b::run_logged(config, log)],
        "table4.2c" => vec![tables::table4_2c::run_logged(config, log)],
        "table4.2d" => vec![tables::table4_2d::run_logged(config, log)],
        "adaptive" => vec![tables::adaptive::run_logged(config, log)],
        "partition" => vec![ext_partition::run(config)],
        "tsp" => vec![ext_tsp::run(config)],
        "ablation" => vec![
            ablation::gate_period(config),
            ablation::schedule_length(config),
            ablation::equilibrium_limit(config),
            ablation::rejectionless(config),
            ablation::nola_net_size(config),
            ablation::instance_size(config),
        ],
        "trajectory" => vec![trajectory::run(config)],
        "diagnostics" => vec![diagnostics::run(config)],
        other => return Err(format!("unknown experiment `{other}`")),
    })
}
