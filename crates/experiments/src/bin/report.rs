//! `report` — analysis over a run's telemetry WAL, chain traces, and
//! benchmark snapshots.
//!
//! ```text
//! report --wal WAL [--trace DIR] [--out PATH]
//! report --compare OLD.json NEW.json [--threshold PCT] [--strict]
//! report --trace DIR --chrome-trace OUT.json
//!
//! MODES:
//!   --wal WAL            render a Markdown report from a telemetry WAL
//!                        (written by `repro --telemetry`); add --trace DIR
//!                        to fold in the chain traces from `repro --trace`
//!                        (time per temperature, energy sparklines)
//!   --compare OLD NEW    diff two `bench --json` snapshots and flag
//!                        kernels that got slower
//!   --chrome-trace OUT   convert a `--trace DIR` directory to Chrome
//!                        Trace Event JSON (open in chrome://tracing or
//!                        Perfetto): one pid per table, one tid per
//!                        cell/replica, temperature stages as duration
//!                        events
//!
//! OPTIONS:
//!   --out PATH           write the Markdown to PATH instead of stdout
//!   --threshold PCT      slowdown (percent) that counts as a regression
//!                        in --compare mode (default 10)
//!   --strict             exit 3 when --compare finds a regression
//!
//! Exit status: 0 on success, 1 on usage or I/O errors, 3 when --strict
//! --compare found a regression.
//! ```

use std::path::Path;
use std::process::ExitCode;

use anneal_experiments::{checkpoint, exit_codes, reporting, trace};

const USAGE: &str = "usage: report --wal WAL [--trace DIR] [--out PATH]\n\
       report --compare OLD.json NEW.json [--threshold PCT] [--strict]\n\
       report --trace DIR --chrome-trace OUT.json";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

struct Args {
    wal: Option<String>,
    trace_dir: Option<String>,
    out: Option<String>,
    compare: Option<(String, String)>,
    chrome_trace: Option<String>,
    threshold: f64,
    strict: bool,
}

fn parse(args: &[String]) -> Result<Args, String> {
    let mut parsed = Args {
        wal: None,
        trace_dir: None,
        out: None,
        compare: None,
        chrome_trace: None,
        threshold: 10.0,
        strict: false,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value_of = |flag: &str| -> Result<&String, String> {
            it.next().ok_or_else(|| format!("{flag} needs a value"))
        };
        match arg.as_str() {
            "--wal" => parsed.wal = Some(value_of("--wal")?.clone()),
            "--trace" => parsed.trace_dir = Some(value_of("--trace")?.clone()),
            "--out" => parsed.out = Some(value_of("--out")?.clone()),
            "--compare" => {
                let old = value_of("--compare")?.clone();
                let new = it
                    .next()
                    .ok_or("--compare needs two snapshot paths")?
                    .clone();
                parsed.compare = Some((old, new));
            }
            "--threshold" => {
                let v = value_of("--threshold")?;
                let pct: f64 = v
                    .parse()
                    .map_err(|_| format!("bad --threshold value `{v}`"))?;
                if !pct.is_finite() || pct < 0.0 {
                    return Err("--threshold must be a non-negative percentage".into());
                }
                parsed.threshold = pct;
            }
            "--strict" => parsed.strict = true,
            "--chrome-trace" => parsed.chrome_trace = Some(value_of("--chrome-trace")?.clone()),
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    if parsed.chrome_trace.is_some() {
        if parsed.trace_dir.is_none() {
            return Err("--chrome-trace needs --trace DIR to read events from".into());
        }
        if parsed.wal.is_some() || parsed.compare.is_some() {
            return Err("--chrome-trace is its own mode: drop --wal/--compare".into());
        }
        return Ok(parsed);
    }
    match (&parsed.wal, &parsed.compare) {
        (None, None) => Err("give either --wal WAL or --compare OLD NEW".into()),
        (Some(_), Some(_)) => Err("--wal and --compare are mutually exclusive".into()),
        _ => Ok(parsed),
    }
}

fn emit(out: &Option<String>, text: &str) -> Result<(), String> {
    match out {
        Some(path) => {
            std::fs::write(path, text).map_err(|e| format!("cannot write `{path}`: {e}"))?;
            eprintln!("report written to {path}");
            Ok(())
        }
        None => {
            print!("{text}");
            Ok(())
        }
    }
}

fn run(args: &[String]) -> Result<ExitCode, String> {
    let parsed = parse(args)?;

    if let Some(out_path) = &parsed.chrome_trace {
        let dir = parsed
            .trace_dir
            .as_deref()
            .expect("parse() guarantees --trace");
        let traces = trace::load_dir(Path::new(dir))?;
        let json = reporting::chrome_trace_json(&traces);
        std::fs::write(out_path, &json).map_err(|e| format!("cannot write `{out_path}`: {e}"))?;
        eprintln!(
            "chrome trace with {} cell trace(s) written to {out_path}",
            traces.len()
        );
        return Ok(ExitCode::SUCCESS);
    }

    if let Some((old_path, new_path)) = &parsed.compare {
        let old = std::fs::read_to_string(old_path)
            .map_err(|e| format!("cannot read `{old_path}`: {e}"))?;
        let new = std::fs::read_to_string(new_path)
            .map_err(|e| format!("cannot read `{new_path}`: {e}"))?;
        let cmp = reporting::compare_benchmarks(&old, &new, parsed.threshold)?;
        emit(&parsed.out, &reporting::render_compare(&cmp))?;
        let regressed = !cmp.regressions().is_empty();
        if regressed {
            eprintln!(
                "{} kernel(s) slower than the {:.0}% threshold",
                cmp.regressions().len(),
                parsed.threshold
            );
        }
        return Ok(if regressed && parsed.strict {
            ExitCode::from(exit_codes::BENCH_REGRESSION)
        } else {
            ExitCode::SUCCESS
        });
    }

    let wal_path = parsed.wal.as_deref().expect("parse() guarantees a mode");
    let cp = checkpoint::load(wal_path)?;
    if cp.torn {
        eprintln!("report: WAL {wal_path} ends in a torn record (interrupted run)");
    }
    let traces = match &parsed.trace_dir {
        Some(dir) => trace::load_dir(Path::new(dir))?,
        None => Vec::new(),
    };
    emit(&parsed.out, &reporting::render_report(&cp, &traces))?;
    Ok(ExitCode::SUCCESS)
}
