//! Process exit codes shared by the workspace binaries.
//!
//! The codes were previously scattered as bare literals across `repro` and
//! `report`; unifying them here keeps the contract between the binaries,
//! the CI jobs and the integration tests in one place. The conventions
//! follow common Unix practice: `0` ok, small positive codes for specific
//! tool outcomes, `128 + signal` for runs ended by a signal.

/// Clean exit: everything requested completed.
pub const OK: u8 = 0;

/// Usage error: bad flags or arguments (nothing ran).
pub const USAGE: u8 = 1;

/// The suite completed but degraded: failed cells, tripped breakers or
/// lost telemetry records. A failure manifest names the casualties.
pub const DEGRADED: u8 = 2;

/// `report --compare --strict` found a regression beyond the threshold.
pub const BENCH_REGRESSION: u8 = 3;

/// A hidden `--worker-cell` child ran but never recorded its target cell
/// (the supervisor treats this as a retryable process failure).
pub const WORKER_NO_RECORD: u8 = 4;

/// `repro job SPEC.json` executed the job but it ended failed or
/// cancelled instead of done.
pub const JOB_FAILED: u8 = 5;

/// `SIGINT` signal number (used with [`for_signal`]).
pub const SIGINT: i32 = 2;

/// `SIGTERM` signal number (used with [`for_signal`]).
pub const SIGTERM: i32 = 15;

/// The conventional `128 + n` exit code for a run ended by signal `n`
/// (after a graceful drain): `130` for SIGINT, `143` for SIGTERM.
pub fn for_signal(signal: i32) -> u8 {
    128u8.wrapping_add(signal.clamp(0, 64) as u8)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_distinct_and_conventional() {
        let codes = [
            OK,
            USAGE,
            DEGRADED,
            BENCH_REGRESSION,
            WORKER_NO_RECORD,
            JOB_FAILED,
        ];
        for (i, a) in codes.iter().enumerate() {
            for b in &codes[i + 1..] {
                assert_ne!(a, b);
            }
        }
        assert_eq!(for_signal(SIGINT), 130);
        assert_eq!(for_signal(SIGTERM), 143);
    }
}
