#![warn(missing_docs)]

//! # anneal-experiments
//!
//! The experiment harness regenerating every table of Nahar, Sahni &
//! Shragowitz, *"Experiments with simulated annealing"* (DAC 1985), plus the
//! extension comparisons the paper's §5 points to.
//!
//! | Experiment | Runner | `repro` subcommand |
//! |---|---|---|
//! | §4.2.1 temperature tuning | [`tuning::run`] | `tuning` |
//! | Table 4.1 (GOLA, random starts) | [`tables::table4_1::run`] | `table4.1` |
//! | Table 4.2(a) (GOLA from Goto) | [`tables::table4_2a::run`] | `table4.2a` |
//! | Table 4.2(b) (Figure 1 vs 2) | [`tables::table4_2b::run`] | `table4.2b` |
//! | Table 4.2(c) (NOLA, random starts) | [`tables::table4_2c::run`] | `table4.2c` |
//! | Table 4.2(d) (NOLA from Goto) | [`tables::table4_2d::run`] | `table4.2d` |
//! | Adaptive schedules vs the §4.2.1 sweep | [`tables::adaptive::run`] | `adaptive` |
//! | Circuit partition extension | [`ext_partition::run`] | `partition` |
//! | TSP extension | [`ext_tsp::run`] | `tsp` |
//! | Design-choice ablations | [`ablation`] | `ablation` |
//! | Convergence trajectories | [`trajectory::run`] | `trajectory` |
//! | Chain diagnostics | [`diagnostics::run`] | `diagnostics` |
//!
//! Budgets are expressed in paper-equivalent VAX 11/780 seconds
//! ([`vax_seconds`]); [`Scale`] divides them for faster approximate runs.
//!
//! # Examples
//!
//! ```no_run
//! use anneal_experiments::{tables::table4_1, SuiteConfig};
//!
//! // Paper-faithful Table 4.1 (takes a few minutes):
//! let table = table4_1::run(&SuiteConfig::paper());
//! println!("{table}");
//! ```

pub mod ablation;
pub mod bench;
mod budgetmap;
pub mod checkpoint;
pub mod cli;
mod config;
pub mod diagnostics;
pub mod exit_codes;
pub mod ext_partition;
pub mod ext_tsp;
pub mod faults;
mod instances;
pub mod jobs;
pub mod ops;
pub mod progress;
pub mod reporting;
mod roster;
mod runner;
pub mod scheduler;
pub mod supervisor;
mod table;
pub mod tables;
pub mod telemetry;
pub mod trace;
pub mod trajectory;
pub mod tuning;

pub use budgetmap::{
    vax_seconds, Scale, EVALS_PER_VAX_SECOND, NOLA_EVAL_COST, PAPER_SECONDS, PAPER_SECONDS_42B,
};
pub use checkpoint::{Checkpoint, WalMeta};
pub use config::SuiteConfig;
pub use faults::{ChaosWriter, FaultPlan};
pub use instances::{gola_paper_set, nola_paper_set, DEFAULT_SEED, NOLA_PIN_RANGE};
pub use jobs::{JobOutcome, JobServer, JobSpec, JobState};
pub use ops::{OpsBoard, OpsServer};
pub use progress::Progress;
pub use roster::{
    full_roster, reduced_roster, replica_exchange_roster, MethodCtx, MethodSpec, TunedY,
};
pub use runner::{ArrangementSet, CellPolicy, RetryPolicy};
pub use supervisor::Supervisor;
pub use table::Table;
pub use telemetry::{
    CellFailure, CellKey, CellRecord, FailedCell, SuiteSummary, SupervisorEvent, TelemetryLog,
};
pub use trace::{CellTrace, TraceEvent, TraceMeta, TraceSink};
