//! **Table 4.2(a)** — GOLA, starting from the Goto arrangement: total
//! density improvement over 30 instances for the 13-method roster at 6, 9
//! and 12 seconds per instance (§4.2.3 "Coupling Monte Carlo and GOTO").

use crate::budgetmap::PAPER_SECONDS;
use crate::config::SuiteConfig;
use crate::instances::gola_paper_set;
use crate::roster::reduced_roster;
use crate::runner::ArrangementSet;
use crate::table::Table;
use crate::telemetry::{CellKey, TelemetryLog};

/// Regenerates Table 4.2(a).
pub fn run(config: &SuiteConfig) -> Table {
    run_logged(config, &TelemetryLog::disabled())
}

/// [`run`] with per-cell telemetry and fault isolation (see
/// [`table4_1::run_logged`](crate::tables::table4_1::run_logged)).
pub fn run_logged(config: &SuiteConfig, log: &TelemetryLog) -> Table {
    let problems = gola_paper_set(config.seed);
    let mut set = ArrangementSet::with_goto_starts(problems, config.seed);
    set.replicas = config.replicas;
    set.schedule = config.schedule;

    let columns: Vec<String> = PAPER_SECONDS
        .iter()
        .map(|s| format!("{s:.0} sec"))
        .collect();
    let mut table = Table::new(
        format!(
            "Table 4.2(a) — GOLA from Goto arrangements: total improvement \
             (start density sum {})",
            set.start_density_sum()
        ),
        "g function",
        columns.clone(),
    );

    for spec in reduced_roster(config.tuned) {
        let values = PAPER_SECONDS
            .iter()
            .zip(&columns)
            .map(|(&s, column)| {
                set.run_cell(
                    CellKey::new("table4.2a", spec.name(), column.clone()),
                    &spec,
                    config.table_strategy(),
                    config.scale.vax_seconds(s),
                    &config.cell_policy(),
                    log,
                )
            })
            .collect();
        table.push_row(spec.name(), values);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tables::table4_1;

    #[test]
    fn improvements_from_goto_are_small() {
        let config = SuiteConfig::scaled(1);
        let from_goto = run(&config);
        assert_eq!(from_goto.rows.len(), 13);

        // §4.2.3: improvements over the Goto starts are below 5% of the
        // random-start densities — far smaller than random-start reductions.
        let from_random = table4_1::run(&config);
        let best_goto = from_goto.best_in_column("12 sec").unwrap().1;
        let best_random = from_random.best_in_column("12 sec").unwrap().1;
        assert!(
            best_goto < best_random,
            "polish ({best_goto}) must be smaller than from-scratch reduction ({best_random})"
        );
    }
}
