//! **Table 4.2(d)** — NOLA, starting from the Goto arrangement: total
//! improvement for the 13-method roster (§4.3.1: "none of the 13 Monte Carlo
//! methods is able to obtain a significant improvement").

use crate::budgetmap::{NOLA_EVAL_COST, PAPER_SECONDS};
use crate::config::SuiteConfig;
use crate::instances::nola_paper_set;
use crate::roster::reduced_roster;
use crate::runner::ArrangementSet;
use crate::table::Table;
use crate::telemetry::{CellKey, TelemetryLog};

/// Regenerates Table 4.2(d).
pub fn run(config: &SuiteConfig) -> Table {
    run_logged(config, &TelemetryLog::disabled())
}

/// [`run`] with per-cell telemetry and fault isolation (see
/// [`table4_1::run_logged`](crate::tables::table4_1::run_logged)).
pub fn run_logged(config: &SuiteConfig, log: &TelemetryLog) -> Table {
    let problems = nola_paper_set(config.seed);
    let mut set = ArrangementSet::with_goto_starts(problems, config.seed);
    set.replicas = config.replicas;
    set.schedule = config.schedule;

    let columns: Vec<String> = PAPER_SECONDS
        .iter()
        .map(|s| format!("{s:.0} sec"))
        .collect();
    let mut table = Table::new(
        format!(
            "Table 4.2(d) — NOLA from Goto arrangements: total improvement \
             (start density sum {})",
            set.start_density_sum()
        ),
        "g function",
        columns.clone(),
    );

    for spec in reduced_roster(config.tuned) {
        let values = PAPER_SECONDS
            .iter()
            .zip(&columns)
            .map(|(&s, column)| {
                set.run_cell(
                    CellKey::new("table4.2d", spec.name(), column.clone()),
                    &spec,
                    config.table_strategy(),
                    config.scale.vax_seconds(s).scale_div(NOLA_EVAL_COST),
                    &config.cell_policy(),
                    log,
                )
            })
            .collect();
        table.push_row(spec.name(), values);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tables::table4_2c;

    #[test]
    fn no_method_improves_goto_much_on_nola() {
        let config = SuiteConfig::scaled(1);
        let from_goto = run(&config);
        let from_random = table4_2c::run(&config);
        assert_eq!(from_goto.rows.len(), 13);
        // §4.3.1: near-optimality of Goto arrangements → residual
        // improvements are small compared to random-start reductions.
        let best_polish = from_goto.best_in_column("12 sec").unwrap().1;
        let best_scratch = from_random.best_in_column("12 sec").unwrap().1;
        assert!(best_polish < best_scratch);
    }
}
