//! One module per paper table (plus the adaptive-schedule comparison that
//! replaces the §4.2.1 sweep). Each `run` function regenerates the
//! corresponding table; see DESIGN.md's experiment index.

pub mod adaptive;
pub mod table4_1;
pub mod table4_2a;
pub mod table4_2b;
pub mod table4_2c;
pub mod table4_2d;
