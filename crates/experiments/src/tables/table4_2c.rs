//! **Table 4.2(c)** — NOLA, random starts, Figure-1 strategy: total density
//! reduction over 30 multi-pin instances for the 13-method roster at 6, 9
//! and 12 seconds per instance (§4.3.1).

use crate::budgetmap::{NOLA_EVAL_COST, PAPER_SECONDS};
use crate::config::SuiteConfig;
use crate::instances::nola_paper_set;
use crate::roster::reduced_roster;
use crate::runner::ArrangementSet;
use crate::table::Table;
use crate::telemetry::{CellKey, TelemetryLog};

/// Regenerates Table 4.2(c).
pub fn run(config: &SuiteConfig) -> Table {
    run_logged(config, &TelemetryLog::disabled())
}

/// [`run`] with per-cell telemetry and fault isolation (see
/// [`table4_1::run_logged`](crate::tables::table4_1::run_logged)).
pub fn run_logged(config: &SuiteConfig, log: &TelemetryLog) -> Table {
    let problems = nola_paper_set(config.seed);
    let mut set = ArrangementSet::with_random_starts(problems, config.seed);
    set.replicas = config.replicas;
    set.schedule = config.schedule;

    let columns: Vec<String> = PAPER_SECONDS
        .iter()
        .map(|s| format!("{s:.0} sec"))
        .collect();
    let mut table = Table::new(
        format!(
            "Table 4.2(c) — NOLA: total density reduction, 30 instances, 15 elements, \
             150 nets (start density sum {})",
            set.start_density_sum()
        ),
        "g function",
        columns.clone(),
    );

    // §4.3.1 compares against [GOTO77] on NOLA as well.
    let goto = set.goto_reduction();
    table.push_row("Goto", vec![goto; PAPER_SECONDS.len()]);

    for spec in reduced_roster(config.tuned) {
        let values = PAPER_SECONDS
            .iter()
            .zip(&columns)
            .map(|(&s, column)| {
                set.run_cell(
                    CellKey::new("table4.2c", spec.name(), column.clone()),
                    &spec,
                    config.table_strategy(),
                    config.scale.vax_seconds(s).scale_div(NOLA_EVAL_COST),
                    &config.cell_policy(),
                    log,
                )
            })
            .collect();
        table.push_row(spec.name(), values);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nola_table_shape() {
        let table = run(&SuiteConfig::scaled(1));
        assert_eq!(table.rows.len(), 14, "Goto + 13 methods");
        for (label, values) in &table.rows {
            for v in values {
                assert!(*v >= 0.0, "{label}");
            }
        }
    }
}
