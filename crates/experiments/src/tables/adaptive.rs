//! **Adaptive schedules** — grid-swept six-temperature annealing versus
//! feedback-derived schedules on the GOLA set, at equal per-instance run
//! budget and with the tuning bill made explicit.
//!
//! The §4.2.1 sweep spends a 7-candidate grid × 30 instances ×
//! [`TUNING_SECONDS`] of evaluations *off-line* per class before its first
//! competitive run. The adaptive rows instead probe each instance for
//! [`DEFAULT_PROBE_SAMPLES`] delta samples and pay for the probe *inside*
//! the run budget (see [`ArrangementSet::schedule`]) — so their run cells
//! are equal-total-cost with the grid-swept row *including* tuning, and the
//! final "tuning evals" column shows how lopsided the off-line bills are.

use anneal_core::schedule::adaptive::DEFAULT_PROBE_SAMPLES;
use anneal_core::{AdaptiveMode, Budget};

use crate::budgetmap::PAPER_SECONDS;
use crate::config::SuiteConfig;
use crate::instances::gola_paper_set;
use crate::roster::full_roster;
use crate::runner::ArrangementSet;
use crate::table::Table;
use crate::telemetry::{CellKey, TelemetryLog};
use crate::tuning::{GRID, TUNING_SECONDS};

/// The comparison rows: schedule source per row.
pub const ROWS: [(&str, Option<AdaptiveMode>); 3] = [
    ("Six Temp Annealing (grid-swept)", None),
    ("Adaptive (acceptance)", Some(AdaptiveMode::Acceptance)),
    ("ASA reannealing", Some(AdaptiveMode::Asa)),
];

/// Regenerates the adaptive-schedule comparison.
pub fn run(config: &SuiteConfig) -> Table {
    run_logged(config, &TelemetryLog::disabled())
}

/// [`run`] with per-cell telemetry and fault isolation (see
/// [`table4_1::run_logged`](crate::tables::table4_1::run_logged)).
pub fn run_logged(config: &SuiteConfig, log: &TelemetryLog) -> Table {
    let spec = full_roster(config.tuned)
        .into_iter()
        .find(|s| s.name() == "Six Temperature Annealing")
        .expect("the roster always carries class 2");

    let mut columns: Vec<String> = PAPER_SECONDS
        .iter()
        .map(|s| format!("{s:.0} sec"))
        .collect();
    columns.push("tuning evals".into());

    let problems = gola_paper_set(config.seed);
    let mut set = ArrangementSet::with_random_starts(problems, config.seed);
    let instances = set.problems().len() as u64;
    let mut table = Table::new(
        format!(
            "Adaptive schedules — GOLA, six-temperature annealing: grid-swept vs \
             feedback-derived at equal run budget (start density sum {})",
            set.start_density_sum()
        ),
        "schedule",
        columns,
    );

    for (label, mode) in ROWS {
        set.schedule = mode;
        let mut values: Vec<f64> = PAPER_SECONDS
            .iter()
            .map(|&s| {
                set.run_cell(
                    CellKey::new("adaptive", label, format!("{s:.0} sec")),
                    &spec,
                    config.table_strategy(),
                    config.scale.vax_seconds(s),
                    &config.cell_policy(),
                    log,
                )
            })
            .collect();
        values.push(tuning_evals(mode, instances, config));
        table.push_row(label, values);
    }
    table
}

/// The tuning bill for one row, in evaluations per budget column: the
/// §4.2.1 sweep (grid × instances × [`TUNING_SECONDS`], scaled like every
/// other budget) for the grid-swept row; the probe total for the adaptive
/// rows. The sweep's bill is spent *off-line* before its row can run at
/// all, while the probes are charged inside the run cells — listed here so
/// the comparison's cost asymmetry is visible in the table itself.
pub fn tuning_evals(mode: Option<AdaptiveMode>, instances: u64, config: &SuiteConfig) -> f64 {
    match mode {
        None => {
            let per_instance = match config.scale.vax_seconds(TUNING_SECONDS) {
                Budget::Evaluations(n) => n,
                Budget::WallClock(_) => unreachable!("vax budgets are evaluation counts"),
            };
            (GRID.len() as u64 * instances * per_instance) as f64
        }
        Some(_) => (instances * DEFAULT_PROBE_SAMPLES) as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_scale_probe_bill_is_within_ten_percent_of_the_sweep() {
        let config = SuiteConfig::paper();
        let sweep = tuning_evals(None, 30, &config);
        let probe = tuning_evals(Some(AdaptiveMode::Acceptance), 30, &config);
        // 7 candidates × 30 instances × 5 s × 250 evals/s.
        assert_eq!(sweep, 262_500.0);
        // 128 probe samples × 30 instances.
        assert_eq!(probe, 3_840.0);
        assert!(
            probe <= 0.10 * sweep,
            "adaptive tuning bill {probe} exceeds 10% of the sweep's {sweep}"
        );
    }

    #[test]
    fn shape_has_three_rows_and_a_tuning_column() {
        let table = run(&SuiteConfig::scaled(20).with_seed(5));
        assert_eq!(table.rows.len(), 3);
        assert_eq!(table.columns.len(), PAPER_SECONDS.len() + 1);
        assert_eq!(table.columns[3], "tuning evals");
        for (label, values) in &table.rows {
            for v in values {
                assert!(*v >= 0.0, "{label}: {v}");
            }
        }
        // The run cells are real annealing runs, not zeros.
        assert!(table.rows[1].1[..3].iter().all(|&v| v > 0.0));
    }
}
