//! **Table 4.2(b)** — GOLA at 3 minutes per instance: the Figure-1 strategy
//! versus the Figure-2 (local-opt) strategy for the 13-method roster
//! (§4.2.4 "Figure 1 vs Figure 2").

use anneal_core::Strategy;

use crate::budgetmap::PAPER_SECONDS_42B;
use crate::config::SuiteConfig;
use crate::instances::gola_paper_set;
use crate::roster::reduced_roster;
use crate::runner::ArrangementSet;
use crate::table::Table;
use crate::telemetry::{CellKey, TelemetryLog};

/// Regenerates Table 4.2(b).
pub fn run(config: &SuiteConfig) -> Table {
    run_logged(config, &TelemetryLog::disabled())
}

/// [`run`] with per-cell telemetry and fault isolation (see
/// [`table4_1::run_logged`](crate::tables::table4_1::run_logged)).
pub fn run_logged(config: &SuiteConfig, log: &TelemetryLog) -> Table {
    let problems = gola_paper_set(config.seed);
    let mut set = ArrangementSet::with_random_starts(problems, config.seed);
    set.schedule = config.schedule;
    let budget = config.scale.vax_seconds(PAPER_SECONDS_42B);

    let mut table = Table::new(
        format!(
            "Table 4.2(b) — GOLA, 180 sec/instance: Figure 1 vs Figure 2 \
             (start density sum {})",
            set.start_density_sum()
        ),
        "g function",
        vec!["Figure 1".into(), "Figure 2".into()],
    );

    for spec in reduced_roster(config.tuned) {
        let [fig1, fig2] = [Strategy::Figure1, Strategy::Figure2].map(|strategy| {
            let column = if strategy == Strategy::Figure1 {
                "Figure 1"
            } else {
                "Figure 2"
            };
            set.run_cell(
                CellKey::new("table4.2b", spec.name(), column),
                &spec,
                strategy,
                budget,
                &config.cell_policy(),
                log,
            )
        });
        table.push_row(spec.name(), vec![fig1, fig2]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_strategies_reduce_density() {
        let table = run(&SuiteConfig::scaled(5));
        assert_eq!(table.columns, vec!["Figure 1", "Figure 2"]);
        assert_eq!(table.rows.len(), 13);
        for (label, values) in &table.rows {
            assert!(values[0] >= 0.0 && values[1] >= 0.0, "{label}");
        }
        // At a generous budget every method should make progress under at
        // least one strategy.
        for (label, values) in &table.rows {
            assert!(
                values[0] > 0.0 || values[1] > 0.0,
                "{label} made no progress under either strategy"
            );
        }
    }
}
