//! **Table 4.1** — GOLA, random starts, Figure-1 strategy: total density
//! reduction over 30 instances for all 20 g classes (plus the Goto and
//! \[COHO83a\] baselines) at 6, 9 and 12 seconds per instance.

use crate::budgetmap::PAPER_SECONDS;
use crate::config::SuiteConfig;
use crate::instances::gola_paper_set;
use crate::roster::full_roster;
use crate::runner::ArrangementSet;
use crate::table::Table;
use crate::telemetry::{CellKey, TelemetryLog};

/// Regenerates Table 4.1.
pub fn run(config: &SuiteConfig) -> Table {
    run_logged(config, &TelemetryLog::disabled())
}

/// [`run`] with per-cell telemetry and fault isolation: each cell records a
/// [`CellRecord`](crate::telemetry::CellRecord) into `log`, and a panicking
/// cell is logged as failed while the rest of the table completes.
pub fn run_logged(config: &SuiteConfig, log: &TelemetryLog) -> Table {
    let problems = gola_paper_set(config.seed);
    let mut set = ArrangementSet::with_random_starts(problems, config.seed);
    set.replicas = config.replicas;
    set.schedule = config.schedule;

    let columns: Vec<String> = PAPER_SECONDS
        .iter()
        .map(|s| format!("{s:.0} sec"))
        .collect();
    let mut table = Table::new(
        format!(
            "Table 4.1 — GOLA: total density reduction, 30 instances, 15 elements, 150 nets \
             (start density sum {})",
            set.start_density_sum()
        ),
        "g function",
        columns.clone(),
    );

    // The Goto construction is budget-independent; the paper lists it once.
    let goto = set.goto_reduction();
    table.push_row("Goto", vec![goto; PAPER_SECONDS.len()]);

    for spec in full_roster(config.tuned) {
        let values = PAPER_SECONDS
            .iter()
            .zip(&columns)
            .map(|(&s, column)| {
                set.run_cell(
                    CellKey::new("table4.1", spec.name(), column.clone()),
                    &spec,
                    config.table_strategy(),
                    config.scale.vax_seconds(s),
                    &config.cell_policy(),
                    log,
                )
            })
            .collect();
        table.push_row(spec.name(), values);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_matches_paper() {
        // Heavy computation: run at a small scale, check structure and the
        // paper's core qualitative findings.
        let table = run(&SuiteConfig::scaled(1));
        assert_eq!(table.columns.len(), 3);
        assert_eq!(table.rows.len(), 22, "Goto + COHO83a + 20 g classes");
        assert_eq!(table.rows[0].0, "Goto");

        // Every cell is a nonnegative reduction.
        for (label, values) in &table.rows {
            for v in values {
                assert!(*v >= 0.0, "{label}: {v}");
            }
        }
    }
}
