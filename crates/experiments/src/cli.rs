//! Argument parsing for the `repro` binary, split out so every flag — and
//! every rejection — is unit-testable without spawning a process.
//!
//! Validation happens here, at the CLI boundary: `--threads 0` or
//! `--scale 0` are clear errors instead of reaching a runner panic deep in
//! a suite.

use std::time::Duration;

use crate::config::SuiteConfig;
use crate::faults::FaultPlan;
use crate::runner::RetryPolicy;
use crate::Scale;

/// Every experiment name `repro` accepts, in `all` order.
pub const EXPERIMENTS: [&str; 11] = [
    "tuning",
    "table4.1",
    "table4.2a",
    "table4.2b",
    "table4.2c",
    "table4.2d",
    "partition",
    "tsp",
    "ablation",
    "trajectory",
    "diagnostics",
];

/// One-line usage string for `repro` errors.
pub const USAGE: &str = "usage: repro [--scale N] [--seed N] [--csv] [--threads N] \
     [--telemetry PATH] [--resume WAL] [--trace DIR] [--metrics PATH] \
     [--progress] [--faults SPEC] [--retries N] [--backoff-ms N] \
     [--watchdog-ms N] <experiment>...";

/// Parsed `repro` invocation.
#[derive(Debug)]
pub struct Cli {
    /// Suite configuration assembled from the flags.
    pub config: SuiteConfig,
    /// Emit CSV instead of aligned text.
    pub csv: bool,
    /// Stream the telemetry WAL to this path.
    pub telemetry: Option<String>,
    /// Replay completed cells from this prior WAL.
    pub resume: Option<String>,
    /// Write per-cell chain-trace JSONL files into this directory.
    pub trace: Option<String>,
    /// Write the process metrics snapshot (JSON) to this path at exit.
    pub metrics: Option<String>,
    /// Show a live cells-done ticker on stderr.
    pub progress: bool,
    /// Fault-injection plan (`--faults`; the `ANNEAL_FAULTS` environment
    /// variable is merged in by the binary, not here, so parsing stays
    /// pure).
    pub faults: Option<FaultPlan>,
    /// Experiments to run, `all` already expanded.
    pub experiments: Vec<String>,
}

/// Parses `repro` arguments (everything after the program name).
pub fn parse(args: &[String]) -> Result<Cli, String> {
    let mut config = SuiteConfig::paper();
    let mut csv = false;
    let mut telemetry: Option<String> = None;
    let mut resume: Option<String> = None;
    let mut trace: Option<String> = None;
    let mut metrics: Option<String> = None;
    let mut progress = false;
    let mut faults: Option<FaultPlan> = None;
    let mut retries: u32 = 1;
    let mut backoff = Duration::from_millis(100);
    let mut experiments: Vec<String> = Vec::new();

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value_of = |flag: &str| -> Result<&String, String> {
            it.next().ok_or_else(|| format!("{flag} needs a value"))
        };
        match arg.as_str() {
            "--scale" => {
                let v = value_of("--scale")?;
                let n: u64 = v.parse().map_err(|_| format!("bad --scale value `{v}`"))?;
                if n == 0 {
                    return Err("--scale must be positive".into());
                }
                config.scale = Scale::new(n);
            }
            "--seed" => {
                let v = value_of("--seed")?;
                let seed: u64 = v.parse().map_err(|_| format!("bad --seed value `{v}`"))?;
                config = config.with_seed(seed);
            }
            "--threads" => {
                let v = value_of("--threads")?;
                let n: usize = v
                    .parse()
                    .map_err(|_| format!("bad --threads value `{v}`"))?;
                if n == 0 {
                    return Err("--threads must be positive (at least one worker thread)".into());
                }
                config = config.with_threads(n);
            }
            "--retries" => {
                let v = value_of("--retries")?;
                let n: u32 = v
                    .parse()
                    .map_err(|_| format!("bad --retries value `{v}`"))?;
                if n == 0 {
                    return Err("--retries must be positive (1 = no retries)".into());
                }
                retries = n;
            }
            "--backoff-ms" => {
                let v = value_of("--backoff-ms")?;
                let ms: u64 = v
                    .parse()
                    .map_err(|_| format!("bad --backoff-ms value `{v}`"))?;
                backoff = Duration::from_millis(ms);
            }
            "--watchdog-ms" => {
                let v = value_of("--watchdog-ms")?;
                let ms: u64 = v
                    .parse()
                    .map_err(|_| format!("bad --watchdog-ms value `{v}`"))?;
                if ms == 0 {
                    return Err("--watchdog-ms must be positive".into());
                }
                config = config.with_watchdog(Some(Duration::from_millis(ms)));
            }
            "--telemetry" => telemetry = Some(value_of("--telemetry")?.clone()),
            "--resume" => resume = Some(value_of("--resume")?.clone()),
            "--trace" => trace = Some(value_of("--trace")?.clone()),
            "--metrics" => metrics = Some(value_of("--metrics")?.clone()),
            "--faults" => faults = Some(FaultPlan::parse(value_of("--faults")?)?),
            "--csv" => csv = true,
            "--progress" => progress = true,
            other if other.starts_with('-') => {
                return Err(format!("unknown option `{other}`"));
            }
            exp => experiments.push(exp.to_string()),
        }
    }

    config = config.with_retry(RetryPolicy::new(retries, backoff));

    if experiments.is_empty() {
        return Err("no experiment given".into());
    }
    if experiments.iter().any(|e| e == "all") {
        experiments = EXPERIMENTS.iter().map(|s| s.to_string()).collect();
    }
    for exp in &experiments {
        if !EXPERIMENTS.contains(&exp.as_str()) {
            return Err(format!("unknown experiment `{exp}`"));
        }
    }

    Ok(Cli {
        config,
        csv,
        telemetry,
        resume,
        trace,
        metrics,
        progress,
        faults,
        experiments,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn defaults_are_paper_faithful() {
        let cli = parse(&args("table4.1")).unwrap();
        assert_eq!(cli.config.scale, Scale::FULL);
        assert_eq!(cli.config.threads, 1);
        assert_eq!(cli.config.retry.attempts, 1);
        assert_eq!(cli.config.watchdog, None);
        assert!(!cli.csv && cli.telemetry.is_none() && cli.resume.is_none());
        assert!(!cli.progress && cli.trace.is_none() && cli.metrics.is_none());
        assert_eq!(cli.experiments, vec!["table4.1"]);
    }

    #[test]
    fn full_flag_set_parses() {
        let cli = parse(&args(
            "--scale 40 --seed 7 --csv --threads 4 --telemetry out.jsonl \
             --resume prior.jsonl --trace traces --metrics metrics.json \
             --progress --faults panic=0.5,seed=3 --retries 3 \
             --backoff-ms 10 --watchdog-ms 5000 table4.1 table4.2b",
        ))
        .unwrap();
        assert_eq!(cli.config.scale.divisor, 40);
        assert_eq!(cli.config.seed, 7);
        assert_eq!(cli.config.threads, 4);
        assert_eq!(cli.config.retry.attempts, 3);
        assert_eq!(cli.config.retry.backoff, Duration::from_millis(10));
        assert_eq!(cli.config.watchdog, Some(Duration::from_millis(5000)));
        assert!(cli.csv && cli.progress);
        assert_eq!(cli.telemetry.as_deref(), Some("out.jsonl"));
        assert_eq!(cli.resume.as_deref(), Some("prior.jsonl"));
        assert_eq!(cli.trace.as_deref(), Some("traces"));
        assert_eq!(cli.metrics.as_deref(), Some("metrics.json"));
        assert_eq!(cli.faults.unwrap().panic_p, 0.5);
        assert_eq!(cli.experiments, vec!["table4.1", "table4.2b"]);
    }

    #[test]
    fn zero_threads_is_a_cli_error_not_a_panic() {
        let err = parse(&args("--threads 0 table4.1")).unwrap_err();
        assert!(err.contains("--threads must be positive"), "{err}");
    }

    #[test]
    fn zero_scale_and_retries_and_watchdog_are_rejected() {
        assert!(parse(&args("--scale 0 table4.1"))
            .unwrap_err()
            .contains("--scale"));
        assert!(parse(&args("--retries 0 table4.1"))
            .unwrap_err()
            .contains("--retries"));
        assert!(parse(&args("--watchdog-ms 0 table4.1"))
            .unwrap_err()
            .contains("--watchdog-ms"));
    }

    #[test]
    fn missing_values_and_unknown_flags_are_rejected() {
        assert!(parse(&args("--scale"))
            .unwrap_err()
            .contains("needs a value"));
        assert!(parse(&args("--bogus table4.1"))
            .unwrap_err()
            .contains("unknown option"));
        assert!(parse(&args("")).unwrap_err().contains("no experiment"));
        assert!(parse(&args("not-an-experiment"))
            .unwrap_err()
            .contains("unknown experiment"));
    }

    #[test]
    fn bad_fault_specs_surface_their_error() {
        let err = parse(&args("--faults panic=2 table4.1")).unwrap_err();
        assert!(err.contains("[0, 1]"), "{err}");
    }

    #[test]
    fn all_expands_in_canonical_order() {
        let cli = parse(&args("--scale 2 all")).unwrap();
        assert_eq!(cli.experiments, EXPERIMENTS.to_vec());
    }
}
