//! Argument parsing for the `repro` binary, split out so every flag — and
//! every rejection — is unit-testable without spawning a process.
//!
//! Validation happens here, at the CLI boundary: `--threads 0` or
//! `--scale 0` are clear errors instead of reaching a runner panic deep in
//! a suite.

use std::time::Duration;

use anneal_core::{AdaptiveMode, Strategy, DEFAULT_EXCHANGE_INTERVAL};

use crate::config::SuiteConfig;
use crate::faults::FaultPlan;
use crate::runner::RetryPolicy;
use crate::supervisor;
use crate::telemetry::CellKey;
use crate::Scale;

/// Every experiment name `repro` accepts, in `all` order.
pub const EXPERIMENTS: [&str; 12] = [
    "tuning",
    "table4.1",
    "table4.2a",
    "table4.2b",
    "table4.2c",
    "table4.2d",
    "adaptive",
    "partition",
    "tsp",
    "ablation",
    "trajectory",
    "diagnostics",
];

/// One-line usage string for `repro` errors.
pub const USAGE: &str = "usage: repro [--scale N] [--seed N] [--csv] [--threads N] \
     [--strategy NAME] [--schedule MODE] [--replicas K] [--exchange-interval N] \
     [--telemetry PATH] [--resume WAL] [--trace DIR] [--metrics PATH] \
     [--progress] [--faults SPEC] [--retries N] [--backoff-ms N] \
     [--watchdog-ms N] [--isolation thread|process] [--heartbeat-ms N] \
     [--breaker-threshold N] [--serve ADDR] <experiment>...\n       \
     repro serve ADDR [--queue N] [--job-threads N] [--journal PATH]\n       \
     repro job SPEC.json";

/// `repro serve` options: the job-server daemon mode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeOpts {
    /// Address to bind (`HOST:PORT`; port 0 picks a free port).
    pub addr: String,
    /// Bounded submission-queue capacity (`--queue`); a full queue answers
    /// `429` until workers drain it.
    pub queue: usize,
    /// Job worker threads (`--job-threads`).
    pub job_threads: usize,
    /// WAL-style job journal path (`--journal`); accepted jobs survive a
    /// restart when set.
    pub journal: Option<String>,
}

/// A `repro` subcommand (the first positional argument when it is
/// `serve` or `job`; absent for the classic experiment-suite invocation).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Command {
    /// `repro serve ADDR ...`: run the annealing job server until a
    /// SIGINT/SIGTERM drain.
    Serve(ServeOpts),
    /// `repro job SPEC.json`: execute one job spec offline and print its
    /// result record — byte-identical to what the server would store.
    Job(String),
}

/// The `--strategy` spellings `repro` accepts.
pub const STRATEGIES: [&str; 4] = ["figure1", "figure2", "rejectionless", "replica-exchange"];

/// The `--schedule` spellings `repro` accepts.
pub const SCHEDULES: [&str; 2] = ["adaptive", "asa"];

/// The `--isolation` spellings `repro` accepts.
pub const ISOLATIONS: [&str; 2] = ["thread", "process"];

/// How table cells are isolated from each other's failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Isolation {
    /// In-process: `catch_unwind` + watchdog (the historical behavior).
    #[default]
    Thread,
    /// One child process per cell under the
    /// [`Supervisor`](crate::supervisor::Supervisor): survives aborts,
    /// OOM kills and true hangs.
    Process,
}

/// The hidden `--worker-cell` mode: this invocation is a supervisor child
/// running exactly one table cell.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerSpec {
    /// The one cell this worker runs (everything else is skipped).
    pub cell: CellKey,
    /// WAL shard this worker appends its record to (`--worker-shard`).
    pub shard: String,
    /// Starting WAL sequence number (`--worker-seq`), aligning the shard
    /// line bytes with the parent's main WAL.
    pub seq: u64,
    /// Fault-injection attempt base (`--worker-attempt`), so respawned
    /// workers roll fresh fault decisions.
    pub attempt: u32,
}

/// Parsed `repro` invocation.
#[derive(Debug)]
pub struct Cli {
    /// Suite configuration assembled from the flags.
    pub config: SuiteConfig,
    /// Emit CSV instead of aligned text.
    pub csv: bool,
    /// Stream the telemetry WAL to this path.
    pub telemetry: Option<String>,
    /// Replay completed cells from this prior WAL.
    pub resume: Option<String>,
    /// Write per-cell chain-trace JSONL files into this directory.
    pub trace: Option<String>,
    /// Write the process metrics snapshot (JSON) to this path at exit.
    pub metrics: Option<String>,
    /// Show a live cells-done ticker on stderr.
    pub progress: bool,
    /// Serve the live ops endpoints (`/metrics`, `/healthz`, `/progress`)
    /// on this address (`--serve`, e.g. `127.0.0.1:9090`; port 0 picks a
    /// free port). `None` binds nothing.
    pub serve: Option<String>,
    /// Fault-injection plan (`--faults`; the `ANNEAL_FAULTS` environment
    /// variable is merged in by the binary, not here, so parsing stays
    /// pure).
    pub faults: Option<FaultPlan>,
    /// Cell isolation model (`--isolation`, default thread).
    pub isolation: Isolation,
    /// Worker heartbeat interval under process isolation
    /// (`--heartbeat-ms`, default 250).
    pub heartbeat: Duration,
    /// Consecutive hard process failures per table before its circuit
    /// breaker opens (`--breaker-threshold`, default 3).
    pub breaker_threshold: u32,
    /// Hidden worker mode (`--worker-cell` et al.), set only when this
    /// process is a supervisor child.
    pub worker: Option<WorkerSpec>,
    /// Experiments to run, `all` already expanded (empty under a
    /// subcommand).
    pub experiments: Vec<String>,
    /// Subcommand (`serve` / `job`); `None` runs the experiment suite.
    pub command: Option<Command>,
}

/// A [`Cli`] carrying only a subcommand (suite fields at their defaults).
fn command_cli(command: Command) -> Cli {
    Cli {
        config: SuiteConfig::paper(),
        csv: false,
        telemetry: None,
        resume: None,
        trace: None,
        metrics: None,
        progress: false,
        serve: None,
        faults: None,
        isolation: Isolation::default(),
        heartbeat: supervisor::DEFAULT_HEARTBEAT,
        breaker_threshold: supervisor::DEFAULT_BREAKER_THRESHOLD,
        worker: None,
        experiments: Vec::new(),
        command: Some(command),
    }
}

/// Parses `repro serve ADDR [--queue N] [--job-threads N] [--journal
/// PATH]`.
fn parse_serve(args: &[String]) -> Result<Cli, String> {
    let mut addr: Option<String> = None;
    let mut queue = crate::jobs::DEFAULT_QUEUE_CAPACITY;
    let mut job_threads = crate::jobs::DEFAULT_JOB_THREADS;
    let mut journal: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value_of = |flag: &str| -> Result<&String, String> {
            it.next().ok_or_else(|| format!("{flag} needs a value"))
        };
        match arg.as_str() {
            "--queue" => {
                let v = value_of("--queue")?;
                let n: usize = v.parse().map_err(|_| format!("bad --queue value `{v}`"))?;
                if n == 0 {
                    return Err("--queue must be positive".into());
                }
                queue = n;
            }
            "--job-threads" => {
                let v = value_of("--job-threads")?;
                let n: usize = v
                    .parse()
                    .map_err(|_| format!("bad --job-threads value `{v}`"))?;
                if n == 0 {
                    return Err("--job-threads must be positive".into());
                }
                job_threads = n;
            }
            "--journal" => journal = Some(value_of("--journal")?.clone()),
            other if other.starts_with('-') => {
                return Err(format!("unknown serve option `{other}`"));
            }
            positional => {
                if addr.is_some() {
                    return Err(format!("serve takes one ADDR, got extra `{positional}`"));
                }
                if !positional.contains(':') {
                    return Err(format!(
                        "bad serve address `{positional}` (expected HOST:PORT, e.g. \
                         127.0.0.1:9090)"
                    ));
                }
                addr = Some(positional.to_string());
            }
        }
    }
    let addr = addr.ok_or_else(|| "serve needs an ADDR (e.g. 127.0.0.1:9090)".to_string())?;
    Ok(command_cli(Command::Serve(ServeOpts {
        addr,
        queue,
        job_threads,
        journal,
    })))
}

/// Parses `repro job SPEC.json`.
fn parse_job(args: &[String]) -> Result<Cli, String> {
    match args {
        [path] if !path.starts_with('-') => Ok(command_cli(Command::Job(path.clone()))),
        [] => Err("job needs a SPEC.json path".into()),
        _ => Err("job takes exactly one SPEC.json path".into()),
    }
}

/// Parses `repro` arguments (everything after the program name).
pub fn parse(args: &[String]) -> Result<Cli, String> {
    match args.first().map(String::as_str) {
        Some("serve") => return parse_serve(&args[1..]),
        Some("job") => return parse_job(&args[1..]),
        _ => {}
    }
    let mut config = SuiteConfig::paper();
    let mut csv = false;
    let mut telemetry: Option<String> = None;
    let mut resume: Option<String> = None;
    let mut trace: Option<String> = None;
    let mut metrics: Option<String> = None;
    let mut progress = false;
    let mut serve: Option<String> = None;
    let mut faults: Option<FaultPlan> = None;
    let mut isolation = Isolation::default();
    let mut isolation_set = false;
    let mut heartbeat = supervisor::DEFAULT_HEARTBEAT;
    let mut heartbeat_set = false;
    let mut breaker_threshold = supervisor::DEFAULT_BREAKER_THRESHOLD;
    let mut breaker_set = false;
    let mut worker_cell: Option<CellKey> = None;
    let mut worker_shard: Option<String> = None;
    let mut worker_seq: Option<u64> = None;
    let mut worker_attempt: u32 = 0;
    let mut worker_attempt_set = false;
    let mut retries: u32 = 1;
    let mut backoff = Duration::from_millis(100);
    let mut strategy_name: Option<String> = None;
    let mut replicas: Option<usize> = None;
    let mut exchange_interval: Option<u64> = None;
    let mut experiments: Vec<String> = Vec::new();

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value_of = |flag: &str| -> Result<&String, String> {
            it.next().ok_or_else(|| format!("{flag} needs a value"))
        };
        match arg.as_str() {
            "--scale" => {
                let v = value_of("--scale")?;
                let n: u64 = v.parse().map_err(|_| format!("bad --scale value `{v}`"))?;
                if n == 0 {
                    return Err("--scale must be positive".into());
                }
                config.scale = Scale::new(n);
            }
            "--seed" => {
                let v = value_of("--seed")?;
                let seed: u64 = v.parse().map_err(|_| format!("bad --seed value `{v}`"))?;
                config = config.with_seed(seed);
            }
            "--threads" => {
                let v = value_of("--threads")?;
                let n: usize = v
                    .parse()
                    .map_err(|_| format!("bad --threads value `{v}`"))?;
                if n == 0 {
                    return Err("--threads must be positive (at least one worker thread)".into());
                }
                config = config.with_threads(n);
            }
            "--retries" => {
                let v = value_of("--retries")?;
                let n: u32 = v
                    .parse()
                    .map_err(|_| format!("bad --retries value `{v}`"))?;
                if n == 0 {
                    return Err("--retries must be positive (1 = no retries)".into());
                }
                retries = n;
            }
            "--backoff-ms" => {
                let v = value_of("--backoff-ms")?;
                let ms: u64 = v
                    .parse()
                    .map_err(|_| format!("bad --backoff-ms value `{v}`"))?;
                backoff = Duration::from_millis(ms);
            }
            "--watchdog-ms" => {
                let v = value_of("--watchdog-ms")?;
                let ms: u64 = v
                    .parse()
                    .map_err(|_| format!("bad --watchdog-ms value `{v}`"))?;
                if ms == 0 {
                    return Err("--watchdog-ms must be positive".into());
                }
                config = config.with_watchdog(Some(Duration::from_millis(ms)));
            }
            "--strategy" => strategy_name = Some(value_of("--strategy")?.clone()),
            "--schedule" => {
                let v = value_of("--schedule")?;
                let mode: AdaptiveMode = v.parse().map_err(|_| {
                    format!(
                        "unknown --schedule `{v}` (one of: {})",
                        SCHEDULES.join(", ")
                    )
                })?;
                config = config.with_schedule(mode);
            }
            "--replicas" => {
                let v = value_of("--replicas")?;
                let k: usize = v
                    .parse()
                    .map_err(|_| format!("bad --replicas value `{v}`"))?;
                if k < 2 {
                    return Err("--replicas must be at least 2 (a single rung has no \
                         swap partner)"
                        .into());
                }
                replicas = Some(k);
            }
            "--exchange-interval" => {
                let v = value_of("--exchange-interval")?;
                let n: u64 = v
                    .parse()
                    .map_err(|_| format!("bad --exchange-interval value `{v}`"))?;
                if n == 0 {
                    return Err("--exchange-interval must be positive".into());
                }
                exchange_interval = Some(n);
            }
            "--telemetry" => telemetry = Some(value_of("--telemetry")?.clone()),
            "--resume" => resume = Some(value_of("--resume")?.clone()),
            "--trace" => trace = Some(value_of("--trace")?.clone()),
            "--metrics" => metrics = Some(value_of("--metrics")?.clone()),
            "--serve" => {
                let v = value_of("--serve")?;
                if !v.contains(':') {
                    return Err(format!(
                        "bad --serve value `{v}` (expected HOST:PORT, e.g. 127.0.0.1:9090)"
                    ));
                }
                serve = Some(v.clone());
            }
            "--faults" => faults = Some(FaultPlan::parse(value_of("--faults")?)?),
            "--isolation" => {
                let v = value_of("--isolation")?;
                isolation = match v.as_str() {
                    "thread" => Isolation::Thread,
                    "process" => Isolation::Process,
                    other => {
                        return Err(format!(
                            "unknown --isolation `{other}` (one of: {})",
                            ISOLATIONS.join(", ")
                        ));
                    }
                };
                isolation_set = true;
            }
            "--heartbeat-ms" => {
                let v = value_of("--heartbeat-ms")?;
                let ms: u64 = v
                    .parse()
                    .map_err(|_| format!("bad --heartbeat-ms value `{v}`"))?;
                if ms == 0 {
                    return Err("--heartbeat-ms must be positive".into());
                }
                heartbeat = Duration::from_millis(ms);
                heartbeat_set = true;
            }
            "--breaker-threshold" => {
                let v = value_of("--breaker-threshold")?;
                let n: u32 = v
                    .parse()
                    .map_err(|_| format!("bad --breaker-threshold value `{v}`"))?;
                if n == 0 {
                    return Err(
                        "--breaker-threshold must be positive (1 = trip on first failure)".into(),
                    );
                }
                breaker_threshold = n;
                breaker_set = true;
            }
            "--worker-cell" => {
                let v = value_of("--worker-cell")?;
                let fields: Vec<&str> = v.split(supervisor::CELL_FIELD_SEP).collect();
                let [table, method, column] = fields.as_slice() else {
                    return Err(format!(
                        "bad --worker-cell value `{}` (expected table\\x1fmethod\\x1fcolumn)",
                        v.escape_debug()
                    ));
                };
                worker_cell = Some(CellKey::new(*table, *method, *column));
            }
            "--worker-shard" => worker_shard = Some(value_of("--worker-shard")?.clone()),
            "--worker-seq" => {
                let v = value_of("--worker-seq")?;
                worker_seq = Some(
                    v.parse()
                        .map_err(|_| format!("bad --worker-seq value `{v}`"))?,
                );
            }
            "--worker-attempt" => {
                let v = value_of("--worker-attempt")?;
                worker_attempt = v
                    .parse()
                    .map_err(|_| format!("bad --worker-attempt value `{v}`"))?;
                worker_attempt_set = true;
            }
            "--csv" => csv = true,
            "--progress" => progress = true,
            other if other.starts_with('-') => {
                return Err(format!("unknown option `{other}`"));
            }
            exp => experiments.push(exp.to_string()),
        }
    }

    config = config.with_retry(RetryPolicy::new(retries, backoff));

    let strategy = match strategy_name.as_deref() {
        None => None,
        Some("figure1") => Some(Strategy::Figure1),
        Some("figure2") => Some(Strategy::Figure2),
        Some("rejectionless") => Some(Strategy::Rejectionless),
        Some("replica-exchange") => Some(Strategy::ReplicaExchange {
            exchange_interval: exchange_interval.unwrap_or(DEFAULT_EXCHANGE_INTERVAL),
        }),
        Some(other) => {
            return Err(format!(
                "unknown --strategy `{other}` (one of: {})",
                STRATEGIES.join(", ")
            ));
        }
    };
    if !matches!(strategy, Some(Strategy::ReplicaExchange { .. }))
        && (replicas.is_some() || exchange_interval.is_some())
    {
        return Err(
            "--replicas and --exchange-interval require --strategy replica-exchange".into(),
        );
    }
    if let Some(s) = strategy {
        config = config.with_strategy(s);
    }
    if let Some(k) = replicas {
        config = config.with_replicas(k);
    }

    let worker = match worker_cell {
        None => {
            if worker_shard.is_some() || worker_seq.is_some() || worker_attempt_set {
                return Err(
                    "--worker-shard, --worker-seq and --worker-attempt require --worker-cell"
                        .into(),
                );
            }
            None
        }
        Some(cell) => {
            if isolation_set && isolation == Isolation::Process {
                return Err("--worker-cell is itself a worker: it cannot use \
                     --isolation process"
                    .into());
            }
            if serve.is_some() {
                return Err("--worker-cell is itself a worker: it cannot use --serve \
                     (only the supervising parent serves the ops endpoints)"
                    .into());
            }
            let Some(shard) = worker_shard else {
                return Err("--worker-cell requires --worker-shard".into());
            };
            Some(WorkerSpec {
                cell,
                shard,
                seq: worker_seq.unwrap_or(0),
                attempt: worker_attempt,
            })
        }
    };
    if (heartbeat_set || breaker_set) && isolation != Isolation::Process && worker.is_none() {
        return Err("--heartbeat-ms and --breaker-threshold require --isolation process".into());
    }

    if experiments.is_empty() {
        return Err("no experiment given".into());
    }
    if experiments.iter().any(|e| e == "all") {
        experiments = EXPERIMENTS.iter().map(|s| s.to_string()).collect();
    }
    for exp in &experiments {
        if !EXPERIMENTS.contains(&exp.as_str()) {
            return Err(format!("unknown experiment `{exp}`"));
        }
    }

    Ok(Cli {
        config,
        csv,
        telemetry,
        resume,
        trace,
        metrics,
        progress,
        serve,
        faults,
        isolation,
        heartbeat,
        breaker_threshold,
        worker,
        experiments,
        command: None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn defaults_are_paper_faithful() {
        let cli = parse(&args("table4.1")).unwrap();
        assert_eq!(cli.config.scale, Scale::FULL);
        assert_eq!(cli.config.threads, 1);
        assert_eq!(cli.config.retry.attempts, 1);
        assert_eq!(cli.config.watchdog, None);
        assert!(!cli.csv && cli.telemetry.is_none() && cli.resume.is_none());
        assert!(!cli.progress && cli.trace.is_none() && cli.metrics.is_none());
        assert_eq!(cli.experiments, vec!["table4.1"]);
    }

    #[test]
    fn full_flag_set_parses() {
        let cli = parse(&args(
            "--scale 40 --seed 7 --csv --threads 4 --telemetry out.jsonl \
             --resume prior.jsonl --trace traces --metrics metrics.json \
             --progress --faults panic=0.5,seed=3 --retries 3 \
             --backoff-ms 10 --watchdog-ms 5000 table4.1 table4.2b",
        ))
        .unwrap();
        assert_eq!(cli.config.scale.divisor, 40);
        assert_eq!(cli.config.seed, 7);
        assert_eq!(cli.config.threads, 4);
        assert_eq!(cli.config.retry.attempts, 3);
        assert_eq!(cli.config.retry.backoff, Duration::from_millis(10));
        assert_eq!(cli.config.watchdog, Some(Duration::from_millis(5000)));
        assert!(cli.csv && cli.progress);
        assert_eq!(cli.telemetry.as_deref(), Some("out.jsonl"));
        assert_eq!(cli.resume.as_deref(), Some("prior.jsonl"));
        assert_eq!(cli.trace.as_deref(), Some("traces"));
        assert_eq!(cli.metrics.as_deref(), Some("metrics.json"));
        assert_eq!(cli.faults.unwrap().panic_p, 0.5);
        assert_eq!(cli.experiments, vec!["table4.1", "table4.2b"]);
    }

    #[test]
    fn zero_threads_is_a_cli_error_not_a_panic() {
        let err = parse(&args("--threads 0 table4.1")).unwrap_err();
        assert!(err.contains("--threads must be positive"), "{err}");
    }

    #[test]
    fn zero_scale_and_retries_and_watchdog_are_rejected() {
        assert!(parse(&args("--scale 0 table4.1"))
            .unwrap_err()
            .contains("--scale"));
        assert!(parse(&args("--retries 0 table4.1"))
            .unwrap_err()
            .contains("--retries"));
        assert!(parse(&args("--watchdog-ms 0 table4.1"))
            .unwrap_err()
            .contains("--watchdog-ms"));
    }

    #[test]
    fn missing_values_and_unknown_flags_are_rejected() {
        assert!(parse(&args("--scale"))
            .unwrap_err()
            .contains("needs a value"));
        assert!(parse(&args("--bogus table4.1"))
            .unwrap_err()
            .contains("unknown option"));
        assert!(parse(&args("")).unwrap_err().contains("no experiment"));
        assert!(parse(&args("not-an-experiment"))
            .unwrap_err()
            .contains("unknown experiment"));
    }

    #[test]
    fn replica_exchange_strategy_flags_parse() {
        use anneal_core::{Strategy, DEFAULT_EXCHANGE_INTERVAL};
        let cli = parse(&args(
            "--strategy replica-exchange --replicas 8 --exchange-interval 32 table4.1",
        ))
        .unwrap();
        assert_eq!(
            cli.config.strategy,
            Some(Strategy::ReplicaExchange {
                exchange_interval: 32
            })
        );
        assert_eq!(cli.config.replicas, Some(8));

        // Interval defaults; flag order does not matter.
        let cli = parse(&args("--replicas 4 --strategy replica-exchange table4.1")).unwrap();
        assert_eq!(
            cli.config.strategy,
            Some(Strategy::ReplicaExchange {
                exchange_interval: DEFAULT_EXCHANGE_INTERVAL
            })
        );

        let cli = parse(&args("--strategy figure2 table4.1")).unwrap();
        assert_eq!(cli.config.strategy, Some(Strategy::Figure2));
        assert_eq!(cli.config.table_strategy(), Strategy::Figure2);

        let cli = parse(&args("table4.1")).unwrap();
        assert_eq!(cli.config.strategy, None);
        assert_eq!(cli.config.table_strategy(), Strategy::Figure1);
    }

    #[test]
    fn replica_exchange_flag_misuse_is_rejected() {
        assert!(parse(&args("--strategy tempering table4.1"))
            .unwrap_err()
            .contains("unknown --strategy"));
        assert!(
            parse(&args("--replicas 1 --strategy replica-exchange table4.1"))
                .unwrap_err()
                .contains("at least 2")
        );
        assert!(parse(&args(
            "--exchange-interval 0 --strategy replica-exchange table4.1"
        ))
        .unwrap_err()
        .contains("positive"));
        let err = parse(&args("--replicas 4 table4.1")).unwrap_err();
        assert!(err.contains("require --strategy replica-exchange"), "{err}");
        let err = parse(&args("--strategy figure1 --exchange-interval 8 table4.1")).unwrap_err();
        assert!(err.contains("require --strategy replica-exchange"), "{err}");
    }

    #[test]
    fn schedule_flag_parses_and_rejects_unknown_modes() {
        use anneal_core::AdaptiveMode;
        let cli = parse(&args("--schedule adaptive table4.1")).unwrap();
        assert_eq!(cli.config.schedule, Some(AdaptiveMode::Acceptance));
        let cli = parse(&args("--schedule asa adaptive")).unwrap();
        assert_eq!(cli.config.schedule, Some(AdaptiveMode::Asa));
        assert_eq!(cli.experiments, vec!["adaptive"]);
        let cli = parse(&args("table4.1")).unwrap();
        assert_eq!(cli.config.schedule, None);
        let err = parse(&args("--schedule lam table4.1")).unwrap_err();
        assert!(err.contains("unknown --schedule"), "{err}");
        assert!(err.contains("adaptive, asa"), "{err}");
        assert!(parse(&args("--schedule"))
            .unwrap_err()
            .contains("needs a value"));
    }

    #[test]
    fn isolation_flags_parse_with_defaults() {
        let cli = parse(&args("table4.1")).unwrap();
        assert_eq!(cli.isolation, Isolation::Thread);
        assert_eq!(cli.heartbeat, supervisor::DEFAULT_HEARTBEAT);
        assert_eq!(cli.breaker_threshold, supervisor::DEFAULT_BREAKER_THRESHOLD);
        assert!(cli.worker.is_none());

        let cli = parse(&args(
            "--isolation process --heartbeat-ms 100 --breaker-threshold 2 table4.1",
        ))
        .unwrap();
        assert_eq!(cli.isolation, Isolation::Process);
        assert_eq!(cli.heartbeat, Duration::from_millis(100));
        assert_eq!(cli.breaker_threshold, 2);

        let cli = parse(&args("--isolation thread table4.1")).unwrap();
        assert_eq!(cli.isolation, Isolation::Thread);
    }

    #[test]
    fn isolation_flag_misuse_is_rejected() {
        let err = parse(&args("--isolation container table4.1")).unwrap_err();
        assert!(err.contains("unknown --isolation"), "{err}");
        assert!(err.contains("thread, process"), "{err}");
        let err = parse(&args("--isolation process --heartbeat-ms 0 table4.1")).unwrap_err();
        assert!(err.contains("--heartbeat-ms must be positive"), "{err}");
        let err = parse(&args("--isolation process --breaker-threshold 0 table4.1")).unwrap_err();
        assert!(
            err.contains("--breaker-threshold must be positive"),
            "{err}"
        );
        // The supervisor tuning flags are meaningless without a supervisor.
        let err = parse(&args("--heartbeat-ms 100 table4.1")).unwrap_err();
        assert!(err.contains("require --isolation process"), "{err}");
        let err = parse(&args("--breaker-threshold 2 table4.1")).unwrap_err();
        assert!(err.contains("require --isolation process"), "{err}");
    }

    #[test]
    fn worker_mode_parses_its_hidden_flags() {
        let sep = supervisor::CELL_FIELD_SEP;
        let argv: Vec<String> = [
            "--worker-cell".into(),
            format!("table4.1{sep}g = 1{sep}6 sec"),
            "--worker-shard".into(),
            "wal.jsonl.shard.0".into(),
            "--worker-seq".into(),
            "12".into(),
            "--worker-attempt".into(),
            "3".into(),
            "--heartbeat-ms".into(),
            "50".into(),
            "table4.1".into(),
        ]
        .to_vec();
        let cli = parse(&argv).unwrap();
        let worker = cli.worker.unwrap();
        assert_eq!(worker.cell, CellKey::new("table4.1", "g = 1", "6 sec"));
        assert_eq!(worker.shard, "wal.jsonl.shard.0");
        assert_eq!(worker.seq, 12);
        assert_eq!(worker.attempt, 3);
        assert_eq!(cli.heartbeat, Duration::from_millis(50));
    }

    #[test]
    fn worker_flag_misuse_is_rejected() {
        let err = parse(&args("--worker-shard s.0 table4.1")).unwrap_err();
        assert!(err.contains("require --worker-cell"), "{err}");
        let err = parse(&args("--worker-seq 3 table4.1")).unwrap_err();
        assert!(err.contains("require --worker-cell"), "{err}");
        let err = parse(&args("--worker-cell bad-cell table4.1")).unwrap_err();
        assert!(err.contains("bad --worker-cell value"), "{err}");
        let sep = supervisor::CELL_FIELD_SEP;
        let cell = format!("t{sep}m{sep}c");
        let argv: Vec<String> = ["--worker-cell".into(), cell.clone(), "table4.1".into()].to_vec();
        let err = parse(&argv).unwrap_err();
        assert!(err.contains("requires --worker-shard"), "{err}");
        let argv: Vec<String> = [
            "--worker-cell".into(),
            cell,
            "--worker-shard".into(),
            "s.0".into(),
            "--isolation".into(),
            "process".into(),
            "table4.1".into(),
        ]
        .to_vec();
        let err = parse(&argv).unwrap_err();
        assert!(err.contains("cannot use"), "{err}");
    }

    #[test]
    fn serve_flag_parses_and_validates() {
        let cli = parse(&args("--serve 127.0.0.1:9090 table4.1")).unwrap();
        assert_eq!(cli.serve.as_deref(), Some("127.0.0.1:9090"));
        let cli = parse(&args("--serve 127.0.0.1:0 table4.1")).unwrap();
        assert_eq!(cli.serve.as_deref(), Some("127.0.0.1:0"));
        let cli = parse(&args("table4.1")).unwrap();
        assert_eq!(cli.serve, None);
        let err = parse(&args("--serve 9090 table4.1")).unwrap_err();
        assert!(err.contains("expected HOST:PORT"), "{err}");
        assert!(parse(&args("--serve"))
            .unwrap_err()
            .contains("needs a value"));
    }

    #[test]
    fn serve_is_rejected_in_worker_mode() {
        let sep = supervisor::CELL_FIELD_SEP;
        let argv: Vec<String> = [
            "--worker-cell".into(),
            format!("t{sep}m{sep}c"),
            "--worker-shard".into(),
            "s.0".into(),
            "--serve".into(),
            "127.0.0.1:0".into(),
            "table4.1".into(),
        ]
        .to_vec();
        let err = parse(&argv).unwrap_err();
        assert!(err.contains("cannot use --serve"), "{err}");
    }

    #[test]
    fn bad_fault_specs_surface_their_error() {
        let err = parse(&args("--faults panic=2 table4.1")).unwrap_err();
        assert!(err.contains("[0, 1]"), "{err}");
    }

    #[test]
    fn all_expands_in_canonical_order() {
        let cli = parse(&args("--scale 2 all")).unwrap();
        assert_eq!(cli.experiments, EXPERIMENTS.to_vec());
        assert_eq!(cli.command, None);
    }

    #[test]
    fn serve_subcommand_parses_with_defaults() {
        let cli = parse(&args("serve 127.0.0.1:0")).unwrap();
        let Some(Command::Serve(opts)) = cli.command else {
            panic!("expected serve command, got {:?}", cli.command);
        };
        assert_eq!(opts.addr, "127.0.0.1:0");
        assert_eq!(opts.queue, crate::jobs::DEFAULT_QUEUE_CAPACITY);
        assert_eq!(opts.job_threads, crate::jobs::DEFAULT_JOB_THREADS);
        assert_eq!(opts.journal, None);
        assert!(cli.experiments.is_empty());

        let cli = parse(&args(
            "serve 0.0.0.0:8080 --queue 3 --job-threads 4 --journal jobs.wal",
        ))
        .unwrap();
        let Some(Command::Serve(opts)) = cli.command else {
            panic!("expected serve command");
        };
        assert_eq!(opts.addr, "0.0.0.0:8080");
        assert_eq!(opts.queue, 3);
        assert_eq!(opts.job_threads, 4);
        assert_eq!(opts.journal.as_deref(), Some("jobs.wal"));
    }

    #[test]
    fn serve_subcommand_misuse_is_rejected() {
        assert!(parse(&args("serve")).unwrap_err().contains("needs an ADDR"));
        assert!(parse(&args("serve 9090"))
            .unwrap_err()
            .contains("expected HOST:PORT"));
        assert!(parse(&args("serve 127.0.0.1:0 10.0.0.1:0"))
            .unwrap_err()
            .contains("one ADDR"));
        assert!(parse(&args("serve 127.0.0.1:0 --queue 0"))
            .unwrap_err()
            .contains("--queue must be positive"));
        assert!(parse(&args("serve 127.0.0.1:0 --job-threads 0"))
            .unwrap_err()
            .contains("--job-threads must be positive"));
        assert!(parse(&args("serve 127.0.0.1:0 --journal"))
            .unwrap_err()
            .contains("needs a value"));
        assert!(parse(&args("serve 127.0.0.1:0 --csv"))
            .unwrap_err()
            .contains("unknown serve option"));
    }

    #[test]
    fn job_subcommand_parses_one_spec_path() {
        let cli = parse(&args("job spec.json")).unwrap();
        assert_eq!(cli.command, Some(Command::Job("spec.json".into())));
        assert!(parse(&args("job")).unwrap_err().contains("needs a SPEC"));
        assert!(parse(&args("job a.json b.json"))
            .unwrap_err()
            .contains("exactly one"));
        assert!(parse(&args("job --csv"))
            .unwrap_err()
            .contains("exactly one"));
    }
}
