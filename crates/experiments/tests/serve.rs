//! End-to-end tests for the live ops plane, driving the real `repro`
//! binary with `--serve 127.0.0.1:0` and scraping the HTTP endpoints
//! mid-run via the shared `common::http` helpers: `/metrics` serves
//! Prometheus text exposition, `/healthz` answers 200 on a healthy run
//! and flips to 503 once a fault degrades the suite, and `/progress`
//! reports cell counts and — under process isolation — per-worker
//! heartbeat ages.

mod common;

use std::process::Child;

use common::http::{finish, http_get, poll_until, spawn_serving_args};

/// The canonical tiny workload (42 roster cells); delay faults stretch it
/// out so the suite is reliably still running while we scrape.
const WORKLOAD: [&str; 5] = ["--scale", "2000", "--seed", "7", "table4.2b"];

/// Spawns `repro <workload> --serve 127.0.0.1:0 <extra>` and returns the
/// child plus the address the ops server actually bound.
fn spawn_serving(extra: &[&str]) -> (Child, String) {
    let mut args: Vec<&str> = WORKLOAD.to_vec();
    args.extend_from_slice(&["--serve", "127.0.0.1:0"]);
    args.extend_from_slice(extra);
    spawn_serving_args(&args)
}

#[test]
fn serve_exposes_metrics_health_and_progress_mid_run() {
    // delay=1: every instance sleeps 50 ms, so the suite takes well over
    // a minute — it is still running for every scrape below.
    let (child, addr) = spawn_serving(&["--faults", "seed=7,delay=1,delay_ms=50"]);

    // /metrics becomes a non-trivial Prometheus exposition once the first
    // cell completes.
    let (status, metrics) = poll_until(&addr, "/metrics", |s, b| {
        s == 200 && b.contains("suite_cells_done")
    });
    assert_eq!(status, 200);
    assert!(
        metrics.contains("text/plain; version=0.0.4"),
        "wrong content type:\n{metrics}"
    );
    assert!(
        metrics.contains("# TYPE suite_cells_done gauge"),
        "{metrics}"
    );
    assert!(
        metrics.contains("# TYPE cells_completed counter"),
        "{metrics}"
    );
    assert!(
        metrics.contains("cells_completed{method="),
        "labeled counter families missing:\n{metrics}"
    );

    // A healthy run answers 200 ok.
    let (status, health) = http_get(&addr, "/healthz");
    assert_eq!(status, 200, "{health}");
    assert!(health.ends_with("ok\n"), "{health}");

    // /progress reports the roster size and live counts as JSON.
    let (status, progress) = http_get(&addr, "/progress");
    assert_eq!(status, 200, "{progress}");
    assert!(progress.contains("\"expected\":42"), "{progress}");
    assert!(progress.contains("\"done\":"), "{progress}");
    assert!(progress.contains("\"degraded\":false"), "{progress}");

    // Unknown paths 404 without taking the server down.
    let (status, _) = http_get(&addr, "/nope");
    assert_eq!(status, 404);
    let (status, _) = http_get(&addr, "/metrics");
    assert_eq!(status, 200);

    // The job API is not enabled under plain `--serve` (that is `repro
    // serve`'s business), and says so.
    let (status, body) = http_get(&addr, "/jobs");
    assert_eq!(status, 404, "{body}");
    assert!(body.contains("job API not enabled"), "{body}");

    finish(child);
}

#[test]
fn healthz_flips_to_503_when_faults_degrade_the_suite() {
    // Every instance is delayed then panics: cells fail one after another
    // and the first failure must flip /healthz to 503 degraded.
    let (child, addr) = spawn_serving(&["--faults", "seed=7,panic=1,delay=1,delay_ms=50"]);
    let (status, body) = poll_until(&addr, "/healthz", |s, _| s == 503);
    assert_eq!(status, 503);
    assert!(body.contains("degraded"), "{body}");
    assert!(body.contains("cell(s) failed"), "{body}");
    finish(child);
}

#[test]
fn progress_reports_worker_heartbeats_under_process_isolation() {
    let (child, addr) = spawn_serving(&[
        "--isolation",
        "process",
        "--faults",
        "seed=7,delay=1,delay_ms=50",
    ]);
    // The supervisor publishes per-slot liveness once the first worker is
    // up and heartbeating.
    let (_, progress) = poll_until(&addr, "/progress", |s, b| {
        s == 200 && b.contains("\"state\":\"live\"")
    });
    assert!(progress.contains("\"slot\":0"), "{progress}");
    assert!(progress.contains("\"heartbeat_age_ms\":"), "{progress}");

    // The same liveness shows up as labeled gauges on /metrics.
    let (_, metrics) = poll_until(&addr, "/metrics", |s, b| {
        s == 200 && b.contains("worker_heartbeat_age_ms")
    });
    assert!(
        metrics.contains("worker_heartbeat_age_ms{slot=\"0\"}"),
        "{metrics}"
    );
    assert!(metrics.contains("workers_live"), "{metrics}");
    finish(child);
}
