//! End-to-end replica-exchange determinism: the tempered tables are
//! f64-bit identical across sequential vs work-stealing execution (threads
//! 1/2/8) and across a mid-WAL kill + `--resume` replay, mirroring the
//! crash-safety protocol of `tests/resume.rs`.

use std::io::Write;
use std::sync::{Arc, Mutex};

use anneal_core::Strategy;
use anneal_experiments::{checkpoint, tables::table4_1, SuiteConfig, Table, TelemetryLog, WalMeta};

/// A WAL sink the test can inspect after the "process" dies.
#[derive(Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl SharedBuf {
    fn contents(&self) -> String {
        String::from_utf8(self.0.lock().unwrap().clone()).unwrap()
    }
}

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// Small budgets, tempering over a 4-rung ladder rebuilt for every method
/// (`--replicas 4`). Table 4.1's columns are 6/9/12 paper-seconds, i.e.
/// 15–30 evals per instance at scale 100, so the 4-proposal exchange
/// interval makes a full swap round (4 rungs x 4 proposals = 16 evals) fit
/// inside the 9- and 12-second budgets.
fn config() -> SuiteConfig {
    SuiteConfig::scaled(100)
        .with_seed(7)
        .with_strategy(Strategy::ReplicaExchange {
            exchange_interval: 4,
        })
        .with_replicas(4)
}

fn assert_bitwise_identical(a: &Table, b: &Table, what: &str) {
    assert_eq!(a.rows.len(), b.rows.len(), "{what}: row count");
    for ((label_a, row_a), (label_b, row_b)) in a.rows.iter().zip(&b.rows) {
        assert_eq!(label_a, label_b, "{what}: row labels");
        for (x, y) in row_a.iter().zip(row_b) {
            assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "{what}: {label_a}: {x} != {y} bitwise"
            );
        }
    }
    assert_eq!(format!("{a}"), format!("{b}"), "{what}: rendered table");
}

#[test]
fn tempered_table_is_bitwise_identical_across_thread_counts() {
    let config = config();
    let sequential = table4_1::run_logged(&config, &TelemetryLog::in_memory());
    for threads in [2, 8] {
        let parallel =
            table4_1::run_logged(&config.with_threads(threads), &TelemetryLog::in_memory());
        assert_bitwise_identical(
            &sequential,
            &parallel,
            &format!("replica exchange, {threads} threads"),
        );
    }
}

#[test]
fn killed_tempered_run_resumes_bitwise_identical() {
    let config = config();
    let clean = table4_1::run_logged(&config, &TelemetryLog::in_memory());

    // First "process": streams the WAL over the work-stealing runner, then
    // dies mid-write (header + 20 records + half a record).
    let buf = SharedBuf::default();
    let wal = TelemetryLog::with_writer(Box::new(buf.clone()));
    {
        let mut w = buf.0.lock().unwrap();
        writeln!(
            w,
            "{}",
            WalMeta::new(config.seed, config.scale.divisor).header_line()
        )
        .unwrap();
    }
    table4_1::run_logged(&config.with_threads(2), &wal);

    let full = buf.contents();
    let lines: Vec<&str> = full.lines().collect();
    assert_eq!(lines.len(), 64, "header + 63 cell records");

    // The 6-sec column is too small for even one swap round, so check the
    // swap counters over the complete WAL rather than the truncated prefix.
    let complete = checkpoint::load_str(&full).expect("complete WAL loads");
    let tempered_cells = complete
        .cells
        .iter()
        .filter(|c| c.per_temp.iter().any(|t| t.swap_attempts > 0))
        .count();
    assert!(tempered_cells > 0, "swap counters made it into the WAL");
    let mut killed = lines[..21].join("\n");
    killed.push('\n');
    killed.push_str(&lines[21][..lines[21].len() / 2]);

    let cp = checkpoint::load_str(&killed).expect("killed WAL still loads");
    assert!(cp.torn, "the half-written record reads as torn");
    assert_eq!(cp.cells.len(), 20);
    // The WAL pins the tempering parameters via the strategy string, so a
    // resume under different flags would re-run rather than replay.
    assert!(
        cp.cells
            .iter()
            .all(|c| c.strategy == "ReplicaExchange { exchange_interval: 4 }"),
        "strategy identity recorded: {}",
        cp.cells[0].strategy
    );

    // Second "process": resumes from the torn WAL, again work-stealing.
    let resumed_log = TelemetryLog::in_memory().with_resume(cp.cells);
    let resumed = table4_1::run_logged(&config.with_threads(2), &resumed_log);

    assert_bitwise_identical(&clean, &resumed, "replica exchange kill + resume");
    let summary = resumed_log.summary();
    assert_eq!(summary.replayed, 20, "the 20 intact cells were not re-run");
    assert_eq!(summary.cells, 63);
    assert!(!summary.degraded());
}
