//! End-to-end process-supervision tests, driving the real `repro` binary:
//! process isolation reproduces thread isolation bit-for-bit, an aborting
//! worker cannot take the suite down, SIGTERM drains to a clean resumable
//! WAL, and a true hang is deadline-killed with the circuit breaker
//! skipping the rest of its table. Every degraded or interrupted run must
//! `--resume` to output byte-identical to an uninterrupted one.

use std::path::PathBuf;
use std::process::{Command, Output};
use std::time::{Duration, Instant};

use anneal_experiments::{checkpoint, exit_codes};

fn repro() -> Command {
    Command::new(env!("CARGO_BIN_EXE_repro"))
}

/// A temp path namespaced per test, so parallel tests never collide.
fn temp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("anneal-sup-{}-{name}", std::process::id()))
}

fn stdout_of(out: &Output) -> &str {
    std::str::from_utf8(&out.stdout).expect("utf8 stdout")
}

/// The canonical tiny workload: table 4.2(b) at scale 2000 (26 cells,
/// well under a second), same as CI's chaos smoke.
const WORKLOAD: [&str; 5] = ["--scale", "2000", "--seed", "7", "table4.2b"];

fn clean_run() -> Output {
    let out = repro().args(WORKLOAD).output().expect("spawn repro");
    assert!(out.status.success(), "clean run failed: {out:?}");
    out
}

#[test]
fn process_isolation_matches_thread_isolation_bitwise() {
    let wal = temp("bitwise.jsonl");
    let clean = clean_run();
    let out = repro()
        .args(WORKLOAD)
        .args(["--isolation", "process", "--telemetry"])
        .arg(&wal)
        .output()
        .expect("spawn repro");
    assert!(out.status.success(), "process-isolated run failed: {out:?}");
    assert_eq!(
        stdout_of(&clean),
        stdout_of(&out),
        "process isolation changed the tables"
    );

    // One worker slot (default --threads 1): merging its shard must
    // reproduce the parent's single-writer WAL byte-for-byte.
    let main_wal = std::fs::read_to_string(&wal).unwrap();
    let shard = std::fs::read_to_string(format!("{}.shard.0", wal.display())).unwrap();
    assert_eq!(
        checkpoint::merge_shards(&[&shard]).unwrap(),
        main_wal,
        "shard merge != single-writer WAL"
    );

    // And the WAL resumes to identical output without re-running anything.
    let resumed = repro()
        .args(WORKLOAD)
        .arg("--resume")
        .arg(&wal)
        .output()
        .expect("spawn repro");
    assert!(resumed.status.success());
    assert_eq!(stdout_of(&clean), stdout_of(&resumed));
}

#[test]
fn aborting_worker_does_not_take_the_suite_down() {
    let wal = temp("abort.jsonl");
    let clean = clean_run();
    // seed=11, abort=0.002: two workers die on SIGABRT (verified stable —
    // fault decisions are a pure function of seed × cell × instance ×
    // attempt). No retries, so they become hard failures; a high breaker
    // threshold keeps the breaker out of this test.
    let out = repro()
        .args(WORKLOAD)
        .args([
            "--isolation",
            "process",
            "--breaker-threshold",
            "10",
            "--faults",
            "seed=11,abort=0.002",
            "--telemetry",
        ])
        .arg(&wal)
        .output()
        .expect("spawn repro");
    assert_eq!(
        out.status.code(),
        Some(i32::from(exit_codes::DEGRADED)),
        "suite must complete degraded, not die: {out:?}"
    );
    // The suite still printed its table: the aborts were contained.
    assert!(stdout_of(&out).contains("Table 4.2(b)"), "no table printed");

    let manifest_path = format!("{}.manifest.json", wal.display());
    let manifest = std::fs::read_to_string(&manifest_path).expect("failure manifest");
    assert!(
        manifest.contains("worker died on signal 6"),
        "manifest does not name the SIGABRT: {manifest}"
    );

    // The failed cells re-run on resume; everything else replays. The
    // final output is byte-identical to a never-faulted run.
    let resumed = repro()
        .args(WORKLOAD)
        .arg("--resume")
        .arg(&wal)
        .output()
        .expect("spawn repro");
    assert!(resumed.status.success(), "resume failed: {resumed:?}");
    assert_eq!(stdout_of(&clean), stdout_of(&resumed));
}

#[test]
fn sigterm_drains_to_a_clean_resumable_wal() {
    let wal = temp("sigterm.jsonl");
    // Scale 200 is slow enough (seconds) to reliably signal mid-suite.
    let workload = ["--scale", "200", "--seed", "7", "table4.2b"];
    let clean = repro().args(workload).output().expect("spawn repro");
    assert!(clean.status.success());

    let mut child = repro()
        .args(workload)
        .args(["--isolation", "process", "--telemetry"])
        .arg(&wal)
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("spawn repro");
    // Wait until at least one record is durably in the WAL, then SIGTERM.
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let records = std::fs::read_to_string(&wal)
            .map(|t| t.lines().filter(|l| l.contains("\"table\"")).count())
            .unwrap_or(0);
        if records >= 1 {
            break;
        }
        assert!(Instant::now() < deadline, "no WAL records after 30 s");
        assert!(
            child.try_wait().expect("try_wait").is_none(),
            "suite finished before it could be interrupted; slow the workload down"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    let term = Command::new("kill")
        .args(["-TERM", &child.id().to_string()])
        .status()
        .expect("send SIGTERM");
    assert!(term.success());
    let out = child.wait_with_output().expect("wait repro");
    assert_eq!(
        out.status.code(),
        Some(i32::from(exit_codes::for_signal(exit_codes::SIGTERM))),
        "drained run must exit 143: {out:?}"
    );
    // Drained: no partial tables on stdout.
    assert!(out.stdout.is_empty(), "a partial table leaked to stdout");

    // The WAL is clean (no torn records), holds only completed cells,
    // and records the drain.
    let cp = checkpoint::load(wal.to_str().unwrap()).expect("drained WAL loads");
    assert!(!cp.torn, "drained WAL ends in a torn record");
    assert!(!cp.cells.is_empty() && cp.cells.iter().all(|c| c.ok()));
    assert!(
        cp.events.iter().any(|e| e.kind == "drain"),
        "no drain event in {:?}",
        cp.events
    );

    let resumed = repro()
        .args(workload)
        .arg("--resume")
        .arg(&wal)
        .output()
        .expect("spawn repro");
    assert!(resumed.status.success(), "resume failed: {resumed:?}");
    assert_eq!(
        stdout_of(&clean),
        stdout_of(&resumed),
        "drain + resume diverged from an uninterrupted run"
    );
}

#[test]
fn hung_worker_is_deadline_killed_and_the_breaker_skips_its_table() {
    let wal = temp("hang.jsonl");
    let clean = clean_run();
    // Every instance wedges for 5 s — far past the worker deadline
    // (20 ms × 30 instances + 1 s headroom). The in-process watchdog
    // cannot catch a sleep; only the supervisor's wall-clock SIGKILL can.
    // Breaker threshold 1: the first hard failure opens the breaker and
    // the other 25 cells are skipped instead of hanging in turn.
    let started = Instant::now();
    let out = repro()
        .args(WORKLOAD)
        .args([
            "--isolation",
            "process",
            "--watchdog-ms",
            "20",
            "--breaker-threshold",
            "1",
            "--faults",
            "seed=3,hang=1,hang_ms=5000",
            "--telemetry",
        ])
        .arg(&wal)
        .output()
        .expect("spawn repro");
    assert_eq!(out.status.code(), Some(i32::from(exit_codes::DEGRADED)));
    assert!(
        started.elapsed() < Duration::from_secs(60),
        "the breaker did not bound the damage"
    );

    let wal_text = std::fs::read_to_string(&wal).unwrap();
    assert!(
        wal_text.contains("deadline"),
        "no deadline kill recorded: {wal_text}"
    );
    assert!(
        wal_text.contains("circuit breaker open"),
        "breaker did not skip the rest of the table"
    );
    let cp = checkpoint::load(wal.to_str().unwrap()).unwrap();
    assert!(cp.events.iter().any(|e| e.kind == "breaker"));

    // A resume without the fault heals the whole table.
    let resumed = repro()
        .args(WORKLOAD)
        .arg("--resume")
        .arg(&wal)
        .output()
        .expect("spawn repro");
    assert!(resumed.status.success(), "resume failed: {resumed:?}");
    assert_eq!(stdout_of(&clean), stdout_of(&resumed));
}
