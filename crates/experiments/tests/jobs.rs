//! End-to-end tests for the annealing job server: `repro serve` driven
//! over real HTTP by multiple client threads, queue saturation and 429
//! backpressure, mid-run cancellation, crash-and-restart journal replay,
//! and the determinism contract — a served job's result record is
//! byte-identical to running the same spec offline via `repro job`.

mod common;

use std::path::PathBuf;
use std::process::{Child, Command};
use std::time::{Duration, Instant};

use common::http::{
    body_of, finish, http_delete, http_get, http_post, poll_until, repro, spawn_serving_args,
};

/// Spawns `repro serve 127.0.0.1:0 <extra>` and returns the child plus
/// the bound address.
fn spawn_server(extra: &[&str]) -> (Child, String) {
    let mut args = vec!["serve", "127.0.0.1:0"];
    args.extend_from_slice(extra);
    spawn_serving_args(&args)
}

/// A quick deterministic GOLA job (a few hundred evaluations total).
fn quick_spec(seed: u64) -> String {
    format!(
        "{{\"problem\":\"gola\",\"instances\":2,\"elements\":8,\"nets\":20,\
         \"seconds\":6,\"scale\":2000,\"seed\":{seed}}}"
    )
}

/// A job slow enough overall (~10M evaluations) to still be running while
/// the test pokes at it, split into many short instances so cooperative
/// cancellation and SIGTERM drain land at the next instance boundary
/// within seconds, not minutes.
fn slow_spec() -> &'static str {
    "{\"problem\":\"gola\",\"instances\":64,\"seconds\":600}"
}

fn temp_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("anneal-jobs-it-{tag}-{}", std::process::id()))
}

/// Polls `GET /jobs/:id` until the job reaches `state` (panicking on a
/// terminal mismatch), returning the final body.
fn wait_for_state(addr: &str, id: u64, state: &str) -> String {
    let want = format!("\"state\":\"{state}\"");
    let (_, response) = poll_until(addr, &format!("/jobs/{id}"), |s, b| {
        assert_eq!(s, 200, "{b}");
        if !b.contains(&want) {
            for terminal in ["done", "failed", "cancelled"] {
                assert!(
                    state == terminal || !b.contains(&format!("\"state\":\"{terminal}\"")),
                    "job {id} ended {terminal} while waiting for {state}:\n{b}"
                );
            }
        }
        b.contains(&want)
    });
    body_of(&response).to_string()
}

/// Extracts the `id` from a job resource body (`{"id":N,...}`).
fn job_id(body: &str) -> u64 {
    let rest = body
        .split_once("\"id\":")
        .unwrap_or_else(|| panic!("no id in {body}"))
        .1;
    rest.split(|c: char| !c.is_ascii_digit())
        .next()
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("bad id in {body}"))
}

/// Extracts the raw `record` object from a done job's resource body — the
/// record is pinned as the last field, so it is the tail of the JSON.
fn record_of(body: &str) -> &str {
    let idx = body
        .find("\"record\":")
        .unwrap_or_else(|| panic!("no record in {body}"));
    let record = &body[idx + "\"record\":".len()..body.len() - 1];
    assert!(
        record.starts_with("{\"schema\":\"anneal-job-record\""),
        "{record}"
    );
    record
}

#[test]
fn concurrent_clients_all_get_distinct_jobs_that_complete() {
    let (child, addr) = spawn_server(&["--queue", "16", "--job-threads", "2"]);

    // Six client threads race their submissions.
    let ids: Vec<u64> = std::thread::scope(|scope| {
        let addr = addr.as_str();
        let handles: Vec<_> = (0..6)
            .map(|i| {
                scope.spawn(move || {
                    let (status, response) = http_post(addr, "/jobs", &quick_spec(100 + i));
                    assert_eq!(status, 202, "{response}");
                    job_id(body_of(&response))
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    // Distinct ids, no lost submissions.
    let mut sorted = ids.clone();
    sorted.sort_unstable();
    sorted.dedup();
    assert_eq!(sorted.len(), 6, "duplicate ids: {ids:?}");

    for id in &ids {
        wait_for_state(&addr, *id, "done");
    }

    let (status, listing) = http_get(&addr, "/jobs");
    assert_eq!(status, 200);
    assert!(listing.contains("\"total\":6"), "{listing}");

    // Pagination slices the same id-ordered listing.
    let (_, page) = http_get(&addr, "/jobs?offset=4&limit=2");
    let page = body_of(&page);
    assert!(
        page.contains("\"id\":5") && page.contains("\"id\":6"),
        "{page}"
    );
    assert!(!page.contains("\"id\":4"), "{page}");

    // The job gauges and wall-time spans made it onto the exposition.
    let (_, metrics) = http_get(&addr, "/metrics");
    assert!(
        metrics.contains("jobs_state{state=\"done\"} 6"),
        "{metrics}"
    );
    assert!(
        metrics.contains("jobs_state{state=\"queued\"} 0"),
        "{metrics}"
    );
    assert!(
        metrics.contains("job_wall_us_sum{problem=\"gola\"}"),
        "{metrics}"
    );
    assert!(metrics.contains("jobs_submitted 6"), "{metrics}");

    finish(child);
}

#[test]
fn saturated_queue_answers_429_until_drained() {
    let (child, addr) = spawn_server(&["--queue", "1", "--job-threads", "1"]);

    // Occupy the single worker with a slow job...
    let (status, response) = http_post(&addr, "/jobs", slow_spec());
    assert_eq!(status, 202, "{response}");

    // ...then flood: the one queue slot fills and everything after it must
    // bounce with 429 and the advertised capacity. (Whether the worker has
    // already popped the slow job decides if one quick job squeezes in
    // first, so count the 202s instead of assuming.)
    let mut accepted = 1;
    let mut saw_429 = false;
    for _ in 0..4 {
        let (status, response) = http_post(&addr, "/jobs", &quick_spec(1));
        if status == 429 {
            let body = body_of(&response);
            assert!(body.contains("queue full"), "{body}");
            assert!(body.contains("\"capacity\":1"), "{body}");
            saw_429 = true;
            break;
        }
        assert_eq!(status, 202, "{response}");
        accepted += 1;
    }
    assert!(saw_429, "queue never saturated");

    // Rejected submissions leave no ghost jobs behind: every listed job is
    // one that got a 202.
    let (_, listing) = http_get(&addr, "/jobs");
    assert!(
        listing.contains(&format!("\"total\":{accepted}")),
        "{listing}"
    );

    finish(child);
}

#[test]
fn a_running_job_cancels_at_the_next_instance_boundary() {
    let (child, addr) = spawn_server(&["--queue", "4", "--job-threads", "1"]);

    // Eight slow instances: cancellation lands at an instance boundary.
    let (status, response) = http_post(&addr, "/jobs", slow_spec());
    assert_eq!(status, 202, "{response}");
    let id = job_id(body_of(&response));
    wait_for_state(&addr, id, "running");

    let (status, response) = http_delete(&addr, &format!("/jobs/{id}"));
    assert_eq!(status, 202, "{response}");
    assert!(
        body_of(&response).contains("\"cancel_requested\":true"),
        "{response}"
    );

    let body = wait_for_state(&addr, id, "cancelled");
    assert!(
        !body.contains("\"record\""),
        "cancelled jobs have no record: {body}"
    );

    // Cancel is terminal: a second DELETE conflicts.
    let (status, response) = http_delete(&addr, &format!("/jobs/{id}"));
    assert_eq!(status, 409, "{response}");
    assert!(
        body_of(&response).contains("cancel is terminal"),
        "{response}"
    );

    // A queued job cancels immediately (the worker is still busy... with
    // nothing now, so race-proof this by submitting two: the first may
    // start, the second sits queued behind it).
    let (_, first) = http_post(&addr, "/jobs", slow_spec());
    let first_id = job_id(body_of(&first));
    let (_, second) = http_post(&addr, "/jobs", &quick_spec(2));
    let second_id = job_id(body_of(&second));
    let (status, response) = http_delete(&addr, &format!("/jobs/{second_id}"));
    assert!(status == 200 || status == 202, "{response}");
    wait_for_state(&addr, second_id, "cancelled");
    let (status, _) = http_delete(&addr, &format!("/jobs/{first_id}"));
    assert!(status == 200 || status == 202);

    finish(child);
}

#[test]
fn killing_the_server_mid_queue_loses_no_accepted_job() {
    let journal = temp_path("restart");
    let journal_str = journal.to_str().unwrap();
    let _ = std::fs::remove_file(&journal);

    // One worker: the first job holds it for a few seconds, so the quick
    // ones behind it are still queued when the server dies hard.
    let (child, addr) = spawn_server(&[
        "--queue",
        "8",
        "--job-threads",
        "1",
        "--journal",
        journal_str,
    ]);
    let mut ids = Vec::new();
    let (status, response) = http_post(
        &addr,
        "/jobs",
        "{\"problem\":\"gola\",\"instances\":4,\"seconds\":3600}",
    );
    assert_eq!(status, 202, "{response}");
    ids.push(job_id(body_of(&response)));
    for seed in [12u64, 13, 14] {
        let (status, response) = http_post(&addr, "/jobs", &quick_spec(seed));
        assert_eq!(status, 202, "{response}");
        ids.push(job_id(body_of(&response)));
    }
    // SIGKILL: no drain, no goodbye — the journal is all that survives.
    finish(child);

    let (child, addr) = spawn_server(&[
        "--queue",
        "8",
        "--job-threads",
        "2",
        "--journal",
        journal_str,
    ]);
    let (status, listing) = http_get(&addr, "/jobs");
    assert_eq!(status, 200);
    assert!(
        listing.contains("\"total\":4"),
        "accepted jobs lost across restart:\n{listing}"
    );
    // Every accepted job reaches done after the restart.
    for id in &ids {
        wait_for_state(&addr, *id, "done");
    }
    finish(child);
    let _ = std::fs::remove_file(&journal);
}

#[test]
fn served_record_is_byte_identical_to_offline_repro_job() {
    // Two problem families through the full stack: HTTP submission on one
    // side, `repro job SPEC.json` on the other. Identical bytes prove the
    // seed streams, budget mapping and f64 formatting all agree.
    let specs = [
        "{\"problem\":\"gola\",\"instances\":2,\"elements\":8,\"nets\":20,\
         \"seconds\":6,\"scale\":5,\"seed\":7}"
            .to_string(),
        "{\"problem\":\"tsp\",\"cities\":10,\"instances\":2,\"seconds\":6,\
         \"scale\":5,\"seed\":42}"
            .to_string(),
    ];
    let (child, addr) = spawn_server(&["--queue", "4", "--job-threads", "1"]);
    for (i, spec) in specs.iter().enumerate() {
        let (status, response) = http_post(&addr, "/jobs", spec);
        assert_eq!(status, 202, "{response}");
        let id = job_id(body_of(&response));
        let body = wait_for_state(&addr, id, "done");
        let served = record_of(&body).to_string();

        let spec_path = temp_path(&format!("det-{i}"));
        std::fs::write(&spec_path, spec).unwrap();
        let out = repro()
            .args(["job", spec_path.to_str().unwrap()])
            .output()
            .expect("run repro job");
        let _ = std::fs::remove_file(&spec_path);
        assert!(
            out.status.success(),
            "repro job failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let offline = String::from_utf8(out.stdout).unwrap();
        assert_eq!(
            served,
            offline.trim_end_matches('\n'),
            "served record and offline `repro job` record differ for spec {spec}"
        );
    }
    finish(child);
}

#[test]
fn invalid_specs_get_precise_400_bodies_over_http() {
    let (child, addr) = spawn_server(&[]);
    for (spec, needle) in [
        ("{", "invalid JSON"),
        (
            "{\"problem\":\"sudoku\"}",
            "one of gola, nola, tsp, partition",
        ),
        (
            "{\"problem\":\"gola\",\"frobnicate\":1}",
            "unknown field `frobnicate`",
        ),
        (
            "{\"problem\":\"gola\",\"seconds\":-1}",
            "field `seconds` must be in",
        ),
        (
            "{\"problem\":\"gola\",\"elements\":4,\"netlist\":[[0,7]]}",
            "invalid netlist",
        ),
    ] {
        let (status, response) = http_post(&addr, "/jobs", spec);
        assert_eq!(status, 400, "{spec}: {response}");
        let body = body_of(&response);
        assert!(body.contains(needle), "{spec}: {body}");
    }
    // Unknown ids and bad pagination are client errors, not crashes.
    let (status, _) = http_get(&addr, "/jobs/999");
    assert_eq!(status, 404);
    let (status, _) = http_get(&addr, "/jobs?limit=99999");
    assert_eq!(status, 400);
    finish(child);
}

/// The `/jobs` wire schemas are pinned byte-for-byte: job records are
/// deterministic (fixed seeds, no wall-clock fields), so the full
/// response bodies — a done job resource with its embedded record, and
/// the paginated listing — are stable across runs and platforms. Any
/// schema change must regenerate with `UPDATE_GOLDEN=1` and be called out
/// in EXPERIMENTS.md.
#[test]
fn jobs_response_schema_matches_the_golden_file() {
    let golden_path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/jobs.txt");
    let (child, addr) = spawn_server(&["--queue", "4", "--job-threads", "1"]);
    let (status, response) = http_post(&addr, "/jobs", &quick_spec(7));
    assert_eq!(status, 202, "{response}");
    let id = job_id(body_of(&response));
    let job_body = wait_for_state(&addr, id, "done");
    let (_, listing) = http_get(&addr, "/jobs?offset=0&limit=10");
    let listing_body = body_of(&listing).to_string();
    finish(child);

    let text = format!("{job_body}\n{listing_body}\n");
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&golden_path, &text).unwrap();
        return;
    }
    let golden = std::fs::read_to_string(&golden_path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); run with UPDATE_GOLDEN=1",
            golden_path.display()
        )
    });
    assert_eq!(
        text, golden,
        "/jobs responses drifted from the golden schema; if intentional, \
         regenerate with UPDATE_GOLDEN=1 and document the format change"
    );
}

#[test]
fn repro_job_exits_5_on_a_failed_or_cancelled_job() {
    // A netlist passing parse but degenerate at run time is hard to build
    // by design (parsing validates); instead check the usage surface.
    let out = repro().args(["job"]).output().expect("run repro");
    assert_eq!(out.status.code(), Some(1));
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("needs a SPEC"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let missing = temp_path("missing").to_str().unwrap().to_string();
    let out = repro().args(["job", &missing]).output().expect("run repro");
    assert_eq!(out.status.code(), Some(1));
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("cannot read job spec"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn sigterm_drains_the_server_and_preserves_queued_jobs() {
    let journal = temp_path("drain");
    let journal_str = journal.to_str().unwrap();
    let _ = std::fs::remove_file(&journal);
    let (mut child, addr) = spawn_server(&[
        "--queue",
        "8",
        "--job-threads",
        "1",
        "--journal",
        journal_str,
    ]);

    // A slow job holds the worker; quick ones queue up behind it.
    let (status, _) = http_post(&addr, "/jobs", slow_spec());
    assert_eq!(status, 202);
    for seed in [21u64, 22] {
        let (status, _) = http_post(&addr, "/jobs", &quick_spec(seed));
        assert_eq!(status, 202);
    }

    // SIGTERM: graceful drain, exit 143 (128 + 15).
    let term = Command::new("kill")
        .args(["-TERM", &child.id().to_string()])
        .status()
        .expect("send SIGTERM");
    assert!(term.success());
    let deadline = Instant::now() + Duration::from_secs(120);
    let status = loop {
        match child.try_wait().expect("wait repro") {
            Some(status) => break status,
            None => {
                assert!(
                    Instant::now() < deadline,
                    "server never exited after SIGTERM"
                );
                std::thread::sleep(Duration::from_millis(50));
            }
        }
    };
    assert_eq!(status.code(), Some(143), "expected 128+SIGTERM");

    // Restart: the drained-but-unfinished jobs are still accepted work.
    let (child, addr) = spawn_server(&[
        "--queue",
        "8",
        "--job-threads",
        "2",
        "--journal",
        journal_str,
    ]);
    let (_, listing) = http_get(&addr, "/jobs");
    assert!(listing.contains("\"total\":3"), "{listing}");
    wait_for_state(&addr, 2, "done");
    wait_for_state(&addr, 3, "done");
    finish(child);
    let _ = std::fs::remove_file(&journal);
}
