//! End-to-end observability tests: the trace JSONL schema pinned by a
//! golden file, traced-vs-untraced bitwise identity on a real table, chaos
//! compatibility, and a no-op-observer overhead guard.

use std::path::PathBuf;
use std::time::Duration;

use anneal_core::{
    AdvanceReason, Annealer, Budget, ChainTrace, GFunction, NoopObserver, StageTrace, StopReason,
    StopTrace, Strategy, TempStats, TraceCollector,
};
use anneal_experiments::{
    tables::table4_2b, trace, CellKey, FaultPlan, SuiteConfig, Table, TelemetryLog, TraceSink,
};
use anneal_linarr::LinearArrangementProblem;
use anneal_netlist::generator::random_two_pin;
use criterion::{measure, Bencher, MeasureConfig};
use rand::{rngs::StdRng, SeedableRng};

/// A fully pinned chain trace: every field fixed, both stage-end reasons
/// exercised, a millisecond-exact wall time.
fn pinned_trace() -> ChainTrace {
    ChainTrace {
        initial_cost: 100.0,
        temperatures: 2,
        stages: vec![
            StageTrace {
                stats: TempStats {
                    temp: 0,
                    temperature: 2.0,
                    target_acceptance: 0.8,
                    evals: 10,
                    proposals: 10,
                    accepted_downhill: 3,
                    accepted_uphill: 2,
                    rejected_uphill: 5,
                    swap_attempts: 2,
                    swap_accepts: 1,
                    ended_by: AdvanceReason::Budget,
                },
                wall: Duration::from_millis(4),
            },
            StageTrace {
                stats: TempStats {
                    temp: 1,
                    // NaN pins the null-serialization path for stages with
                    // no controller target.
                    temperature: 0.5,
                    target_acceptance: f64::NAN,
                    evals: 6,
                    proposals: 6,
                    accepted_downhill: 1,
                    accepted_uphill: 0,
                    rejected_uphill: 5,
                    swap_attempts: 0,
                    swap_accepts: 0,
                    ended_by: AdvanceReason::Equilibrium,
                },
                wall: Duration::from_millis(2),
            },
        ],
        samples: vec![(1, 100.0), (8, 80.0)],
        bests: vec![(1, 100.0), (8, 80.0)],
        stop: Some(StopTrace {
            reason: StopReason::Equilibrium,
            evals: 16,
            final_cost: 80.0,
            best_cost: 80.0,
        }),
        energy_events: 16,
    }
}

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
        .join("trace.jsonl")
}

fn temp_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("anneal-trace-it-{tag}-{}", std::process::id()))
}

/// Writes the pinned trace through the real sink and returns the file text.
fn write_pinned(tag: &str) -> String {
    let dir = temp_dir(tag);
    let sink = TraceSink::new(&dir, None).unwrap();
    let key = CellKey::new("table4.1", "g = 1", "6 sec");
    let writer = sink
        .cell_writer(&key, "Figure1", "1500 evals", 1985)
        .unwrap();
    writer.write_instance(0, 42, 1, &pinned_trace()).unwrap();
    let text = std::fs::read_to_string(sink.cell_path(&key)).unwrap();
    std::fs::remove_dir_all(&dir).ok();
    text
}

/// The serialized trace format is pinned byte-for-byte: any schema change —
/// field rename, reordering, version bump — must update the golden file
/// (run with `UPDATE_GOLDEN=1` to regenerate) and be called out as a
/// format change in EXPERIMENTS.md.
#[test]
fn trace_schema_matches_the_golden_file() {
    let text = write_pinned("golden");
    let path = golden_path();
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&path, &text).unwrap();
        return;
    }
    let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); run with UPDATE_GOLDEN=1",
            path.display()
        )
    });
    assert_eq!(
        text, golden,
        "trace JSONL drifted from the golden schema; if intentional, \
         regenerate with UPDATE_GOLDEN=1 and document the format change"
    );
}

#[test]
fn golden_file_round_trips_through_the_parser() {
    let parsed = trace::load(&golden_path()).unwrap();
    assert_eq!(parsed.meta.version, trace::TRACE_VERSION);
    assert_eq!(parsed.meta.key, CellKey::new("table4.1", "g = 1", "6 sec"));
    assert_eq!(parsed.meta.strategy, "Figure1");
    assert_eq!(parsed.meta.base_seed, 1985);
    assert!(!parsed.torn);
    // 1 run_start, 2 temps, 2 samples, 2 bests, 1 stop.
    assert_eq!(parsed.counts(), (1, 2, 2, 2, 1));
    let trace::TraceEvent::Temp {
        proposals,
        ended_by,
        ..
    } = &parsed.events[1]
    else {
        panic!("expected a temp event, got {:?}", parsed.events[1]);
    };
    assert_eq!(*proposals, 10);
    assert_eq!(*ended_by, AdvanceReason::Budget);
}

/// The Display/FromStr pair on the reason enums is what the trace format
/// stands on; pin the spellings and the round trip.
#[test]
fn reason_enums_round_trip_their_display_spelling() {
    for reason in [StopReason::Budget, StopReason::Equilibrium] {
        assert_eq!(reason.to_string().parse::<StopReason>(), Ok(reason));
    }
    for reason in [
        AdvanceReason::Budget,
        AdvanceReason::Equilibrium,
        AdvanceReason::Exchange,
    ] {
        assert_eq!(reason.to_string().parse::<AdvanceReason>(), Ok(reason));
    }
    assert_eq!(StopReason::Budget.to_string(), "budget");
    assert_eq!(AdvanceReason::Equilibrium.to_string(), "equilibrium");
    assert_eq!(AdvanceReason::Exchange.to_string(), "exchange");
    assert!("melted".parse::<StopReason>().is_err());
    assert!("".parse::<AdvanceReason>().is_err());
}

fn assert_bitwise_identical(a: &Table, b: &Table, what: &str) {
    assert_eq!(a.rows.len(), b.rows.len(), "{what}: row count");
    for ((label_a, row_a), (label_b, row_b)) in a.rows.iter().zip(&b.rows) {
        assert_eq!(label_a, label_b, "{what}: row labels");
        for (x, y) in row_a.iter().zip(row_b) {
            assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "{what}: {label_a}: {x} != {y} bitwise"
            );
        }
    }
}

#[test]
fn traced_table_is_bitwise_identical_and_every_cell_trace_parses() {
    // Tiny budgets: 13 g functions x 2 strategies = 26 cells.
    let config = SuiteConfig::scaled(2000).with_seed(7);
    let clean = table4_2b::run_logged(&config, &TelemetryLog::in_memory());

    let dir = temp_dir("table");
    let sink = TraceSink::new(&dir, None).unwrap();
    let log = TelemetryLog::in_memory().with_trace(Some(sink));
    let traced = table4_2b::run_logged(&config, &log);

    assert_bitwise_identical(&clean, &traced, "traced vs untraced");

    let traces = trace::load_dir(&dir).unwrap();
    assert_eq!(traces.len(), 26, "one trace file per table cell");
    for t in &traces {
        assert!(!t.torn, "{}: clean run, no torn trace", t.meta.key);
        let (run_starts, temps, _, _, stops) = t.counts();
        assert!(run_starts > 0, "{}: has run_start events", t.meta.key);
        assert_eq!(
            run_starts, stops,
            "{}: every chain start has a stop",
            t.meta.key
        );
        assert!(
            temps >= run_starts,
            "{}: every chain closed at least one temperature",
            t.meta.key
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn chaos_trace_writes_never_perturb_the_tables() {
    let config = SuiteConfig::scaled(2000).with_seed(7);
    let clean = table4_2b::run_logged(&config, &TelemetryLog::in_memory());

    // Every other trace write fails; headers are written before the chaos
    // wrap, so the files stay parseable and the tables stay exact.
    let plan = FaultPlan::parse("seed=5,io=0.5").unwrap();
    let dir = temp_dir("chaos");
    let sink = TraceSink::new(&dir, Some(plan)).unwrap();
    let log = TelemetryLog::in_memory().with_trace(Some(sink));
    let chaos = table4_2b::run_logged(&config, &log);

    assert_bitwise_identical(&clean, &chaos, "chaos-traced vs untraced");
    let traces = trace::load_dir(&dir).unwrap();
    assert!(
        !traces.is_empty(),
        "headers survive even when event writes fail"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// The observer hooks are monomorphized out when tracing is off: a chain
/// run with [`NoopObserver`] must cost about the same as a plain run. The
/// 3x bound is deliberately loose for CI noise — it catches a structural
/// mistake (per-event allocation or dispatch on the untraced path), not a
/// few percent of drift.
#[test]
fn noop_observer_adds_no_structural_overhead() {
    let mut rng = StdRng::seed_from_u64(1985);
    let problem = LinearArrangementProblem::new(random_two_pin(15, 150, &mut rng));
    let cfg = MeasureConfig::quick();
    let run_chain = |problem: &LinearArrangementProblem| {
        let mut g = GFunction::metropolis(1.5);
        Annealer::new(problem)
            .strategy(Strategy::Figure1)
            .budget(Budget::evaluations(1_500))
            .seed(1985)
            .run(&mut g)
            .best_cost
    };
    let run_noop = |problem: &LinearArrangementProblem| {
        let mut g = GFunction::metropolis(1.5);
        Annealer::new(problem)
            .strategy(Strategy::Figure1)
            .budget(Budget::evaluations(1_500))
            .seed(1985)
            .run_traced(&mut g, &mut NoopObserver)
            .best_cost
    };
    assert_eq!(
        run_chain(&problem).to_bits(),
        run_noop(&problem).to_bits(),
        "noop-observed chain is the untraced chain"
    );
    let plain = measure("plain", &cfg, |b: &mut Bencher| {
        b.iter(|| std::hint::black_box(run_chain(&problem)))
    });
    let noop = measure("noop", &cfg, |b: &mut Bencher| {
        b.iter(|| std::hint::black_box(run_noop(&problem)))
    });
    assert!(
        noop.median_ns <= plain.median_ns * 3.0,
        "noop observer cost blew up: {} ns vs {} ns per chain",
        noop.median_ns,
        plain.median_ns
    );
}

#[test]
fn collector_keeps_a_bounded_sample_of_a_long_chain() {
    let mut rng = StdRng::seed_from_u64(3);
    let problem = LinearArrangementProblem::new(random_two_pin(15, 150, &mut rng));
    let mut g = GFunction::metropolis(1.5);
    let mut collector = TraceCollector::new();
    let result = Annealer::new(&problem)
        .strategy(Strategy::Figure1)
        .budget(Budget::evaluations(100_000))
        .seed(3)
        .run_traced(&mut g, &mut collector);
    let chain = collector.into_trace();
    let stop = chain.stop.expect("chain stopped");
    assert_eq!(stop.best_cost.to_bits(), result.best_cost.to_bits());
    assert!(
        chain.samples.len() <= anneal_core::DEFAULT_TRACE_SAMPLES,
        "stride-doubling bounds the sample count ({} kept)",
        chain.samples.len()
    );
    assert!(chain.energy_events as usize >= chain.samples.len());
}
