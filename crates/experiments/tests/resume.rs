//! End-to-end crash-safety tests: a run killed mid-suite (torn WAL) and a
//! chaos run with injected panics both resume to tables bitwise-identical
//! to an uninterrupted run.

use std::io::Write;
use std::sync::{Arc, Mutex};
use std::time::Duration;

use anneal_experiments::{
    checkpoint,
    tables::{adaptive, table4_2b},
    FaultPlan, RetryPolicy, SuiteConfig, Table, TelemetryLog, WalMeta,
};

/// A WAL sink the test can inspect after the "process" dies.
#[derive(Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl SharedBuf {
    fn contents(&self) -> String {
        String::from_utf8(self.0.lock().unwrap().clone()).unwrap()
    }
}

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

fn config() -> SuiteConfig {
    // Tiny budgets: table 4.2(b) is 13 g functions x 2 strategies = 26
    // cells, a few dozen evaluations each.
    SuiteConfig::scaled(2000).with_seed(7)
}

fn assert_bitwise_identical(a: &Table, b: &Table, what: &str) {
    assert_eq!(a.rows.len(), b.rows.len(), "{what}: row count");
    for ((label_a, row_a), (label_b, row_b)) in a.rows.iter().zip(&b.rows) {
        assert_eq!(label_a, label_b, "{what}: row labels");
        for (x, y) in row_a.iter().zip(row_b) {
            assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "{what}: {label_a}: {x} != {y} bitwise"
            );
        }
    }
    assert_eq!(format!("{a}"), format!("{b}"), "{what}: rendered table");
}

#[test]
fn killed_run_resumes_bitwise_identical() {
    let config = config();
    let clean = table4_2b::run_logged(&config, &TelemetryLog::in_memory());

    // First "process": streams the WAL, then dies. Simulate the kill by
    // truncating the log to its header + 10 records + half a record — the
    // torn final line a crash mid-`write` leaves behind.
    let buf = SharedBuf::default();
    let wal = TelemetryLog::with_writer(Box::new(buf.clone()));
    {
        let mut w = buf.0.lock().unwrap();
        writeln!(
            w,
            "{}",
            WalMeta::new(config.seed, config.scale.divisor).header_line()
        )
        .unwrap();
    }
    table4_2b::run_logged(&config, &wal);

    let full = buf.contents();
    let lines: Vec<&str> = full.lines().collect();
    assert_eq!(lines.len(), 27, "header + 26 cell records");
    let mut killed = lines[..11].join("\n");
    killed.push('\n');
    killed.push_str(&lines[11][..lines[11].len() / 2]);

    let checkpoint = checkpoint::load_str(&killed).expect("killed WAL still loads");
    assert!(checkpoint.torn, "the half-written record reads as torn");
    assert_eq!(checkpoint.cells.len(), 10);
    assert_eq!(
        checkpoint.meta,
        Some(WalMeta::new(config.seed, config.scale.divisor))
    );

    // Second "process": resumes from the torn WAL.
    let resumed_log = TelemetryLog::in_memory().with_resume(checkpoint.cells);
    let resumed = table4_2b::run_logged(&config, &resumed_log);

    assert_bitwise_identical(&clean, &resumed, "kill + resume");
    let summary = resumed_log.summary();
    assert_eq!(summary.replayed, 10, "the 10 intact cells were not re-run");
    assert_eq!(summary.cells, 26);
    assert!(!summary.degraded());
}

/// An adaptive-schedule cell carries a per-instance probe, a derived
/// schedule, and (in acceptance mode) an in-run feedback controller — the
/// whole pipeline must survive a kill + `--resume` with every f64 bit
/// intact, including the WAL-v3 temperature/target sums.
#[test]
fn killed_adaptive_run_resumes_bitwise_identical() {
    // Scale 10 keeps the budgets (150/225/300 evals) above the 128-eval
    // probe, so the resumed cells replay real controlled chains.
    let config = SuiteConfig::scaled(10).with_seed(7);
    let clean = adaptive::run_logged(&config, &TelemetryLog::in_memory());

    let buf = SharedBuf::default();
    let wal = TelemetryLog::with_writer(Box::new(buf.clone()));
    {
        let mut w = buf.0.lock().unwrap();
        writeln!(
            w,
            "{}",
            WalMeta::new(config.seed, config.scale.divisor).header_line()
        )
        .unwrap();
    }
    adaptive::run_logged(&config, &wal);

    let full = buf.contents();
    let lines: Vec<&str> = full.lines().collect();
    assert_eq!(lines.len(), 10, "header + 9 cell records");
    // Kill after 4 intact records plus half of the fifth.
    let mut killed = lines[..5].join("\n");
    killed.push('\n');
    killed.push_str(&lines[5][..lines[5].len() / 2]);

    let checkpoint = checkpoint::load_str(&killed).expect("killed WAL still loads");
    assert!(checkpoint.torn);
    assert_eq!(checkpoint.cells.len(), 4);
    // The adaptive cells' controller telemetry round-tripped exactly.
    let acceptance = checkpoint
        .cells
        .iter()
        .find(|c| c.key.method == "Adaptive (acceptance)")
        .expect("an acceptance-mode cell was committed before the kill");
    assert!(acceptance
        .per_temp
        .iter()
        .all(|t| t.temperature.is_finite() && t.target_acceptance.is_finite()));

    let resumed_log = TelemetryLog::in_memory().with_resume(checkpoint.cells);
    let resumed = adaptive::run_logged(&config, &resumed_log);

    assert_bitwise_identical(&clean, &resumed, "adaptive kill + resume");
    let summary = resumed_log.summary();
    assert_eq!(summary.replayed, 4, "the 4 intact cells were not re-run");
    assert_eq!(summary.cells, 9);
    assert!(!summary.degraded());
}

#[test]
fn chaos_run_with_retries_matches_clean_run() {
    let config = config().with_retry(RetryPolicy::new(6, Duration::ZERO));
    let clean = table4_2b::run_logged(&config, &TelemetryLog::in_memory());

    let plan = FaultPlan::parse("seed=11,panic=0.2").unwrap();
    let chaos_log = TelemetryLog::in_memory().with_faults(Some(plan));
    let chaos = table4_2b::run_logged(&config, &chaos_log);

    let summary = chaos_log.summary();
    assert!(!summary.degraded(), "retries absorbed every injected panic");
    assert!(
        chaos_log.records().iter().any(|r| r.attempts > 1),
        "the fault plan injected at least one panic"
    );
    assert_bitwise_identical(&clean, &chaos, "chaos + retries");
}

#[test]
fn degraded_chaos_run_resumes_to_the_clean_tables() {
    let config = config();
    let clean = table4_2b::run_logged(&config, &TelemetryLog::in_memory());

    // No retries: some cells fail outright and the run is degraded.
    let plan = FaultPlan::parse("seed=3,panic=0.15").unwrap();
    let buf = SharedBuf::default();
    let chaos_log = TelemetryLog::with_writer(Box::new(buf.clone())).with_faults(Some(plan));
    table4_2b::run_logged(&config, &chaos_log);
    let summary = chaos_log.summary();
    assert!(
        summary.degraded(),
        "without retries the injected panics stick"
    );
    assert!(!summary.failed.is_empty());

    // Resume replays only the cells that succeeded; failed ones re-run
    // clean (no fault plan — the chaos monkey died with the process).
    let checkpoint = checkpoint::load_str(&buf.contents()).expect("chaos WAL loads");
    assert!(!checkpoint.torn);
    let resumed_log = TelemetryLog::in_memory().with_resume(checkpoint.cells);
    let resumed = table4_2b::run_logged(&config, &resumed_log);

    let resumed_summary = resumed_log.summary();
    assert!(!resumed_summary.degraded(), "the resume healed the suite");
    assert_eq!(
        resumed_summary.replayed,
        26 - summary.failed.len(),
        "only the failed cells were re-run"
    );
    assert_bitwise_identical(&clean, &resumed, "degraded chaos + resume");
}
