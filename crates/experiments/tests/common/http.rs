//! Shared HTTP plumbing for the ops-plane and job-server e2e tests:
//! spawning the real `repro` binary, discovering the address it bound,
//! and issuing raw-`TcpStream` requests with deadline-based retries
//! instead of one hard-coded timeout (a loaded CI box can make a single
//! 5-second scrape flake; retrying the whole request until a generous
//! deadline cannot).

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

/// How long a single request may retry before the test gives up.
pub const REQUEST_DEADLINE: Duration = Duration::from_secs(30);

/// How long [`poll_until`] keeps re-requesting before failing the test.
pub const POLL_DEADLINE: Duration = Duration::from_secs(120);

/// The `repro` binary under test.
pub fn repro() -> Command {
    Command::new(env!("CARGO_BIN_EXE_repro"))
}

/// Spawns `repro <args>` with stderr piped and returns the child plus the
/// address its ops server actually bound (parsed from the
/// `ops: serving on ADDR` stderr line; `127.0.0.1:0` picks a free port).
/// The rest of stderr keeps draining on a background thread so the child
/// can never block on a full pipe.
pub fn spawn_serving_args(args: &[&str]) -> (Child, String) {
    let mut child = repro()
        .args(args)
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn repro");
    let stderr = child.stderr.take().expect("piped stderr");
    let mut reader = BufReader::new(stderr);
    let mut addr = None;
    let mut line = String::new();
    while reader.read_line(&mut line).expect("read repro stderr") > 0 {
        if let Some(rest) = line.trim().strip_prefix("ops: serving on ") {
            addr = Some(rest.to_string());
            break;
        }
        line.clear();
    }
    let addr = addr.expect("repro never announced the ops address");
    std::thread::spawn(move || {
        let mut sink = Vec::new();
        let _ = reader.read_to_end(&mut sink);
    });
    (child, addr)
}

/// One raw HTTP/1.1 request, retried until [`REQUEST_DEADLINE`]: connect
/// refusals, resets and timeouts all just try again, so a busy machine
/// slows the test down instead of flaking it. Returns
/// `(status, full response text)`.
pub fn http_request(addr: &str, method: &str, path: &str, body: Option<&str>) -> (u16, String) {
    let deadline = Instant::now() + REQUEST_DEADLINE;
    let mut last_err = String::new();
    while Instant::now() < deadline {
        match try_request(addr, method, path, body) {
            Ok(response) => return response,
            Err(e) => {
                last_err = e;
                std::thread::sleep(Duration::from_millis(50));
            }
        }
    }
    panic!("{method} {path} on {addr} kept failing past the deadline: {last_err}");
}

fn try_request(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> Result<(u16, String), String> {
    let mut stream = TcpStream::connect(addr).map_err(|e| format!("connect: {e}"))?;
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .map_err(|e| format!("set timeout: {e}"))?;
    let request = match body {
        Some(body) => format!(
            "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\
             Content-Type: application/json\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        ),
        None => format!("{method} {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n"),
    };
    stream
        .write_all(request.as_bytes())
        .map_err(|e| format!("send: {e}"))?;
    let mut response = String::new();
    stream
        .read_to_string(&mut response)
        .map_err(|e| format!("read: {e}"))?;
    let status = response
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("malformed status line: {response}"))?;
    Ok((status, response))
}

/// Minimal HTTP GET: returns (status code, full response text).
pub fn http_get(addr: &str, path: &str) -> (u16, String) {
    http_request(addr, "GET", path, None)
}

/// HTTP POST with a JSON body: returns (status code, full response text).
pub fn http_post(addr: &str, path: &str, body: &str) -> (u16, String) {
    http_request(addr, "POST", path, Some(body))
}

/// HTTP DELETE: returns (status code, full response text).
pub fn http_delete(addr: &str, path: &str) -> (u16, String) {
    http_request(addr, "DELETE", path, None)
}

/// The body of a full response returned by the helpers above.
pub fn body_of(response: &str) -> &str {
    response
        .split_once("\r\n\r\n")
        .map(|(_, body)| body)
        .unwrap_or(response)
}

/// Polls `path` until `accept` passes or [`POLL_DEADLINE`] expires.
pub fn poll_until(addr: &str, path: &str, accept: impl Fn(u16, &str) -> bool) -> (u16, String) {
    let deadline = Instant::now() + POLL_DEADLINE;
    loop {
        let (status, body) = http_get(addr, path);
        if accept(status, &body) {
            return (status, body);
        }
        assert!(
            Instant::now() < deadline,
            "gave up polling {path}; last response:\n{body}"
        );
        std::thread::sleep(Duration::from_millis(100));
    }
}

/// Kills and reaps a spawned `repro`.
pub fn finish(mut child: Child) {
    let _ = child.kill();
    let _ = child.wait();
}
