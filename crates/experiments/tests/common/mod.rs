//! Helpers shared by the integration-test crates (each test file compiles
//! this module separately, so anything unused in one crate is fine).
#![allow(dead_code)]

pub mod http;
