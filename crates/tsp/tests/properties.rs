//! Property-based tests for the TSP substrate.

use anneal_core::Problem;
use anneal_tsp::{
    hull_cheapest_insertion, nearest_neighbor, two_opt_descent, Tour, TourNeighborhood,
    TspInstance, TspProblem,
};
use proptest::prelude::*;
use rand::{rngs::StdRng, SeedableRng};

fn arb_instance() -> impl Strategy<Value = TspInstance> {
    (3usize..25, any::<u64>()).prop_map(|(n, seed)| {
        let mut rng = StdRng::seed_from_u64(seed);
        TspInstance::random_euclidean(n, &mut rng)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn incremental_length_matches_recompute(inst in arb_instance(), seed in any::<u64>(), n_moves in 1usize..80) {
        let p = TspProblem::new(inst.clone()).with_neighborhood(TourNeighborhood::Mixed);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut t = p.random_state(&mut rng);
        for _ in 0..n_moves {
            let mv = p.propose(&t, &mut rng);
            p.apply(&mut t, &mv);
            prop_assert!(t.verify(&inst));
        }
        // The tour stays a permutation.
        let mut cities = t.order().to_vec();
        cities.sort_unstable();
        prop_assert_eq!(cities, (0..inst.n_cities() as u32).collect::<Vec<_>>());
    }

    #[test]
    fn undo_inverts_apply(inst in arb_instance(), seed in any::<u64>()) {
        let p = TspProblem::new(inst.clone()).with_neighborhood(TourNeighborhood::Mixed);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut t = p.random_state(&mut rng);
        let before = t.clone();
        let mut moves = Vec::new();
        for _ in 0..20 {
            let mv = p.propose(&t, &mut rng);
            p.apply(&mut t, &mv);
            moves.push(mv);
        }
        for mv in moves.iter().rev() {
            p.undo(&mut t, mv);
        }
        prop_assert_eq!(t.order(), before.order());
        prop_assert!((t.length() - before.length()).abs() < 1e-6);
    }

    #[test]
    fn two_opt_delta_agrees_with_recomputation(inst in arb_instance(), seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let t = Tour::random(&inst, &mut rng);
        let n = inst.n_cities();
        for i in 0..n {
            for j in i..n {
                let delta = t.two_opt_delta(&inst, i, j);
                let mut t2 = t.clone();
                t2.apply_two_opt(&inst, i, j);
                t2.resync_length(&inst);
                prop_assert!(
                    (t2.length() - (t.length() + delta)).abs() < 1e-6,
                    "segment {i}..={j}: delta {delta}, actual {}",
                    t2.length() - t.length()
                );
            }
        }
    }

    #[test]
    fn descent_never_increases_length(inst in arb_instance(), seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let start = Tour::random(&inst, &mut rng);
        let (t, _) = two_opt_descent(&inst, start.clone());
        prop_assert!(t.length() <= start.length() + 1e-9);
        prop_assert!(t.verify(&inst));
    }

    #[test]
    fn constructives_produce_valid_tours(inst in arb_instance()) {
        let nn = nearest_neighbor(&inst, 0);
        let hull = hull_cheapest_insertion(&inst);
        for t in [&nn, &hull] {
            prop_assert!(t.verify(&inst));
            let mut cities = t.order().to_vec();
            cities.sort_unstable();
            prop_assert_eq!(cities, (0..inst.n_cities() as u32).collect::<Vec<_>>());
        }
    }

    #[test]
    fn tour_length_lower_bound(inst in arb_instance(), seed in any::<u64>()) {
        // Any tour is at least twice the maximum distance from any city to
        // its nearest neighbor... use the weaker bound: length >= 0 and
        // length >= perimeter contribution of the farthest pair (it must be
        // entered and left).
        let mut rng = StdRng::seed_from_u64(seed);
        let t = Tour::random(&inst, &mut rng);
        prop_assert!(t.length() >= 0.0);
        let n = inst.n_cities();
        let mut max_nn = 0f64;
        for a in 0..n {
            let nearest = (0..n)
                .filter(|&b| b != a)
                .map(|b| inst.distance(a, b))
                .fold(f64::INFINITY, f64::min);
            max_nn = max_nn.max(nearest);
        }
        prop_assert!(t.length() >= 2.0 * max_nn - 1e-9, "must enter and leave the most isolated city");
    }
}
