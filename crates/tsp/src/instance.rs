//! Euclidean TSP instances with a precomputed distance matrix.
//!
//! [GOLD84] (§2 of the paper) evaluated simulated annealing against
//! classical TSP heuristics on random Euclidean instances; the paper's
//! conclusion points to its own TSP experiments in [NAHA84]. Instances here
//! are points drawn uniformly from the unit square, the standard random
//! model.

use rand::{Rng, RngExt};

/// A symmetric Euclidean TSP instance.
///
/// # Examples
///
/// ```
/// use anneal_tsp::TspInstance;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(1);
/// let inst = TspInstance::random_euclidean(50, &mut rng);
/// assert_eq!(inst.n_cities(), 50);
/// let d = inst.distance(3, 17);
/// assert!(d > 0.0 && d <= 2f64.sqrt());
/// assert_eq!(d, inst.distance(17, 3));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TspInstance {
    points: Vec<(f64, f64)>,
    dist: Vec<f64>, // row-major n×n
}

impl TspInstance {
    /// An instance over explicit points.
    ///
    /// # Panics
    ///
    /// Panics if fewer than 3 points are given (no nontrivial tour exists)
    /// or any coordinate is not finite.
    pub fn from_points(points: Vec<(f64, f64)>) -> Self {
        assert!(points.len() >= 3, "a tour needs at least three cities");
        assert!(
            points.iter().all(|p| p.0.is_finite() && p.1.is_finite()),
            "coordinates must be finite"
        );
        let n = points.len();
        let mut dist = vec![0.0; n * n];
        for i in 0..n {
            for j in i + 1..n {
                let dx = points[i].0 - points[j].0;
                let dy = points[i].1 - points[j].1;
                let d = (dx * dx + dy * dy).sqrt();
                dist[i * n + j] = d;
                dist[j * n + i] = d;
            }
        }
        TspInstance { points, dist }
    }

    /// `n` cities uniform in the unit square.
    ///
    /// # Panics
    ///
    /// Panics if `n < 3`.
    pub fn random_euclidean(n: usize, rng: &mut dyn Rng) -> Self {
        assert!(n >= 3, "a tour needs at least three cities");
        let points = (0..n)
            .map(|_| (rng.random_range(0.0..1.0), rng.random_range(0.0..1.0)))
            .collect();
        Self::from_points(points)
    }

    /// Number of cities.
    pub fn n_cities(&self) -> usize {
        self.points.len()
    }

    /// The coordinates of city `c`.
    ///
    /// # Panics
    ///
    /// Panics if `c` is out of range.
    pub fn point(&self, c: usize) -> (f64, f64) {
        self.points[c]
    }

    /// All coordinates.
    pub fn points(&self) -> &[(f64, f64)] {
        &self.points
    }

    /// Distance between cities `a` and `b`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn distance(&self, a: usize, b: usize) -> f64 {
        self.dist[a * self.points.len() + b]
    }

    /// Length of the closed tour visiting `order` (a permutation of the
    /// cities).
    ///
    /// # Panics
    ///
    /// Panics if `order` length differs from the city count.
    pub fn tour_length(&self, order: &[u32]) -> f64 {
        assert_eq!(order.len(), self.n_cities(), "order must visit every city");
        let n = order.len();
        (0..n)
            .map(|i| self.distance(order[i] as usize, order[(i + 1) % n] as usize))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn unit_square_distances() {
        let inst = TspInstance::from_points(vec![(0.0, 0.0), (1.0, 0.0), (1.0, 1.0), (0.0, 1.0)]);
        assert_eq!(inst.distance(0, 1), 1.0);
        assert!((inst.distance(0, 2) - 2f64.sqrt()).abs() < 1e-12);
        assert_eq!(inst.distance(2, 2), 0.0);
        assert_eq!(inst.tour_length(&[0, 1, 2, 3]), 4.0);
        // The crossing tour is longer.
        assert!(inst.tour_length(&[0, 2, 1, 3]) > 4.0);
    }

    #[test]
    fn triangle_inequality_holds() {
        let mut rng = StdRng::seed_from_u64(2);
        let inst = TspInstance::random_euclidean(20, &mut rng);
        for a in 0..20 {
            for b in 0..20 {
                for c in 0..20 {
                    assert!(
                        inst.distance(a, c) <= inst.distance(a, b) + inst.distance(b, c) + 1e-12
                    );
                }
            }
        }
    }

    #[test]
    fn random_is_deterministic_per_seed() {
        let a = TspInstance::random_euclidean(30, &mut StdRng::seed_from_u64(5));
        let b = TspInstance::random_euclidean(30, &mut StdRng::seed_from_u64(5));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "at least three cities")]
    fn too_few_cities_panics() {
        let _ = TspInstance::from_points(vec![(0.0, 0.0), (1.0, 1.0)]);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn non_finite_coordinates_panic() {
        let _ = TspInstance::from_points(vec![(0.0, 0.0), (f64::NAN, 1.0), (1.0, 0.0)]);
    }
}
