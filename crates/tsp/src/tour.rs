//! Tours with incrementally maintained length and O(1) move deltas.

use crate::instance::TspInstance;

/// A closed tour: a cyclic visiting order with its length maintained
/// incrementally under 2-opt reversals and or-opt relocations.
#[derive(Debug, Clone, PartialEq)]
pub struct Tour {
    order: Vec<u32>,
    length: f64,
}

impl Tour {
    /// A tour visiting `order` (a permutation of `0..n`).
    ///
    /// # Panics
    ///
    /// Panics if `order` is not a permutation of the instance's cities.
    pub fn new(instance: &TspInstance, order: Vec<u32>) -> Self {
        let n = instance.n_cities();
        assert_eq!(order.len(), n, "tour must visit every city exactly once");
        let mut seen = vec![false; n];
        for &c in &order {
            assert!(
                (c as usize) < n && !seen[c as usize],
                "tour must be a permutation of 0..{n}"
            );
            seen[c as usize] = true;
        }
        let length = instance.tour_length(&order);
        Tour { order, length }
    }

    /// The identity tour `0, 1, …, n-1`.
    pub fn identity(instance: &TspInstance) -> Self {
        Self::new(instance, (0..instance.n_cities() as u32).collect())
    }

    /// A uniformly random tour.
    pub fn random(instance: &TspInstance, rng: &mut dyn rand::Rng) -> Self {
        use rand::RngExt;
        let n = instance.n_cities();
        let mut order: Vec<u32> = (0..n as u32).collect();
        for i in (1..n).rev() {
            let j = rng.random_range(0..=i);
            order.swap(i, j);
        }
        Self::new(instance, order)
    }

    /// The visiting order.
    pub fn order(&self) -> &[u32] {
        &self.order
    }

    /// The current tour length (incrementally maintained).
    pub fn length(&self) -> f64 {
        self.length
    }

    /// The city at tour position `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    pub fn city_at(&self, p: usize) -> u32 {
        self.order[p]
    }

    /// Length change of reversing positions `i..=j` (a 2-opt move), in O(1).
    ///
    /// Reversing the whole tour (`i == 0 && j == n-1`) has delta 0.
    ///
    /// # Panics
    ///
    /// Panics if `i > j` or `j` is out of range.
    pub fn two_opt_delta(&self, instance: &TspInstance, i: usize, j: usize) -> f64 {
        assert!(i <= j && j < self.order.len(), "invalid segment {i}..={j}");
        let n = self.order.len();
        if i == 0 && j == n - 1 {
            return 0.0;
        }
        let prev = self.order[(i + n - 1) % n] as usize;
        let first = self.order[i] as usize;
        let last = self.order[j] as usize;
        let next = self.order[(j + 1) % n] as usize;
        instance.distance(prev, last) + instance.distance(first, next)
            - instance.distance(prev, first)
            - instance.distance(last, next)
    }

    /// Reverses positions `i..=j`, updating the length by the 2-opt delta.
    ///
    /// # Panics
    ///
    /// Panics if `i > j` or `j` is out of range.
    pub fn apply_two_opt(&mut self, instance: &TspInstance, i: usize, j: usize) {
        self.length += self.two_opt_delta(instance, i, j);
        self.order[i..=j].reverse();
    }

    /// Length change of moving the city at position `from` to position `to`
    /// (an or-opt relocation), in O(1). Positions are interpreted on the
    /// tour *after removal* for `to`, matching [`apply_or_opt`](Self::apply_or_opt).
    ///
    /// # Panics
    ///
    /// Panics if either position is out of range.
    pub fn or_opt_delta(&self, instance: &TspInstance, from: usize, to: usize) -> f64 {
        let n = self.order.len();
        assert!(from < n && to < n, "positions out of range");
        if from == to {
            return 0.0;
        }
        let city = self.order[from] as usize;
        let prev = self.order[(from + n - 1) % n] as usize;
        let next = self.order[(from + 1) % n] as usize;
        // Removal closes (prev, next).
        let removal = instance.distance(prev, next)
            - instance.distance(prev, city)
            - instance.distance(city, next);
        // Insertion opens the edge that will precede the new position. After
        // removal, the tour has n-1 cities; inserting at index `to` places
        // the city between the (to-1)-th and to-th of the reduced tour.
        let reduced = |idx: usize| -> usize {
            // City at index `idx` of the tour with `from` removed.
            let i = if idx >= from { idx + 1 } else { idx };
            self.order[i % n] as usize
        };
        let before = reduced((to + (n - 1) - 1) % (n - 1));
        let after = reduced(to % (n - 1));
        let insertion = instance.distance(before, city) + instance.distance(city, after)
            - instance.distance(before, after);
        removal + insertion
    }

    /// Moves the city at position `from` to position `to` (indices on the
    /// reduced tour, see [`or_opt_delta`](Self::or_opt_delta)), updating the
    /// length.
    ///
    /// # Panics
    ///
    /// Panics if either position is out of range.
    pub fn apply_or_opt(&mut self, instance: &TspInstance, from: usize, to: usize) {
        self.length += self.or_opt_delta(instance, from, to);
        let city = self.order.remove(from);
        self.order.insert(to, city);
    }

    /// Recomputes the length from scratch and checks it against the
    /// maintained value (within floating-point tolerance).
    pub fn verify(&self, instance: &TspInstance) -> bool {
        (instance.tour_length(&self.order) - self.length).abs() <= 1e-6 * (1.0 + self.length.abs())
    }

    /// Resynchronizes the maintained length with a fresh recomputation
    /// (useful after very long runs to cancel floating-point drift).
    pub fn resync_length(&mut self, instance: &TspInstance) {
        self.length = instance.tour_length(&self.order);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, RngExt, SeedableRng};

    fn square() -> TspInstance {
        TspInstance::from_points(vec![(0.0, 0.0), (1.0, 0.0), (1.0, 1.0), (0.0, 1.0)])
    }

    #[test]
    fn two_opt_uncrosses_square() {
        let inst = square();
        let mut t = Tour::new(&inst, vec![0, 2, 1, 3]); // crossing tour
        let before = t.length();
        // Reverse positions 1..=2 → 0,1,2,3.
        let delta = t.two_opt_delta(&inst, 1, 2);
        assert!(delta < 0.0);
        t.apply_two_opt(&inst, 1, 2);
        assert_eq!(t.order(), &[0, 1, 2, 3]);
        assert!((t.length() - (before + delta)).abs() < 1e-12);
        assert!(t.verify(&inst));
        assert!((t.length() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn two_opt_is_involutive() {
        let mut rng = StdRng::seed_from_u64(1);
        let inst = TspInstance::random_euclidean(12, &mut rng);
        let mut t = Tour::random(&inst, &mut rng);
        let before = t.clone();
        t.apply_two_opt(&inst, 3, 8);
        t.apply_two_opt(&inst, 3, 8);
        assert_eq!(t.order(), before.order());
        assert!((t.length() - before.length()).abs() < 1e-9);
    }

    #[test]
    fn full_reversal_is_free() {
        let mut rng = StdRng::seed_from_u64(2);
        let inst = TspInstance::random_euclidean(8, &mut rng);
        let t = Tour::random(&inst, &mut rng);
        assert_eq!(t.two_opt_delta(&inst, 0, 7), 0.0);
    }

    #[test]
    fn deltas_match_recomputation() {
        let mut rng = StdRng::seed_from_u64(3);
        let inst = TspInstance::random_euclidean(15, &mut rng);
        let mut t = Tour::random(&inst, &mut rng);
        for _ in 0..300 {
            let i = rng.random_range(0..15usize);
            let j = rng.random_range(0..15usize);
            let (i, j) = (i.min(j), i.max(j));
            t.apply_two_opt(&inst, i, j);
            assert!(t.verify(&inst), "after reversing {i}..={j}");
        }
    }

    #[test]
    fn or_opt_deltas_match_recomputation() {
        let mut rng = StdRng::seed_from_u64(4);
        let inst = TspInstance::random_euclidean(12, &mut rng);
        let mut t = Tour::random(&inst, &mut rng);
        for _ in 0..300 {
            let from = rng.random_range(0..12);
            let to = rng.random_range(0..12);
            t.apply_or_opt(&inst, from, to);
            assert!(t.verify(&inst), "after relocating {from} → {to}");
        }
    }

    #[test]
    fn or_opt_undo_restores() {
        let mut rng = StdRng::seed_from_u64(5);
        let inst = TspInstance::random_euclidean(10, &mut rng);
        let mut t = Tour::random(&inst, &mut rng);
        let before = t.clone();
        t.apply_or_opt(&inst, 2, 7);
        t.apply_or_opt(&inst, 7, 2);
        assert_eq!(t.order(), before.order());
        assert!((t.length() - before.length()).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "permutation")]
    fn rejects_duplicate_cities() {
        let inst = square();
        let _ = Tour::new(&inst, vec![0, 1, 1, 3]);
    }

    #[test]
    fn resync_cancels_drift() {
        let inst = square();
        let mut t = Tour::identity(&inst);
        t.resync_length(&inst);
        assert_eq!(t.length(), 4.0);
    }
}
