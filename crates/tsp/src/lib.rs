#![warn(missing_docs)]

//! # anneal-tsp
//!
//! The Euclidean traveling-salesperson substrate for the DAC 1985
//! reproduction's extension experiments (§2 discusses \[GOLD84\]'s
//! SA-vs-heuristics TSP study; the paper's own TSP experiments live in the
//! \[NAHA84\] technical report it summarizes).
//!
//! Provides instances with precomputed distance matrices ([`TspInstance`]),
//! tours with O(1) 2-opt/or-opt deltas ([`Tour`]), the
//! [`anneal_core::Problem`] implementation ([`TspProblem`]), and the
//! classical baselines: [`nearest_neighbor`], Stewart-style
//! [`hull_cheapest_insertion`], and [`two_opt_descent`] (combine with
//! [`anneal_core::local::multistart`] for the time-equalized \[LIN73\]
//! protocol).
//!
//! # Examples
//!
//! ```
//! use anneal_core::{local::multistart, Annealer, Budget, GFunction};
//! use anneal_tsp::{TspInstance, TspProblem};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(84);
//! let problem = TspProblem::new(TspInstance::random_euclidean(30, &mut rng));
//!
//! // Simulated annealing…
//! let sa = Annealer::new(&problem)
//!     .budget(Budget::evaluations(20_000))
//!     .run(&mut GFunction::six_temp_annealing(0.3));
//!
//! // …vs time-equalized multistart 2-opt (\[GOLD84\]'s protocol).
//! let mut rng2 = StdRng::seed_from_u64(85);
//! let lin = multistart(&problem, Budget::evaluations(20_000), &mut rng2);
//!
//! assert!(sa.best_cost > 0.0 && lin.best_cost > 0.0);
//! ```

mod construct;
mod instance;
mod problem;
mod tour;

pub use construct::{hull_cheapest_insertion, nearest_neighbor, two_opt_descent};
pub use instance::TspInstance;
pub use problem::{TourMove, TourNeighborhood, TspProblem};
pub use tour::Tour;
