//! The TSP as an [`anneal_core::Problem`].

use anneal_core::{Problem, Rng, RngExt};

use crate::instance::TspInstance;
use crate::tour::Tour;

/// A tour perturbation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TourMove {
    /// Reverse tour positions `i..=j` (2-opt).
    TwoOpt {
        /// First position of the reversed segment.
        i: usize,
        /// Last position of the reversed segment.
        j: usize,
    },
    /// Relocate the city at `from` to (reduced-tour) position `to` (or-opt).
    OrOpt {
        /// Position of the city to move.
        from: usize,
        /// Insertion index after removal.
        to: usize,
    },
}

/// The perturbation neighborhood for [`TspProblem`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TourNeighborhood {
    /// Random segment reversals — the 2-opt moves of \[LIN73\].
    #[default]
    TwoOpt,
    /// Random single-city relocations.
    OrOpt,
    /// Alternate between both uniformly.
    Mixed,
}

/// Euclidean TSP minimization over an owned instance.
///
/// # Examples
///
/// ```
/// use anneal_core::{Annealer, Budget, GFunction};
/// use anneal_tsp::{TspInstance, TspProblem};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(0);
/// let problem = TspProblem::new(TspInstance::random_euclidean(40, &mut rng));
/// let result = Annealer::new(&problem)
///     .budget(Budget::evaluations(30_000))
///     .run(&mut GFunction::six_temp_annealing(0.5));
/// assert!(result.best_cost < result.initial_cost);
/// ```
#[derive(Debug, Clone)]
pub struct TspProblem {
    instance: TspInstance,
    neighborhood: TourNeighborhood,
}

impl TspProblem {
    /// A TSP problem with the 2-opt neighborhood.
    pub fn new(instance: TspInstance) -> Self {
        TspProblem {
            instance,
            neighborhood: TourNeighborhood::TwoOpt,
        }
    }

    /// Selects the perturbation neighborhood.
    pub fn with_neighborhood(mut self, neighborhood: TourNeighborhood) -> Self {
        self.neighborhood = neighborhood;
        self
    }

    /// The underlying instance.
    pub fn instance(&self) -> &TspInstance {
        &self.instance
    }

    fn random_two_opt(&self, rng: &mut dyn Rng) -> TourMove {
        let n = self.instance.n_cities();
        loop {
            let a = rng.random_range(0..n);
            let b = rng.random_range(0..n);
            let (i, j) = (a.min(b), a.max(b));
            // Skip no-ops: empty segments and whole-tour reversals.
            if i != j && !(i == 0 && j == n - 1) {
                return TourMove::TwoOpt { i, j };
            }
        }
    }

    fn random_or_opt(&self, rng: &mut dyn Rng) -> TourMove {
        let n = self.instance.n_cities();
        loop {
            let from = rng.random_range(0..n);
            let to = rng.random_range(0..n);
            if from != to {
                return TourMove::OrOpt { from, to };
            }
        }
    }
}

impl Problem for TspProblem {
    type State = Tour;
    type Move = TourMove;

    fn random_state(&self, rng: &mut dyn Rng) -> Tour {
        Tour::random(&self.instance, rng)
    }

    fn cost(&self, state: &Tour) -> f64 {
        state.length()
    }

    fn propose(&self, _state: &Tour, rng: &mut dyn Rng) -> TourMove {
        match self.neighborhood {
            TourNeighborhood::TwoOpt => self.random_two_opt(rng),
            TourNeighborhood::OrOpt => self.random_or_opt(rng),
            TourNeighborhood::Mixed => {
                if rng.random_bool(0.5) {
                    self.random_two_opt(rng)
                } else {
                    self.random_or_opt(rng)
                }
            }
        }
    }

    fn apply(&self, state: &mut Tour, mv: &TourMove) {
        match *mv {
            TourMove::TwoOpt { i, j } => state.apply_two_opt(&self.instance, i, j),
            TourMove::OrOpt { from, to } => state.apply_or_opt(&self.instance, from, to),
        }
    }

    fn undo(&self, state: &mut Tour, mv: &TourMove) {
        match *mv {
            // Segment reversal is involutive.
            TourMove::TwoOpt { i, j } => state.apply_two_opt(&self.instance, i, j),
            TourMove::OrOpt { from, to } => state.apply_or_opt(&self.instance, to, from),
        }
    }

    fn all_moves(&self, state: &Tour) -> Vec<TourMove> {
        let mut moves = Vec::new();
        self.all_moves_into(state, &mut moves);
        moves
    }

    fn all_moves_into(&self, _state: &Tour, buf: &mut Vec<TourMove>) {
        // The 2-opt neighborhood, excluding the no-op whole-tour reversal.
        buf.clear();
        let n = self.instance.n_cities();
        buf.reserve(n * (n - 1) / 2);
        for i in 0..n - 1 {
            for j in i + 1..n {
                if i == 0 && j == n - 1 {
                    continue;
                }
                buf.push(TourMove::TwoOpt { i, j });
            }
        }
    }

    fn improving_move(&self, state: &Tour, probes: &mut u64) -> Option<TourMove> {
        // First-improvement 2-opt scan using O(1) deltas. A strictly
        // negative threshold avoids cycling on floating-point noise.
        let n = self.instance.n_cities();
        for i in 0..n - 1 {
            for j in i + 1..n {
                if i == 0 && j == n - 1 {
                    continue;
                }
                *probes += 1;
                if state.two_opt_delta(&self.instance, i, j) < -1e-12 {
                    return Some(TourMove::TwoOpt { i, j });
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anneal_core::{Annealer, Budget, GFunction, Strategy};
    use rand::{rngs::StdRng, SeedableRng};

    fn circle_instance(n: usize) -> TspInstance {
        // Cities on a circle: the optimal tour is the perimeter order.
        let pts = (0..n)
            .map(|i| {
                let a = i as f64 / n as f64 * std::f64::consts::TAU;
                (a.cos(), a.sin())
            })
            .collect();
        TspInstance::from_points(pts)
    }

    fn circle_optimum(inst: &TspInstance) -> f64 {
        inst.tour_length(&(0..inst.n_cities() as u32).collect::<Vec<_>>())
    }

    #[test]
    fn two_opt_descent_solves_small_circle() {
        let inst = circle_instance(12);
        let p = TspProblem::new(inst);
        let mut rng = StdRng::seed_from_u64(1);
        let mut t = p.random_state(&mut rng);
        let mut probes = 0;
        while let Some(mv) = p.improving_move(&t, &mut probes) {
            p.apply(&mut t, &mv);
        }
        // 2-opt local optima of circle instances are the optimum itself for
        // small n (no crossing edges remain).
        let opt = circle_optimum(p.instance());
        assert!(t.length() <= opt * 1.05, "{} vs {opt}", t.length());
        assert!(t.verify(p.instance()));
    }

    #[test]
    fn annealing_approaches_circle_optimum() {
        let inst = circle_instance(20);
        let p = TspProblem::new(inst);
        let r = Annealer::new(&p)
            .budget(Budget::evaluations(60_000))
            .seed(2)
            .run(&mut GFunction::six_temp_annealing(0.5));
        let opt = circle_optimum(p.instance());
        assert!(r.best_cost <= opt * 1.1, "{} vs {opt}", r.best_cost);
    }

    #[test]
    fn figure2_with_unit_g() {
        let inst = circle_instance(15);
        let p = TspProblem::new(inst);
        let r = Annealer::new(&p)
            .strategy(Strategy::Figure2)
            .budget(Budget::evaluations(40_000))
            .seed(3)
            .run(&mut GFunction::unit());
        let opt = circle_optimum(p.instance());
        assert!(r.best_cost <= opt * 1.1);
    }

    #[test]
    fn moves_round_trip() {
        let mut rng = StdRng::seed_from_u64(4);
        let inst = TspInstance::random_euclidean(15, &mut rng);
        for nh in [
            TourNeighborhood::TwoOpt,
            TourNeighborhood::OrOpt,
            TourNeighborhood::Mixed,
        ] {
            let p = TspProblem::new(inst.clone()).with_neighborhood(nh);
            let mut t = p.random_state(&mut rng);
            let before = t.clone();
            for _ in 0..50 {
                let mv = p.propose(&t, &mut rng);
                p.apply(&mut t, &mv);
                p.undo(&mut t, &mv);
                assert_eq!(t.order(), before.order(), "{nh:?}");
                assert!((t.length() - before.length()).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn proposals_are_never_whole_tour_reversals() {
        let mut rng = StdRng::seed_from_u64(5);
        let inst = TspInstance::random_euclidean(6, &mut rng);
        let p = TspProblem::new(inst);
        let t = p.random_state(&mut rng);
        for _ in 0..500 {
            match p.propose(&t, &mut rng) {
                TourMove::TwoOpt { i, j } => {
                    assert!(i < j);
                    assert!(!(i == 0 && j == 5));
                }
                TourMove::OrOpt { .. } => unreachable!("default neighborhood is 2-opt"),
            }
        }
    }
}
