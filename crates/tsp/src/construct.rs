//! Constructive TSP heuristics: the "sophisticated" classical baselines the
//! paper's §2 discussion (via \[GOLD84\] and \[STEW77\]) pits against simulated
//! annealing.

use crate::instance::TspInstance;
use crate::tour::Tour;

/// Nearest-neighbor construction from `start`.
///
/// # Panics
///
/// Panics if `start` is out of range.
///
/// # Examples
///
/// ```
/// use anneal_tsp::{nearest_neighbor, TspInstance};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(1);
/// let inst = TspInstance::random_euclidean(30, &mut rng);
/// let tour = nearest_neighbor(&inst, 0);
/// assert!(tour.verify(&inst));
/// ```
pub fn nearest_neighbor(instance: &TspInstance, start: usize) -> Tour {
    let n = instance.n_cities();
    assert!(start < n, "start city out of range");
    let mut visited = vec![false; n];
    let mut order = Vec::with_capacity(n);
    let mut current = start;
    visited[current] = true;
    order.push(current as u32);
    for _ in 1..n {
        let next = (0..n)
            .filter(|&c| !visited[c])
            .min_by(|&a, &b| {
                instance
                    .distance(current, a)
                    .partial_cmp(&instance.distance(current, b))
                    .expect("distances are finite")
            })
            .expect("unvisited city remains");
        visited[next] = true;
        order.push(next as u32);
        current = next;
    }
    Tour::new(instance, order)
}

/// Convex-hull cheapest-insertion construction, in the spirit of Stewart's
/// CCAO heuristic \[STEW77\]: start from the convex hull of the cities (an
/// optimal "skeleton" every optimal tour visits in hull order), then
/// repeatedly insert the remaining city with the cheapest insertion cost at
/// its cheapest position.
pub fn hull_cheapest_insertion(instance: &TspInstance) -> Tour {
    let n = instance.n_cities();
    let hull = convex_hull(instance.points());
    let mut in_tour = vec![false; n];
    let mut order: Vec<u32> = hull.iter().map(|&c| c as u32).collect();
    for &c in &hull {
        in_tour[c] = true;
    }
    // Degenerate (collinear) hulls still give a cycle of ≥ 2 points; extend
    // to at least 3 by inserting the cheapest city if needed.
    while order.len() < n {
        // Find the (city, position) pair with minimum insertion cost.
        let mut best: Option<(f64, usize, usize)> = None;
        #[allow(clippy::needless_range_loop)] // index drives two parallel arrays
        for c in 0..n {
            if in_tour[c] {
                continue;
            }
            for pos in 0..order.len() {
                let a = order[pos] as usize;
                let b = order[(pos + 1) % order.len()] as usize;
                let cost =
                    instance.distance(a, c) + instance.distance(c, b) - instance.distance(a, b);
                if best.is_none_or(|(bc, _, _)| cost < bc) {
                    best = Some((cost, c, pos + 1));
                }
            }
        }
        let (_, c, pos) = best.expect("cities remain to insert");
        order.insert(pos % (order.len() + 1), c as u32);
        in_tour[c] = true;
    }
    Tour::new(instance, order)
}

/// Indices of the convex hull of `points`, in counter-clockwise order
/// (Andrew's monotone chain). Collinear points are dropped from the hull.
fn convex_hull(points: &[(f64, f64)]) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..points.len()).collect();
    idx.sort_by(|&a, &b| {
        points[a]
            .partial_cmp(&points[b])
            .expect("coordinates are finite")
    });
    let cross = |o: usize, a: usize, b: usize| -> f64 {
        let (ox, oy) = points[o];
        let (ax, ay) = points[a];
        let (bx, by) = points[b];
        (ax - ox) * (by - oy) - (ay - oy) * (bx - ox)
    };
    let mut hull: Vec<usize> = Vec::new();
    for &p in &idx {
        while hull.len() >= 2 && cross(hull[hull.len() - 2], hull[hull.len() - 1], p) <= 0.0 {
            hull.pop();
        }
        hull.push(p);
    }
    let lower_len = hull.len() + 1;
    for &p in idx.iter().rev() {
        while hull.len() >= lower_len && cross(hull[hull.len() - 2], hull[hull.len() - 1], p) <= 0.0
        {
            hull.pop();
        }
        hull.push(p);
    }
    hull.pop(); // last point equals the first
    hull.dedup();
    hull
}

/// Full 2-opt descent from `tour` (first-improvement passes until locally
/// optimal). Returns the improved tour and the number of moves applied.
pub fn two_opt_descent(instance: &TspInstance, mut tour: Tour) -> (Tour, u64) {
    let n = instance.n_cities();
    let mut applied = 0;
    'outer: loop {
        for i in 0..n - 1 {
            for j in i + 1..n {
                if i == 0 && j == n - 1 {
                    continue;
                }
                if tour.two_opt_delta(instance, i, j) < -1e-12 {
                    tour.apply_two_opt(instance, i, j);
                    applied += 1;
                    continue 'outer;
                }
            }
        }
        break;
    }
    (tour, applied)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    fn circle(n: usize) -> TspInstance {
        let pts = (0..n)
            .map(|i| {
                let a = i as f64 / n as f64 * std::f64::consts::TAU;
                (a.cos(), a.sin())
            })
            .collect();
        TspInstance::from_points(pts)
    }

    #[test]
    fn hull_of_square_is_square() {
        let pts = vec![(0.0, 0.0), (1.0, 0.0), (1.0, 1.0), (0.0, 1.0), (0.5, 0.5)];
        let hull = convex_hull(&pts);
        assert_eq!(hull.len(), 4);
        assert!(!hull.contains(&4), "interior point excluded");
    }

    #[test]
    fn hull_insertion_solves_circle_exactly() {
        // All cities on the hull → the construction IS the optimum.
        let inst = circle(16);
        let tour = hull_cheapest_insertion(&inst);
        let opt = inst.tour_length(&(0..16u32).collect::<Vec<_>>());
        assert!((tour.length() - opt).abs() < 1e-9);
    }

    #[test]
    fn nearest_neighbor_visits_every_city() {
        let mut rng = StdRng::seed_from_u64(1);
        let inst = TspInstance::random_euclidean(40, &mut rng);
        let t = nearest_neighbor(&inst, 7);
        assert!(t.verify(&inst));
        let mut cities = t.order().to_vec();
        cities.sort_unstable();
        assert_eq!(cities, (0..40).collect::<Vec<u32>>());
    }

    #[test]
    fn two_opt_descent_reaches_local_optimum() {
        let mut rng = StdRng::seed_from_u64(2);
        let inst = TspInstance::random_euclidean(25, &mut rng);
        let start = Tour::random(&inst, &mut rng);
        let (t, applied) = two_opt_descent(&inst, start.clone());
        assert!(applied > 0);
        assert!(t.length() < start.length());
        // No improving 2-opt remains.
        for i in 0..24 {
            for j in i + 1..25 {
                if i == 0 && j == 24 {
                    continue;
                }
                assert!(t.two_opt_delta(&inst, i, j) >= -1e-12);
            }
        }
    }

    #[test]
    fn constructives_beat_random_tours() {
        let mut rng = StdRng::seed_from_u64(3);
        let inst = TspInstance::random_euclidean(60, &mut rng);
        let random = Tour::random(&inst, &mut rng);
        let nn = nearest_neighbor(&inst, 0);
        let hull = hull_cheapest_insertion(&inst);
        assert!(nn.length() < random.length());
        assert!(hull.length() < random.length());
        // Hull insertion is the stronger constructive on uniform instances.
        assert!(hull.length() < nn.length());
    }

    #[test]
    fn hull_handles_collinear_points() {
        let pts = vec![(0.0, 0.0), (1.0, 0.0), (2.0, 0.0), (3.0, 0.0), (1.5, 1.0)];
        let inst = TspInstance::from_points(pts);
        let tour = hull_cheapest_insertion(&inst);
        assert!(tour.verify(&inst));
        assert_eq!(tour.order().len(), 5);
    }
}
