//! Property-based tests for the framework's invariants.

use anneal_core::schedule::adaptive;
use anneal_core::{
    derive_seed, AcceptanceController, Budget, DeltaStats, Figure1, Figure2, Form, GFunction, Gate,
    Meter, Problem, Rng, RngExt, Schedule,
};
use proptest::prelude::*;
use rand::{rngs::StdRng, SeedableRng};

/// Toy problem for strategy-level properties.
struct BitCount {
    bits: u32,
}
impl Problem for BitCount {
    type State = u64;
    type Move = u32;
    fn random_state(&self, rng: &mut dyn Rng) -> u64 {
        rng.random_range(0..(1u64 << self.bits))
    }
    fn cost(&self, s: &u64) -> f64 {
        s.count_ones() as f64
    }
    fn propose(&self, _: &u64, rng: &mut dyn Rng) -> u32 {
        rng.random_range(0..self.bits)
    }
    fn apply(&self, s: &mut u64, m: &u32) {
        *s ^= 1 << m;
    }
    fn improving_move(&self, s: &u64, probes: &mut u64) -> Option<u32> {
        for b in 0..self.bits {
            *probes += 1;
            if s & (1u64 << b) != 0 {
                return Some(b);
            }
        }
        None
    }
}

fn any_form() -> impl Strategy<Value = Form> {
    prop_oneof![
        Just(Form::Boltzmann),
        Just(Form::Constant),
        (1u32..=3).prop_map(|degree| Form::PolyCurrent { degree }),
        Just(Form::ExpCurrent),
        (1u32..=3).prop_map(|degree| Form::PolyDifference { degree }),
        Just(Form::ExpDifference),
        (1.0f64..1000.0).prop_map(|m| Form::Coho83a { m }),
    ]
}

proptest! {
    #[test]
    fn probabilities_stay_in_unit_interval(
        form in any_form(),
        h_i in 0.0f64..1e9,
        dh in 0.0f64..1e6,
        y in 1e-9f64..1e9,
    ) {
        let p = form.probability(h_i, h_i + dh, y);
        prop_assert!((0.0..=1.0).contains(&p), "{form:?} gave {p}");
    }

    #[test]
    fn boltzmann_monotone_in_delta(
        h_i in 0.0f64..1e6,
        dh1 in 0.0f64..1e3,
        dh2 in 0.0f64..1e3,
        y in 1e-3f64..1e3,
    ) {
        let (lo, hi) = if dh1 <= dh2 { (dh1, dh2) } else { (dh2, dh1) };
        let p_lo = Form::Boltzmann.probability(h_i, h_i + lo, y);
        let p_hi = Form::Boltzmann.probability(h_i, h_i + hi, y);
        prop_assert!(p_lo >= p_hi, "smaller uphill deltas are at least as acceptable");
    }

    #[test]
    fn difference_forms_monotone_in_delta(
        degree in 1u32..=3,
        h_i in 0.0f64..1e6,
        dh1 in 1e-3f64..1e3,
        dh2 in 1e-3f64..1e3,
        y in 1e-3f64..1e3,
    ) {
        let form = Form::PolyDifference { degree };
        let (lo, hi) = if dh1 <= dh2 { (dh1, dh2) } else { (dh2, dh1) };
        let p_lo = form.probability(h_i, h_i + lo, y);
        let p_hi = form.probability(h_i, h_i + hi, y);
        prop_assert!(p_lo >= p_hi);
    }

    #[test]
    fn gate_accepts_exactly_on_period(period in 1u32..100, uphills in 0u32..500) {
        let mut gate = Gate::new(period);
        let mut accepted = 0u32;
        for _ in 0..uphills {
            if gate.on_uphill() {
                accepted += 1;
            }
        }
        // Reference model: counter increments per uphill, opens at `period`,
        // restarts at 1 (the paper's asymmetric reset).
        let mut counter = 0u32;
        let mut direct = 0u32;
        for _ in 0..uphills {
            counter += 1;
            if counter >= period {
                counter = 1;
                direct += 1;
            }
        }
        prop_assert_eq!(accepted, direct);
    }

    #[test]
    fn budget_split_conserves_total(n in 1u64..1_000_000, k in 1usize..32) {
        let per = Budget::evaluations(n).split(k);
        match per {
            Budget::Evaluations(p) => {
                prop_assert!(p * k as u64 >= n, "split covers the whole budget");
                prop_assert!(p <= n, "a share never exceeds the total");
                prop_assert!((p.saturating_sub(1)) * (k as u64) < n, "shares are minimal");
            }
            _ => prop_assert!(false, "kind preserved"),
        }
    }

    #[test]
    fn meter_exhausts_exactly_at_limit(limit in 1u64..10_000, step in 1u64..97) {
        let mut m = Meter::new(Budget::evaluations(limit));
        let mut charged = 0u64;
        while !m.exhausted() {
            m.charge(step);
            charged += step;
            prop_assert!(charged < limit + step);
        }
        prop_assert!(charged >= limit);
    }

    #[test]
    fn geometric_schedule_is_strictly_decreasing(
        y1 in 1e-3f64..1e6,
        ratio in 0.01f64..0.999,
        k in 1usize..20,
    ) {
        let s = Schedule::geometric(y1, ratio, k);
        prop_assert_eq!(s.len(), k);
        for w in s.values().windows(2) {
            prop_assert!(w[0] > w[1]);
        }
    }

    #[test]
    fn derive_seed_is_injective_in_small_ranges(base in any::<u64>()) {
        let mut seen = std::collections::HashSet::new();
        for idx in 0..256u64 {
            prop_assert!(seen.insert(derive_seed(base, idx)));
        }
    }

    #[test]
    fn figure1_best_never_exceeds_initial(seed in any::<u64>(), budget in 10u64..3000) {
        let p = BitCount { bits: 16 };
        let mut rng = StdRng::seed_from_u64(seed);
        let start = p.random_state(&mut rng);
        let mut g = GFunction::six_temp_annealing(2.0);
        let r = Figure1::default().run(&p, &mut g, start, Budget::evaluations(budget), &mut rng);
        prop_assert!(r.best_cost <= r.initial_cost);
        prop_assert!(r.best_cost <= r.final_cost);
        prop_assert!(r.stats.evals <= budget + 6, "budget respected within one step per temp");
    }

    #[test]
    fn figure2_best_never_exceeds_initial(seed in any::<u64>(), budget in 10u64..3000) {
        let p = BitCount { bits: 16 };
        let mut rng = StdRng::seed_from_u64(seed);
        let start = p.random_state(&mut rng);
        let mut g = GFunction::unit();
        let r = Figure2::default().run(&p, &mut g, start, Budget::evaluations(budget), &mut rng);
        prop_assert!(r.best_cost <= r.initial_cost);
        // Descent probes arrive in bursts of up to `bits`, so allow one burst
        // of overshoot.
        prop_assert!(r.stats.evals <= budget + 17);
    }

    #[test]
    fn controller_adjust_is_monotone_in_observed_acceptance(
        planned in 1e-9f64..1e9,
        obs1 in 0.0f64..1.0,
        obs2 in 0.0f64..1.0,
        target in 0.0f64..1.0,
        gain in 0.0f64..10.0,
    ) {
        let c = AcceptanceController::default().with_gain(gain);
        let (lo, hi) = if obs1 <= obs2 { (obs1, obs2) } else { (obs2, obs1) };
        let t_lo = c.adjust(planned, lo, target);
        let t_hi = c.adjust(planned, hi, target);
        // Accepting more than the comparison point can only cool further.
        prop_assert!(t_hi <= t_lo, "adjust must be monotone decreasing in observed");
    }

    #[test]
    fn controller_output_stays_positive_and_finite(
        planned in prop_oneof![1e-30f64..1e30, Just(f64::INFINITY), Just(f64::NAN)],
        observed in -1.0f64..2.0,
        target in -1.0f64..2.0,
        gain in 0.0f64..1e6,
    ) {
        let c = AcceptanceController::default().with_gain(gain);
        let t = c.adjust(planned, observed, target);
        prop_assert!(t.is_finite() && t > 0.0, "adjust({planned}, {observed}, {target}) = {t}");
    }

    #[test]
    fn controller_target_trajectory_is_decreasing_and_bounded(
        hot in 0.5f64..0.99,
        cold_frac in 0.01f64..1.0,
        k in 1usize..32,
    ) {
        let cold = hot * cold_frac;
        let c = AcceptanceController::new(hot, cold);
        let mut prev = f64::INFINITY;
        for stage in 0..k {
            let t = c.target(stage, k);
            prop_assert!(t <= prev + 1e-12);
            prop_assert!((cold - 1e-12..=hot + 1e-12).contains(&t));
            prev = t;
        }
    }

    #[test]
    fn adaptive_schedules_are_positive_finite_and_decreasing(
        std_dev in 0.0f64..1e6,
        min_positive in prop_oneof![Just(None), (1e-9f64..1e3).prop_map(Some)],
        k in 1usize..32,
        probe in 1u64..100_000,
    ) {
        let stats = DeltaStats { mean: 0.0, std_dev, min_positive, samples: probe };
        for mode in [adaptive::AdaptiveMode::Acceptance, adaptive::AdaptiveMode::Asa] {
            let spec = adaptive::derive(&stats, mode, k, probe);
            prop_assert_eq!(spec.schedule.len(), k);
            prop_assert_eq!(spec.probe_evals, probe);
            for w in spec.schedule.values().windows(2) {
                prop_assert!(w[0] >= w[1], "{mode}: {w:?}");
            }
            for &y in spec.schedule.values() {
                prop_assert!(y.is_finite() && y > 0.0);
            }
        }
    }

    #[test]
    fn controlled_runs_are_deterministic(seed in any::<u64>(), budget in 100u64..3000) {
        let p = BitCount { bits: 12 };
        let run = || {
            let mut rng = StdRng::seed_from_u64(seed);
            let start = p.random_state(&mut rng);
            let mut g = GFunction::six_temp_annealing(2.0);
            Figure1::default()
                .with_controller(Some(AcceptanceController::default()))
                .run(&p, &mut g, start, Budget::evaluations(budget), &mut rng)
        };
        let a = run();
        let b = run();
        prop_assert_eq!(a.best_cost.to_bits(), b.best_cost.to_bits());
        prop_assert_eq!(a.final_cost.to_bits(), b.final_cost.to_bits());
        prop_assert_eq!(a.stats, b.stats);
        for ts in &a.stats.per_temp {
            prop_assert!(ts.temperature.is_finite() && ts.temperature > 0.0);
        }
    }

    #[test]
    fn strategies_are_deterministic(seed in any::<u64>()) {
        let p = BitCount { bits: 12 };
        let run = |s| {
            let mut rng = StdRng::seed_from_u64(s);
            let start = p.random_state(&mut rng);
            let mut g = GFunction::two_level();
            Figure1::default().run(&p, &mut g, start, Budget::evaluations(500), &mut rng)
        };
        let a = run(seed);
        let b = run(seed);
        prop_assert_eq!(a.best_cost, b.best_cost);
        prop_assert_eq!(a.final_cost, b.final_cost);
        prop_assert_eq!(a.stats, b.stats);
    }
}
