//! Run outcomes and instrumentation.

use std::fmt;
use std::str::FromStr;

/// Why a run (or a temperature stage) ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// The computation budget was exhausted.
    Budget,
    /// The equilibrium counter reached `n` at the last temperature
    /// (Figure 1 Step 4 / Figure 2 Step 4 with `temp = k`).
    Equilibrium,
}

impl StopReason {
    /// Stable lower-case name, used in telemetry and trace records.
    pub fn as_str(&self) -> &'static str {
        match self {
            StopReason::Budget => "budget",
            StopReason::Equilibrium => "equilibrium",
        }
    }
}

impl fmt::Display for StopReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl FromStr for StopReason {
    type Err = String;

    /// Parses the [`as_str`](Self::as_str) spelling back; used by the trace
    /// parser in the experiments crate.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "budget" => Ok(StopReason::Budget),
            "equilibrium" => Ok(StopReason::Equilibrium),
            other => Err(format!("unknown stop reason `{other}`")),
        }
    }
}

/// Why a temperature stage ended (the per-temperature analogue of
/// [`StopReason`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdvanceReason {
    /// The stage's budget share ran out.
    Budget,
    /// The equilibrium counter reached `n`.
    Equilibrium,
    /// A replica-exchange swap phase closed the segment (parallel
    /// tempering; the chain stays on its rung, only configurations move).
    Exchange,
}

impl AdvanceReason {
    /// Stable lower-case name, used in telemetry and trace records.
    pub fn as_str(&self) -> &'static str {
        match self {
            AdvanceReason::Budget => "budget",
            AdvanceReason::Equilibrium => "equilibrium",
            AdvanceReason::Exchange => "exchange",
        }
    }
}

impl fmt::Display for AdvanceReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl FromStr for AdvanceReason {
    type Err = String;

    /// Parses the [`as_str`](Self::as_str) spelling back; used by the trace
    /// parser in the experiments crate.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "budget" => Ok(AdvanceReason::Budget),
            "equilibrium" => Ok(AdvanceReason::Equilibrium),
            "exchange" => Ok(AdvanceReason::Exchange),
            other => Err(format!("unknown advance reason `{other}`")),
        }
    }
}

/// Counters for one temperature stage of a run: the per-temperature
/// acceptance/advance breakdown behind [`RunStats`]'s aggregate counters.
///
/// The last entry's [`ended_by`](TempStats::ended_by) mirrors the run's
/// [`StopReason`]; earlier entries record why the stage advanced.
#[derive(Debug, Clone, Copy)]
pub struct TempStats {
    /// Temperature index (0-based position in the schedule).
    pub temp: usize,
    /// The temperature value the stage actually ran at. With an adaptive
    /// controller attached this is the *controlled* value, which can differ
    /// from the schedule as derived; `NaN` when the strategy predates this
    /// field (records loaded from pre-v3 logs) or has no meaningful single
    /// temperature for the stage.
    pub temperature: f64,
    /// The acceptance rate the adaptive controller targeted for this stage;
    /// `NaN` when no controller was attached.
    pub target_acceptance: f64,
    /// Cost evaluations charged during this stage.
    pub evals: u64,
    /// Perturbations proposed during this stage.
    pub proposals: u64,
    /// Downhill acceptances during this stage.
    pub accepted_downhill: u64,
    /// Uphill acceptances during this stage.
    pub accepted_uphill: u64,
    /// Uphill rejections during this stage.
    pub rejected_uphill: u64,
    /// Replica-exchange swaps attempted with this rung as the lower pair
    /// member (0 outside the replica-exchange strategy).
    pub swap_attempts: u64,
    /// Replica-exchange swaps accepted (subset of
    /// [`swap_attempts`](TempStats::swap_attempts)).
    pub swap_accepts: u64,
    /// Why the stage ended.
    pub ended_by: AdvanceReason,
}

// Equality compares the f64 fields *bitwise* (`to_bits`), so two runs that
// both record `NaN` (no controller attached) still compare equal — the
// determinism tests rely on `assert_eq!` over whole stats structures.
impl PartialEq for TempStats {
    fn eq(&self, other: &Self) -> bool {
        self.temp == other.temp
            && self.temperature.to_bits() == other.temperature.to_bits()
            && self.target_acceptance.to_bits() == other.target_acceptance.to_bits()
            && self.evals == other.evals
            && self.proposals == other.proposals
            && self.accepted_downhill == other.accepted_downhill
            && self.accepted_uphill == other.accepted_uphill
            && self.rejected_uphill == other.rejected_uphill
            && self.swap_attempts == other.swap_attempts
            && self.swap_accepts == other.swap_accepts
            && self.ended_by == other.ended_by
    }
}

// Reflexive even for NaN temperatures because comparison is bitwise.
impl Eq for TempStats {}

impl TempStats {
    /// Fraction of this stage's proposals accepted; 0 if none proposed.
    pub fn acceptance_rate(&self) -> f64 {
        if self.proposals == 0 {
            0.0
        } else {
            (self.accepted_downhill + self.accepted_uphill) as f64 / self.proposals as f64
        }
    }
}

/// Counters collected during a strategy run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunStats {
    /// Cost evaluations charged against the budget (random perturbations plus
    /// local-search probes).
    pub evals: u64,
    /// Random perturbations proposed.
    pub proposals: u64,
    /// Perturbations accepted because they reduced cost.
    pub accepted_downhill: u64,
    /// Uphill (or flat) perturbations accepted by the g function.
    pub accepted_uphill: u64,
    /// Uphill perturbations rejected.
    pub rejected_uphill: u64,
    /// Temperature advances triggered by the equilibrium counter.
    pub equilibrium_advances: u64,
    /// Temperature advances triggered by per-temperature budget exhaustion.
    pub budget_advances: u64,
    /// Local-optimum descents completed (Figure-2 strategy only).
    pub descents: u64,
    /// Best-cost trajectory samples `(evals, best_cost)`, if sampling was
    /// enabled on the strategy.
    pub trajectory: Vec<(u64, f64)>,
    /// Per-temperature breakdown of the counters above, one entry per
    /// temperature stage actually entered (at most the schedule length `k`).
    pub per_temp: Vec<TempStats>,
}

impl RunStats {
    /// Fraction of proposals accepted (either direction); 0 if none proposed.
    pub fn acceptance_rate(&self) -> f64 {
        if self.proposals == 0 {
            0.0
        } else {
            (self.accepted_downhill + self.accepted_uphill) as f64 / self.proposals as f64
        }
    }
}

/// The outcome of one strategy run.
#[derive(Debug, Clone)]
pub struct RunResult<S> {
    /// Best state observed during the run.
    pub best_state: S,
    /// Cost of [`best_state`](RunResult::best_state).
    pub best_cost: f64,
    /// Cost of the starting state.
    pub initial_cost: f64,
    /// Cost of the final (not necessarily best) state of the chain.
    pub final_cost: f64,
    /// Why the run stopped.
    pub stop: StopReason,
    /// Instrumentation counters.
    pub stats: RunStats,
}

impl<S> RunResult<S> {
    /// Total cost reduction achieved: `initial_cost - best_cost`.
    ///
    /// This is the metric summed over 30 instances in the paper's tables
    /// ("total reduction in \[density\] values").
    pub fn reduction(&self) -> f64 {
        self.initial_cost - self.best_cost
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reasons_display_and_parse_round_trip() {
        for r in [StopReason::Budget, StopReason::Equilibrium] {
            assert_eq!(r.to_string(), r.as_str());
            assert_eq!(r.as_str().parse::<StopReason>().unwrap(), r);
        }
        for r in [
            AdvanceReason::Budget,
            AdvanceReason::Equilibrium,
            AdvanceReason::Exchange,
        ] {
            assert_eq!(r.to_string(), r.as_str());
            assert_eq!(r.as_str().parse::<AdvanceReason>().unwrap(), r);
        }
        assert!("frozen".parse::<StopReason>().is_err());
        assert!("".parse::<AdvanceReason>().is_err());
    }

    #[test]
    fn acceptance_rate_handles_zero_proposals() {
        assert_eq!(RunStats::default().acceptance_rate(), 0.0);
    }

    #[test]
    fn temp_stats_equality_is_bitwise_on_floats() {
        let s = TempStats {
            temp: 0,
            temperature: f64::NAN,
            target_acceptance: f64::NAN,
            evals: 10,
            proposals: 10,
            accepted_downhill: 4,
            accepted_uphill: 1,
            rejected_uphill: 5,
            swap_attempts: 0,
            swap_accepts: 0,
            ended_by: AdvanceReason::Budget,
        };
        // Reflexive even with NaN fields — determinism asserts depend on it.
        assert_eq!(s, s);
        let warm = TempStats {
            temperature: 2.5,
            ..s
        };
        assert_ne!(s, warm);
        assert_eq!(warm, warm);
    }

    #[test]
    fn acceptance_rate_combines_directions() {
        let s = RunStats {
            proposals: 10,
            accepted_downhill: 3,
            accepted_uphill: 2,
            rejected_uphill: 5,
            ..Default::default()
        };
        assert!((s.acceptance_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn reduction_is_initial_minus_best() {
        let r = RunResult {
            best_state: (),
            best_cost: 60.0,
            initial_cost: 86.0,
            final_cost: 70.0,
            stop: StopReason::Budget,
            stats: RunStats::default(),
        };
        assert!((r.reduction() - 26.0).abs() < 1e-12);
    }
}
