//! Replica exchange (parallel tempering): one chain per temperature rung,
//! coupled by periodic configuration swaps.
//!
//! The paper runs its temperature ladder *serially* — Figure 1 walks the
//! schedule top to bottom. Replica exchange is the canonical modern scaling
//! of that ladder (Caracciolo–Hartmann–Kirkpatrick–Weigel, arXiv:2301.00683):
//! K chains, one pinned to each rung of the [`Schedule`](crate::Schedule),
//! advance independently and periodically attempt to *swap configurations*
//! between adjacent rungs, so a configuration trapped at a cold rung can
//! escape through the hot end of the ladder.

use rand::{rngs::StdRng, Rng, RngExt, SeedableRng};

use crate::accept::GFunction;
use crate::budget::{Budget, Meter};
use crate::problem::Problem;
use crate::seeds::derive_seed;
use crate::stats::{AdvanceReason, RunResult, RunStats, StopReason, TempStats};
use crate::trace::{ChainObserver, NoopObserver};

/// Default number of within-chain steps between swap phases.
pub const DEFAULT_EXCHANGE_INTERVAL: u64 = 64;

/// The replica-exchange (parallel tempering) control strategy.
///
/// Each of the `k = g.temperatures()` rungs owns one chain. All chains start
/// from the same configuration and advance in lockstep *segments* of
/// [`exchange_interval`](ReplicaExchange::exchange_interval) proposals;
/// after every segment a swap phase walks adjacent rung pairs (alternating
/// even/odd pairings round by round, so every pair is attempted every other
/// round) and swaps their configurations with the standard parallel-tempering
/// probability
///
/// ```text
/// p = min(1, exp((1/T_i − 1/T_j) · (h_i − h_j)))
/// ```
///
/// Within a chain, downhill moves are always accepted and uphill moves go
/// through [`GFunction::decide_figure2`] at the chain's own rung (the plain
/// ungated decision — replica exchange has no equilibrium counter; the swap
/// phases are what moves configurations across temperatures).
///
/// Determinism: each rung's chain draws from its own [`StdRng`] stream and
/// the swap phase from a dedicated stream, all derived from the caller's RNG
/// with [`derive_seed`]. Results therefore depend only on the seed — never on
/// thread count or scheduling of the surrounding harness.
///
/// # Examples
///
/// ```
/// use anneal_core::{Budget, GFunction, Problem, ReplicaExchange, Rng, RngExt};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// struct MinimizeBits;
/// impl Problem for MinimizeBits {
///     type State = u64;
///     type Move = u32;
///     fn random_state(&self, rng: &mut dyn Rng) -> u64 {
///         rng.random_range(0..1 << 16)
///     }
///     fn cost(&self, s: &u64) -> f64 {
///         s.count_ones() as f64
///     }
///     fn propose(&self, _: &u64, rng: &mut dyn Rng) -> u32 {
///         rng.random_range(0..16)
///     }
///     fn apply(&self, s: &mut u64, m: &u32) {
///         *s ^= 1 << m;
///     }
/// }
///
/// let mut rng = StdRng::seed_from_u64(5);
/// let problem = MinimizeBits;
/// let start = problem.random_state(&mut rng);
/// let mut g = GFunction::six_temp_annealing(2.0);
/// let result = ReplicaExchange::default().run(
///     &problem,
///     &mut g,
///     start,
///     Budget::evaluations(30_000),
///     &mut rng,
/// );
/// assert_eq!(result.best_cost, 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplicaExchange {
    /// Within-chain proposals per rung between swap phases.
    pub exchange_interval: u64,
    /// Sample `(evals, best_cost)` into the run's trajectory every this many
    /// evaluations; 0 disables sampling.
    pub trajectory_every: u64,
}

impl Default for ReplicaExchange {
    fn default() -> Self {
        ReplicaExchange {
            exchange_interval: DEFAULT_EXCHANGE_INTERVAL,
            trajectory_every: 0,
        }
    }
}

/// One rung's chain: its configuration, cost, RNG stream and counters.
struct Replica<S> {
    state: S,
    cost: f64,
    rng: StdRng,
    stats: TempStats,
    wall: std::time::Duration,
}

impl ReplicaExchange {
    /// A replica-exchange strategy attempting swaps every `interval`
    /// within-chain proposals (clamped to at least 1).
    pub fn with_interval(interval: u64) -> Self {
        ReplicaExchange {
            exchange_interval: interval.max(1),
            ..Self::default()
        }
    }

    /// Enables best-cost trajectory sampling every `every` evaluations.
    pub fn trajectory(mut self, every: u64) -> Self {
        self.trajectory_every = every;
        self
    }

    /// Runs the ladder from `start` until the budget is exhausted.
    ///
    /// The acceptance function's gate state is [`reset`](GFunction::reset)
    /// at the start of the run (the gate itself is never consulted).
    pub fn run<P: Problem>(
        &self,
        problem: &P,
        g: &mut GFunction,
        start: P::State,
        budget: Budget,
        rng: &mut dyn Rng,
    ) -> RunResult<P::State> {
        self.run_traced(problem, g, start, budget, rng, &mut NoopObserver)
    }

    /// Like [`run`](Self::run), reporting structured chain events to `obs`.
    ///
    /// Stage events are emitted once per rung when the run finishes: every
    /// rung but the coldest closes with [`AdvanceReason::Exchange`] (its
    /// segments were bounded by swap phases), the coldest mirrors the run's
    /// [`StopReason`]. Tracing never touches any RNG stream, so a traced run
    /// visits bitwise-identical states under the same seed.
    pub fn run_traced<P: Problem, O: ChainObserver>(
        &self,
        problem: &P,
        g: &mut GFunction,
        start: P::State,
        budget: Budget,
        rng: &mut dyn Rng,
        obs: &mut O,
    ) -> RunResult<P::State> {
        g.reset();
        let k = g.temperatures();
        let interval = self.exchange_interval.max(1);
        let initial_cost = problem.cost(&start);

        // One child stream per rung plus one for the swap decisions, all
        // derived from a single draw on the caller's RNG: replica advance
        // order can never leak into the random streams.
        let base = rng.next_u64();
        let mut swap_rng = StdRng::seed_from_u64(derive_seed(base, 0));
        let mut replicas: Vec<Replica<P::State>> = (0..k)
            .map(|r| Replica {
                state: start.clone(),
                cost: initial_cost,
                rng: StdRng::seed_from_u64(derive_seed(base, r as u64 + 1)),
                stats: TempStats {
                    temp: r,
                    temperature: g.schedule().value(r),
                    target_acceptance: f64::NAN,
                    evals: 0,
                    proposals: 0,
                    accepted_downhill: 0,
                    accepted_uphill: 0,
                    rejected_uphill: 0,
                    swap_attempts: 0,
                    swap_accepts: 0,
                    ended_by: AdvanceReason::Exchange,
                },
                wall: std::time::Duration::ZERO,
            })
            .collect();

        let mut meter = Meter::new(budget);
        let mut total_evals = 0u64;
        let mut last_sample = 0u64;
        let mut best_state = start;
        let mut best_cost = initial_cost;
        let mut stats = RunStats::default();
        if O::ENABLED {
            obs.on_run_start(initial_cost, k);
        }

        let mut round = 0usize;
        'run: loop {
            // Advance each rung's chain one segment.
            for replica in replicas.iter_mut() {
                let stage_started = if O::ENABLED {
                    Some(std::time::Instant::now())
                } else {
                    None
                };
                for _ in 0..interval {
                    if meter.exhausted() {
                        if O::ENABLED {
                            if let Some(t) = stage_started {
                                replica.wall += t.elapsed();
                            }
                        }
                        break 'run;
                    }
                    let mv = problem.propose(&replica.state, &mut replica.rng);
                    replica.stats.proposals += 1;
                    problem.apply(&mut replica.state, &mv);
                    let new_cost = problem.cost(&replica.state);
                    meter.charge(1);
                    replica.stats.evals += 1;
                    total_evals += 1;

                    if new_cost < replica.cost {
                        replica.cost = new_cost;
                        replica.stats.accepted_downhill += 1;
                    } else if g.decide_figure2(
                        replica.stats.temp,
                        replica.cost,
                        new_cost,
                        &mut replica.rng,
                    ) {
                        replica.cost = new_cost;
                        replica.stats.accepted_uphill += 1;
                    } else {
                        problem.undo(&mut replica.state, &mv);
                        replica.stats.rejected_uphill += 1;
                    }
                    if replica.cost < best_cost {
                        best_cost = replica.cost;
                        best_state = replica.state.clone();
                        if O::ENABLED {
                            obs.on_best(total_evals, best_cost);
                        }
                    }
                    if self.trajectory_every > 0
                        && total_evals - last_sample >= self.trajectory_every
                    {
                        last_sample = total_evals;
                        stats.trajectory.push((total_evals, best_cost));
                    }
                }
                if O::ENABLED {
                    if let Some(t) = stage_started {
                        replica.wall += t.elapsed();
                    }
                }
            }

            // Swap phase: adjacent pairs, alternating parity round by round.
            for lo in ((round % 2)..k.saturating_sub(1)).step_by(2) {
                let t_lo = g.schedule().value(lo);
                let t_hi = g.schedule().value(lo + 1);
                let h_lo = replicas[lo].cost;
                let h_hi = replicas[lo + 1].cost;
                replicas[lo].stats.swap_attempts += 1;
                let delta = (1.0 / t_lo - 1.0 / t_hi) * (h_lo - h_hi);
                // min(1, e^delta): draw unconditionally so the swap stream
                // stays in lockstep with the attempt sequence.
                let r = swap_rng.random_range(0.0..1.0);
                if delta >= 0.0 || r < delta.exp() {
                    replicas[lo].stats.swap_accepts += 1;
                    let (a, b) = replicas.split_at_mut(lo + 1);
                    std::mem::swap(&mut a[lo].state, &mut b[0].state);
                    std::mem::swap(&mut a[lo].cost, &mut b[0].cost);
                }
            }
            round += 1;

            if O::ENABLED {
                let coldest = replicas
                    .iter()
                    .map(|r| r.cost)
                    .fold(f64::INFINITY, f64::min);
                obs.on_energy(total_evals, coldest);
            }
        }

        // The run only ever stops on budget exhaustion: there is no
        // equilibrium counter, the swap phases keep every chain live.
        let stop = StopReason::Budget;
        let final_cost = replicas.last().map_or(initial_cost, |r| r.cost);
        if let Some(last) = replicas.last_mut() {
            last.stats.ended_by = AdvanceReason::Budget;
        }
        for replica in &replicas {
            stats.evals += replica.stats.evals;
            stats.proposals += replica.stats.proposals;
            stats.accepted_downhill += replica.stats.accepted_downhill;
            stats.accepted_uphill += replica.stats.accepted_uphill;
            stats.rejected_uphill += replica.stats.rejected_uphill;
            if O::ENABLED {
                obs.on_stage(&replica.stats, replica.wall);
            }
            stats.per_temp.push(replica.stats);
        }
        if O::ENABLED {
            obs.on_stop(stop, total_evals, final_cost, best_cost);
        }
        RunResult {
            best_state,
            best_cost,
            initial_cost,
            final_cost,
            stop,
            stats,
        }
    }

    /// Like [`run`](Self::run), additionally feeding a timed
    /// [`RunTelemetry`](crate::telemetry::RunTelemetry) record to `sink`.
    /// With `sink = None` this is exactly `run` — the clock is never read.
    pub fn run_with_telemetry<P: Problem>(
        &self,
        problem: &P,
        g: &mut GFunction,
        start: P::State,
        budget: Budget,
        rng: &mut dyn Rng,
        sink: Option<&mut dyn crate::telemetry::TelemetrySink>,
    ) -> RunResult<P::State> {
        crate::telemetry::timed(sink, || self.run(problem, g, start, budget, rng))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceCollector;

    struct BitCount;
    impl Problem for BitCount {
        type State = u64;
        type Move = u32;
        fn random_state(&self, rng: &mut dyn Rng) -> u64 {
            rng.random_range(0..(1u64 << 20))
        }
        fn cost(&self, s: &u64) -> f64 {
            s.count_ones() as f64
        }
        fn propose(&self, _: &u64, rng: &mut dyn Rng) -> u32 {
            rng.random_range(0..20)
        }
        fn apply(&self, s: &mut u64, m: &u32) {
            *s ^= 1 << m;
        }
    }

    fn run_with(g: &mut GFunction, budget: u64, seed: u64) -> RunResult<u64> {
        let p = BitCount;
        let mut rng = StdRng::seed_from_u64(seed);
        let start = p.random_state(&mut rng);
        ReplicaExchange::with_interval(32).run(&p, g, start, Budget::evaluations(budget), &mut rng)
    }

    #[test]
    fn solves_bitcount_over_a_six_rung_ladder() {
        let mut g = GFunction::six_temp_annealing(2.0);
        let r = run_with(&mut g, 60_000, 1);
        assert_eq!(r.best_cost, 0.0, "the ladder should zero 20 bits");
        assert_eq!(r.stop, StopReason::Budget);
        assert_eq!(r.stats.per_temp.len(), 6, "one stage per rung");
    }

    #[test]
    fn budget_is_respected_exactly() {
        let mut g = GFunction::six_temp_annealing(2.0);
        let r = run_with(&mut g, 777, 3);
        assert_eq!(r.stats.evals, 777, "evaluation budgets are exact");
    }

    #[test]
    fn swaps_are_attempted_and_counted_per_rung() {
        let mut g = GFunction::six_temp_annealing(2.0);
        let r = run_with(&mut g, 20_000, 5);
        let attempts: u64 = r.stats.per_temp.iter().map(|t| t.swap_attempts).sum();
        let accepts: u64 = r.stats.per_temp.iter().map(|t| t.swap_accepts).sum();
        assert!(attempts > 0, "swap phases ran");
        assert!(accepts <= attempts);
        // The coldest rung is never the lower member of a pair beyond k-2.
        assert_eq!(r.stats.per_temp[5].swap_attempts, 0);
        // Alternating parity: both even and odd pairs get attempts.
        assert!(r.stats.per_temp[0].swap_attempts > 0);
        assert!(r.stats.per_temp[1].swap_attempts > 0);
    }

    #[test]
    fn stage_reasons_mark_exchange_segments() {
        let mut g = GFunction::six_temp_annealing(2.0);
        let r = run_with(&mut g, 5_000, 7);
        for stage in &r.stats.per_temp[..5] {
            assert_eq!(stage.ended_by, AdvanceReason::Exchange);
        }
        assert_eq!(r.stats.per_temp[5].ended_by, AdvanceReason::Budget);
    }

    #[test]
    fn deterministic_under_same_seed() {
        let mut g1 = GFunction::six_temp_annealing(2.0);
        let mut g2 = GFunction::six_temp_annealing(2.0);
        let a = run_with(&mut g1, 8_000, 9);
        let b = run_with(&mut g2, 8_000, 9);
        assert_eq!(a.best_cost.to_bits(), b.best_cost.to_bits());
        assert_eq!(a.final_cost.to_bits(), b.final_cost.to_bits());
        assert_eq!(a.stats, b.stats);
    }

    #[test]
    fn traced_run_is_bitwise_identical_and_consistent() {
        let p = BitCount;
        let mut g1 = GFunction::six_temp_annealing(2.0);
        let mut g2 = GFunction::six_temp_annealing(2.0);
        let untraced = run_with(&mut g1, 8_000, 33);
        let mut rng = StdRng::seed_from_u64(33);
        let start = p.random_state(&mut rng);
        let mut obs = TraceCollector::new();
        let traced = ReplicaExchange::with_interval(32).run_traced(
            &p,
            &mut g2,
            start,
            Budget::evaluations(8_000),
            &mut rng,
            &mut obs,
        );
        assert_eq!(untraced.best_cost.to_bits(), traced.best_cost.to_bits());
        assert_eq!(untraced.final_cost.to_bits(), traced.final_cost.to_bits());
        assert_eq!(untraced.stats, traced.stats);
        let t = obs.trace();
        assert_eq!(t.temperatures, 6);
        assert_eq!(t.stages.len(), traced.stats.per_temp.len());
        for (st, ts) in t.stages.iter().zip(&traced.stats.per_temp) {
            assert_eq!(&st.stats, ts);
        }
        let (budget, equilibrium, exchange) = t.stage_reasons();
        assert_eq!((budget, equilibrium), (1, 0));
        assert_eq!(exchange, 5);
        let stop = t.stop.expect("stop event recorded");
        assert_eq!(stop.reason, StopReason::Budget);
        assert!(!t.samples.is_empty(), "per-segment energy trajectory");
    }

    #[test]
    fn single_rung_ladder_degenerates_to_metropolis_chain() {
        let mut g = GFunction::metropolis(0.5);
        let r = run_with(&mut g, 30_000, 11);
        assert_eq!(r.stats.per_temp.len(), 1);
        assert_eq!(r.stats.per_temp[0].swap_attempts, 0);
        assert_eq!(r.best_cost, 0.0);
    }

    #[test]
    fn trajectory_sampling_records_monotone_best() {
        let p = BitCount;
        let mut rng = StdRng::seed_from_u64(17);
        let start = p.random_state(&mut rng);
        let mut g = GFunction::six_temp_annealing(2.0);
        let r = ReplicaExchange::with_interval(16).trajectory(500).run(
            &p,
            &mut g,
            start,
            Budget::evaluations(10_000),
            &mut rng,
        );
        assert!(!r.stats.trajectory.is_empty());
        for w in r.stats.trajectory.windows(2) {
            assert!(w[0].0 < w[1].0, "eval counts increase");
            assert!(w[0].1 >= w[1].1, "best cost never worsens");
        }
    }

    #[test]
    fn stats_balance_per_rung() {
        let mut g = GFunction::six_temp_annealing(2.0);
        let r = run_with(&mut g, 6_000, 13);
        for t in &r.stats.per_temp {
            assert_eq!(
                t.proposals,
                t.accepted_downhill + t.accepted_uphill + t.rejected_uphill,
                "rung {}: no proposal is ever dropped",
                t.temp
            );
            assert_eq!(t.evals, t.proposals);
        }
        let per_rung: u64 = r.stats.per_temp.iter().map(|t| t.evals).sum();
        assert_eq!(per_rung, r.stats.evals);
    }
}
