//! The paper's two Monte Carlo control strategies.
//!
//! * [`Figure1`] — the Metropolis/Kirkpatrick adaptation: random
//!   perturbations, downhill always accepted, uphill accepted with
//!   probability `g_temp`, equilibrium counter advancing the temperature.
//! * [`Figure2`] — the Cohoon/Sahni variant: descend to a local optimum
//!   first, then attempt uphill kicks.
//! * [`Rejectionless`] — the Greene/Supowit [GREE84] variant discussed in
//!   §2: weigh every neighbor and sample one, so no step is wasted on a
//!   rejection (at the cost of evaluating the whole neighborhood).
//!
//! Both strategies charge every cost evaluation against a shared
//! [`Budget`](crate::Budget) split evenly over the temperature schedule, so
//! methods can be compared at equal computational cost (§3).

mod fig1;
mod fig2;
mod rejectionless;

pub use fig1::Figure1;
pub use fig2::Figure2;
pub use rejectionless::Rejectionless;

use crate::budget::{Budget, Meter};
use crate::problem::Problem;
use crate::stats::RunStats;

/// Default equilibrium counter limit `n` (the paper states the mechanism but
/// not the constant; see DESIGN.md).
pub const DEFAULT_EQUILIBRIUM: u64 = 250;

/// Shared bookkeeping for a strategy run: per-temperature metering, best-state
/// tracking, statistics and optional trajectory sampling.
pub(crate) struct Run<P: Problem> {
    pub stats: RunStats,
    pub meter: Meter,
    per_temp: Budget,
    pub temp: usize,
    k: usize,
    pub counter: u64,
    pub total_evals: u64,
    trajectory_every: u64,
    last_sample: u64,
    pub best_state: P::State,
    pub best_cost: f64,
}

impl<P: Problem> Run<P> {
    pub fn new(
        budget: Budget,
        k: usize,
        trajectory_every: u64,
        start: &P::State,
        cost: f64,
    ) -> Self {
        let per_temp = budget.split(k);
        Run {
            stats: RunStats::default(),
            meter: Meter::new(per_temp),
            per_temp,
            temp: 0,
            k,
            counter: 0,
            total_evals: 0,
            trajectory_every,
            last_sample: 0,
            best_state: start.clone(),
            best_cost: cost,
        }
    }

    /// Charges `n` evaluations and samples the trajectory if due.
    pub fn charge(&mut self, n: u64) {
        self.meter.charge(n);
        self.total_evals += n;
        self.stats.evals += n;
        if self.trajectory_every > 0 && self.total_evals - self.last_sample >= self.trajectory_every
        {
            self.last_sample = self.total_evals;
            self.stats
                .trajectory
                .push((self.total_evals, self.best_cost));
        }
    }

    /// Records a new best state if `cost` improves on the incumbent.
    pub fn observe(&mut self, state: &P::State, cost: f64) {
        if cost < self.best_cost {
            self.best_cost = cost;
            self.best_state = state.clone();
        }
    }

    /// Advances to the next temperature if one remains, resetting the
    /// equilibrium counter and the per-temperature meter. Returns `false`
    /// when already at the last temperature (the caller stops the run).
    pub fn advance_temp(&mut self, due_to_budget: bool) -> bool {
        if self.temp + 1 >= self.k {
            return false;
        }
        self.temp += 1;
        self.counter = 0;
        self.meter = Meter::new(self.per_temp);
        if due_to_budget {
            self.stats.budget_advances += 1;
        } else {
            self.stats.equilibrium_advances += 1;
        }
        true
    }
}
