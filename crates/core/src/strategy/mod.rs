//! The paper's two Monte Carlo control strategies.
//!
//! * [`Figure1`] — the Metropolis/Kirkpatrick adaptation: random
//!   perturbations, downhill always accepted, uphill accepted with
//!   probability `g_temp`, equilibrium counter advancing the temperature.
//! * [`Figure2`] — the Cohoon/Sahni variant: descend to a local optimum
//!   first, then attempt uphill kicks.
//! * [`Rejectionless`] — the Greene/Supowit \[GREE84\] variant discussed in
//!   §2: weigh every neighbor and sample one, so no step is wasted on a
//!   rejection (at the cost of evaluating the whole neighborhood).
//! * [`ReplicaExchange`] — parallel tempering: one chain per temperature
//!   rung, coupled by periodic configuration swaps between adjacent rungs.
//!
//! All strategies charge every cost evaluation against a shared
//! [`Budget`] split evenly over the temperature schedule, so
//! methods can be compared at equal computational cost (§3).

mod fig1;
mod fig2;
mod rejectionless;
mod replica_exchange;

pub use fig1::Figure1;
pub use fig2::Figure2;
pub use rejectionless::Rejectionless;
pub use replica_exchange::{ReplicaExchange, DEFAULT_EXCHANGE_INTERVAL};

use std::time::Instant;

use crate::accept::GFunction;
use crate::budget::{Budget, Meter};
use crate::problem::Problem;
use crate::schedule::adaptive::AcceptanceController;
use crate::stats::{AdvanceReason, RunResult, RunStats, StopReason, TempStats};
use crate::trace::ChainObserver;

/// Default equilibrium counter limit `n` (the paper states the mechanism but
/// not the constant; see DESIGN.md).
pub const DEFAULT_EQUILIBRIUM: u64 = 250;

/// Shared bookkeeping for a strategy run: per-temperature metering, best-state
/// tracking, statistics and optional trajectory sampling.
pub(crate) struct Run<P: Problem> {
    pub stats: RunStats,
    pub meter: Meter,
    per_temp: Budget,
    pub temp: usize,
    k: usize,
    pub counter: u64,
    pub total_evals: u64,
    trajectory_every: u64,
    last_sample: u64,
    pub best_state: P::State,
    pub best_cost: f64,
    /// Cumulative-counter snapshot at the start of the current temperature
    /// stage, for the per-temperature breakdown.
    stage_mark: StageMark,
    /// The temperature value the current stage runs at, recorded into its
    /// [`TempStats`]; `NaN` when the strategy has none (e.g. rejectionless
    /// freezing past the schedule, or strategies that never set it).
    pub stage_temperature: f64,
    /// The adaptive controller's acceptance target for the current stage;
    /// `NaN` when no controller is attached.
    pub stage_target: f64,
    /// Start of the current temperature stage; populated only when the run
    /// has an enabled [`ChainObserver`] (untraced runs never read the clock).
    stage_started: Option<Instant>,
}

/// Snapshot of the cumulative counters at a temperature boundary.
#[derive(Debug, Clone, Copy, Default)]
struct StageMark {
    evals: u64,
    proposals: u64,
    accepted_downhill: u64,
    accepted_uphill: u64,
    rejected_uphill: u64,
}

impl<P: Problem> Run<P> {
    /// `traced` is the caller's `O::ENABLED`: it decides whether stage wall
    /// times are measured at all.
    pub fn new(
        budget: Budget,
        k: usize,
        trajectory_every: u64,
        start: &P::State,
        cost: f64,
        traced: bool,
    ) -> Self {
        let per_temp = budget.split(k);
        Run {
            stats: RunStats::default(),
            meter: Meter::new(per_temp),
            per_temp,
            temp: 0,
            k,
            counter: 0,
            total_evals: 0,
            trajectory_every,
            last_sample: 0,
            best_state: start.clone(),
            best_cost: cost,
            stage_mark: StageMark::default(),
            stage_temperature: f64::NAN,
            stage_target: f64::NAN,
            stage_started: if traced { Some(Instant::now()) } else { None },
        }
    }

    /// Records the temperature (and, with a `controller`, the acceptance
    /// target) of the stage just entered, applying the controller's feedback
    /// correction to the g function first. Figure-1/Figure-2 call this at
    /// run start and after every temperature advance.
    ///
    /// The correction is pure arithmetic over already-collected statistics —
    /// it never draws randomness — so runs stay bitwise deterministic.
    pub fn enter_stage(&mut self, g: &mut GFunction, controller: Option<&AcceptanceController>) {
        if let Some(c) = controller {
            self.stage_target = c.target(self.temp, self.k);
            if let Some(prev) = self.stats.per_temp.last() {
                let planned = g.schedule().value(self.temp);
                let corrected = c.adjust(planned, prev.acceptance_rate(), prev.target_acceptance);
                g.set_temperature(self.temp, corrected);
            }
        }
        self.stage_temperature = g.schedule().value(self.temp);
    }

    /// Charges `n` evaluations and samples the trajectory if due.
    pub fn charge(&mut self, n: u64) {
        self.meter.charge(n);
        self.total_evals += n;
        self.stats.evals += n;
        if self.trajectory_every > 0 && self.total_evals - self.last_sample >= self.trajectory_every
        {
            self.last_sample = self.total_evals;
            self.stats
                .trajectory
                .push((self.total_evals, self.best_cost));
        }
    }

    /// Records a new best state if `cost` improves on the incumbent.
    pub fn observe<O: ChainObserver>(&mut self, state: &P::State, cost: f64, obs: &mut O) {
        if cost < self.best_cost {
            self.best_cost = cost;
            self.best_state = state.clone();
            if O::ENABLED {
                obs.on_best(self.total_evals, cost);
            }
        }
    }

    /// Advances to the next temperature if one remains, resetting the
    /// equilibrium counter and the per-temperature meter. Returns `false`
    /// when already at the last temperature (the caller stops the run).
    pub fn advance_temp<O: ChainObserver>(&mut self, due_to_budget: bool, obs: &mut O) -> bool {
        let reason = if due_to_budget {
            AdvanceReason::Budget
        } else {
            AdvanceReason::Equilibrium
        };
        if self.temp + 1 >= self.k {
            return false;
        }
        self.close_stage(reason, obs);
        self.temp += 1;
        self.counter = 0;
        self.meter = Meter::new(self.per_temp);
        if due_to_budget {
            self.stats.budget_advances += 1;
        } else {
            self.stats.equilibrium_advances += 1;
        }
        true
    }

    /// Records the finished temperature stage as the delta between the
    /// cumulative counters and the last boundary snapshot, reporting it (with
    /// its wall time) to the observer.
    fn close_stage<O: ChainObserver>(&mut self, ended_by: AdvanceReason, obs: &mut O) {
        let mark = self.stage_mark;
        let entry = TempStats {
            temp: self.temp,
            temperature: self.stage_temperature,
            target_acceptance: self.stage_target,
            evals: self.stats.evals - mark.evals,
            proposals: self.stats.proposals - mark.proposals,
            accepted_downhill: self.stats.accepted_downhill - mark.accepted_downhill,
            accepted_uphill: self.stats.accepted_uphill - mark.accepted_uphill,
            rejected_uphill: self.stats.rejected_uphill - mark.rejected_uphill,
            swap_attempts: 0,
            swap_accepts: 0,
            ended_by,
        };
        if O::ENABLED {
            let wall = self.stage_started.map(|t| t.elapsed()).unwrap_or_default();
            obs.on_stage(&entry, wall);
            self.stage_started = Some(Instant::now());
        }
        self.stats.per_temp.push(entry);
        self.stage_mark = StageMark {
            evals: self.stats.evals,
            proposals: self.stats.proposals,
            accepted_downhill: self.stats.accepted_downhill,
            accepted_uphill: self.stats.accepted_uphill,
            rejected_uphill: self.stats.rejected_uphill,
        };
    }

    /// Closes the final temperature stage and assembles the [`RunResult`].
    /// Every strategy ends its run through here so the per-temperature
    /// breakdown always covers the whole run.
    pub fn finish<O: ChainObserver>(
        mut self,
        stop: StopReason,
        initial_cost: f64,
        final_cost: f64,
        obs: &mut O,
    ) -> RunResult<P::State> {
        let ended_by = match stop {
            StopReason::Budget => AdvanceReason::Budget,
            StopReason::Equilibrium => AdvanceReason::Equilibrium,
        };
        self.close_stage(ended_by, obs);
        if O::ENABLED {
            obs.on_stop(stop, self.total_evals, final_cost, self.best_cost);
        }
        RunResult {
            best_state: self.best_state,
            best_cost: self.best_cost,
            initial_cost,
            final_cost,
            stop,
            stats: self.stats,
        }
    }
}
