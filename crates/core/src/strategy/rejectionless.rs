//! The rejectionless ("without rejected moves") method of Greene & Supowit
//! [GREE84], discussed in §2 of the paper:
//!
//! > "[GREE84] develops a method to improve the run time performance of
//! > annealing at low temperatures. The method proposed trades computer
//! > time with computer space. In fact, the authors themselves state that
//! > the memory cost is great."
//!
//! Instead of proposing random perturbations and rejecting most of them at
//! low temperature, each step weighs **every** neighbor `j` by its
//! acceptance probability `g_temp(h(i), h(j))` (1 for downhill moves) and
//! samples one move from that distribution — so every step moves. The cost
//! is evaluating the whole neighborhood per step, which is exactly the
//! time/space trade the paper quotes; the budget accounting charges one
//! evaluation per weighed neighbor, keeping comparisons against Figure 1/2
//! honest.

use rand::{Rng, RngExt};

use super::Run;
use crate::accept::GFunction;
use crate::budget::Budget;
use crate::problem::Problem;
use crate::stats::{RunResult, StopReason};
use crate::trace::{ChainObserver, NoopObserver};

/// The \[GREE84\] rejectionless strategy.
///
/// Requires the problem to implement [`Problem::all_moves`]; with the
/// default empty neighborhood the run stops immediately (zero evaluations).
///
/// Temperature control: the budget is split evenly across the schedule as
/// in the other strategies; a temperature advances when its share is
/// exhausted or when the chain **freezes** (every neighbor has acceptance
/// probability 0).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Rejectionless {
    /// Sample `(evals, best_cost)` every this many evaluations; 0 disables.
    pub trajectory_every: u64,
}

impl Rejectionless {
    /// Enables best-cost trajectory sampling every `every` evaluations.
    pub fn trajectory(mut self, every: u64) -> Self {
        self.trajectory_every = every;
        self
    }

    /// Runs the strategy from `start`.
    pub fn run<P: Problem>(
        &self,
        problem: &P,
        g: &mut GFunction,
        start: P::State,
        budget: Budget,
        rng: &mut dyn Rng,
    ) -> RunResult<P::State> {
        self.run_traced(problem, g, start, budget, rng, &mut NoopObserver)
    }

    /// Like [`run`](Self::run), reporting structured chain events to `obs`.
    ///
    /// The observer parameter is monomorphized: with [`NoopObserver`] this
    /// compiles to exactly `run`, and tracing never touches the RNG.
    pub fn run_traced<P: Problem, O: ChainObserver>(
        &self,
        problem: &P,
        g: &mut GFunction,
        start: P::State,
        budget: Budget,
        rng: &mut dyn Rng,
        obs: &mut O,
    ) -> RunResult<P::State> {
        g.reset();
        let k = g.temperatures();
        let mut state = start;
        let mut cost = problem.cost(&state);
        let initial_cost = cost;
        let mut run = Run::<P>::new(budget, k, self.trajectory_every, &state, cost, O::ENABLED);
        run.stage_temperature = g.schedule().value(0);
        if O::ENABLED {
            obs.on_run_start(initial_cost, k);
        }

        // Neighborhood and weight buffers are reused across steps; problems
        // overriding `all_moves_into` fill them with no per-step allocation.
        let mut moves: Vec<P::Move> = Vec::new();
        let mut weights: Vec<f64> = Vec::new();
        let stop = loop {
            if run.meter.exhausted() {
                if !run.advance_temp(true, obs) {
                    break StopReason::Budget;
                }
                run.stage_temperature = g.schedule().value(run.temp);
            }
            problem.all_moves_into(&state, &mut moves);
            if moves.is_empty() {
                // Neighborhood enumeration unsupported (or a degenerate
                // instance): nothing to sample.
                break StopReason::Equilibrium;
            }

            // Weigh every neighbor by its acceptance probability.
            weights.clear();
            let mut total = 0.0;
            for mv in &moves {
                problem.apply(&mut state, mv);
                let neighbor_cost = problem.cost(&state);
                problem.undo(&mut state, mv);
                let p = if neighbor_cost < cost {
                    1.0
                } else {
                    g.probability(run.temp, cost, neighbor_cost)
                };
                weights.push(p);
                total += p;
            }
            run.stats.proposals += moves.len() as u64;
            run.charge(moves.len() as u64);

            if total <= 0.0 {
                // Frozen at this temperature: advance or stop.
                if !run.advance_temp(false, obs) {
                    break StopReason::Equilibrium;
                }
                run.stage_temperature = g.schedule().value(run.temp);
                continue;
            }

            // Sample a move proportionally to its weight.
            let mut r = rng.random_range(0.0..total);
            let mut chosen = moves.len() - 1;
            for (i, w) in weights.iter().enumerate() {
                if r < *w {
                    chosen = i;
                    break;
                }
                r -= w;
            }
            problem.apply(&mut state, &moves[chosen]);
            let new_cost = problem.cost(&state);
            if new_cost < cost {
                run.stats.accepted_downhill += 1;
                g.note_downhill();
            } else {
                run.stats.accepted_uphill += 1;
            }
            cost = new_cost;
            if O::ENABLED {
                obs.on_energy(run.total_evals, cost);
            }
            run.observe(&state, cost, obs);
        };

        run.finish(stop, initial_cost, cost, obs)
    }

    /// Like [`run`](Self::run), additionally feeding a timed
    /// [`RunTelemetry`](crate::telemetry::RunTelemetry) record to `sink`.
    /// With `sink = None` this is exactly `run` — the clock is never read.
    pub fn run_with_telemetry<P: Problem>(
        &self,
        problem: &P,
        g: &mut GFunction,
        start: P::State,
        budget: Budget,
        rng: &mut dyn Rng,
        sink: Option<&mut dyn crate::telemetry::TelemetrySink>,
    ) -> RunResult<P::State> {
        crate::telemetry::timed(sink, || self.run(problem, g, start, budget, rng))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    struct BitCount;
    impl Problem for BitCount {
        type State = u64;
        type Move = u32;
        fn random_state(&self, rng: &mut dyn Rng) -> u64 {
            rng.random_range(0..(1u64 << 16))
        }
        fn cost(&self, s: &u64) -> f64 {
            s.count_ones() as f64
        }
        fn propose(&self, _: &u64, rng: &mut dyn Rng) -> u32 {
            rng.random_range(0..16)
        }
        fn apply(&self, s: &mut u64, m: &u32) {
            *s ^= 1 << m;
        }
        fn all_moves(&self, _: &u64) -> Vec<u32> {
            (0..16).collect()
        }
    }

    #[test]
    fn solves_bitcount() {
        let p = BitCount;
        let mut rng = StdRng::seed_from_u64(1);
        let start = p.random_state(&mut rng);
        let mut g = GFunction::six_temp_annealing(1.0);
        let r =
            Rejectionless::default().run(&p, &mut g, start, Budget::evaluations(30_000), &mut rng);
        assert_eq!(r.best_cost, 0.0);
        // Every step moves: accepted counts equal steps, no rejections.
        assert_eq!(r.stats.rejected_uphill, 0);
        assert_eq!(
            r.stats.proposals,
            (r.stats.accepted_downhill + r.stats.accepted_uphill) * 16
        );
    }

    #[test]
    fn frozen_chain_stops_at_last_temperature() {
        // A Boltzmann g at an astronomically low temperature freezes as soon
        // as the state reaches the global optimum (every neighbor uphill
        // with p = 0).
        let p = BitCount;
        let mut rng = StdRng::seed_from_u64(2);
        let mut g = GFunction::metropolis(1e-15);
        let r =
            Rejectionless::default().run(&p, &mut g, 1, Budget::evaluations(1_000_000), &mut rng);
        assert_eq!(r.best_cost, 0.0);
        assert_eq!(
            r.stop,
            StopReason::Equilibrium,
            "froze before budget ran out"
        );
        assert!(r.stats.evals < 1_000_000);
    }

    #[test]
    fn unsupported_problem_stops_immediately() {
        struct NoNeighborhood;
        impl Problem for NoNeighborhood {
            type State = i64;
            type Move = i64;
            fn random_state(&self, _: &mut dyn Rng) -> i64 {
                0
            }
            fn cost(&self, s: &i64) -> f64 {
                *s as f64
            }
            fn propose(&self, _: &i64, _: &mut dyn Rng) -> i64 {
                1
            }
            fn apply(&self, s: &mut i64, m: &i64) {
                *s += m;
            }
        }
        let mut rng = StdRng::seed_from_u64(3);
        let mut g = GFunction::unit();
        let r = Rejectionless::default().run(
            &NoNeighborhood,
            &mut g,
            5,
            Budget::evaluations(100),
            &mut rng,
        );
        assert_eq!(r.stats.evals, 0);
        assert_eq!(r.best_cost, 5.0);
    }

    #[test]
    fn deterministic() {
        let p = BitCount;
        let run = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            let start = p.random_state(&mut rng);
            let mut g = GFunction::six_temp_annealing(1.0);
            Rejectionless::default().run(&p, &mut g, start, Budget::evaluations(5_000), &mut rng)
        };
        let a = run(9);
        let b = run(9);
        assert_eq!(a.best_cost, b.best_cost);
        assert_eq!(a.stats, b.stats);
    }
}
