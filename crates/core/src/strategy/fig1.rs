//! The Figure-1 strategy: the Metropolis adaptation with Kirkpatrick's
//! several-temperature control.

use rand::Rng;

use super::{Run, DEFAULT_EQUILIBRIUM};
use crate::accept::GFunction;
use crate::budget::Budget;
use crate::problem::Problem;
use crate::schedule::adaptive::AcceptanceController;
use crate::stats::{RunResult, StopReason};
use crate::trace::{ChainObserver, NoopObserver};

/// The paper's Figure-1 control strategy.
///
/// ```text
/// Step 1  let i be a random feasible solution. temp = 1. counter = 0
/// Step 2  let j be a random perturbation of i
/// Step 3  if h(j)-h(i) < 0 then [i = j, update best, counter = 0, go to 2]
/// Step 4  [h(j)-h(i) >= 0] if counter >= n then
///             [if temp = k then stop
///              else [temp = temp+1, counter = 0, go to 2]]
///         otherwise, r = random
///             if r < g_temp(h(i),h(j)) then [i = j, counter = 0]
///             else [counter = counter+1]
///         go to 2
/// ```
///
/// In addition to the equilibrium counter, each temperature is limited to
/// `⌈budget/k⌉` evaluations (the paper's per-temperature time allotment);
/// exhausting the final temperature's share stops the run.
///
/// # Examples
///
/// ```
/// use anneal_core::{Budget, Figure1, GFunction, Problem, Rng, RngExt};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// struct MinimizeBits;
/// impl Problem for MinimizeBits {
///     type State = u64;
///     type Move = u32;
///     fn random_state(&self, rng: &mut dyn Rng) -> u64 {
///         rng.random_range(0..1 << 16)
///     }
///     fn cost(&self, s: &u64) -> f64 {
///         s.count_ones() as f64
///     }
///     fn propose(&self, _: &u64, rng: &mut dyn Rng) -> u32 {
///         rng.random_range(0..16)
///     }
///     fn apply(&self, s: &mut u64, m: &u32) {
///         *s ^= 1 << m;
///     }
/// }
///
/// let mut rng = StdRng::seed_from_u64(5);
/// let problem = MinimizeBits;
/// let start = problem.random_state(&mut rng);
/// let mut g = GFunction::six_temp_annealing(2.0);
/// let result = Figure1::default().run(
///     &problem,
///     &mut g,
///     start,
///     Budget::evaluations(20_000),
///     &mut rng,
/// );
/// assert_eq!(result.best_cost, 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Figure1 {
    /// Equilibrium counter limit `n`: this many consecutive uphill rejections
    /// advance the temperature (Step 4).
    pub equilibrium: u64,
    /// Sample `(evals, best_cost)` into the run's trajectory every this many
    /// evaluations; 0 disables sampling.
    pub trajectory_every: u64,
    /// Optional adaptive acceptance-ratio controller: at each temperature
    /// advance the next stage's temperature is corrected toward the
    /// controller's target acceptance trajectory (see
    /// [`schedule::adaptive`](crate::schedule::adaptive)).
    pub controller: Option<AcceptanceController>,
}

impl Default for Figure1 {
    fn default() -> Self {
        Figure1 {
            equilibrium: DEFAULT_EQUILIBRIUM,
            trajectory_every: 0,
            controller: None,
        }
    }
}

impl Figure1 {
    /// A Figure-1 strategy with equilibrium limit `n`.
    pub fn with_equilibrium(n: u64) -> Self {
        Figure1 {
            equilibrium: n,
            ..Self::default()
        }
    }

    /// Enables best-cost trajectory sampling every `every` evaluations.
    pub fn trajectory(mut self, every: u64) -> Self {
        self.trajectory_every = every;
        self
    }

    /// Attaches (or detaches) an adaptive acceptance-ratio controller.
    pub fn with_controller(mut self, controller: Option<AcceptanceController>) -> Self {
        self.controller = controller;
        self
    }

    /// Runs the strategy from `start` until the budget or the equilibrium
    /// criterion at the last temperature stops it.
    ///
    /// The acceptance function's gate state is [`reset`](GFunction::reset)
    /// at the start of the run.
    pub fn run<P: Problem>(
        &self,
        problem: &P,
        g: &mut GFunction,
        start: P::State,
        budget: Budget,
        rng: &mut dyn Rng,
    ) -> RunResult<P::State> {
        self.run_traced(problem, g, start, budget, rng, &mut NoopObserver)
    }

    /// Like [`run`](Self::run), reporting structured chain events to `obs`.
    ///
    /// The observer parameter is monomorphized: with [`NoopObserver`] this
    /// compiles to exactly `run` (no clock reads, no extra branches), and
    /// tracing never touches the RNG, so a traced run visits bitwise-identical
    /// states under the same seed.
    pub fn run_traced<P: Problem, O: ChainObserver>(
        &self,
        problem: &P,
        g: &mut GFunction,
        start: P::State,
        budget: Budget,
        rng: &mut dyn Rng,
        obs: &mut O,
    ) -> RunResult<P::State> {
        g.reset();
        let k = g.temperatures();
        let mut state = start;
        let mut cost = problem.cost(&state);
        let initial_cost = cost;
        let mut run = Run::<P>::new(budget, k, self.trajectory_every, &state, cost, O::ENABLED);
        run.enter_stage(g, self.controller.as_ref());
        if O::ENABLED {
            obs.on_run_start(initial_cost, k);
        }

        let stop = loop {
            if run.meter.exhausted() {
                if !run.advance_temp(true, obs) {
                    break StopReason::Budget;
                }
                run.enter_stage(g, self.controller.as_ref());
                continue;
            }

            // Step 2: random perturbation.
            let mv = problem.propose(&state, rng);
            run.stats.proposals += 1;
            problem.apply(&mut state, &mv);
            let new_cost = problem.cost(&state);
            run.charge(1);

            if new_cost < cost {
                // Step 3: downhill, always accept.
                cost = new_cost;
                run.counter = 0;
                run.stats.accepted_downhill += 1;
                g.note_downhill();
                run.observe(&state, cost, obs);
            } else {
                // Step 4: uphill or flat.
                if run.counter >= self.equilibrium {
                    // Equilibrium reached: drop j, advance or stop.
                    problem.undo(&mut state, &mv);
                    if !run.advance_temp(false, obs) {
                        break StopReason::Equilibrium;
                    }
                    run.enter_stage(g, self.controller.as_ref());
                } else if g.decide_figure1(run.temp, cost, new_cost, rng) {
                    cost = new_cost;
                    run.counter = 0;
                    run.stats.accepted_uphill += 1;
                } else {
                    problem.undo(&mut state, &mv);
                    run.counter += 1;
                    run.stats.rejected_uphill += 1;
                }
            }
            if O::ENABLED {
                obs.on_energy(run.total_evals, cost);
            }
        };

        run.finish(stop, initial_cost, cost, obs)
    }

    /// Like [`run`](Self::run), additionally feeding a timed
    /// [`RunTelemetry`](crate::telemetry::RunTelemetry) record to `sink`.
    /// With `sink = None` this is exactly `run` — the clock is never read.
    pub fn run_with_telemetry<P: Problem>(
        &self,
        problem: &P,
        g: &mut GFunction,
        start: P::State,
        budget: Budget,
        rng: &mut dyn Rng,
        sink: Option<&mut dyn crate::telemetry::TelemetrySink>,
    ) -> RunResult<P::State> {
        crate::telemetry::timed(sink, || self.run(problem, g, start, budget, rng))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, RngExt, SeedableRng};

    struct BitCount;
    impl Problem for BitCount {
        type State = u64;
        type Move = u32;
        fn random_state(&self, rng: &mut dyn Rng) -> u64 {
            rng.random_range(0..(1u64 << 20))
        }
        fn cost(&self, s: &u64) -> f64 {
            s.count_ones() as f64
        }
        fn propose(&self, _: &u64, rng: &mut dyn Rng) -> u32 {
            rng.random_range(0..20)
        }
        fn apply(&self, s: &mut u64, m: &u32) {
            *s ^= 1 << m;
        }
    }

    fn run_with(g: &mut GFunction, budget: u64, seed: u64) -> RunResult<u64> {
        let p = BitCount;
        let mut rng = StdRng::seed_from_u64(seed);
        let start = p.random_state(&mut rng);
        Figure1::default().run(&p, g, start, Budget::evaluations(budget), &mut rng)
    }

    #[test]
    fn solves_bitcount_with_metropolis() {
        let mut g = GFunction::metropolis(0.5);
        let r = run_with(&mut g, 50_000, 1);
        assert_eq!(r.best_cost, 0.0, "Metropolis should zero 20 bits");
        assert!(r.reduction() > 0.0);
    }

    #[test]
    fn solves_bitcount_with_unit_g() {
        let mut g = GFunction::unit();
        let r = run_with(&mut g, 50_000, 2);
        assert_eq!(r.best_cost, 0.0, "gated g=1 should zero 20 bits");
    }

    #[test]
    fn budget_is_respected() {
        let mut g = GFunction::six_temp_annealing(2.0);
        let r = run_with(&mut g, 600, 3);
        // k=6 → 100 evals per temperature; tolerance for the final proposal.
        assert!(r.stats.evals <= 606, "evals = {}", r.stats.evals);
        assert_eq!(r.stop, StopReason::Budget);
    }

    #[test]
    fn equilibrium_stops_single_temperature() {
        // An always-reject g: Boltzmann at a tiny temperature with a large
        // delta. Cost function is constant except at zero, so from a nonzero
        // state most proposals are flat... instead use a frozen problem:
        struct Frozen;
        impl Problem for Frozen {
            type State = i64;
            type Move = i64;
            fn random_state(&self, _: &mut dyn Rng) -> i64 {
                0
            }
            fn cost(&self, s: &i64) -> f64 {
                if *s == 0 {
                    0.0
                } else {
                    100.0
                }
            }
            fn propose(&self, _: &i64, _: &mut dyn Rng) -> i64 {
                1
            }
            fn apply(&self, s: &mut i64, m: &i64) {
                *s += m;
            }
            fn undo(&self, s: &mut i64, m: &i64) {
                *s -= m;
            }
        }
        let p = Frozen;
        let mut rng = StdRng::seed_from_u64(4);
        let mut g = GFunction::metropolis(1e-9);
        let strat = Figure1::with_equilibrium(50);
        let r = strat.run(&p, &mut g, 0, Budget::evaluations(1_000_000), &mut rng);
        assert_eq!(r.stop, StopReason::Equilibrium);
        assert_eq!(r.best_cost, 0.0);
        // Exactly n rejections before the stop, plus the dropped proposal.
        assert_eq!(r.stats.rejected_uphill, 50);
        assert!(r.stats.evals <= 52);
    }

    #[test]
    fn deterministic_under_same_seed() {
        let mut g1 = GFunction::six_temp_annealing(2.0);
        let mut g2 = GFunction::six_temp_annealing(2.0);
        let a = run_with(&mut g1, 5_000, 9);
        let b = run_with(&mut g2, 5_000, 9);
        assert_eq!(a.best_cost, b.best_cost);
        assert_eq!(a.final_cost, b.final_cost);
        assert_eq!(a.stats, b.stats);
    }

    #[test]
    fn trajectory_sampling_records_monotone_best() {
        let p = BitCount;
        let mut rng = StdRng::seed_from_u64(11);
        let start = p.random_state(&mut rng);
        let mut g = GFunction::unit();
        let r = Figure1::default().trajectory(500).run(
            &p,
            &mut g,
            start,
            Budget::evaluations(10_000),
            &mut rng,
        );
        assert!(!r.stats.trajectory.is_empty());
        for w in r.stats.trajectory.windows(2) {
            assert!(w[0].0 < w[1].0, "eval counts increase");
            assert!(w[0].1 >= w[1].1, "best cost never worsens");
        }
    }

    #[test]
    fn wall_clock_budget_stops_run() {
        // A hot Metropolis g accepts almost every uphill move, so the
        // equilibrium counter keeps resetting and only the deadline can end
        // the run.
        let p = BitCount;
        let mut rng = StdRng::seed_from_u64(21);
        let start = p.random_state(&mut rng);
        let mut g = GFunction::metropolis(10.0);
        let r = Figure1::default().run(
            &p,
            &mut g,
            start,
            Budget::wall_clock(std::time::Duration::from_millis(40)),
            &mut rng,
        );
        assert_eq!(r.stop, StopReason::Budget);
        assert!(
            r.stats.evals > 0,
            "the run did real work before the deadline"
        );
        assert!(
            !r.stats.per_temp.is_empty(),
            "wall-clock runs still record per-temperature telemetry"
        );
    }

    #[test]
    fn traced_run_is_bitwise_identical_and_consistent() {
        use crate::trace::TraceCollector;
        let p = BitCount;
        let mut g1 = GFunction::six_temp_annealing(2.0);
        let mut g2 = GFunction::six_temp_annealing(2.0);
        let untraced = run_with(&mut g1, 8_000, 33);
        let mut rng = StdRng::seed_from_u64(33);
        let start = p.random_state(&mut rng);
        let mut obs = TraceCollector::new();
        let traced = Figure1::default().run_traced(
            &p,
            &mut g2,
            start,
            Budget::evaluations(8_000),
            &mut rng,
            &mut obs,
        );
        // Tracing never touches the RNG: identical to the last bit.
        assert_eq!(untraced.best_cost.to_bits(), traced.best_cost.to_bits());
        assert_eq!(untraced.final_cost.to_bits(), traced.final_cost.to_bits());
        assert_eq!(untraced.stats, traced.stats);
        // The trace mirrors the run's own accounting.
        let t = obs.trace();
        assert_eq!(t.initial_cost, traced.initial_cost);
        assert_eq!(t.stages.len(), traced.stats.per_temp.len());
        for (st, ts) in t.stages.iter().zip(&traced.stats.per_temp) {
            assert_eq!(&st.stats, ts);
        }
        let stop = t.stop.expect("stop event recorded");
        assert_eq!(stop.reason, traced.stop);
        assert_eq!(stop.final_cost.to_bits(), traced.final_cost.to_bits());
        assert_eq!(stop.best_cost.to_bits(), traced.best_cost.to_bits());
        assert!(!t.samples.is_empty(), "energy trajectory sampled");
        assert_eq!(
            t.bests.last().map(|&(_, c)| c),
            Some(traced.best_cost),
            "last best event is the final best"
        );
    }

    #[test]
    fn per_temp_records_stage_temperature() {
        let mut g = GFunction::six_temp_annealing(2.0);
        let r = run_with(&mut g, 3_000, 17);
        for ts in &r.stats.per_temp {
            // Without a controller the stage temperature is the schedule's
            // own value and no target is recorded.
            assert_eq!(
                ts.temperature.to_bits(),
                GFunction::six_temp_annealing(2.0)
                    .schedule()
                    .value(ts.temp)
                    .to_bits()
            );
            assert!(ts.target_acceptance.is_nan());
        }
    }

    #[test]
    fn controller_tracks_targets_and_stays_deterministic() {
        let p = BitCount;
        let run = || {
            let mut rng = StdRng::seed_from_u64(23);
            let start = p.random_state(&mut rng);
            let mut g = GFunction::six_temp_annealing(2.0);
            Figure1::default()
                .with_controller(Some(AcceptanceController::default()))
                .run(&p, &mut g, start, Budget::evaluations(6_000), &mut rng)
        };
        let a = run();
        let b = run();
        assert_eq!(a.best_cost.to_bits(), b.best_cost.to_bits());
        assert_eq!(a.stats, b.stats);
        let c = AcceptanceController::default();
        for ts in &a.stats.per_temp {
            assert!(ts.temperature.is_finite() && ts.temperature > 0.0);
            assert!(
                (ts.target_acceptance - c.target(ts.temp, 6)).abs() < 1e-12,
                "stage {} target {}",
                ts.temp,
                ts.target_acceptance
            );
        }
        // Feedback actually engaged: some stage after the first runs at a
        // temperature different from the uncorrected schedule.
        let base = GFunction::six_temp_annealing(2.0);
        assert!(
            a.stats
                .per_temp
                .iter()
                .skip(1)
                .any(|ts| ts.temperature.to_bits() != base.schedule().value(ts.temp).to_bits()),
            "controller never corrected a temperature"
        );
    }

    #[test]
    fn stats_balance() {
        let mut g = GFunction::metropolis(1.0);
        let r = run_with(&mut g, 5_000, 13);
        let s = &r.stats;
        // A proposal is dropped (neither accepted nor rejected) at each
        // equilibrium-triggered temperature advance and at an
        // equilibrium-triggered stop.
        let dropped = s.equilibrium_advances + u64::from(r.stop == StopReason::Equilibrium);
        assert_eq!(
            s.proposals,
            s.accepted_downhill + s.accepted_uphill + s.rejected_uphill + dropped,
        );
    }
}
