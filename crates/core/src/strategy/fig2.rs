//! The Figure-2 strategy: local optimization before uphill moves
//! (Cohoon & Sahni, [COHO83a/b]).

use rand::Rng;

use super::{Run, DEFAULT_EQUILIBRIUM};
use crate::accept::GFunction;
use crate::budget::Budget;
use crate::problem::Problem;
use crate::schedule::adaptive::AcceptanceController;
use crate::stats::{RunResult, StopReason};
use crate::trace::{ChainObserver, NoopObserver};

/// The paper's Figure-2 control strategy.
///
/// ```text
/// Step 1  let i be a random feasible solution. temp = 1. counter = 0
/// Step 2  continue to perturb i until no perturbation decreases h
/// Step 3  update the best solution found so far, if i is best
/// Step 4  if counter >= n then
///             [if temp = k then stop else [temp = temp+1, counter = 0]]
/// Step 5  counter = counter+1, r = random
///         let j be the result of a random perturbation to i
///         if r < g_temp(h(i),h(j)) then [i = j, go to Step 2]
///         go to Step 4
/// ```
///
/// The notable differences from [`Figure1`](super::Figure1) (§3):
/// perturbations that increase the objective are considered **only after a
/// local optimum has been reached**, and the counter bounds uphill *attempts*
/// per temperature (it never resets on acceptance).
///
/// Local descent uses [`Problem::improving_move`]; every cost probe the
/// problem reports is charged against the budget, reflecting the paper's
/// observation that finding a local optimum is expensive ("it takes about 20
/// seconds", §4.2.4).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Figure2 {
    /// Maximum uphill kick attempts `n` per temperature (Step 4).
    pub equilibrium: u64,
    /// Sample `(evals, best_cost)` every this many evaluations; 0 disables.
    pub trajectory_every: u64,
    /// Optional adaptive acceptance-ratio controller, as on
    /// [`Figure1`](super::Figure1): corrects each stage's temperature toward
    /// a target acceptance trajectory at temperature advances.
    pub controller: Option<AcceptanceController>,
}

impl Default for Figure2 {
    fn default() -> Self {
        Figure2 {
            equilibrium: DEFAULT_EQUILIBRIUM,
            trajectory_every: 0,
            controller: None,
        }
    }
}

impl Figure2 {
    /// A Figure-2 strategy with per-temperature kick limit `n`.
    pub fn with_equilibrium(n: u64) -> Self {
        Figure2 {
            equilibrium: n,
            ..Self::default()
        }
    }

    /// Enables best-cost trajectory sampling every `every` evaluations.
    pub fn trajectory(mut self, every: u64) -> Self {
        self.trajectory_every = every;
        self
    }

    /// Attaches (or detaches) an adaptive acceptance-ratio controller.
    pub fn with_controller(mut self, controller: Option<AcceptanceController>) -> Self {
        self.controller = controller;
        self
    }

    /// Runs the strategy from `start`.
    ///
    /// The problem must implement [`Problem::improving_move`]; with the
    /// default (`None` for every state) the strategy performs no descent and
    /// degenerates to accepted kicks only.
    pub fn run<P: Problem>(
        &self,
        problem: &P,
        g: &mut GFunction,
        start: P::State,
        budget: Budget,
        rng: &mut dyn Rng,
    ) -> RunResult<P::State> {
        self.run_traced(problem, g, start, budget, rng, &mut NoopObserver)
    }

    /// Like [`run`](Self::run), reporting structured chain events to `obs`.
    ///
    /// The observer parameter is monomorphized: with [`NoopObserver`] this
    /// compiles to exactly `run`, and tracing never touches the RNG.
    pub fn run_traced<P: Problem, O: ChainObserver>(
        &self,
        problem: &P,
        g: &mut GFunction,
        start: P::State,
        budget: Budget,
        rng: &mut dyn Rng,
        obs: &mut O,
    ) -> RunResult<P::State> {
        g.reset();
        let k = g.temperatures();
        let mut state = start;
        let mut cost = problem.cost(&state);
        let initial_cost = cost;
        let mut run = Run::<P>::new(budget, k, self.trajectory_every, &state, cost, O::ENABLED);
        run.enter_stage(g, self.controller.as_ref());
        if O::ENABLED {
            obs.on_run_start(initial_cost, k);
        }

        let stop = 'run: loop {
            // Step 2: descend to a local optimum.
            loop {
                if run.meter.exhausted() {
                    if !run.advance_temp(true, obs) {
                        break 'run StopReason::Budget;
                    }
                    run.enter_stage(g, self.controller.as_ref());
                }
                let mut probes = 0;
                let improving = problem.improving_move(&state, &mut probes);
                run.charge(probes);
                match improving {
                    Some(mv) => {
                        problem.apply(&mut state, &mv);
                        cost = problem.cost(&state);
                        run.charge(1);
                        run.stats.accepted_downhill += 1;
                        if O::ENABLED {
                            obs.on_energy(run.total_evals, cost);
                        }
                    }
                    None => break,
                }
            }
            run.stats.descents += 1;

            // Step 3: update best.
            run.observe(&state, cost, obs);

            // Steps 4 & 5: uphill kicks until one is accepted.
            loop {
                if run.counter >= self.equilibrium {
                    if !run.advance_temp(false, obs) {
                        break 'run StopReason::Equilibrium;
                    }
                    run.enter_stage(g, self.controller.as_ref());
                }
                if run.meter.exhausted() {
                    if !run.advance_temp(true, obs) {
                        break 'run StopReason::Budget;
                    }
                    run.enter_stage(g, self.controller.as_ref());
                }
                run.counter += 1;
                let mv = problem.propose(&state, rng);
                run.stats.proposals += 1;
                problem.apply(&mut state, &mv);
                let new_cost = problem.cost(&state);
                run.charge(1);
                // From a local optimum every in-neighborhood move satisfies
                // h(j) >= h(i); a strictly downhill proposal (possible when
                // `propose` samples outside the enumerated neighborhood) is
                // accepted unconditionally.
                if new_cost < cost || g.decide_figure2(run.temp, cost, new_cost, rng) {
                    if new_cost < cost {
                        run.stats.accepted_downhill += 1;
                    } else {
                        run.stats.accepted_uphill += 1;
                    }
                    cost = new_cost;
                    if O::ENABLED {
                        obs.on_energy(run.total_evals, cost);
                    }
                    continue 'run; // back to Step 2
                }
                problem.undo(&mut state, &mv);
                run.stats.rejected_uphill += 1;
                if O::ENABLED {
                    obs.on_energy(run.total_evals, cost);
                }
            }
        };

        run.finish(stop, initial_cost, cost, obs)
    }

    /// Like [`run`](Self::run), additionally feeding a timed
    /// [`RunTelemetry`](crate::telemetry::RunTelemetry) record to `sink`.
    /// With `sink = None` this is exactly `run` — the clock is never read.
    pub fn run_with_telemetry<P: Problem>(
        &self,
        problem: &P,
        g: &mut GFunction,
        start: P::State,
        budget: Budget,
        rng: &mut dyn Rng,
        sink: Option<&mut dyn crate::telemetry::TelemetrySink>,
    ) -> RunResult<P::State> {
        crate::telemetry::timed(sink, || self.run(problem, g, start, budget, rng))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, RngExt, SeedableRng};

    /// Bit-count toy with full neighborhood enumeration for descent.
    struct BitCount;
    impl Problem for BitCount {
        type State = u64;
        type Move = u32;
        fn random_state(&self, rng: &mut dyn Rng) -> u64 {
            rng.random_range(0..(1u64 << 20))
        }
        fn cost(&self, s: &u64) -> f64 {
            s.count_ones() as f64
        }
        fn propose(&self, _: &u64, rng: &mut dyn Rng) -> u32 {
            rng.random_range(0..20)
        }
        fn apply(&self, s: &mut u64, m: &u32) {
            *s ^= 1 << m;
        }
        fn improving_move(&self, s: &u64, probes: &mut u64) -> Option<u32> {
            for b in 0..20 {
                *probes += 1;
                if s & (1u64 << b) != 0 {
                    return Some(b);
                }
            }
            None
        }
    }

    #[test]
    fn first_descent_finds_global_optimum_of_bitcount() {
        // Bit flipping has no false local optima, so one descent suffices.
        let p = BitCount;
        let mut rng = StdRng::seed_from_u64(1);
        let start = p.random_state(&mut rng);
        let mut g = GFunction::unit();
        let r = Figure2::default().run(&p, &mut g, start, Budget::evaluations(10_000), &mut rng);
        assert_eq!(r.best_cost, 0.0);
        assert!(r.stats.descents >= 1);
    }

    #[test]
    fn charges_descent_probes_to_budget() {
        let p = BitCount;
        let mut rng = StdRng::seed_from_u64(2);
        let start = p.random_state(&mut rng);
        let mut g = GFunction::unit();
        let r = Figure2::default().run(&p, &mut g, start, Budget::evaluations(500), &mut rng);
        // Descent probes (20 per improving-move query) dominate: far fewer
        // than 500 proposals can have been made.
        assert!(r.stats.evals >= r.stats.proposals);
        assert!(r.stats.evals <= 525, "evals = {}", r.stats.evals);
    }

    #[test]
    fn counter_bounds_kicks_per_temperature() {
        // Reject every kick: zero-probability g (Boltzmann, tiny Y) and a
        // problem already at its local optimum.
        let p = BitCount;
        let mut rng = StdRng::seed_from_u64(3);
        let mut g = GFunction::metropolis(1e-12);
        let strat = Figure2::with_equilibrium(7);
        let r = strat.run(&p, &mut g, 0, Budget::evaluations(100_000), &mut rng);
        assert_eq!(r.stop, StopReason::Equilibrium);
        assert_eq!(r.stats.proposals, 7, "exactly n kick attempts at k=1");
        assert_eq!(r.stats.rejected_uphill, 7);
    }

    #[test]
    fn accepted_kick_does_not_reset_counter() {
        // g = 1 under Figure 2 accepts every kick. With n = 5 and k = 1 the
        // run must stop after 5 kick attempts even though all are accepted.
        let p = BitCount;
        let mut rng = StdRng::seed_from_u64(4);
        let mut g = GFunction::unit();
        let strat = Figure2::with_equilibrium(5);
        let r = strat.run(&p, &mut g, 1, Budget::evaluations(1_000_000), &mut rng);
        assert_eq!(r.stop, StopReason::Equilibrium);
        assert_eq!(r.stats.proposals, 5, "counter is not reset by acceptance");
        assert_eq!(r.stats.accepted_uphill, 5, "g = 1 accepts every kick");
        assert_eq!(r.best_cost, 0.0, "descents between kicks still optimize");
    }

    #[test]
    fn deterministic_under_same_seed() {
        let p = BitCount;
        let run = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            let start = p.random_state(&mut rng);
            let mut g = GFunction::two_level();
            Figure2::default().run(&p, &mut g, start, Budget::evaluations(3_000), &mut rng)
        };
        let a = run(17);
        let b = run(17);
        assert_eq!(a.best_cost, b.best_cost);
        assert_eq!(a.stats, b.stats);
    }

    #[test]
    fn six_temperature_schedule_advances() {
        let p = BitCount;
        let mut rng = StdRng::seed_from_u64(6);
        let start = p.random_state(&mut rng);
        let mut g = GFunction::six_temp_annealing(2.0);
        let strat = Figure2::with_equilibrium(3);
        let r = strat.run(&p, &mut g, start, Budget::evaluations(50_000), &mut rng);
        // With a tiny kick limit the run sweeps all six temperatures.
        assert_eq!(r.stop, StopReason::Equilibrium);
        assert_eq!(r.stats.equilibrium_advances, 5);
    }
}
