//! Process-wide metrics: atomic counters and log-linear histograms,
//! snapshotable as JSON.
//!
//! A [`Registry`] hands out named [`Counter`]s and [`Histogram`]s; both are
//! lock-free to update (a handful of atomic operations), so they are safe to
//! touch from the experiment harness's worker threads. [`global()`]
//! is the process-wide instance the `repro` binary snapshots via
//! `--metrics PATH`; libraries and tests can also build private registries.
//!
//! Histograms are log-linear (HDR-style): values group by power of two, each
//! octave split into [`SUB_BUCKETS`] linear sub-buckets, so relative error is
//! bounded by `1/SUB_BUCKETS` across the whole `u64` range while the bucket
//! table stays a few kilobytes. The snapshot format is documented in
//! BENCHMARKS.md ("Metrics snapshots").

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Monotonic counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// A counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds 1.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Linear sub-buckets per power-of-two octave: relative bucket width (and so
/// worst-case quantile error) is `1/8`.
pub const SUB_BUCKETS: usize = 8;
const SUB_BITS: u32 = SUB_BUCKETS.trailing_zeros();
const BUCKETS: usize = SUB_BUCKETS + (64 - SUB_BITS as usize) * SUB_BUCKETS;

/// Index of the log-linear bucket holding `v`.
fn bucket_index(v: u64) -> usize {
    if v < SUB_BUCKETS as u64 {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros();
    let group = (msb - SUB_BITS) as usize;
    let sub = ((v >> (msb - SUB_BITS)) as usize) & (SUB_BUCKETS - 1);
    SUB_BUCKETS + group * SUB_BUCKETS + sub
}

/// Smallest value mapping to bucket `index` (the bucket covers
/// `[lo, lo_of_next)`).
fn bucket_lo(index: usize) -> u64 {
    if index < SUB_BUCKETS {
        return index as u64;
    }
    let group = (index - SUB_BUCKETS) / SUB_BUCKETS;
    let sub = (index - SUB_BUCKETS) % SUB_BUCKETS;
    let msb = group as u32 + SUB_BITS;
    (1u64 << msb) + ((sub as u64) << (msb - SUB_BITS))
}

/// Lock-free log-linear histogram of `u64` samples.
#[derive(Debug)]
pub struct Histogram {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Records one sample.
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded samples.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Smallest recorded sample (0 when empty).
    pub fn min(&self) -> u64 {
        let m = self.min.load(Ordering::Relaxed);
        if m == u64::MAX {
            0
        } else {
            m
        }
    }

    /// Largest recorded sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Lower bound of the bucket containing the `q`-quantile (`0 < q <= 1`);
    /// 0 when empty. Accurate to the bucket's relative width
    /// (`1/`[`SUB_BUCKETS`]).
    pub fn quantile(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let target = ((q * count as f64).ceil() as u64).clamp(1, count);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= target {
                return bucket_lo(i);
            }
        }
        self.max()
    }

    /// Non-empty buckets as `(lo, hi, count)` with `hi` exclusive.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let n = b.load(Ordering::Relaxed);
                if n == 0 {
                    return None;
                }
                let lo = bucket_lo(i);
                let hi = if i + 1 < BUCKETS {
                    bucket_lo(i + 1)
                } else {
                    u64::MAX
                };
                Some((lo, hi, n))
            })
            .collect()
    }
}

/// A named collection of counters and histograms.
#[derive(Debug, Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

/// The process-wide registry used by the experiment harness.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
        m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// The counter named `name`, created at zero on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = Self::lock(&self.counters);
        map.entry(name.to_string())
            .or_insert_with(|| Arc::new(Counter::new()))
            .clone()
    }

    /// The histogram named `name`, created empty on first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut map = Self::lock(&self.histograms);
        map.entry(name.to_string())
            .or_insert_with(|| Arc::new(Histogram::new()))
            .clone()
    }

    /// Serializes every metric as one JSON object (schema
    /// `anneal-metrics` v1; see BENCHMARKS.md). Counter and histogram names
    /// are emitted in sorted order so snapshots diff cleanly.
    pub fn snapshot_json(&self) -> String {
        let mut out = String::from("{\"schema\":\"anneal-metrics\",\"version\":1,\"counters\":[");
        {
            let map = Self::lock(&self.counters);
            for (i, (name, c)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!(
                    "{{\"name\":\"{}\",\"value\":{}}}",
                    escape(name),
                    c.get()
                ));
            }
        }
        out.push_str("],\"histograms\":[");
        {
            let map = Self::lock(&self.histograms);
            for (i, (name, h)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!(
                    "{{\"name\":\"{}\",\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\
                     \"p50\":{},\"p90\":{},\"p99\":{},\"buckets\":[",
                    escape(name),
                    h.count(),
                    h.sum(),
                    h.min(),
                    h.max(),
                    h.quantile(0.50),
                    h.quantile(0.90),
                    h.quantile(0.99),
                ));
                for (j, (lo, hi, n)) in h.nonzero_buckets().into_iter().enumerate() {
                    if j > 0 {
                        out.push(',');
                    }
                    out.push_str(&format!("{{\"lo\":{lo},\"hi\":{hi},\"count\":{n}}}"));
                }
                out.push_str("]}");
            }
        }
        out.push_str("]}");
        out
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_monotone_and_exact_for_small_values() {
        for v in 0..SUB_BUCKETS as u64 {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_lo(v as usize), v);
        }
        let mut last = 0;
        for v in [8u64, 9, 15, 16, 17, 100, 1_000, 1 << 20, u64::MAX] {
            let i = bucket_index(v);
            assert!(i >= last, "index not monotone at {v}");
            last = i;
            let lo = bucket_lo(i);
            assert!(lo <= v, "lo {lo} > v {v}");
            if i + 1 < BUCKETS {
                assert!(bucket_lo(i + 1) > v, "v {v} outside bucket {i}");
            }
        }
    }

    #[test]
    fn bucket_round_trip_at_every_power_of_two_boundary() {
        // 2^k − 1, 2^k, 2^k + 1 for every octave, plus u64::MAX: each value
        // must land in a bucket whose [lo, next_lo) range contains it, and
        // indices must stay monotone across the boundary.
        let mut boundary_values = vec![u64::MAX];
        for k in 0..64u32 {
            let p = 1u64 << k;
            boundary_values.extend([p.saturating_sub(1), p, p.saturating_add(1)]);
        }
        boundary_values.sort_unstable();
        let mut last_index = 0usize;
        for &v in &boundary_values {
            let i = bucket_index(v);
            assert!(i < BUCKETS, "index {i} out of table at {v}");
            assert!(i >= last_index, "index not monotone at {v}");
            last_index = i;
            let lo = bucket_lo(i);
            assert!(lo <= v, "lo {lo} > value {v}");
            if i + 1 < BUCKETS {
                assert!(bucket_lo(i + 1) > v, "value {v} outside bucket {i}");
            }
            assert_eq!(bucket_index(lo), i, "lo {lo} re-indexes to {i}");
        }
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        /// Values concentrated around power-of-two group boundaries, where
        /// the log-linear indexing is easiest to get wrong, plus a uniform
        /// tail over the whole `u64` range.
        fn arb_boundary_value() -> impl Strategy<Value = u64> {
            (any::<u64>(), 0u32..64, 0u32..3).prop_map(|(raw, k, offset)| match offset {
                0 => (1u64 << k).saturating_sub(1),
                1 => 1u64 << k,
                2 => (1u64 << k).saturating_add(raw % 3),
                _ => raw,
            })
        }

        proptest! {
            #[test]
            fn bucket_round_trip_holds(v in arb_boundary_value(), raw in any::<u64>()) {
                for v in [v, raw, u64::MAX] {
                    let i = bucket_index(v);
                    prop_assert!(i < BUCKETS);
                    let lo = bucket_lo(i);
                    prop_assert!(lo <= v, "lo {} > value {}", lo, v);
                    if i + 1 < BUCKETS {
                        prop_assert!(bucket_lo(i + 1) > v, "value {} outside bucket {}", v, i);
                    }
                    prop_assert_eq!(bucket_index(lo), i);
                }
            }

            #[test]
            fn bucket_index_is_monotone(a in arb_boundary_value(), b in any::<u64>()) {
                let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
                prop_assert!(bucket_index(lo) <= bucket_index(hi));
            }
        }
    }

    #[test]
    fn bucket_relative_error_is_bounded() {
        for v in [100u64, 12_345, 1 << 30, 1 << 50] {
            let lo = bucket_lo(bucket_index(v));
            let err = (v - lo) as f64 / v as f64;
            assert!(err <= 1.0 / SUB_BUCKETS as f64 + 1e-9, "err {err} at {v}");
        }
    }

    #[test]
    fn histogram_tracks_count_sum_min_max() {
        let h = Histogram::new();
        assert_eq!((h.count(), h.min(), h.max()), (0, 0, 0));
        for v in [5u64, 100, 3, 10_000] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 10_108);
        assert_eq!(h.min(), 3);
        assert_eq!(h.max(), 10_000);
    }

    #[test]
    fn quantiles_land_in_the_right_region() {
        let h = Histogram::new();
        for v in 1..=1_000u64 {
            h.record(v);
        }
        let p50 = h.quantile(0.5);
        let p99 = h.quantile(0.99);
        assert!((400..=500).contains(&p50), "p50 = {p50}");
        assert!((900..=990).contains(&p99), "p99 = {p99}");
        assert_eq!(Histogram::new().quantile(0.5), 0);
    }

    #[test]
    fn registry_returns_shared_handles() {
        let r = Registry::new();
        let a = r.counter("x");
        let b = r.counter("x");
        a.inc();
        b.add(2);
        assert_eq!(r.counter("x").get(), 3);
        let h = r.histogram("y");
        h.record(7);
        assert_eq!(r.histogram("y").count(), 1);
    }

    #[test]
    fn global_registry_is_a_singleton() {
        global().counter("test.global.singleton").inc();
        assert!(global().counter("test.global.singleton").get() >= 1);
    }

    #[test]
    fn snapshot_json_is_wellformed_and_sorted() {
        let r = Registry::new();
        r.counter("b.second").add(2);
        r.counter("a.first").inc();
        r.histogram("lat").record(42);
        let json = r.snapshot_json();
        assert!(json.starts_with("{\"schema\":\"anneal-metrics\",\"version\":1,"));
        let a = json.find("a.first").unwrap();
        let b = json.find("b.second").unwrap();
        assert!(a < b, "counters sorted by name");
        assert!(json.contains("\"p50\":"));
        // 42 falls in the log-linear bucket [40, 44).
        assert!(json.contains("\"buckets\":[{\"lo\":40,\"hi\":44,\"count\":1}]"));
    }
}
