//! Process-wide metrics: atomic counters, gauges and log-linear
//! histograms, snapshotable as JSON or Prometheus text exposition.
//!
//! A [`Registry`] hands out named [`Counter`]s, [`Gauge`]s and
//! [`Histogram`]s; all are lock-free to update (a handful of atomic
//! operations), so they are safe to touch from the experiment harness's
//! worker threads. [`global()`] is the process-wide instance the `repro`
//! binary snapshots via `--metrics PATH` and serves live via `--serve`;
//! libraries and tests can also build private registries.
//!
//! Metrics may carry **labels**: [`counter_with`](Registry::counter_with),
//! [`gauge_with`](Registry::gauge_with) and
//! [`histogram_with`](Registry::histogram_with) key a family member by its
//! name plus a sorted `(key, value)` label set, so
//! `cells_completed{table="table4.1",method="g = 1"}` and its siblings
//! share one family. [`span`] is an RAII timer recording wall time into
//! the labeled [`SPAN_METRIC`] histogram family — cheap enough for
//! cell-boundary phases, and never placed inside chain hot loops.
//!
//! Histograms are log-linear (HDR-style): values group by power of two, each
//! octave split into [`SUB_BUCKETS`] linear sub-buckets, so relative error is
//! bounded by `1/SUB_BUCKETS` across the whole `u64` range while the bucket
//! table stays a few kilobytes. The JSON snapshot format is documented in
//! BENCHMARKS.md ("Metrics snapshots"); [`render_prometheus`](Registry::render_prometheus)
//! emits the same state as Prometheus text exposition (HELP/TYPE lines,
//! cumulative `_bucket`/`_sum`/`_count` histogram series).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Monotonic counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// A counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds 1.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A settable instantaneous value (worker liveness, heartbeat ages, queue
/// depths). Stored as `f64` bits in one atomic, so reads and writes are
/// lock-free and torn-free.
#[derive(Debug)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Default for Gauge {
    fn default() -> Self {
        Self::new()
    }
}

impl Gauge {
    /// A gauge at 0.0.
    pub fn new() -> Self {
        Gauge {
            bits: AtomicU64::new(0f64.to_bits()),
        }
    }

    /// Sets the gauge to `v`.
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Adds `d` (negative to decrement). A compare-exchange loop keeps
    /// concurrent adds lossless.
    pub fn add(&self, d: f64) {
        let mut current = self.bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(current) + d).to_bits();
            match self.bits.compare_exchange_weak(
                current,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(seen) => current = seen,
            }
        }
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// Linear sub-buckets per power-of-two octave: relative bucket width (and so
/// worst-case quantile error) is `1/8`.
pub const SUB_BUCKETS: usize = 8;
const SUB_BITS: u32 = SUB_BUCKETS.trailing_zeros();
const BUCKETS: usize = SUB_BUCKETS + (64 - SUB_BITS as usize) * SUB_BUCKETS;

/// Index of the log-linear bucket holding `v`.
fn bucket_index(v: u64) -> usize {
    if v < SUB_BUCKETS as u64 {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros();
    let group = (msb - SUB_BITS) as usize;
    let sub = ((v >> (msb - SUB_BITS)) as usize) & (SUB_BUCKETS - 1);
    SUB_BUCKETS + group * SUB_BUCKETS + sub
}

/// Smallest value mapping to bucket `index` (the bucket covers
/// `[lo, lo_of_next)`).
fn bucket_lo(index: usize) -> u64 {
    if index < SUB_BUCKETS {
        return index as u64;
    }
    let group = (index - SUB_BUCKETS) / SUB_BUCKETS;
    let sub = (index - SUB_BUCKETS) % SUB_BUCKETS;
    let msb = group as u32 + SUB_BITS;
    (1u64 << msb) + ((sub as u64) << (msb - SUB_BITS))
}

/// Lock-free log-linear histogram of `u64` samples.
#[derive(Debug)]
pub struct Histogram {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Records one sample.
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded samples.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Smallest recorded sample (0 when empty).
    pub fn min(&self) -> u64 {
        let m = self.min.load(Ordering::Relaxed);
        if m == u64::MAX {
            0
        } else {
            m
        }
    }

    /// Largest recorded sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Lower bound of the bucket containing the `q`-quantile (`0 < q <= 1`),
    /// or `None` when no samples were recorded — the caller can then render
    /// `n/a` instead of a misleading 0. Accurate to the bucket's relative
    /// width (`1/`[`SUB_BUCKETS`]).
    pub fn try_quantile(&self, q: f64) -> Option<u64> {
        let count = self.count();
        if count == 0 {
            return None;
        }
        let target = ((q * count as f64).ceil() as u64).clamp(1, count);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= target {
                return Some(bucket_lo(i));
            }
        }
        Some(self.max())
    }

    /// [`try_quantile`](Self::try_quantile) with 0 as the empty sentinel
    /// (kept for callers that treat "no samples" and "all zero" alike).
    pub fn quantile(&self, q: f64) -> u64 {
        self.try_quantile(q).unwrap_or(0)
    }

    /// Non-empty buckets as `(lo, hi, count)` with `hi` exclusive.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let n = b.load(Ordering::Relaxed);
                if n == 0 {
                    return None;
                }
                let lo = bucket_lo(i);
                let hi = if i + 1 < BUCKETS {
                    bucket_lo(i + 1)
                } else {
                    u64::MAX
                };
                Some((lo, hi, n))
            })
            .collect()
    }
}

/// The histogram family name [`span`] records into, labeled by `phase`.
/// Samples are wall-clock microseconds.
pub const SPAN_METRIC: &str = "span_wall_us";

/// An RAII phase timer: created by [`span`] (or
/// [`Registry::span`]), it records the elapsed wall time in microseconds
/// into the `span_wall_us{phase="<name>"}` histogram when dropped.
#[derive(Debug)]
pub struct Span {
    hist: Arc<Histogram>,
    started: Instant,
}

impl Span {
    fn enter(registry: &Registry, phase: &str) -> Self {
        Span {
            hist: registry.histogram_with(SPAN_METRIC, &[("phase", phase)]),
            started: Instant::now(),
        }
    }

    fn enter_into(registry: &Registry, metric: &str, labels: &[(&str, &str)]) -> Self {
        Span {
            hist: registry.histogram_with(metric, labels),
            started: Instant::now(),
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        self.hist.record(self.started.elapsed().as_micros() as u64);
    }
}

/// Times a phase against the [`global`] registry: the returned guard
/// records into `span_wall_us{phase="<name>"}` when dropped. Intended for
/// coarse harness phases (probe/stage/cell/merge) — one histogram record
/// per phase, never per proposal, so chain hot paths are untouched.
pub fn span(name: &str) -> Span {
    global().span(name)
}

/// A metric's identity: its name plus a sorted label set. Label order is
/// canonicalized at construction so `[("a","1"),("b","2")]` and its
/// permutation address the same family member, and the registry's
/// `BTreeMap` ordering (name first, then labels) makes every snapshot
/// diff-stable.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct MetricId {
    name: String,
    labels: Vec<(String, String)>,
}

impl MetricId {
    fn new(name: &str, labels: &[(&str, &str)]) -> Self {
        let mut labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        labels.sort();
        MetricId {
            name: name.to_string(),
            labels,
        }
    }
}

/// A named collection of counters, gauges and histograms.
#[derive(Debug, Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<MetricId, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<MetricId, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<MetricId, Arc<Histogram>>>,
}

/// The process-wide registry used by the experiment harness.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
        m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// The counter named `name`, created at zero on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        self.counter_with(name, &[])
    }

    /// The counter named `name` with the given label set, created at zero
    /// on first use. Labels are sorted internally, so argument order does
    /// not matter.
    pub fn counter_with(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        let mut map = Self::lock(&self.counters);
        map.entry(MetricId::new(name, labels))
            .or_insert_with(|| Arc::new(Counter::new()))
            .clone()
    }

    /// The gauge named `name`, created at 0.0 on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        self.gauge_with(name, &[])
    }

    /// The gauge named `name` with the given label set, created at 0.0 on
    /// first use.
    pub fn gauge_with(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        let mut map = Self::lock(&self.gauges);
        map.entry(MetricId::new(name, labels))
            .or_insert_with(|| Arc::new(Gauge::new()))
            .clone()
    }

    /// The histogram named `name`, created empty on first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        self.histogram_with(name, &[])
    }

    /// The histogram named `name` with the given label set, created empty
    /// on first use.
    pub fn histogram_with(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Histogram> {
        let mut map = Self::lock(&self.histograms);
        map.entry(MetricId::new(name, labels))
            .or_insert_with(|| Arc::new(Histogram::new()))
            .clone()
    }

    /// An RAII phase timer recording into this registry's
    /// `span_wall_us{phase="<name>"}` histogram on drop.
    pub fn span(&self, name: &str) -> Span {
        Span::enter(self, name)
    }

    /// An RAII wall timer recording into an arbitrary histogram family of
    /// this registry — the same guard as [`Registry::span`] but with the
    /// metric name and label set chosen by the caller, for subsystems
    /// whose timings deserve their own family (the job server records
    /// `job_wall_us{problem="..."}` rather than overloading
    /// [`SPAN_METRIC`]'s `phase` label). Samples are microseconds.
    pub fn span_into(&self, metric: &str, labels: &[(&str, &str)]) -> Span {
        Span::enter_into(self, metric, labels)
    }

    /// Serializes every metric as one JSON object (schema
    /// `anneal-metrics` v2; see BENCHMARKS.md). Metrics are emitted in
    /// sorted (name, labels) order so snapshots diff cleanly; labeled
    /// entries carry a `labels` object. v2 added gauges and labels; v1
    /// snapshots had neither.
    pub fn snapshot_json(&self) -> String {
        let labels_json = |id: &MetricId| -> String {
            if id.labels.is_empty() {
                return String::new();
            }
            let body: Vec<String> = id
                .labels
                .iter()
                .map(|(k, v)| format!("\"{}\":\"{}\"", escape(k), escape(v)))
                .collect();
            format!("\"labels\":{{{}}},", body.join(","))
        };
        let mut out = String::from("{\"schema\":\"anneal-metrics\",\"version\":2,\"counters\":[");
        {
            let map = Self::lock(&self.counters);
            for (i, (id, c)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!(
                    "{{\"name\":\"{}\",{}\"value\":{}}}",
                    escape(&id.name),
                    labels_json(id),
                    c.get()
                ));
            }
        }
        out.push_str("],\"gauges\":[");
        {
            let map = Self::lock(&self.gauges);
            for (i, (id, g)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let v = g.get();
                let value = if v.is_finite() {
                    format!("{v}")
                } else {
                    // JSON has no NaN/Infinity; null mirrors the WAL
                    // serializer's convention.
                    "null".to_string()
                };
                out.push_str(&format!(
                    "{{\"name\":\"{}\",{}\"value\":{value}}}",
                    escape(&id.name),
                    labels_json(id),
                ));
            }
        }
        out.push_str("],\"histograms\":[");
        {
            let map = Self::lock(&self.histograms);
            for (i, (id, h)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!(
                    "{{\"name\":\"{}\",{}\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\
                     \"p50\":{},\"p90\":{},\"p99\":{},\"buckets\":[",
                    escape(&id.name),
                    labels_json(id),
                    h.count(),
                    h.sum(),
                    h.min(),
                    h.max(),
                    h.quantile(0.50),
                    h.quantile(0.90),
                    h.quantile(0.99),
                ));
                for (j, (lo, hi, n)) in h.nonzero_buckets().into_iter().enumerate() {
                    if j > 0 {
                        out.push(',');
                    }
                    out.push_str(&format!("{{\"lo\":{lo},\"hi\":{hi},\"count\":{n}}}"));
                }
                out.push_str("]}");
            }
        }
        out.push_str("]}");
        out
    }

    /// Renders every metric in the Prometheus text exposition format
    /// (version 0.0.4): `# HELP`/`# TYPE` lines per family, escaped label
    /// values, and histograms as cumulative `_bucket`/`_sum`/`_count`
    /// series derived from the log-linear buckets (each `le` is the
    /// bucket's exclusive upper bound, plus the mandatory `+Inf` bucket).
    /// Dotted metric names are sanitized to `_` for the Prometheus name
    /// grammar; the `# HELP` line keeps the original name.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::with_capacity(1024);

        let counters: Vec<(MetricId, u64)> = {
            let map = Self::lock(&self.counters);
            map.iter().map(|(id, c)| (id.clone(), c.get())).collect()
        };
        let mut last_name: Option<String> = None;
        for (id, value) in &counters {
            let prom = prom_name(&id.name);
            if last_name.as_deref() != Some(&id.name) {
                out.push_str(&format!(
                    "# HELP {prom} {}\n# TYPE {prom} counter\n",
                    id.name
                ));
                last_name = Some(id.name.clone());
            }
            out.push_str(&format!(
                "{prom}{} {value}\n",
                prom_labels(&id.labels, None)
            ));
        }

        let gauges: Vec<(MetricId, f64)> = {
            let map = Self::lock(&self.gauges);
            map.iter().map(|(id, g)| (id.clone(), g.get())).collect()
        };
        let mut last_name: Option<String> = None;
        for (id, value) in &gauges {
            let prom = prom_name(&id.name);
            if last_name.as_deref() != Some(&id.name) {
                out.push_str(&format!("# HELP {prom} {}\n# TYPE {prom} gauge\n", id.name));
                last_name = Some(id.name.clone());
            }
            out.push_str(&format!(
                "{prom}{} {}\n",
                prom_labels(&id.labels, None),
                prom_f64(*value)
            ));
        }

        let histograms: Vec<(MetricId, Arc<Histogram>)> = {
            let map = Self::lock(&self.histograms);
            map.iter().map(|(id, h)| (id.clone(), h.clone())).collect()
        };
        let mut last_name: Option<String> = None;
        for (id, h) in &histograms {
            let prom = prom_name(&id.name);
            if last_name.as_deref() != Some(&id.name) {
                out.push_str(&format!(
                    "# HELP {prom} {}\n# TYPE {prom} histogram\n",
                    id.name
                ));
                last_name = Some(id.name.clone());
            }
            let mut cumulative = 0u64;
            for (_lo, hi, n) in h.nonzero_buckets() {
                cumulative += n;
                out.push_str(&format!(
                    "{prom}_bucket{} {cumulative}\n",
                    prom_labels(&id.labels, Some(&hi.to_string()))
                ));
            }
            out.push_str(&format!(
                "{prom}_bucket{} {}\n",
                prom_labels(&id.labels, Some("+Inf")),
                h.count()
            ));
            out.push_str(&format!(
                "{prom}_sum{} {}\n",
                prom_labels(&id.labels, None),
                h.sum()
            ));
            out.push_str(&format!(
                "{prom}_count{} {}\n",
                prom_labels(&id.labels, None),
                h.count()
            ));
        }
        out
    }
}

/// Maps a dotted metric name onto the Prometheus name grammar
/// (`[a-zA-Z_:][a-zA-Z0-9_:]*`): every other character becomes `_`.
fn prom_name(name: &str) -> String {
    let mut out: String = name
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect();
    if out.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        out.insert(0, '_');
    }
    out
}

/// The `{key="value",...}` label block, empty when there are no labels.
/// `le` (for histogram buckets) is appended last, matching Prometheus
/// convention.
fn prom_labels(labels: &[(String, String)], le: Option<&str>) -> String {
    if labels.is_empty() && le.is_none() {
        return String::new();
    }
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{}=\"{}\"", prom_name(k), escape_label(v)))
        .collect();
    if let Some(le) = le {
        parts.push(format!("le=\"{le}\""));
    }
    format!("{{{}}}", parts.join(","))
}

/// Escapes a Prometheus label value: backslash, double quote and newline.
fn escape_label(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// A float in Prometheus exposition syntax (which, unlike JSON, has
/// NaN/+Inf/-Inf tokens).
fn prom_f64(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        format!("{v}")
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_monotone_and_exact_for_small_values() {
        for v in 0..SUB_BUCKETS as u64 {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_lo(v as usize), v);
        }
        let mut last = 0;
        for v in [8u64, 9, 15, 16, 17, 100, 1_000, 1 << 20, u64::MAX] {
            let i = bucket_index(v);
            assert!(i >= last, "index not monotone at {v}");
            last = i;
            let lo = bucket_lo(i);
            assert!(lo <= v, "lo {lo} > v {v}");
            if i + 1 < BUCKETS {
                assert!(bucket_lo(i + 1) > v, "v {v} outside bucket {i}");
            }
        }
    }

    #[test]
    fn bucket_round_trip_at_every_power_of_two_boundary() {
        // 2^k − 1, 2^k, 2^k + 1 for every octave, plus u64::MAX: each value
        // must land in a bucket whose [lo, next_lo) range contains it, and
        // indices must stay monotone across the boundary.
        let mut boundary_values = vec![u64::MAX];
        for k in 0..64u32 {
            let p = 1u64 << k;
            boundary_values.extend([p.saturating_sub(1), p, p.saturating_add(1)]);
        }
        boundary_values.sort_unstable();
        let mut last_index = 0usize;
        for &v in &boundary_values {
            let i = bucket_index(v);
            assert!(i < BUCKETS, "index {i} out of table at {v}");
            assert!(i >= last_index, "index not monotone at {v}");
            last_index = i;
            let lo = bucket_lo(i);
            assert!(lo <= v, "lo {lo} > value {v}");
            if i + 1 < BUCKETS {
                assert!(bucket_lo(i + 1) > v, "value {v} outside bucket {i}");
            }
            assert_eq!(bucket_index(lo), i, "lo {lo} re-indexes to {i}");
        }
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        /// Values concentrated around power-of-two group boundaries, where
        /// the log-linear indexing is easiest to get wrong, plus a uniform
        /// tail over the whole `u64` range.
        fn arb_boundary_value() -> impl Strategy<Value = u64> {
            (any::<u64>(), 0u32..64, 0u32..3).prop_map(|(raw, k, offset)| match offset {
                0 => (1u64 << k).saturating_sub(1),
                1 => 1u64 << k,
                2 => (1u64 << k).saturating_add(raw % 3),
                _ => raw,
            })
        }

        proptest! {
            #[test]
            fn bucket_round_trip_holds(v in arb_boundary_value(), raw in any::<u64>()) {
                for v in [v, raw, u64::MAX] {
                    let i = bucket_index(v);
                    prop_assert!(i < BUCKETS);
                    let lo = bucket_lo(i);
                    prop_assert!(lo <= v, "lo {} > value {}", lo, v);
                    if i + 1 < BUCKETS {
                        prop_assert!(bucket_lo(i + 1) > v, "value {} outside bucket {}", v, i);
                    }
                    prop_assert_eq!(bucket_index(lo), i);
                }
            }

            #[test]
            fn bucket_index_is_monotone(a in arb_boundary_value(), b in any::<u64>()) {
                let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
                prop_assert!(bucket_index(lo) <= bucket_index(hi));
            }
        }
    }

    #[test]
    fn bucket_relative_error_is_bounded() {
        for v in [100u64, 12_345, 1 << 30, 1 << 50] {
            let lo = bucket_lo(bucket_index(v));
            let err = (v - lo) as f64 / v as f64;
            assert!(err <= 1.0 / SUB_BUCKETS as f64 + 1e-9, "err {err} at {v}");
        }
    }

    #[test]
    fn histogram_tracks_count_sum_min_max() {
        let h = Histogram::new();
        assert_eq!((h.count(), h.min(), h.max()), (0, 0, 0));
        for v in [5u64, 100, 3, 10_000] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 10_108);
        assert_eq!(h.min(), 3);
        assert_eq!(h.max(), 10_000);
    }

    #[test]
    fn quantiles_land_in_the_right_region() {
        let h = Histogram::new();
        for v in 1..=1_000u64 {
            h.record(v);
        }
        let p50 = h.quantile(0.5);
        let p99 = h.quantile(0.99);
        assert!((400..=500).contains(&p50), "p50 = {p50}");
        assert!((900..=990).contains(&p99), "p99 = {p99}");
        assert_eq!(Histogram::new().quantile(0.5), 0);
    }

    #[test]
    fn try_quantile_distinguishes_empty_from_zero() {
        let h = Histogram::new();
        assert_eq!(h.try_quantile(0.5), None);
        h.record(0);
        assert_eq!(h.try_quantile(0.5), Some(0));
        assert_eq!(h.quantile(0.5), 0);
    }

    #[test]
    fn gauge_sets_adds_and_reads() {
        let g = Gauge::new();
        assert_eq!(g.get(), 0.0);
        g.set(2.5);
        assert_eq!(g.get(), 2.5);
        g.add(1.0);
        g.add(-0.5);
        assert_eq!(g.get(), 3.0);
        g.set(f64::NAN);
        assert!(g.get().is_nan());
    }

    #[test]
    fn registry_returns_shared_handles() {
        let r = Registry::new();
        let a = r.counter("x");
        let b = r.counter("x");
        a.inc();
        b.add(2);
        assert_eq!(r.counter("x").get(), 3);
        let h = r.histogram("y");
        h.record(7);
        assert_eq!(r.histogram("y").count(), 1);
        let g = r.gauge("z");
        g.set(4.0);
        assert_eq!(r.gauge("z").get(), 4.0);
    }

    #[test]
    fn labeled_families_key_by_sorted_labels() {
        let r = Registry::new();
        r.counter_with("cells", &[("table", "4.1"), ("method", "g = 1")])
            .inc();
        // Same member, labels given in the other order.
        r.counter_with("cells", &[("method", "g = 1"), ("table", "4.1")])
            .inc();
        assert_eq!(
            r.counter_with("cells", &[("table", "4.1"), ("method", "g = 1")])
                .get(),
            2
        );
        // A different value is a different family member.
        assert_eq!(
            r.counter_with("cells", &[("table", "4.2"), ("method", "g = 1")])
                .get(),
            0
        );
        // The unlabeled member is distinct from every labeled one.
        assert_eq!(r.counter("cells").get(), 0);
    }

    #[test]
    fn span_records_into_the_labeled_histogram() {
        let r = Registry::new();
        {
            let _guard = r.span("cell");
        }
        {
            let _guard = r.span("cell");
        }
        let h = r.histogram_with(SPAN_METRIC, &[("phase", "cell")]);
        assert_eq!(h.count(), 2);
        assert_eq!(
            r.histogram_with(SPAN_METRIC, &[("phase", "merge")]).count(),
            0
        );
    }

    #[test]
    fn span_into_records_into_a_caller_chosen_family() {
        let r = Registry::new();
        {
            let _guard = r.span_into("job_wall_us", &[("problem", "gola")]);
        }
        let h = r.histogram_with("job_wall_us", &[("problem", "gola")]);
        assert_eq!(h.count(), 1);
        // The default span family is untouched.
        assert_eq!(
            r.histogram_with(SPAN_METRIC, &[("phase", "gola")]).count(),
            0
        );
    }

    #[test]
    fn global_registry_is_a_singleton() {
        global().counter("test.global.singleton").inc();
        assert!(global().counter("test.global.singleton").get() >= 1);
    }

    #[test]
    fn snapshot_json_is_wellformed_and_sorted() {
        let r = Registry::new();
        r.counter("b.second").add(2);
        r.counter("a.first").inc();
        r.histogram("lat").record(42);
        let json = r.snapshot_json();
        assert!(json.starts_with("{\"schema\":\"anneal-metrics\",\"version\":2,"));
        let a = json.find("a.first").unwrap();
        let b = json.find("b.second").unwrap();
        assert!(a < b, "counters sorted by name");
        assert!(json.contains("\"p50\":"));
        // 42 falls in the log-linear bucket [40, 44).
        assert!(json.contains("\"buckets\":[{\"lo\":40,\"hi\":44,\"count\":1}]"));
    }

    #[test]
    fn snapshot_json_order_is_pinned_across_label_sets() {
        // The sorted (name, labels) order is part of the contract: both
        // `--metrics PATH` and `/metrics` must be diff-stable across runs
        // regardless of metric registration order.
        let r = Registry::new();
        r.counter_with("cells", &[("table", "4.2b")]).add(3);
        r.counter("aaa").inc();
        r.counter_with("cells", &[("table", "4.1")]).add(1);
        r.counter("cells").add(9);
        r.gauge_with("workers", &[("slot", "1")]).set(1.0);
        r.gauge("eta").set(2.5);
        assert_eq!(
            r.snapshot_json(),
            "{\"schema\":\"anneal-metrics\",\"version\":2,\"counters\":[\
             {\"name\":\"aaa\",\"value\":1},\
             {\"name\":\"cells\",\"value\":9},\
             {\"name\":\"cells\",\"labels\":{\"table\":\"4.1\"},\"value\":1},\
             {\"name\":\"cells\",\"labels\":{\"table\":\"4.2b\"},\"value\":3}],\
             \"gauges\":[\
             {\"name\":\"eta\",\"value\":2.5},\
             {\"name\":\"workers\",\"labels\":{\"slot\":\"1\"},\"value\":1}],\
             \"histograms\":[]}"
        );
    }

    #[test]
    fn prometheus_exposition_golden() {
        let r = Registry::new();
        r.counter_with("cells.completed", &[("table", "4.1"), ("method", "g = 1")])
            .add(3);
        r.counter_with(
            "cells.completed",
            &[("method", "fast \"g\"\n"), ("table", "4.2b")],
        )
        .inc();
        r.gauge("workers.live").set(2.0);
        r.histogram("lat").record(42);
        r.histogram("lat").record(42);
        r.histogram("lat").record(100);
        assert_eq!(
            r.render_prometheus(),
            "# HELP cells_completed cells.completed\n\
             # TYPE cells_completed counter\n\
             cells_completed{method=\"fast \\\"g\\\"\\n\",table=\"4.2b\"} 1\n\
             cells_completed{method=\"g = 1\",table=\"4.1\"} 3\n\
             # HELP workers_live workers.live\n\
             # TYPE workers_live gauge\n\
             workers_live 2\n\
             # HELP lat lat\n\
             # TYPE lat histogram\n\
             lat_bucket{le=\"44\"} 2\n\
             lat_bucket{le=\"104\"} 3\n\
             lat_bucket{le=\"+Inf\"} 3\n\
             lat_sum 184\n\
             lat_count 3\n"
        );
    }

    #[test]
    fn prometheus_names_and_specials_are_sanitized() {
        assert_eq!(prom_name("runner.cells"), "runner_cells");
        assert_eq!(prom_name("span-wall us"), "span_wall_us");
        assert_eq!(prom_name("9lives"), "_9lives");
        assert_eq!(prom_f64(f64::NAN), "NaN");
        assert_eq!(prom_f64(f64::INFINITY), "+Inf");
        assert_eq!(prom_f64(1.25), "1.25");
    }
}
