//! High-level entry point: configure a problem, strategy, acceptance
//! function, budget and seed, then run.

use rand::{rngs::StdRng, SeedableRng};

use crate::accept::GFunction;
use crate::budget::Budget;
use crate::problem::Problem;
use crate::schedule::adaptive::AcceptanceController;
use crate::stats::RunResult;
use crate::strategy::{Figure1, Figure2, Rejectionless, ReplicaExchange, DEFAULT_EQUILIBRIUM};
use crate::telemetry::RunTelemetry;
use crate::trace::{ChainObserver, NoopObserver};

/// Which of the paper's two control strategies to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Strategy {
    /// Figure 1: perturb, accept uphill moves probabilistically.
    #[default]
    Figure1,
    /// Figure 2: descend to a local optimum, then kick uphill.
    Figure2,
    /// \[GREE84\]: weigh every neighbor, sample one — no rejections. Requires
    /// [`Problem::all_moves`].
    Rejectionless,
    /// Parallel tempering: one chain per temperature rung of the g function's
    /// schedule, swapping configurations between adjacent rungs every
    /// `exchange_interval` within-chain proposals.
    ReplicaExchange {
        /// Within-chain proposals per rung between swap phases.
        exchange_interval: u64,
    },
}

/// A configured optimization run — the crate's high-level API.
///
/// `Annealer` is a non-consuming builder over a borrowed problem; `run`
/// executes one deterministic chain per call.
///
/// # Examples
///
/// ```
/// use anneal_core::{Annealer, Budget, GFunction, Problem, Rng, RngExt, Strategy};
///
/// struct MinimizeBits;
/// impl Problem for MinimizeBits {
///     type State = u64;
///     type Move = u32;
///     fn random_state(&self, rng: &mut dyn Rng) -> u64 {
///         rng.random_range(0..1 << 16)
///     }
///     fn cost(&self, s: &u64) -> f64 {
///         s.count_ones() as f64
///     }
///     fn propose(&self, _: &u64, rng: &mut dyn Rng) -> u32 {
///         rng.random_range(0..16)
///     }
///     fn apply(&self, s: &mut u64, m: &u32) {
///         *s ^= 1 << m;
///     }
/// }
///
/// let result = Annealer::new(&MinimizeBits)
///     .strategy(Strategy::Figure1)
///     .budget(Budget::evaluations(30_000))
///     .seed(7)
///     .run(&mut GFunction::unit());
/// assert_eq!(result.best_cost, 0.0);
/// ```
#[derive(Debug)]
pub struct Annealer<'a, P: Problem> {
    problem: &'a P,
    strategy: Strategy,
    equilibrium: u64,
    budget: Budget,
    seed: u64,
    start: Option<P::State>,
    trajectory_every: u64,
    controller: Option<AcceptanceController>,
}

impl<'a, P: Problem> Annealer<'a, P> {
    /// Starts configuring a run of `problem` with the defaults: Figure-1
    /// strategy, `n = 250`, a 10,000-evaluation budget and seed 0.
    pub fn new(problem: &'a P) -> Self {
        Annealer {
            problem,
            strategy: Strategy::Figure1,
            equilibrium: DEFAULT_EQUILIBRIUM,
            budget: Budget::evaluations(10_000),
            seed: 0,
            start: None,
            trajectory_every: 0,
            controller: None,
        }
    }

    /// Selects the control strategy.
    pub fn strategy(&mut self, strategy: Strategy) -> &mut Self {
        self.strategy = strategy;
        self
    }

    /// Sets the equilibrium counter limit `n`.
    pub fn equilibrium(&mut self, n: u64) -> &mut Self {
        self.equilibrium = n;
        self
    }

    /// Sets the computation budget.
    pub fn budget(&mut self, budget: Budget) -> &mut Self {
        self.budget = budget;
        self
    }

    /// Seeds the run's random number generator (runs are deterministic in
    /// the seed).
    pub fn seed(&mut self, seed: u64) -> &mut Self {
        self.seed = seed;
        self
    }

    /// Starts from `state` instead of a random solution (e.g. a Goto
    /// arrangement, as in Table 4.2(a)).
    pub fn start_from(&mut self, state: P::State) -> &mut Self {
        self.start = Some(state);
        self
    }

    /// Enables best-cost trajectory sampling every `every` evaluations.
    pub fn trajectory(&mut self, every: u64) -> &mut Self {
        self.trajectory_every = every;
        self
    }

    /// Attaches an adaptive acceptance-ratio controller (see
    /// [`schedule::adaptive`](crate::schedule::adaptive)). Honored by the
    /// [`Figure1`] and [`Figure2`] strategies, which correct each stage's
    /// temperature toward the controller's target acceptance trajectory;
    /// ignored by the other strategies.
    pub fn controller(&mut self, controller: Option<AcceptanceController>) -> &mut Self {
        self.controller = controller;
        self
    }

    /// Runs the configured strategy with acceptance function `g`.
    ///
    /// `g` is taken by `&mut` because acceptance functions carry gate state;
    /// it is reset at the start of the run, so a `GFunction` can be reused
    /// across runs.
    pub fn run(&self, g: &mut GFunction) -> RunResult<P::State> {
        self.dispatch(g, &mut NoopObserver)
    }

    /// Runs the configured strategy, reporting structured chain events
    /// (temperature stages, energy samples, best improvements, stop) to
    /// `obs` — see [`ChainObserver`]. With [`NoopObserver`] this is exactly
    /// [`run`](Self::run); tracing never perturbs the RNG, so results are
    /// bitwise-identical either way.
    pub fn run_traced<O: ChainObserver>(
        &self,
        g: &mut GFunction,
        obs: &mut O,
    ) -> RunResult<P::State> {
        self.dispatch(g, obs)
    }

    /// Runs the configured strategy and also returns the run's
    /// [`RunTelemetry`] (wall time, throughput, per-temperature breakdown).
    pub fn run_instrumented(&self, g: &mut GFunction) -> (RunResult<P::State>, RunTelemetry) {
        let started = std::time::Instant::now();
        let result = self.dispatch(g, &mut NoopObserver);
        let telemetry = RunTelemetry::capture(&result, started.elapsed());
        (result, telemetry)
    }

    fn dispatch<O: ChainObserver>(&self, g: &mut GFunction, obs: &mut O) -> RunResult<P::State> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let start = match &self.start {
            Some(s) => s.clone(),
            None => self.problem.random_state(&mut rng),
        };
        match self.strategy {
            Strategy::Figure1 => Figure1 {
                equilibrium: self.equilibrium,
                trajectory_every: self.trajectory_every,
                controller: self.controller,
            }
            .run_traced(self.problem, g, start, self.budget, &mut rng, obs),
            Strategy::Figure2 => Figure2 {
                equilibrium: self.equilibrium,
                trajectory_every: self.trajectory_every,
                controller: self.controller,
            }
            .run_traced(self.problem, g, start, self.budget, &mut rng, obs),
            Strategy::Rejectionless => Rejectionless {
                trajectory_every: self.trajectory_every,
            }
            .run_traced(self.problem, g, start, self.budget, &mut rng, obs),
            Strategy::ReplicaExchange { exchange_interval } => ReplicaExchange {
                exchange_interval,
                trajectory_every: self.trajectory_every,
            }
            .run_traced(self.problem, g, start, self.budget, &mut rng, obs),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, RngExt};

    struct BitCount;
    impl Problem for BitCount {
        type State = u64;
        type Move = u32;
        fn random_state(&self, rng: &mut dyn Rng) -> u64 {
            rng.random_range(0..(1u64 << 16))
        }
        fn cost(&self, s: &u64) -> f64 {
            s.count_ones() as f64
        }
        fn propose(&self, _: &u64, rng: &mut dyn Rng) -> u32 {
            rng.random_range(0..16)
        }
        fn apply(&self, s: &mut u64, m: &u32) {
            *s ^= 1 << m;
        }
        fn improving_move(&self, s: &u64, probes: &mut u64) -> Option<u32> {
            for b in 0..16 {
                *probes += 1;
                if s & (1u64 << b) != 0 {
                    return Some(b);
                }
            }
            None
        }
    }

    #[test]
    fn builder_runs_both_strategies() {
        let p = BitCount;
        for strategy in [Strategy::Figure1, Strategy::Figure2] {
            let r = Annealer::new(&p)
                .strategy(strategy)
                .budget(Budget::evaluations(20_000))
                .seed(3)
                .run(&mut GFunction::unit());
            assert_eq!(r.best_cost, 0.0, "{strategy:?}");
        }
    }

    #[test]
    fn start_from_overrides_random_start() {
        let p = BitCount;
        let r = Annealer::new(&p)
            .budget(Budget::evaluations(10))
            .start_from(0b11)
            .run(&mut GFunction::metropolis(1e-9));
        assert_eq!(r.initial_cost, 2.0);
    }

    #[test]
    fn same_seed_same_result_across_strategies() {
        let p = BitCount;
        for strategy in [Strategy::Figure1, Strategy::Figure2] {
            let run = || {
                Annealer::new(&p)
                    .strategy(strategy)
                    .budget(Budget::evaluations(2_000))
                    .seed(41)
                    .run(&mut GFunction::two_level())
            };
            let a = run();
            let b = run();
            assert_eq!(a.best_cost, b.best_cost);
            assert_eq!(a.stats, b.stats);
        }
    }

    #[test]
    fn run_traced_matches_run_for_every_strategy() {
        use crate::trace::TraceCollector;
        let p = BitCount;
        for strategy in [Strategy::Figure1, Strategy::Figure2] {
            let mut annealer = Annealer::new(&p);
            annealer
                .strategy(strategy)
                .budget(Budget::evaluations(2_000))
                .seed(5);
            let plain = annealer.run(&mut GFunction::six_temp_annealing(2.0));
            let mut obs = TraceCollector::new();
            let traced = annealer.run_traced(&mut GFunction::six_temp_annealing(2.0), &mut obs);
            assert_eq!(plain.best_cost.to_bits(), traced.best_cost.to_bits());
            assert_eq!(plain.stats, traced.stats);
            assert_eq!(obs.trace().stages.len(), traced.stats.per_temp.len());
            assert!(obs.trace().stop.is_some());
        }
    }

    #[test]
    fn gfunction_reusable_across_runs() {
        let p = BitCount;
        let mut g = GFunction::unit();
        let mut annealer = Annealer::new(&p);
        annealer.budget(Budget::evaluations(5_000)).seed(1);
        let a = annealer.run(&mut g);
        let b = annealer.run(&mut g);
        assert_eq!(a.best_cost, b.best_cost, "gate reset makes runs identical");
        assert_eq!(a.stats, b.stats);
    }
}
