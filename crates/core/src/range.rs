//! Temperature-range estimation after White [WHIT84], cited by the paper
//! (§2: "Some guidelines on choosing the highest and lowest temperatures in
//! an annealing schedule are provided in [WHIT84]").
//!
//! White's scale argument: the hottest temperature should be at least the
//! standard deviation `σ` of the cost changes induced by random
//! perturbations (so essentially every move is accepted and the chain
//! equilibrates over the whole landscape), and the coldest should be small
//! against the smallest positive cost change (so the chain is effectively
//! quenched). A geometric schedule interpolates between the two.

use rand::Rng;

use crate::problem::Problem;
use crate::schedule::Schedule;

/// Statistics of the cost-delta distribution of random perturbations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeltaStats {
    /// Mean of `h(j) - h(i)` over sampled perturbations.
    pub mean: f64,
    /// Standard deviation of the deltas — White's hot-temperature scale.
    pub std_dev: f64,
    /// Smallest strictly positive |delta| observed — the cold-temperature
    /// scale. `None` if every sampled move was cost-neutral.
    pub min_positive: Option<f64>,
    /// Perturbations sampled.
    pub samples: u64,
}

/// Samples `samples` random perturbations from random states of `problem`
/// and collects the delta statistics \[WHIT84\]'s scales are built from.
///
/// # Panics
///
/// Panics if `samples == 0`.
pub fn estimate_delta_stats<P: Problem>(
    problem: &P,
    samples: u64,
    rng: &mut dyn Rng,
) -> DeltaStats {
    assert!(samples > 0, "need at least one sample");
    let mut state = problem.random_state(rng);
    let mut cost = problem.cost(&state);
    let mut sum = 0.0;
    let mut sum_sq = 0.0;
    let mut min_positive: Option<f64> = None;
    for i in 0..samples {
        // Resample the base state occasionally so the statistics reflect
        // the landscape, not one neighborhood.
        if i % 64 == 0 && i > 0 {
            state = problem.random_state(rng);
            cost = problem.cost(&state);
        }
        let mv = problem.propose(&state, rng);
        problem.apply(&mut state, &mv);
        let new_cost = problem.cost(&state);
        problem.undo(&mut state, &mv);
        let delta = new_cost - cost;
        sum += delta;
        sum_sq += delta * delta;
        let abs = delta.abs();
        if abs > 0.0 {
            min_positive = Some(match min_positive {
                Some(m) => m.min(abs),
                None => abs,
            });
        }
    }
    let n = samples as f64;
    let mean = sum / n;
    let variance = (sum_sq / n - mean * mean).max(0.0);
    DeltaStats {
        mean,
        std_dev: variance.sqrt(),
        min_positive,
        samples,
    }
}

/// Builds a `k`-temperature geometric schedule spanning White's range:
/// `Y₁ = σ` down to `Y_k = min_positive / 3` (a typical smallest uphill
/// move is then accepted with probability `e⁻³ ≈ 5%`).
///
/// Falls back to `Y₁ = 1` when the landscape shows no variation and to a
/// cold scale of `σ/100` when no positive delta was seen.
///
/// # Panics
///
/// Panics if `k == 0`.
///
/// # Examples
///
/// ```
/// use anneal_core::{estimate_delta_stats, white84_schedule, Problem, Rng, RngExt};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// struct Bits;
/// impl Problem for Bits {
///     type State = u64;
///     type Move = u32;
///     fn random_state(&self, rng: &mut dyn Rng) -> u64 {
///         rng.random_range(0..1 << 16)
///     }
///     fn cost(&self, s: &u64) -> f64 {
///         s.count_ones() as f64
///     }
///     fn propose(&self, _: &u64, rng: &mut dyn Rng) -> u32 {
///         rng.random_range(0..16)
///     }
///     fn apply(&self, s: &mut u64, m: &u32) {
///         *s ^= 1 << m;
///     }
/// }
///
/// let mut rng = StdRng::seed_from_u64(1);
/// let stats = estimate_delta_stats(&Bits, 1_000, &mut rng);
/// let schedule = white84_schedule(&stats, 6);
/// assert_eq!(schedule.len(), 6);
/// assert!(schedule.value(0) >= schedule.value(5));
/// ```
pub fn white84_schedule(stats: &DeltaStats, k: usize) -> Schedule {
    assert!(k > 0, "schedule needs at least one temperature");
    let hot = if stats.std_dev > 0.0 {
        stats.std_dev
    } else {
        1.0
    };
    let cold = stats
        .min_positive
        .map(|m| m / 3.0)
        .unwrap_or(hot / 100.0)
        .min(hot);
    if k == 1 {
        return Schedule::single(hot);
    }
    let ratio = (cold / hot).powf(1.0 / (k as f64 - 1.0));
    Schedule::geometric(hot, ratio, k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, RngExt, SeedableRng};

    struct Bits;
    impl Problem for Bits {
        type State = u64;
        type Move = u32;
        fn random_state(&self, rng: &mut dyn Rng) -> u64 {
            rng.random_range(0..(1u64 << 16))
        }
        fn cost(&self, s: &u64) -> f64 {
            s.count_ones() as f64
        }
        fn propose(&self, _: &u64, rng: &mut dyn Rng) -> u32 {
            rng.random_range(0..16)
        }
        fn apply(&self, s: &mut u64, m: &u32) {
            *s ^= 1 << m;
        }
    }

    #[test]
    fn bitcount_deltas_are_unit_sized() {
        let mut rng = StdRng::seed_from_u64(1);
        let stats = estimate_delta_stats(&Bits, 2_000, &mut rng);
        // Every bit flip changes the cost by exactly ±1.
        assert_eq!(stats.min_positive, Some(1.0));
        assert!((stats.std_dev - 1.0).abs() < 0.05, "σ = {}", stats.std_dev);
        assert!(stats.mean.abs() < 0.2);
    }

    #[test]
    fn schedule_spans_hot_to_cold() {
        let stats = DeltaStats {
            mean: 0.0,
            std_dev: 2.0,
            min_positive: Some(1.0),
            samples: 100,
        };
        let s = white84_schedule(&stats, 6);
        assert!((s.value(0) - 2.0).abs() < 1e-12);
        assert!((s.value(5) - 1.0 / 3.0).abs() < 1e-9);
        for w in s.values().windows(2) {
            assert!(w[0] > w[1]);
        }
    }

    #[test]
    fn degenerate_landscapes_fall_back() {
        struct Flat;
        impl Problem for Flat {
            type State = i64;
            type Move = i64;
            fn random_state(&self, _: &mut dyn Rng) -> i64 {
                0
            }
            fn cost(&self, _: &i64) -> f64 {
                7.0
            }
            fn propose(&self, _: &i64, _: &mut dyn Rng) -> i64 {
                1
            }
            fn apply(&self, s: &mut i64, m: &i64) {
                *s += m;
            }
            fn undo(&self, s: &mut i64, m: &i64) {
                *s -= m;
            }
        }
        let mut rng = StdRng::seed_from_u64(2);
        let stats = estimate_delta_stats(&Flat, 100, &mut rng);
        assert_eq!(stats.std_dev, 0.0);
        assert_eq!(stats.min_positive, None);
        let s = white84_schedule(&stats, 4);
        assert_eq!(s.len(), 4);
        assert!((s.value(0) - 1.0).abs() < 1e-12, "hot fallback");
    }

    #[test]
    fn single_temperature_schedule() {
        let stats = DeltaStats {
            mean: 0.0,
            std_dev: 3.0,
            min_positive: Some(0.5),
            samples: 10,
        };
        let s = white84_schedule(&stats, 1);
        assert_eq!(s.len(), 1);
        assert!((s.value(0) - 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn zero_samples_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = estimate_delta_stats(&Bits, 0, &mut rng);
    }
}
