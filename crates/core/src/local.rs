//! Plain local search: descent to a local optimum and the time-equalized
//! multistart protocol used as a Monte-Carlo-free baseline.
//!
//! \[GOLD84\] compared simulated annealing against the 2-opt heuristic of
//! \[LIN73\] by giving 2-opt "enough starting random tours to make its run time
//! comparable to that of simulated annealing" (§2). [`multistart`] implements
//! exactly that protocol generically: repeat (random state → descend) until
//! the shared budget runs out, keeping the best local optimum.

use rand::Rng;

use crate::budget::{Budget, Meter};
use crate::problem::Problem;
use crate::stats::{RunResult, RunStats, StopReason};

/// Descends from `state` to a local optimum, charging every cost probe to
/// `meter`. Returns the final cost and the number of improving moves applied.
///
/// Descent stops early (possibly short of a local optimum) when the meter is
/// exhausted.
pub fn descend<P: Problem>(problem: &P, state: &mut P::State, meter: &mut Meter) -> (f64, u64) {
    let mut applied = 0;
    loop {
        if meter.exhausted() {
            break;
        }
        let mut probes = 0;
        let improving = problem.improving_move(state, &mut probes);
        meter.charge(probes);
        match improving {
            Some(mv) => {
                problem.apply(state, &mv);
                meter.charge(1);
                applied += 1;
            }
            None => break,
        }
    }
    (problem.cost(state), applied)
}

/// The multistart local-search baseline: random restarts, each descended to
/// a local optimum, until `budget` is exhausted; the best local optimum wins.
///
/// # Examples
///
/// ```
/// use anneal_core::{local::multistart, Budget, Problem, Rng, RngExt};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// struct Parabola;
/// impl Problem for Parabola {
///     type State = i64;
///     type Move = i64;
///     fn random_state(&self, rng: &mut dyn Rng) -> i64 {
///         rng.random_range(-50..50)
///     }
///     fn cost(&self, s: &i64) -> f64 {
///         (s * s) as f64
///     }
///     fn propose(&self, _: &i64, rng: &mut dyn Rng) -> i64 {
///         if rng.random_bool(0.5) { 1 } else { -1 }
///     }
///     fn apply(&self, s: &mut i64, m: &i64) {
///         *s += m;
///     }
///     fn undo(&self, s: &mut i64, m: &i64) {
///         *s -= m;
///     }
///     fn improving_move(&self, s: &i64, probes: &mut u64) -> Option<i64> {
///         *probes += 2;
///         if *s > 0 { Some(-1) } else if *s < 0 { Some(1) } else { None }
///     }
/// }
///
/// let mut rng = StdRng::seed_from_u64(1);
/// let r = multistart(&Parabola, Budget::evaluations(1_000), &mut rng);
/// assert_eq!(r.best_cost, 0.0);
/// ```
pub fn multistart<P: Problem>(
    problem: &P,
    budget: Budget,
    rng: &mut dyn Rng,
) -> RunResult<P::State> {
    let mut meter = Meter::new(budget);
    let mut stats = RunStats::default();

    let mut state = problem.random_state(rng);
    let initial_cost = problem.cost(&state);
    meter.charge(1);
    let (mut cost, applied) = descend(problem, &mut state, &mut meter);
    stats.accepted_downhill += applied;
    stats.descents += 1;
    let mut best_state = state.clone();
    let mut best_cost = cost;

    while !meter.exhausted() {
        state = problem.random_state(rng);
        meter.charge(1);
        let (c, applied) = descend(problem, &mut state, &mut meter);
        cost = c;
        stats.accepted_downhill += applied;
        stats.descents += 1;
        if cost < best_cost {
            best_cost = cost;
            best_state = state.clone();
        }
    }

    stats.evals = meter.evals();
    RunResult {
        best_state,
        best_cost,
        initial_cost,
        final_cost: cost,
        stop: StopReason::Budget,
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, RngExt, SeedableRng};

    /// A deceptive landscape: two basins, descent by ±1, global optimum at
    /// x = 100 (cost −50), local optimum at x = 0 (cost 0).
    struct TwoBasins;
    impl Problem for TwoBasins {
        type State = i64;
        type Move = i64;
        fn random_state(&self, rng: &mut dyn Rng) -> i64 {
            rng.random_range(-20..120)
        }
        fn cost(&self, s: &i64) -> f64 {
            let x = *s as f64;
            // Two basins: a shallow one bottoming at x = 0 (cost 0) and the
            // global one bottoming at x = 100 (cost -50).
            if x < 50.0 {
                x.abs()
            } else {
                (x - 100.0).abs() - 50.0
            }
        }
        fn propose(&self, _: &i64, rng: &mut dyn Rng) -> i64 {
            if rng.random_bool(0.5) {
                1
            } else {
                -1
            }
        }
        fn apply(&self, s: &mut i64, m: &i64) {
            *s += m;
        }
        fn undo(&self, s: &mut i64, m: &i64) {
            *s -= m;
        }
        fn improving_move(&self, s: &i64, probes: &mut u64) -> Option<i64> {
            let here = self.cost(s);
            for m in [-1i64, 1] {
                *probes += 1;
                if self.cost(&(s + m)) < here {
                    return Some(m);
                }
            }
            None
        }
    }

    #[test]
    fn descend_reaches_local_optimum() {
        let p = TwoBasins;
        let mut meter = Meter::new(Budget::evaluations(10_000));
        let mut s = 30i64; // basin border region
        let (c, applied) = descend(&p, &mut s, &mut meter);
        assert!(applied > 0);
        let mut probes = 0;
        assert!(
            p.improving_move(&s, &mut probes).is_none(),
            "must be locally optimal"
        );
        assert!((p.cost(&s) - c).abs() < 1e-12);
    }

    #[test]
    fn descend_respects_budget() {
        let p = TwoBasins;
        let mut meter = Meter::new(Budget::evaluations(5));
        let mut s = 30i64;
        descend(&p, &mut s, &mut meter);
        assert!(meter.evals() <= 8, "stops promptly after exhaustion");
    }

    #[test]
    fn multistart_escapes_poor_basins() {
        let p = TwoBasins;
        let mut rng = StdRng::seed_from_u64(3);
        let r = multistart(&p, Budget::evaluations(20_000), &mut rng);
        // The global basin is wide; enough restarts must find cost -50.
        assert_eq!(r.best_cost, -50.0);
        assert!(r.stats.descents > 1);
    }

    #[test]
    fn multistart_is_deterministic() {
        let p = TwoBasins;
        let mut a_rng = StdRng::seed_from_u64(9);
        let mut b_rng = StdRng::seed_from_u64(9);
        let a = multistart(&p, Budget::evaluations(2_000), &mut a_rng);
        let b = multistart(&p, Budget::evaluations(2_000), &mut b_rng);
        assert_eq!(a.best_cost, b.best_cost);
        assert_eq!(a.stats.descents, b.stats.descents);
    }
}
