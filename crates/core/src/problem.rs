//! The [`Problem`] trait: the contract between an optimization problem and
//! the Monte Carlo strategies of [Figure 1] and [Figure 2].
//!
//! The paper's framework (§1, §3) needs four things from a problem:
//!
//! 1. a way to draw a *random feasible solution* (Step 1 of both figures),
//! 2. a goal function `h` to minimize,
//! 3. a *random perturbation* operator (pairwise interchange, single
//!    exchange, 2-opt reversal, …), and
//! 4. for the Figure-2 strategy, a way to detect an *improving* perturbation
//!    so the state can be driven to a local optimum.
//!
//! # Move model
//!
//! Moves follow an **apply/undo** protocol: [`Problem::apply`] mutates the
//! state in place (so implementations can keep incremental bookkeeping such
//! as cut-density histograms inside the state), and a rejected move is rolled
//! back with [`Problem::undo`]. For involutive moves — pairwise swaps, 2-opt
//! segment reversals, partition exchanges — applying the move a second time
//! *is* the undo, which is what the default implementation does.
//!
//! [Figure 1]: crate::strategy::Figure1
//! [Figure 2]: crate::strategy::Figure2

use rand::Rng;

/// An optimization problem that Monte Carlo strategies can search.
///
/// Implementations should make [`cost`](Problem::cost) cheap (ideally O(1)
/// reading a value maintained incrementally by [`apply`](Problem::apply)):
/// the strategies call it after every perturbation.
///
/// # Examples
///
/// A minimal problem — minimize `|x - 17|` over integers, perturbing by ±1:
///
/// ```
/// use anneal_core::{Problem, Rng, RngExt};
///
/// struct FindTarget {
///     target: i64,
/// }
///
/// impl Problem for FindTarget {
///     type State = i64;
///     type Move = i64; // the delta applied: +1 or -1
///
///     fn random_state(&self, rng: &mut dyn Rng) -> i64 {
///         rng.random_range(-100..100)
///     }
///     fn cost(&self, s: &i64) -> f64 {
///         (s - self.target).abs() as f64
///     }
///     fn propose(&self, _s: &i64, rng: &mut dyn Rng) -> i64 {
///         if rng.random_bool(0.5) { 1 } else { -1 }
///     }
///     fn apply(&self, s: &mut i64, m: &i64) {
///         *s += m;
///     }
///     fn undo(&self, s: &mut i64, m: &i64) {
///         *s -= m;
///     }
/// }
///
/// let p = FindTarget { target: 17 };
/// assert_eq!(p.cost(&17), 0.0);
/// ```
pub trait Problem {
    /// A feasible solution, including any incremental-evaluation bookkeeping.
    type State: Clone;

    /// A perturbation of a state.
    type Move;

    /// Draws a random feasible solution (Step 1 of Figures 1 and 2).
    fn random_state(&self, rng: &mut dyn Rng) -> Self::State;

    /// The goal function `h` being minimized.
    fn cost(&self, state: &Self::State) -> f64;

    /// Draws a random perturbation of `state` (Step 2 of Figure 1).
    ///
    /// The move is only *proposed* here; it takes effect when passed to
    /// [`apply`](Problem::apply).
    fn propose(&self, state: &Self::State, rng: &mut dyn Rng) -> Self::Move;

    /// Applies a proposed move to the state in place.
    fn apply(&self, state: &mut Self::State, mv: &Self::Move);

    /// Rolls back a move previously applied with [`apply`](Problem::apply).
    ///
    /// The default implementation re-applies the move, which is correct for
    /// involutive moves (swaps, 2-opt reversals). Non-involutive moves must
    /// override this.
    fn undo(&self, state: &mut Self::State, mv: &Self::Move) {
        self.apply(state, mv);
    }

    /// Returns a cost-reducing move from `state`, or `None` if `state` is
    /// locally optimal with respect to the problem's neighborhood.
    ///
    /// This powers Step 2 of the Figure-2 strategy ("continue to perturb `i`
    /// until no perturbation results in a decrease in `h`") and the
    /// [`descend`](crate::local::descend) local search. The default returns
    /// `None`, which makes every state look locally optimal; problems that
    /// should work with the Figure-2 strategy must override it.
    ///
    /// `eval_counter` must be incremented by the number of cost evaluations
    /// performed, so time-equalized comparisons (§3) charge local search the
    /// same currency as random perturbation.
    fn improving_move(&self, state: &Self::State, eval_counter: &mut u64) -> Option<Self::Move> {
        let _ = (state, eval_counter);
        None
    }

    /// Enumerates the complete perturbation neighborhood of `state`.
    ///
    /// Required only by the rejectionless strategy of
    /// [`Rejectionless`](crate::strategy::Rejectionless) (\[GREE84\]), which
    /// must weigh *every* neighbor at each step. The default returns an
    /// empty vector, which the rejectionless strategy treats as "not
    /// supported" and reports by stopping immediately.
    fn all_moves(&self, state: &Self::State) -> Vec<Self::Move> {
        let _ = state;
        Vec::new()
    }

    /// Fills `buf` with the complete perturbation neighborhood of `state`,
    /// clearing it first.
    ///
    /// The rejectionless strategy calls this once per step with a reused
    /// buffer, so implementations that override it (appending to `buf`
    /// instead of building a fresh vector) avoid a per-step allocation. The
    /// default delegates to [`all_moves`](Problem::all_moves), so overriding
    /// either method is sufficient.
    fn all_moves_into(&self, state: &Self::State, buf: &mut Vec<Self::Move>) {
        buf.clear();
        buf.extend(self.all_moves(state));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngExt;
    use rand::{rngs::StdRng, SeedableRng};

    /// Toy problem used across the framework's unit tests: minimize the
    /// number of 1-bits in a word by flipping random bits.
    pub(crate) struct BitCount {
        pub bits: u32,
    }

    impl Problem for BitCount {
        type State = u64;
        type Move = u32; // bit index to flip

        fn random_state(&self, rng: &mut dyn Rng) -> u64 {
            rng.random_range(0..(1u64 << self.bits))
        }
        fn cost(&self, s: &u64) -> f64 {
            s.count_ones() as f64
        }
        fn propose(&self, _s: &u64, rng: &mut dyn Rng) -> u32 {
            rng.random_range(0..self.bits)
        }
        fn apply(&self, s: &mut u64, m: &u32) {
            *s ^= 1 << m;
        }
        fn improving_move(&self, s: &u64, evals: &mut u64) -> Option<u32> {
            for b in 0..self.bits {
                *evals += 1;
                if s & (1 << b) != 0 {
                    return Some(b);
                }
            }
            None
        }
    }

    #[test]
    fn apply_then_default_undo_is_identity() {
        let p = BitCount { bits: 16 };
        let mut rng = StdRng::seed_from_u64(7);
        let mut s = p.random_state(&mut rng);
        let orig = s;
        let mv = p.propose(&s, &mut rng);
        p.apply(&mut s, &mv);
        assert_ne!(s, orig, "flip must change the state");
        p.undo(&mut s, &mv);
        assert_eq!(s, orig, "default undo must invert involutive moves");
    }

    #[test]
    fn improving_move_reaches_local_optimum() {
        let p = BitCount { bits: 8 };
        let mut s = 0b1010_1010u64;
        let mut evals = 0;
        while let Some(mv) = p.improving_move(&s, &mut evals) {
            p.apply(&mut s, &mv);
        }
        assert_eq!(s, 0);
        assert_eq!(p.cost(&s), 0.0);
        assert!(evals > 0, "local search must charge evaluations");
    }

    #[test]
    fn random_state_in_range() {
        let p = BitCount { bits: 10 };
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..100 {
            assert!(p.random_state(&mut rng) < (1 << 10));
        }
    }
}
