//! Per-thread watchdog deadlines for budgeted runs.
//!
//! A [`Meter`](crate::Meter) counts evaluations deterministically, but a
//! pathological instance (a degenerate neighborhood, an injected slowdown)
//! can make each evaluation arbitrarily slow — an evaluation budget alone
//! cannot bound wall-clock time. The watchdog closes that gap: a harness
//! arms a deadline on the worker thread before starting a run, and every
//! meter constructed while the deadline is armed reports itself exhausted
//! once the deadline passes. Any strategy that polls its meter (all of them
//! do, once per evaluation) therefore winds down promptly instead of
//! hanging its cell forever.
//!
//! The hook is ambient (thread-local) rather than a parameter so that
//! arming a watchdog requires no strategy or problem API changes, and a
//! run with no watchdog armed pays nothing on the metering hot path.
//!
//! ```
//! use std::time::Duration;
//! use anneal_core::{watchdog, Budget, Meter};
//!
//! let _guard = watchdog::arm(Duration::ZERO); // already expired
//! let m = Meter::new(Budget::evaluations(1_000_000));
//! assert!(m.exhausted(), "deadline overrides the evaluation budget");
//! ```

use std::cell::Cell;
use std::time::{Duration, Instant};

thread_local! {
    static DEADLINE: Cell<Option<Instant>> = const { Cell::new(None) };
}

/// Restores the previously armed deadline (if any) when dropped, so nested
/// watchdogs and reused worker threads behave correctly.
#[derive(Debug)]
pub struct WatchdogGuard {
    prev: Option<Instant>,
}

impl Drop for WatchdogGuard {
    fn drop(&mut self) {
        DEADLINE.with(|d| d.set(self.prev));
    }
}

/// Arms a watchdog deadline `timeout` from now on the current thread.
///
/// Every [`Meter`](crate::Meter) constructed on this thread while the
/// returned guard is alive reports [`exhausted`](crate::Meter::exhausted)
/// once the deadline passes. Dropping the guard restores whatever deadline
/// (or none) was armed before.
pub fn arm(timeout: Duration) -> WatchdogGuard {
    let deadline = Instant::now() + timeout;
    let prev = DEADLINE.with(|d| d.replace(Some(deadline)));
    WatchdogGuard { prev }
}

/// The deadline currently armed on this thread, if any.
pub(crate) fn deadline() -> Option<Instant> {
    DEADLINE.with(|d| d.get())
}

/// Whether a watchdog is armed on this thread *and* its deadline has
/// passed. Harnesses check this after a run to distinguish "finished" from
/// "was cut short by the watchdog".
pub fn expired() -> bool {
    deadline().is_some_and(|d| Instant::now() >= d)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unarmed_thread_has_no_deadline() {
        assert_eq!(deadline(), None);
        assert!(!expired());
    }

    #[test]
    fn guard_restores_previous_deadline() {
        assert_eq!(deadline(), None);
        {
            let _outer = arm(Duration::from_secs(3600));
            let outer_deadline = deadline();
            assert!(outer_deadline.is_some());
            {
                let _inner = arm(Duration::ZERO);
                assert!(expired(), "zero timeout expires immediately");
            }
            assert_eq!(deadline(), outer_deadline, "inner guard restored outer");
            assert!(!expired(), "an hour has not passed");
        }
        assert_eq!(deadline(), None);
    }

    #[test]
    fn slow_chain_is_cut_short_by_watchdog() {
        use crate::{Annealer, Budget, GFunction, Problem, Rng, RngExt, Strategy};

        // Every evaluation sleeps, so the nominal evaluation budget would
        // take minutes; the watchdog must stop the run almost immediately.
        struct Slow;
        impl Problem for Slow {
            type State = u64;
            type Move = u32;
            fn random_state(&self, rng: &mut dyn Rng) -> u64 {
                rng.random_range(0..1 << 16)
            }
            fn cost(&self, s: &u64) -> f64 {
                std::thread::sleep(Duration::from_millis(1));
                s.count_ones() as f64
            }
            fn propose(&self, _: &u64, rng: &mut dyn Rng) -> u32 {
                rng.random_range(0..16)
            }
            fn apply(&self, s: &mut u64, m: &u32) {
                *s ^= 1 << m;
            }
        }

        let started = Instant::now();
        let _guard = arm(Duration::from_millis(30));
        let result = Annealer::new(&Slow)
            .strategy(Strategy::Figure1)
            .budget(Budget::evaluations(1_000_000))
            .seed(1985)
            .run(&mut GFunction::unit());
        assert!(expired(), "watchdog fired");
        assert!(
            started.elapsed() < Duration::from_secs(20),
            "run was cut short, not budget-bound"
        );
        assert!(result.stats.evals < 1_000_000);
    }

    #[test]
    fn expiry_is_per_thread() {
        let _guard = arm(Duration::ZERO);
        assert!(expired());
        std::thread::spawn(|| {
            assert!(!expired(), "other threads are unaffected");
        })
        .join()
        .unwrap();
    }
}
