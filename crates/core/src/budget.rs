//! Computation budgets for time-equalized method comparison.
//!
//! The paper's central experimental control (§3) is that *every method gets
//! the same amount of computer time*, and when a schedule has `k`
//! temperatures the time is split evenly, `⌈B/k⌉` per temperature (§4.2.1
//! allots `⌈5/k⌉` seconds per temperature).
//!
//! The paper measured CPU seconds on a VAX 11/780. For a machine-independent
//! and *deterministic* reproduction, the primary budget currency here is the
//! number of **cost evaluations** (one per proposed perturbation, plus every
//! evaluation performed inside local search). Wall-clock budgets are also
//! supported for paper-faithful runs.

use std::time::{Duration, Instant};

/// A bound on how much work a strategy may perform.
///
/// # Examples
///
/// ```
/// use anneal_core::Budget;
///
/// let b = Budget::evaluations(60_000);
/// assert_eq!(b.split(6), Budget::evaluations(10_000));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Budget {
    /// At most this many cost evaluations.
    Evaluations(u64),
    /// At most this much wall-clock time.
    WallClock(Duration),
}

impl Budget {
    /// A budget of `n` cost evaluations.
    pub fn evaluations(n: u64) -> Self {
        Budget::Evaluations(n)
    }

    /// A wall-clock budget.
    pub fn wall_clock(d: Duration) -> Self {
        Budget::WallClock(d)
    }

    /// Splits the budget evenly across `k` temperatures, rounding up, as the
    /// paper does with its per-temperature time allotment.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn split(&self, k: usize) -> Budget {
        assert!(k > 0, "schedule must have at least one temperature");
        let k = k as u64;
        match *self {
            Budget::Evaluations(n) => Budget::Evaluations(n.div_ceil(k)),
            Budget::WallClock(d) => {
                Budget::WallClock(Duration::from_nanos((d.as_nanos() as u64).div_ceil(k)))
            }
        }
    }

    /// Scales the budget by an integer factor (used by the experiment
    /// harness's `--scale` fast mode).
    ///
    /// A `divisor` of 0 is treated as 1, matching both currencies: dividing
    /// by zero is never a meaningful scale and must not panic mid-suite.
    pub fn scale_div(&self, divisor: u64) -> Budget {
        let divisor = divisor.max(1);
        match *self {
            Budget::Evaluations(n) => Budget::Evaluations((n / divisor).max(1)),
            Budget::WallClock(d) => Budget::WallClock(d / divisor as u32),
        }
    }
}

impl std::fmt::Display for Budget {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            Budget::Evaluations(n) => write!(f, "{n} evals"),
            Budget::WallClock(d) => write!(f, "{:.3}s wall", d.as_secs_f64()),
        }
    }
}

/// Tracks consumption against a [`Budget`].
///
/// Strategies call [`charge`](Meter::charge) once per cost evaluation and
/// poll [`exhausted`](Meter::exhausted). For evaluation budgets the meter is
/// fully deterministic; for wall-clock budgets it compares against a
/// deadline.
///
/// A meter also honors any [`watchdog`](crate::watchdog) deadline armed on
/// its constructing thread: once that deadline passes the meter reports
/// itself exhausted regardless of remaining budget, so a runaway chain
/// cannot hang its cell. Runs without an armed watchdog pay nothing.
#[derive(Debug)]
pub struct Meter {
    limit: Budget,
    evals: u64,
    started: Instant,
    /// Watchdog deadline captured at construction (see [`crate::watchdog`]).
    deadline: Option<Instant>,
}

impl Meter {
    /// Starts a fresh meter against `limit`.
    pub fn new(limit: Budget) -> Self {
        Meter {
            limit,
            evals: 0,
            started: Instant::now(),
            deadline: crate::watchdog::deadline(),
        }
    }

    /// Records `n` cost evaluations.
    pub fn charge(&mut self, n: u64) {
        self.evals += n;
    }

    /// Number of evaluations recorded so far.
    pub fn evals(&self) -> u64 {
        self.evals
    }

    /// Whether the budget is used up (or an armed watchdog deadline has
    /// passed).
    pub fn exhausted(&self) -> bool {
        if self.timed_out() {
            return true;
        }
        match self.limit {
            Budget::Evaluations(n) => self.evals >= n,
            Budget::WallClock(d) => self.started.elapsed() >= d,
        }
    }

    /// Whether a watchdog deadline armed at construction has passed.
    pub fn timed_out(&self) -> bool {
        self.deadline.is_some_and(|d| Instant::now() >= d)
    }

    /// Remaining evaluations, if this is an evaluation budget.
    pub fn remaining_evals(&self) -> Option<u64> {
        match self.limit {
            Budget::Evaluations(n) => Some(n.saturating_sub(self.evals)),
            Budget::WallClock(_) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_rounds_up() {
        assert_eq!(Budget::evaluations(10).split(3), Budget::evaluations(4));
        assert_eq!(Budget::evaluations(12).split(6), Budget::evaluations(2));
        assert_eq!(Budget::evaluations(1).split(6), Budget::evaluations(1));
    }

    #[test]
    #[should_panic(expected = "at least one temperature")]
    fn split_zero_panics() {
        let _ = Budget::evaluations(10).split(0);
    }

    #[test]
    fn meter_counts_and_exhausts() {
        let mut m = Meter::new(Budget::evaluations(5));
        assert!(!m.exhausted());
        m.charge(3);
        assert_eq!(m.evals(), 3);
        assert_eq!(m.remaining_evals(), Some(2));
        assert!(!m.exhausted());
        m.charge(2);
        assert!(m.exhausted());
        assert_eq!(m.remaining_evals(), Some(0));
    }

    #[test]
    fn wall_clock_meter() {
        let m = Meter::new(Budget::wall_clock(Duration::from_secs(3600)));
        assert!(!m.exhausted());
        assert_eq!(m.remaining_evals(), None);
        let m2 = Meter::new(Budget::wall_clock(Duration::ZERO));
        assert!(m2.exhausted());
    }

    #[test]
    fn scale_div_floors_at_one() {
        assert_eq!(
            Budget::evaluations(100).scale_div(7),
            Budget::evaluations(14)
        );
        assert_eq!(Budget::evaluations(3).scale_div(10), Budget::evaluations(1));
    }

    #[test]
    fn scale_div_zero_is_identity_for_both_currencies() {
        // Regression: the Evaluations arm used to divide unguarded and
        // panicked on 0 while WallClock clamped the divisor to 1.
        assert_eq!(
            Budget::evaluations(100).scale_div(0),
            Budget::evaluations(100)
        );
        let d = Duration::from_secs(5);
        assert_eq!(Budget::wall_clock(d).scale_div(0), Budget::wall_clock(d));
        assert_eq!(
            Budget::wall_clock(d).scale_div(2),
            Budget::wall_clock(Duration::from_millis(2500))
        );
    }

    #[test]
    fn display_labels_both_currencies() {
        assert_eq!(Budget::evaluations(1500).to_string(), "1500 evals");
        assert_eq!(
            Budget::wall_clock(Duration::from_millis(250)).to_string(),
            "0.250s wall"
        );
    }

    #[test]
    fn wall_clock_meter_deadline_elapses() {
        // A short real deadline: not exhausted at start, exhausted after
        // sleeping past it. Charges never affect a wall-clock meter.
        let mut m = Meter::new(Budget::wall_clock(Duration::from_millis(30)));
        m.charge(1_000_000);
        assert!(
            !m.exhausted() || m.started.elapsed() >= Duration::from_millis(30),
            "charges alone must not exhaust a wall-clock meter"
        );
        std::thread::sleep(Duration::from_millis(35));
        assert!(m.exhausted());
        assert_eq!(m.evals(), 1_000_000, "evals are still counted");
    }

    #[test]
    fn watchdog_deadline_overrides_eval_budget() {
        let free = Meter::new(Budget::evaluations(u64::MAX));
        assert!(!free.exhausted() && !free.timed_out());
        let _guard = crate::watchdog::arm(Duration::ZERO);
        let m = Meter::new(Budget::evaluations(u64::MAX));
        assert!(m.timed_out());
        assert!(m.exhausted(), "expired watchdog exhausts any budget");
        drop(_guard);
        // Meters capture the deadline at construction; disarming the
        // watchdog does not resurrect an already-timed-out meter, but new
        // meters are unaffected.
        assert!(!Meter::new(Budget::evaluations(5)).timed_out());
    }

    #[test]
    fn unexpired_watchdog_leaves_budget_semantics_alone() {
        let _guard = crate::watchdog::arm(Duration::from_secs(3600));
        let mut m = Meter::new(Budget::evaluations(2));
        assert!(!m.exhausted());
        m.charge(2);
        assert!(m.exhausted(), "evaluation budget still applies");
        assert!(!m.timed_out());
    }

    #[test]
    fn wall_clock_split() {
        let b = Budget::wall_clock(Duration::from_secs(5));
        match b.split(6) {
            Budget::WallClock(d) => {
                assert!(d >= Duration::from_millis(833) && d <= Duration::from_millis(834));
            }
            _ => panic!("split must preserve budget kind"),
        }
    }
}
