//! Temperature tuning (§4.2.1).
//!
//! "Since it is impractical to determine the best Y_i's for each combination
//! of instance characteristics, strategy type, g function class, and amount
//! of time spent at each temperature, we attempt to find the best Y_i's for
//! each g using a randomly generated set of instances and the strategy of
//! Figure 1."
//!
//! [`Tuner`] reproduces that procedure: for each candidate parameter it runs
//! the Figure-1 strategy on every instance of a training set (same starting
//! state per instance across candidates) and keeps the parameter with the
//! largest total cost reduction.

use rand::{rngs::StdRng, SeedableRng};

use crate::accept::GFunction;
use crate::budget::Budget;
use crate::problem::Problem;
use crate::seeds::derive_seed;
use crate::strategy::{Figure1, DEFAULT_EQUILIBRIUM};

/// Outcome for a single candidate parameter value.
#[derive(Debug, Clone, PartialEq)]
pub struct CandidateOutcome {
    /// The candidate value passed to the g-function factory.
    pub value: f64,
    /// Total cost reduction over the training instances.
    pub total_reduction: f64,
}

/// The full tuning sweep: one outcome per candidate, best first retained.
#[derive(Debug, Clone, PartialEq)]
pub struct TuneReport {
    /// All candidate outcomes, in the order supplied.
    pub outcomes: Vec<CandidateOutcome>,
    /// The candidate with the largest total reduction (first on ties).
    pub best: CandidateOutcome,
}

impl TuneReport {
    /// True when the winner sits on the edge of the swept grid (the first
    /// or last candidate supplied). An interior winner is bracketed by two
    /// losing neighbours; an edge winner may just be the closest grid point
    /// to an optimum outside the swept range, so the sweep should be
    /// widened before trusting it.
    pub fn best_on_boundary(&self) -> bool {
        let first = self.outcomes.first().map(|o| o.value);
        let last = self.outcomes.last().map(|o| o.value);
        Some(self.best.value) == first || Some(self.best.value) == last
    }
}

/// A §4.2.1-style temperature tuner over a training set of instances.
#[derive(Debug)]
pub struct Tuner<'a, P: Problem> {
    instances: &'a [P],
    budget: Budget,
    equilibrium: u64,
    seed: u64,
}

impl<'a, P: Problem> Tuner<'a, P> {
    /// A tuner running each (candidate, instance) pair under `budget` with
    /// per-instance starting states derived from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `instances` is empty.
    pub fn new(instances: &'a [P], budget: Budget, seed: u64) -> Self {
        assert!(!instances.is_empty(), "tuner needs at least one instance");
        Tuner {
            instances,
            budget,
            equilibrium: DEFAULT_EQUILIBRIUM,
            seed,
        }
    }

    /// Overrides the Figure-1 equilibrium limit.
    pub fn equilibrium(mut self, n: u64) -> Self {
        self.equilibrium = n;
        self
    }

    /// Sweeps `candidates`, building a g function per candidate with
    /// `make_g`, and returns the per-candidate totals plus the winner.
    ///
    /// # Panics
    ///
    /// Panics if `candidates` is empty.
    pub fn tune(&self, make_g: impl Fn(f64) -> GFunction, candidates: &[f64]) -> TuneReport {
        assert!(!candidates.is_empty(), "need at least one candidate");
        let strategy = Figure1::with_equilibrium(self.equilibrium);
        let outcomes: Vec<CandidateOutcome> = candidates
            .iter()
            .map(|&value| {
                let mut total = 0.0;
                for (idx, problem) in self.instances.iter().enumerate() {
                    let mut g = make_g(value);
                    // Same per-instance seed for every candidate: identical
                    // starting states, as the paper requires.
                    let mut rng = StdRng::seed_from_u64(derive_seed(self.seed, idx as u64));
                    let start = problem.random_state(&mut rng);
                    let result = strategy.run(problem, &mut g, start, self.budget, &mut rng);
                    total += result.reduction();
                }
                CandidateOutcome {
                    value,
                    total_reduction: total,
                }
            })
            .collect();
        let mut best = outcomes[0].clone();
        for o in &outcomes[1..] {
            if o.total_reduction > best.total_reduction {
                best = o.clone();
            }
        }
        TuneReport { outcomes, best }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, RngExt};

    /// Needle-in-a-haystack: flipping bits of a word; acceptance temperature
    /// matters because the cost landscape is flat except near zero.
    struct BitCount;
    impl Problem for BitCount {
        type State = u64;
        type Move = u32;
        fn random_state(&self, rng: &mut dyn Rng) -> u64 {
            rng.random_range(0..(1u64 << 24))
        }
        fn cost(&self, s: &u64) -> f64 {
            s.count_ones() as f64
        }
        fn propose(&self, _: &u64, rng: &mut dyn Rng) -> u32 {
            rng.random_range(0..24)
        }
        fn apply(&self, s: &mut u64, m: &u32) {
            *s ^= 1 << m;
        }
    }

    #[test]
    fn picks_candidate_with_highest_reduction() {
        let instances = [BitCount, BitCount, BitCount];
        let tuner = Tuner::new(&instances, Budget::evaluations(2_000), 5);
        // Metropolis with an absurdly hot temperature (random walk) must
        // lose to a cold one on this landscape.
        let report = tuner.tune(GFunction::metropolis, &[1e6, 0.3]);
        assert_eq!(report.outcomes.len(), 2);
        assert_eq!(report.best.value, 0.3);
        assert!(report.best.total_reduction >= report.outcomes[0].total_reduction);
    }

    #[test]
    fn edge_winner_is_flagged_as_boundary() {
        let instances = [BitCount, BitCount, BitCount];
        let tuner = Tuner::new(&instances, Budget::evaluations(2_000), 5);
        // The cold candidate wins; as the last grid point it is a boundary
        // winner, but flanked by hot losers it is an interior one.
        let edge = tuner.tune(GFunction::metropolis, &[1e6, 0.3]);
        assert_eq!(edge.best.value, 0.3);
        assert!(edge.best_on_boundary(), "winner at the grid end");
        let interior = tuner.tune(GFunction::metropolis, &[1e6, 0.3, 1e7]);
        assert_eq!(interior.best.value, 0.3);
        assert!(!interior.best_on_boundary(), "bracketed winner");
    }

    #[test]
    fn single_candidate_is_always_a_boundary_winner() {
        let instances = [BitCount];
        let tuner = Tuner::new(&instances, Budget::evaluations(1), 7);
        let report = tuner.tune(GFunction::metropolis, &[1.0]);
        assert!(report.best_on_boundary(), "a 1-point grid cannot bracket");
    }

    #[test]
    fn same_start_states_across_candidates() {
        // With a single zero-budget run the reduction is 0 for every
        // candidate and the report must still be well-formed (ties → first).
        let instances = [BitCount];
        let tuner = Tuner::new(&instances, Budget::evaluations(1), 7);
        let report = tuner.tune(GFunction::metropolis, &[1.0, 2.0, 3.0]);
        assert_eq!(
            report.best.value, 1.0,
            "ties resolve to the first candidate"
        );
    }

    #[test]
    #[should_panic(expected = "at least one instance")]
    fn empty_instances_panics() {
        let instances: [BitCount; 0] = [];
        let _ = Tuner::new(&instances, Budget::evaluations(1), 0);
    }

    #[test]
    #[should_panic(expected = "at least one candidate")]
    fn empty_candidates_panics() {
        let instances = [BitCount];
        let tuner = Tuner::new(&instances, Budget::evaluations(1), 0);
        let _ = tuner.tune(GFunction::metropolis, &[]);
    }
}
