//! Zero-cost-when-off chain tracing.
//!
//! A strategy run can be observed through the [`ChainObserver`] trait: the
//! chain reports temperature-stage transitions (with the [`AdvanceReason`]
//! and the stage's wall time), every post-step energy value, best-so-far
//! improvements and the final [`StopReason`]. The observer parameter is
//! monomorphized, and every call site is gated on the associated constant
//! [`ChainObserver::ENABLED`], so a run with [`NoopObserver`] compiles to
//! exactly the untraced chain — no clock reads, no branches, no allocation
//! (the PR 2 bench kernels are guarded by a test asserting this).
//!
//! Tracing never touches the RNG: a traced run visits bitwise-identical
//! states to an untraced run under the same seed.
//!
//! [`TraceCollector`] is the batteries-included observer: it keeps the
//! per-stage breakdown, a bounded energy trajectory (stride sampling with
//! deterministic stride doubling, so memory stays `O(cap)` for arbitrarily
//! long runs) and the best-so-far improvements.

use std::time::Duration;

use crate::stats::{AdvanceReason, StopReason, TempStats};

/// Default sample-buffer capacity for [`TraceCollector`]: energy and best
/// trajectories each hold at most this many points.
pub const DEFAULT_TRACE_SAMPLES: usize = 512;

/// Receives structured events from a strategy run.
///
/// All methods have empty default bodies, so an observer implements only the
/// events it cares about. Implementations with `ENABLED = true` (the default)
/// additionally receive per-stage wall times; the strategies read the clock
/// once per temperature stage in that case, never per step.
pub trait ChainObserver {
    /// Whether this observer wants events at all. With `false` (see
    /// [`NoopObserver`]) the strategies skip every observer call *and* all
    /// clock reads at compile time.
    const ENABLED: bool = true;

    /// The run is starting: initial cost and schedule length `k`.
    fn on_run_start(&mut self, initial_cost: f64, temperatures: usize) {
        let _ = (initial_cost, temperatures);
    }

    /// A temperature stage closed (advance or end of run): its counter
    /// breakdown and wall-clock duration.
    fn on_stage(&mut self, stage: &TempStats, wall: Duration) {
        let _ = (stage, wall);
    }

    /// The chain's current energy after a resolved step. Called once per
    /// proposal (Figure 1/2) or sampled move (rejectionless) — keep it cheap.
    fn on_energy(&mut self, evals: u64, cost: f64) {
        let _ = (evals, cost);
    }

    /// The best-so-far cost improved.
    fn on_best(&mut self, evals: u64, cost: f64) {
        let _ = (evals, cost);
    }

    /// The run stopped.
    fn on_stop(&mut self, reason: StopReason, evals: u64, final_cost: f64, best_cost: f64) {
        let _ = (reason, evals, final_cost, best_cost);
    }
}

/// The do-nothing observer: `ENABLED = false`, so traced entry points called
/// with it compile to the plain untraced chain.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoopObserver;

impl ChainObserver for NoopObserver {
    const ENABLED: bool = false;
}

/// One closed temperature stage as seen by a [`TraceCollector`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StageTrace {
    /// Counter breakdown for the stage.
    pub stats: TempStats,
    /// Wall-clock time spent in the stage.
    pub wall: Duration,
}

/// Why and where a traced run stopped.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StopTrace {
    /// Why the run stopped.
    pub reason: StopReason,
    /// Total evaluations charged when it stopped.
    pub evals: u64,
    /// Cost of the final chain state.
    pub final_cost: f64,
    /// Best cost observed during the run.
    pub best_cost: f64,
}

/// Everything a [`TraceCollector`] gathered from one run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ChainTrace {
    /// Cost of the starting state.
    pub initial_cost: f64,
    /// Schedule length `k` of the run.
    pub temperatures: usize,
    /// Closed temperature stages, in order.
    pub stages: Vec<StageTrace>,
    /// Sampled `(evals, energy)` trajectory of the chain (bounded; see
    /// [`TraceCollector`]).
    pub samples: Vec<(u64, f64)>,
    /// Best-so-far improvements as `(evals, best_cost)` (bounded).
    pub bests: Vec<(u64, f64)>,
    /// Stop record, present once the run finished.
    pub stop: Option<StopTrace>,
    /// Total number of energy events the chain emitted (before sampling).
    pub energy_events: u64,
}

/// An observer that records a [`ChainTrace`] with bounded memory.
///
/// Energy samples use stride sampling with deterministic compaction: the
/// stride starts at 1 (every event kept); whenever the buffer reaches its
/// capacity, every other sample is dropped and the stride doubles. The result
/// depends only on the event sequence — never on a clock or RNG — so traced
/// runs stay reproducible.
#[derive(Debug, Clone)]
pub struct TraceCollector {
    trace: ChainTrace,
    cap: usize,
    stride: u64,
    next_sample_at: u64,
}

impl Default for TraceCollector {
    fn default() -> Self {
        Self::new()
    }
}

impl TraceCollector {
    /// A collector with the [default](DEFAULT_TRACE_SAMPLES) sample capacity.
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_TRACE_SAMPLES)
    }

    /// A collector whose energy/best buffers each hold at most `cap` points
    /// (`cap` is clamped to at least 2).
    pub fn with_capacity(cap: usize) -> Self {
        TraceCollector {
            trace: ChainTrace::default(),
            cap: cap.max(2),
            stride: 1,
            next_sample_at: 0,
        }
    }

    /// The trace gathered so far.
    pub fn trace(&self) -> &ChainTrace {
        &self.trace
    }

    /// Consumes the collector, returning the gathered trace.
    pub fn into_trace(self) -> ChainTrace {
        self.trace
    }

    /// Drops every other element once `buf` is full. Keeps the first element
    /// (and, because pushes continue afterwards, the latest always re-enters).
    fn compact(buf: &mut Vec<(u64, f64)>) {
        let mut i = 0;
        buf.retain(|_| {
            let keep = i % 2 == 0;
            i += 1;
            keep
        });
    }
}

impl ChainObserver for TraceCollector {
    fn on_run_start(&mut self, initial_cost: f64, temperatures: usize) {
        self.trace.initial_cost = initial_cost;
        self.trace.temperatures = temperatures;
    }

    fn on_stage(&mut self, stage: &TempStats, wall: Duration) {
        self.trace.stages.push(StageTrace {
            stats: *stage,
            wall,
        });
    }

    fn on_energy(&mut self, evals: u64, cost: f64) {
        self.trace.energy_events += 1;
        if evals < self.next_sample_at {
            return;
        }
        self.trace.samples.push((evals, cost));
        self.next_sample_at = evals + self.stride;
        if self.trace.samples.len() >= self.cap {
            Self::compact(&mut self.trace.samples);
            self.stride *= 2;
        }
    }

    fn on_best(&mut self, evals: u64, cost: f64) {
        self.trace.bests.push((evals, cost));
        if self.trace.bests.len() >= self.cap {
            Self::compact(&mut self.trace.bests);
        }
    }

    fn on_stop(&mut self, reason: StopReason, evals: u64, final_cost: f64, best_cost: f64) {
        self.trace.stop = Some(StopTrace {
            reason,
            evals,
            final_cost,
            best_cost,
        });
    }
}

/// Convenience: counts per event kind emitted by a run, used by tests and by
/// the experiments crate's round-trip checks.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EventCounts {
    /// Temperature stages closed.
    pub stages: u64,
    /// Energy samples retained.
    pub samples: u64,
    /// Best-so-far improvements retained.
    pub bests: u64,
    /// 1 when the stop event was seen.
    pub stops: u64,
}

impl ChainTrace {
    /// Counts of the retained events in this trace.
    pub fn event_counts(&self) -> EventCounts {
        EventCounts {
            stages: self.stages.len() as u64,
            samples: self.samples.len() as u64,
            bests: self.bests.len() as u64,
            stops: u64::from(self.stop.is_some()),
        }
    }

    /// Sum of the advance/stop reasons across stages, split
    /// `(budget, equilibrium, exchange)`.
    pub fn stage_reasons(&self) -> (u64, u64, u64) {
        let mut budget = 0;
        let mut equilibrium = 0;
        let mut exchange = 0;
        for s in &self.stages {
            match s.stats.ended_by {
                AdvanceReason::Budget => budget += 1,
                AdvanceReason::Equilibrium => equilibrium += 1,
                AdvanceReason::Exchange => exchange += 1,
            }
        }
        (budget, equilibrium, exchange)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stage(temp: usize) -> TempStats {
        TempStats {
            temp,
            temperature: 2.0,
            target_acceptance: f64::NAN,
            evals: 10,
            proposals: 9,
            accepted_downhill: 3,
            accepted_uphill: 2,
            rejected_uphill: 4,
            swap_attempts: 0,
            swap_accepts: 0,
            ended_by: AdvanceReason::Budget,
        }
    }

    #[test]
    fn noop_observer_is_disabled() {
        const { assert!(!NoopObserver::ENABLED) };
        const { assert!(TraceCollector::ENABLED) };
    }

    #[test]
    fn collector_bounds_sample_memory() {
        let mut c = TraceCollector::with_capacity(16);
        for i in 0..100_000u64 {
            c.on_energy(i, i as f64);
        }
        let t = c.trace();
        assert!(t.samples.len() < 16, "len = {}", t.samples.len());
        assert_eq!(t.energy_events, 100_000);
        // Strictly increasing eval coordinates survive compaction.
        for w in t.samples.windows(2) {
            assert!(w[0].0 < w[1].0);
        }
        assert_eq!(t.samples[0].0, 0, "first sample is kept");
    }

    #[test]
    fn collector_sampling_is_deterministic() {
        let feed = |cap| {
            let mut c = TraceCollector::with_capacity(cap);
            for i in 0..5_000u64 {
                c.on_energy(i, (i % 37) as f64);
            }
            c.into_trace().samples
        };
        assert_eq!(feed(32), feed(32));
    }

    #[test]
    fn collector_bounds_best_memory() {
        let mut c = TraceCollector::with_capacity(8);
        for i in 0..1_000u64 {
            c.on_best(i, -(i as f64));
        }
        assert!(c.trace().bests.len() < 8);
    }

    #[test]
    fn collector_records_stages_and_stop() {
        let mut c = TraceCollector::new();
        c.on_run_start(86.0, 6);
        c.on_stage(&stage(0), Duration::from_millis(3));
        c.on_stage(&stage(1), Duration::from_millis(4));
        c.on_stop(StopReason::Budget, 20, 70.0, 64.0);
        let t = c.into_trace();
        assert_eq!(t.initial_cost, 86.0);
        assert_eq!(t.temperatures, 6);
        assert_eq!(t.stages.len(), 2);
        assert_eq!(t.stage_reasons(), (2, 0, 0));
        let stop = t.stop.unwrap();
        assert_eq!(stop.reason, StopReason::Budget);
        assert_eq!(stop.best_cost, 64.0);
        assert_eq!(
            t.event_counts(),
            EventCounts {
                stages: 2,
                samples: 0,
                bests: 0,
                stops: 1
            }
        );
    }
}
