//! The functional forms of the paper's 20 acceptance-function classes (§3).
//!
//! Every class is a pair (form, schedule): the form maps the current cost
//! `h(i)`, the proposed cost `h(j)` and the active temperature `Y` to an
//! acceptance probability. Forms fall into four families:
//!
//! * **Boltzmann** — `e^{-(h(j)-h(i))/Y}` (Metropolis, six-temperature
//!   annealing),
//! * **constant** — the schedule value *is* the probability (`g = 1`,
//!   two-level g),
//! * **current-cost** — polynomials/exponential in `h(i)` (classes 5–12),
//! * **difference** — polynomials/exponential in `1/(h(j)-h(i))`
//!   (classes 13–20),
//!
//! plus the problem-specific [COHO83a] function `min(h(i)/(m+5), 0.9)`.

/// Euler's number minus one, the normalizer of the exponential classes 8, 12,
/// 16 and 20.
const E_MINUS_1: f64 = std::f64::consts::E - 1.0;

/// A functional form for the uphill-acceptance probability
/// `g(h(i), h(j))` at temperature `Y`.
///
/// Values returned by [`probability`](Form::probability) are clamped to
/// `[0, 1]`; several of the paper's forms (e.g. `Y/(h(j)-h(i))` with a small
/// difference) exceed 1, which simply means "always accept".
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Form {
    /// `e^{-(h(j)-h(i))/Y}` — classes 1 (Metropolis, k=1) and 2
    /// (six-temperature annealing, k=6).
    Boltzmann,
    /// `p = Y`: the schedule value is used directly as the probability —
    /// class 3 (`g = 1`, schedule `[1]`) and class 4 (two-level g, schedule
    /// `[1, 0.5]`).
    Constant,
    /// `Y · h(i)^degree` — classes 5–7 and 9–11 (linear, quadratic, cubic in
    /// the *current* cost).
    PolyCurrent {
        /// Polynomial degree: 1 (linear), 2 (quadratic) or 3 (cubic).
        degree: u32,
    },
    /// `(e^{h(i)/Y} - 1)/(e - 1)` — classes 8 and 12.
    ExpCurrent,
    /// `Y / (h(j)-h(i))^degree` — classes 13–15 and 17–19. A zero difference
    /// yields probability 1 (the limit of the form).
    PolyDifference {
        /// Polynomial degree: 1 (linear), 2 (quadratic) or 3 (cubic).
        degree: u32,
    },
    /// `(e^{Y/(h(j)-h(i))} - 1)/(e - 1)` — classes 16 and 20. A zero
    /// difference yields probability 1.
    ExpDifference,
    /// \[COHO83a\]'s board-permutation function `min(h(i)/(m+5), 0.9)` where
    /// `m` is the number of nets in the instance (§4.2.2). The schedule value
    /// is ignored.
    Coho83a {
        /// Number of nets `m` in the instance under optimization.
        m: f64,
    },
}

impl Form {
    /// The acceptance probability for an uphill (or flat) move from cost
    /// `h_i` to cost `h_j ≥ h_i` at temperature `y`, clamped to `[0, 1]`.
    ///
    /// A *downhill* argument pair (`h_j < h_i`) is answered with 1.0: both
    /// strategies accept cost reductions unconditionally, so forms are never
    /// consulted for them (the clamp keeps difference forms well-defined
    /// defensively).
    pub fn probability(&self, h_i: f64, h_j: f64, y: f64) -> f64 {
        let dh = h_j - h_i;
        if dh < 0.0 {
            return 1.0;
        }
        let raw = match *self {
            Form::Boltzmann => (-dh / y).exp(),
            Form::Constant => y,
            Form::PolyCurrent { degree } => y * h_i.powi(degree as i32),
            Form::ExpCurrent => ((h_i / y).exp() - 1.0) / E_MINUS_1,
            Form::PolyDifference { degree } => {
                if dh == 0.0 {
                    return 1.0;
                }
                y / dh.powi(degree as i32)
            }
            Form::ExpDifference => {
                if dh == 0.0 {
                    return 1.0;
                }
                ((y / dh).exp() - 1.0) / E_MINUS_1
            }
            Form::Coho83a { m } => (h_i / (m + 5.0)).min(0.9),
        };
        raw.clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boltzmann_matches_metropolis() {
        let f = Form::Boltzmann;
        assert!((f.probability(10.0, 12.0, 2.0) - (-1.0f64).exp()).abs() < 1e-12);
        assert_eq!(f.probability(10.0, 10.0, 2.0), 1.0);
        // Lower temperature, lower acceptance.
        assert!(f.probability(10.0, 12.0, 0.5) < f.probability(10.0, 12.0, 2.0));
    }

    #[test]
    fn constant_is_schedule_value() {
        assert_eq!(Form::Constant.probability(5.0, 9.0, 1.0), 1.0);
        assert_eq!(Form::Constant.probability(5.0, 9.0, 0.5), 0.5);
    }

    #[test]
    fn poly_current_uses_current_cost() {
        // Y·h(i)^2 with Y=1e-4, h(i)=50 → 0.25.
        let f = Form::PolyCurrent { degree: 2 };
        assert!((f.probability(50.0, 51.0, 1e-4) - 0.25).abs() < 1e-12);
        // Worse current solutions accept uphill moves more readily.
        assert!(f.probability(80.0, 81.0, 1e-4) > f.probability(50.0, 51.0, 1e-4));
    }

    #[test]
    fn exp_current_normalized() {
        // h(i) = Y → (e - 1)/(e - 1) = 1.
        let f = Form::ExpCurrent;
        assert!((f.probability(3.0, 4.0, 3.0) - 1.0).abs() < 1e-12);
        assert!(f.probability(1.0, 2.0, 3.0) < 1.0);
    }

    #[test]
    fn poly_difference_decays_with_delta() {
        let f = Form::PolyDifference { degree: 3 };
        assert!((f.probability(10.0, 12.0, 1.0) - 0.125).abs() < 1e-12);
        assert_eq!(f.probability(10.0, 10.0, 1.0), 1.0, "zero delta accepts");
        assert_eq!(f.probability(10.0, 11.0, 5.0), 1.0, "clamped to 1");
    }

    #[test]
    fn exp_difference_limits() {
        let f = Form::ExpDifference;
        assert_eq!(f.probability(10.0, 10.0, 1.0), 1.0);
        // Y/dh = 1 → exactly 1 after normalization.
        assert!((f.probability(10.0, 11.0, 1.0) - 1.0).abs() < 1e-12);
        assert!(f.probability(10.0, 20.0, 1.0) < 0.2);
    }

    #[test]
    fn coho83a_caps_at_point_nine() {
        let f = Form::Coho83a { m: 150.0 };
        assert!((f.probability(31.0, 32.0, 1.0) - 31.0 / 155.0).abs() < 1e-12);
        assert_eq!(f.probability(10_000.0, 10_001.0, 1.0), 0.9);
    }

    #[test]
    fn downhill_always_one() {
        for f in [
            Form::Boltzmann,
            Form::Constant,
            Form::PolyCurrent { degree: 1 },
            Form::ExpCurrent,
            Form::PolyDifference { degree: 2 },
            Form::ExpDifference,
            Form::Coho83a { m: 150.0 },
        ] {
            assert_eq!(f.probability(10.0, 8.0, 0.01), 1.0, "{f:?}");
        }
    }

    #[test]
    fn probabilities_always_in_unit_interval() {
        let forms = [
            Form::Boltzmann,
            Form::Constant,
            Form::PolyCurrent { degree: 3 },
            Form::ExpCurrent,
            Form::PolyDifference { degree: 1 },
            Form::ExpDifference,
            Form::Coho83a { m: 10.0 },
        ];
        for f in forms {
            for h_i in [0.0, 1.0, 50.0, 1e6] {
                for dh in [0.0, 0.5, 1.0, 100.0] {
                    for y in [1e-6, 0.5, 1.0, 10.0, 1e6] {
                        let p = f.probability(h_i, h_i + dh, y);
                        assert!(
                            (0.0..=1.0).contains(&p),
                            "{f:?} h={h_i} dh={dh} y={y} p={p}"
                        );
                    }
                }
            }
        }
    }
}
