//! The rejection-counter gate that makes `g = 1` usable under the Figure-1
//! strategy.
//!
//! Accepting *every* uphill perturbation (as a literal `g = 1` would) turns
//! the Figure-1 strategy into a random walk. The paper's fix (§3):
//!
//! > "Each time a random perturbation reduces the energy, a counter is set to
//! > zero. Each time the energy is increased the counter is incremented by 1.
//! > However, the higher energy configuration does not become the starting
//! > point for further perturbations until the counter becomes 18. At this
//! > time, the counter is reset to 1."
//!
//! Note the asymmetric resets — to 0 on a cost reduction, to 1 on a gated
//! acceptance — which this implementation preserves exactly.

/// The paper's gate period: an uphill move is accepted once every 18
/// consecutive non-improving perturbations.
pub const PAPER_GATE_PERIOD: u32 = 18;

/// A deterministic uphill-acceptance gate (§3).
///
/// # Examples
///
/// ```
/// use anneal_core::accept::Gate;
///
/// let mut gate = Gate::new(3);
/// assert!(!gate.on_uphill()); // counter = 1
/// assert!(!gate.on_uphill()); // counter = 2
/// assert!(gate.on_uphill()); // counter = 3 → accept, reset to 1
/// assert!(!gate.on_uphill()); // counter = 2
/// assert!(gate.on_uphill()); // counter = 3 → accept
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Gate {
    period: u32,
    counter: u32,
}

impl Gate {
    /// A gate that opens on every `period`-th consecutive uphill proposal.
    ///
    /// # Panics
    ///
    /// Panics if `period == 0`.
    pub fn new(period: u32) -> Self {
        assert!(period > 0, "gate period must be positive");
        Gate { period, counter: 0 }
    }

    /// The paper's gate (period 18).
    pub fn paper() -> Self {
        Gate::new(PAPER_GATE_PERIOD)
    }

    /// Records an uphill (energy-increasing) proposal; returns `true` when
    /// the gate opens, i.e. the proposal should be accepted.
    pub fn on_uphill(&mut self) -> bool {
        self.counter += 1;
        if self.counter >= self.period {
            self.counter = 1;
            true
        } else {
            false
        }
    }

    /// Records an energy-reducing perturbation, resetting the counter to 0.
    pub fn on_downhill(&mut self) {
        self.counter = 0;
    }

    /// Restores the gate to its initial state (for run reuse).
    pub fn reset(&mut self) {
        self.counter = 0;
    }

    /// The configured period.
    pub fn period(&self) -> u32 {
        self.period
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_gate_accepts_every_18th() {
        let mut g = Gate::paper();
        let mut accepts = 0;
        for _ in 0..17 {
            assert!(!g.on_uphill());
        }
        assert!(g.on_uphill(), "18th consecutive uphill accepted");
        // After acceptance the counter restarts at 1, so 16 more rejections
        // precede the next acceptance.
        for _ in 0..16 {
            assert!(!g.on_uphill());
        }
        assert!(g.on_uphill());
        accepts += 2;
        assert_eq!(accepts, 2);
    }

    #[test]
    fn downhill_resets_to_zero() {
        let mut g = Gate::new(5);
        for _ in 0..4 {
            assert!(!g.on_uphill());
        }
        g.on_downhill();
        // Full period required again.
        for _ in 0..4 {
            assert!(!g.on_uphill());
        }
        assert!(g.on_uphill());
    }

    #[test]
    fn reset_after_accept_is_one_not_zero() {
        // Period 2: accept on every 2nd uphill at first; afterwards the
        // counter restarts at 1, so every subsequent uphill is the 2nd.
        let mut g = Gate::new(2);
        assert!(!g.on_uphill());
        assert!(g.on_uphill());
        assert!(g.on_uphill(), "post-accept counter starts at 1");
    }

    #[test]
    #[should_panic(expected = "period must be positive")]
    fn zero_period_panics() {
        let _ = Gate::new(0);
    }
}
