//! Acceptance functions ("g functions", §3 of the paper).
//!
//! A [`GFunction`] bundles a functional [`Form`], a temperature
//! [`Schedule`] and an optional rejection-counter [`Gate`],
//! and provides constructors for all 20 classes enumerated in §3 plus the
//! \[COHO83a\] baseline used in §4.2.2.
//!
//! | # | Class | Constructor |
//! |---|-------|-------------|
//! | 1 | Metropolis | [`GFunction::metropolis`] |
//! | 2 | Six Temperature Annealing | [`GFunction::six_temp_annealing`] |
//! | 3 | g = 1 | [`GFunction::unit`] |
//! | 4 | Two Level g | [`GFunction::two_level`] |
//! | 5–7 | Linear / Quadratic / Cubic | [`GFunction::poly_current`] |
//! | 8 | Exponential | [`GFunction::exp_current`] |
//! | 9–11 | 6 Linear / Quadratic / Cubic | [`GFunction::poly_current_six`] |
//! | 12 | 6 Exponential | [`GFunction::exp_current_six`] |
//! | 13–15 | Linear / Quadratic / Cubic Diff | [`GFunction::poly_difference`] |
//! | 16 | Exponential Diff | [`GFunction::exp_difference`] |
//! | 17–19 | 6 Linear / Quadratic / Cubic Diff | [`GFunction::poly_difference_six`] |
//! | 20 | 6 Exponential Diff | [`GFunction::exp_difference_six`] |
//! | — | \[COHO83a\] | [`GFunction::coho83a`] |

mod form;
mod gate;

pub use form::Form;
pub use gate::{Gate, PAPER_GATE_PERIOD};

use crate::schedule::Schedule;
use rand::{Rng, RngExt};

/// The ratio of Kirkpatrick's geometric schedule (§1: `Y_i = 0.9·Y_{i-1}`).
pub const KIRKPATRICK_RATIO: f64 = 0.9;

/// A complete acceptance function: form × schedule × optional gate.
///
/// `GFunction` is *stateful* (the gate carries a rejection counter), so
/// strategies take it by `&mut` and call [`reset`](GFunction::reset) at the
/// start of a run.
///
/// # Examples
///
/// ```
/// use anneal_core::GFunction;
///
/// let mut g = GFunction::six_temp_annealing(10.0);
/// assert_eq!(g.temperatures(), 6);
/// assert_eq!(g.name(), "Six Temperature Annealing");
/// // At Y₁ = 10, an uphill move of +1 is accepted with p = e^{-0.1}.
/// let p = g.probability(0, 50.0, 51.0);
/// assert!((p - (-0.1f64).exp()).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct GFunction {
    name: String,
    form: Form,
    schedule: Schedule,
    gate: Option<Gate>,
    /// Per-temperature decision fast path, rebuilt whenever the form or
    /// schedule changes. Purely an evaluation shortcut: every branch makes
    /// exactly the decision (and consumes exactly the random draws) the
    /// general `Form::probability` path would.
    fast: Vec<FastDecision>,
}

/// The precomputed decision strategy for one temperature index.
#[derive(Debug, Clone, Copy)]
enum FastDecision {
    /// The scheduled probability is identically 1 (e.g. `g = 1`): accept,
    /// routing strictly-uphill moves through the gate. Never draws.
    AlwaysOne,
    /// A cost-independent probability below 1 (e.g. two-level g's second
    /// level): downhill accepts free, anything else is one cached-threshold
    /// coin flip.
    Coin(f64),
    /// Boltzmann at the cached temperature: flat and downhill moves accept
    /// without evaluating `exp()`; strictly-uphill moves compute the
    /// identical `e^{-dh/y}` expression the general path would.
    Boltzmann(f64),
    /// Cost-dependent forms: defer to `Form::probability`.
    General,
}

fn classify(form: Form, y: f64) -> FastDecision {
    match form {
        Form::Boltzmann => FastDecision::Boltzmann(y),
        Form::Constant => {
            let p = y.clamp(0.0, 1.0);
            if p >= 1.0 {
                FastDecision::AlwaysOne
            } else {
                FastDecision::Coin(p)
            }
        }
        _ => FastDecision::General,
    }
}

impl GFunction {
    /// A custom acceptance function. Prefer the named constructors for the
    /// paper's classes.
    pub fn new(name: impl Into<String>, form: Form, schedule: Schedule) -> Self {
        let mut g = GFunction {
            name: name.into(),
            form,
            schedule,
            gate: None,
            fast: Vec::new(),
        };
        g.rebuild_fast();
        g
    }

    fn rebuild_fast(&mut self) {
        self.fast = (0..self.schedule.len())
            .map(|t| classify(self.form, self.schedule.value(t)))
            .collect();
    }

    // ----- the paper's classes -------------------------------------------

    /// Class 1 — Metropolis: `k = 1`, `g₁ = e^{-(h(j)-h(i))/Y₁}`.
    pub fn metropolis(y1: f64) -> Self {
        Self::new("Metropolis", Form::Boltzmann, Schedule::single(y1))
    }

    /// Class 2 — Six Temperature Annealing: Boltzmann acceptance over
    /// Kirkpatrick's geometric schedule starting at `y1` (ratio 0.9, k = 6).
    pub fn six_temp_annealing(y1: f64) -> Self {
        Self::new(
            "Six Temperature Annealing",
            Form::Boltzmann,
            Schedule::geometric(y1, KIRKPATRICK_RATIO, 6),
        )
    }

    /// Boltzmann acceptance over an arbitrary schedule (e.g. \[GOLD84\]'s
    /// 25-point uniform schedule).
    pub fn annealing(schedule: Schedule) -> Self {
        Self::new("Annealing", Form::Boltzmann, schedule)
    }

    /// Class 3 — `g = 1`: every uphill move accepted, gated under Figure 1 by
    /// the paper's 18-rejection counter (§3). The gate is inert under the
    /// Figure-2 strategy ("no special considerations are needed").
    pub fn unit() -> Self {
        let mut g = Self::new("g = 1", Form::Constant, Schedule::single(1.0));
        g.gate = Some(Gate::paper());
        g
    }

    /// Class 4 — Two Level g: `k = 2`, `g₁ = 1`, `g₂ = 0.5`. The probability-1
    /// first level carries the same Figure-1 gate as [`unit`](Self::unit)
    /// (see DESIGN.md: the gate applies whenever the scheduled probability
    /// is 1, preventing the same random-walk degeneracy).
    pub fn two_level() -> Self {
        let mut g = Self::new(
            "Two level g",
            Form::Constant,
            Schedule::explicit(vec![1.0, 0.5]),
        );
        g.gate = Some(Gate::paper());
        g
    }

    /// Classes 5–7 — Linear/Quadratic/Cubic: `g₁ = Y₁·h(i)^degree`, `k = 1`.
    ///
    /// # Panics
    ///
    /// Panics if `degree` is not 1, 2 or 3.
    pub fn poly_current(degree: u32, y1: f64) -> Self {
        Self::new(
            poly_name(degree, false, false),
            Form::PolyCurrent { degree },
            Schedule::single(y1),
        )
    }

    /// Class 8 — Exponential: `g₁ = (e^{h(i)/Y₁} - 1)/(e - 1)`, `k = 1`.
    pub fn exp_current(y1: f64) -> Self {
        Self::new("Exponential", Form::ExpCurrent, Schedule::single(y1))
    }

    /// Classes 9–11 — 6 Linear/Quadratic/Cubic: `g_t = Y_t·h(i)^degree` over a
    /// six-temperature geometric schedule starting at `y1`.
    pub fn poly_current_six(degree: u32, y1: f64) -> Self {
        Self::new(
            poly_name(degree, true, false),
            Form::PolyCurrent { degree },
            Schedule::geometric(y1, KIRKPATRICK_RATIO, 6),
        )
    }

    /// Class 12 — 6 Exponential.
    pub fn exp_current_six(y1: f64) -> Self {
        Self::new(
            "6 Exponential",
            Form::ExpCurrent,
            Schedule::geometric(y1, KIRKPATRICK_RATIO, 6),
        )
    }

    /// Classes 13–15 — Linear/Quadratic/Cubic Difference:
    /// `g₁ = Y₁/(h(j)-h(i))^degree`, `k = 1`.
    pub fn poly_difference(degree: u32, y1: f64) -> Self {
        Self::new(
            poly_name(degree, false, true),
            Form::PolyDifference { degree },
            Schedule::single(y1),
        )
    }

    /// Class 16 — Exponential Difference:
    /// `g₁ = (e^{Y₁/(h(j)-h(i))} - 1)/(e - 1)`, `k = 1`.
    pub fn exp_difference(y1: f64) -> Self {
        Self::new(
            "Exponential Diff",
            Form::ExpDifference,
            Schedule::single(y1),
        )
    }

    /// Classes 17–19 — 6 Linear/Quadratic/Cubic Difference over a
    /// six-temperature geometric schedule.
    pub fn poly_difference_six(degree: u32, y1: f64) -> Self {
        Self::new(
            poly_name(degree, true, true),
            Form::PolyDifference { degree },
            Schedule::geometric(y1, KIRKPATRICK_RATIO, 6),
        )
    }

    /// Class 20 — 6 Exponential Difference.
    pub fn exp_difference_six(y1: f64) -> Self {
        Self::new(
            "6 Exponential Diff",
            Form::ExpDifference,
            Schedule::geometric(y1, KIRKPATRICK_RATIO, 6),
        )
    }

    /// The \[COHO83a\] acceptance function `g(h) = min(h/(m+5), 0.9)` for an
    /// instance with `m` nets (§4.2.2).
    pub fn coho83a(m: usize) -> Self {
        Self::new(
            "[COHO83a]",
            Form::Coho83a { m: m as f64 },
            Schedule::single(1.0),
        )
    }

    // ----- configuration --------------------------------------------------

    /// Replaces the schedule (used by the tuner to rescale temperatures).
    pub fn with_schedule(mut self, schedule: Schedule) -> Self {
        self.schedule = schedule;
        self.rebuild_fast();
        self
    }

    /// Overwrites one temperature in place — the adaptive controller's
    /// feedback hook, called at stage boundaries. Rebuilds only the affected
    /// fast-path entry; like the other schedule mutators it never draws
    /// randomness, so attaching a controller cannot perturb RNG parity.
    ///
    /// # Panics
    ///
    /// Panics if `t >= self.temperatures()` or `y` is not finite and
    /// positive.
    pub fn set_temperature(&mut self, t: usize, y: f64) {
        self.schedule.set_value(t, y);
        self.fast[t] = classify(self.form, y);
    }

    /// Rescales every temperature by `factor` (§4.2.1 tuning).
    pub fn scaled(mut self, factor: f64) -> Self {
        self.schedule = self.schedule.scaled(factor);
        self.rebuild_fast();
        self
    }

    /// Overrides the Figure-1 gate (e.g. to ablate the paper's period of 18).
    pub fn with_gate(mut self, gate: Option<Gate>) -> Self {
        self.gate = gate;
        self
    }

    /// Renames the function (for table display).
    pub fn named(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    // ----- queries ---------------------------------------------------------

    /// Display name, matching the paper's table rows.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The functional form.
    pub fn form(&self) -> Form {
        self.form
    }

    /// The temperature schedule.
    pub fn schedule(&self) -> &Schedule {
        &self.schedule
    }

    /// Number of temperatures `k`.
    pub fn temperatures(&self) -> usize {
        self.schedule.len()
    }

    /// The configured gate, if any.
    pub fn gate(&self) -> Option<&Gate> {
        self.gate.as_ref()
    }

    /// The raw acceptance probability at temperature index `t` (0-based),
    /// ignoring the gate.
    ///
    /// # Panics
    ///
    /// Panics if `t >= self.temperatures()`.
    pub fn probability(&self, t: usize, h_i: f64, h_j: f64) -> f64 {
        self.form.probability(h_i, h_j, self.schedule.value(t))
    }

    // ----- stateful decisions used by the strategies -----------------------

    /// Restores gate state for a fresh run.
    pub fn reset(&mut self) {
        if let Some(g) = &mut self.gate {
            g.reset();
        }
    }

    /// Notifies the gate that an energy-reducing perturbation occurred
    /// (Figure 1, Step 3).
    pub fn note_downhill(&mut self) {
        if let Some(g) = &mut self.gate {
            g.on_downhill();
        }
    }

    /// Figure-1 uphill decision: draws `r` and compares against
    /// `g_t(h(i), h(j))`, except that a scheduled probability of 1 is routed
    /// through the gate when one is configured (the paper's `g = 1`
    /// implementation, §3).
    ///
    /// The gate only governs *strictly higher-energy* configurations ("the
    /// higher energy configuration does not become the starting point…");
    /// cost-neutral perturbations are accepted freely and leave the gate
    /// counter untouched. This matters for objectives like the arrangement
    /// density, where most perturbations do not change the maximum.
    pub fn decide_figure1(&mut self, t: usize, h_i: f64, h_j: f64, rng: &mut dyn Rng) -> bool {
        // Every fast-path branch reproduces the general path bit for bit:
        // the same decision from the same number of random draws.
        let p = match self.fast[t] {
            FastDecision::AlwaysOne => {
                if h_j > h_i {
                    if let Some(g) = &mut self.gate {
                        return g.on_uphill();
                    }
                }
                return true;
            }
            FastDecision::Coin(p) => {
                if h_j < h_i {
                    return true;
                }
                p
            }
            FastDecision::Boltzmann(y) => {
                let dh = h_j - h_i;
                // Flat moves skip exp(): e^{∓0/y} is exactly 1 for y ≠ 0.
                // (y = 0 falls through so 0/0 → NaN rejects as always.)
                if dh < 0.0 || (dh == 0.0 && y != 0.0) {
                    return true;
                }
                let p = (-dh / y).exp();
                if p >= 1.0 {
                    if h_j > h_i {
                        if let Some(g) = &mut self.gate {
                            return g.on_uphill();
                        }
                    }
                    return true;
                }
                p
            }
            FastDecision::General => {
                let p = self.probability(t, h_i, h_j);
                if p >= 1.0 {
                    if h_j > h_i {
                        if let Some(g) = &mut self.gate {
                            return g.on_uphill();
                        }
                    }
                    return true;
                }
                p
            }
        };
        rng.random_range(0.0..1.0) < p
    }

    /// Figure-2 uphill decision: plain `r < g_t(h(i), h(j))`; the gate is
    /// never consulted ("no special considerations are needed", §3).
    pub fn decide_figure2(&mut self, t: usize, h_i: f64, h_j: f64, rng: &mut dyn Rng) -> bool {
        let p = match self.fast[t] {
            FastDecision::AlwaysOne => return true,
            FastDecision::Coin(p) => {
                if h_j < h_i {
                    return true;
                }
                p
            }
            FastDecision::Boltzmann(y) => {
                let dh = h_j - h_i;
                if dh < 0.0 || (dh == 0.0 && y != 0.0) {
                    return true;
                }
                let p = (-dh / y).exp();
                if p >= 1.0 {
                    return true;
                }
                p
            }
            FastDecision::General => {
                let p = self.probability(t, h_i, h_j);
                if p >= 1.0 {
                    return true;
                }
                p
            }
        };
        rng.random_range(0.0..1.0) < p
    }
}

fn poly_name(degree: u32, six: bool, diff: bool) -> String {
    let base = match degree {
        1 => "Linear",
        2 => "Quadratic",
        3 => "Cubic",
        _ => panic!("polynomial degree must be 1, 2 or 3, got {degree}"),
    };
    match (six, diff) {
        (false, false) => base.to_string(),
        (true, false) => format!("6 {base}"),
        (false, true) => format!("{base} Diff"),
        (true, true) => format!("6 {base} Diff"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn constructor_names_match_paper_tables() {
        assert_eq!(GFunction::metropolis(2.0).name(), "Metropolis");
        assert_eq!(
            GFunction::six_temp_annealing(10.0).name(),
            "Six Temperature Annealing"
        );
        assert_eq!(GFunction::unit().name(), "g = 1");
        assert_eq!(GFunction::two_level().name(), "Two level g");
        assert_eq!(GFunction::poly_current(1, 0.1).name(), "Linear");
        assert_eq!(GFunction::poly_current(2, 0.1).name(), "Quadratic");
        assert_eq!(GFunction::poly_current(3, 0.1).name(), "Cubic");
        assert_eq!(GFunction::exp_current(10.0).name(), "Exponential");
        assert_eq!(GFunction::poly_current_six(1, 0.1).name(), "6 Linear");
        assert_eq!(GFunction::exp_current_six(10.0).name(), "6 Exponential");
        assert_eq!(GFunction::poly_difference(1, 1.0).name(), "Linear Diff");
        assert_eq!(GFunction::poly_difference(3, 1.0).name(), "Cubic Diff");
        assert_eq!(GFunction::exp_difference(1.0).name(), "Exponential Diff");
        assert_eq!(
            GFunction::poly_difference_six(2, 1.0).name(),
            "6 Quadratic Diff"
        );
        assert_eq!(
            GFunction::exp_difference_six(1.0).name(),
            "6 Exponential Diff"
        );
        assert_eq!(GFunction::coho83a(150).name(), "[COHO83a]");
    }

    #[test]
    fn class_counts() {
        assert_eq!(GFunction::metropolis(1.0).temperatures(), 1);
        assert_eq!(GFunction::six_temp_annealing(10.0).temperatures(), 6);
        assert_eq!(GFunction::two_level().temperatures(), 2);
        assert_eq!(GFunction::poly_difference_six(3, 1.0).temperatures(), 6);
    }

    #[test]
    fn unit_gate_blocks_then_opens() {
        let mut g = GFunction::unit();
        let mut rng = StdRng::seed_from_u64(1);
        let mut accepted = 0;
        for _ in 0..36 {
            if g.decide_figure1(0, 50.0, 51.0, &mut rng) {
                accepted += 1;
            }
        }
        // 36 consecutive uphill proposals: accepts at #18 and #35 (counter
        // restarts at 1 after opening).
        assert_eq!(accepted, 2);
    }

    #[test]
    fn unit_under_figure2_accepts_everything() {
        let mut g = GFunction::unit();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10 {
            assert!(g.decide_figure2(0, 50.0, 51.0, &mut rng));
        }
    }

    #[test]
    fn downhill_note_resets_gate() {
        let mut g = GFunction::unit();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..17 {
            assert!(!g.decide_figure1(0, 50.0, 51.0, &mut rng));
        }
        g.note_downhill();
        // Gate counter back to 0: 17 more rejections before acceptance.
        for _ in 0..17 {
            assert!(!g.decide_figure1(0, 50.0, 51.0, &mut rng));
        }
        assert!(g.decide_figure1(0, 50.0, 51.0, &mut rng));
    }

    #[test]
    fn reset_restores_fresh_gate() {
        let mut g = GFunction::unit();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..17 {
            let _ = g.decide_figure1(0, 50.0, 51.0, &mut rng);
        }
        g.reset();
        assert!(!g.decide_figure1(0, 50.0, 51.0, &mut rng));
    }

    #[test]
    fn two_level_second_level_is_probabilistic() {
        let mut g = GFunction::two_level();
        let mut rng = StdRng::seed_from_u64(42);
        let trials = 10_000;
        let accepted = (0..trials)
            .filter(|_| g.decide_figure2(1, 50.0, 51.0, &mut rng))
            .count();
        let rate = accepted as f64 / trials as f64;
        assert!((rate - 0.5).abs() < 0.03, "level-2 rate {rate} ≉ 0.5");
    }

    #[test]
    fn metropolis_acceptance_rate_matches_probability() {
        let mut g = GFunction::metropolis(2.0);
        let mut rng = StdRng::seed_from_u64(7);
        let p = g.probability(0, 10.0, 12.0); // e^{-1}
        let trials = 20_000;
        let accepted = (0..trials)
            .filter(|_| g.decide_figure1(0, 10.0, 12.0, &mut rng))
            .count();
        let rate = accepted as f64 / trials as f64;
        assert!((rate - p).abs() < 0.02, "rate {rate} ≉ p {p}");
    }

    /// The pre-cache decision procedure, kept verbatim as the semantic
    /// reference for the fast paths.
    fn reference_decide_figure1(
        g: &mut GFunction,
        t: usize,
        h_i: f64,
        h_j: f64,
        rng: &mut dyn Rng,
    ) -> bool {
        let p = g.probability(t, h_i, h_j);
        if p >= 1.0 {
            if h_j > h_i {
                if let Some(gate) = &mut g.gate {
                    return gate.on_uphill();
                }
            }
            return true;
        }
        rng.random_range(0.0..1.0) < p
    }

    fn reference_decide_figure2(
        g: &mut GFunction,
        t: usize,
        h_i: f64,
        h_j: f64,
        rng: &mut dyn Rng,
    ) -> bool {
        let p = g.probability(t, h_i, h_j);
        p >= 1.0 || rng.random_range(0.0..1.0) < p
    }

    #[test]
    fn fast_paths_match_general_semantics() {
        // Every class, both strategies: the cached fast paths must return
        // the same decisions AND consume the same number of random draws as
        // the general probability-then-compare procedure. The lockstep
        // next_u64 comparison each round catches any draw-count divergence
        // immediately.
        let classes: Vec<GFunction> = vec![
            GFunction::metropolis(1.5),
            GFunction::six_temp_annealing(2.0),
            GFunction::unit(),
            GFunction::two_level(),
            GFunction::poly_current(2, 1e-4),
            GFunction::exp_current(100.0),
            GFunction::poly_difference(3, 0.4),
            GFunction::exp_difference(0.7),
            GFunction::coho83a(150),
            GFunction::metropolis(1e-300), // near-degenerate temperature
        ];
        let deltas = [-3.0, -1.0, 0.0, 0.0, 0.0, 1.0, 2.0, 5.0, 40.0];
        for proto in classes {
            for figure2 in [false, true] {
                let mut fast_g = proto.clone();
                let mut ref_g = proto.clone();
                let mut rng_a = StdRng::seed_from_u64(99);
                let mut rng_b = StdRng::seed_from_u64(99);
                let mut costs = StdRng::seed_from_u64(7);
                for step in 0..2000usize {
                    let t = step % proto.temperatures();
                    let h_i = costs.random_range(1..100) as f64;
                    let h_j = h_i + deltas[costs.random_range(0..deltas.len())];
                    let (a, b) = if figure2 {
                        (
                            fast_g.decide_figure2(t, h_i, h_j, &mut rng_a),
                            reference_decide_figure2(&mut ref_g, t, h_i, h_j, &mut rng_b),
                        )
                    } else {
                        (
                            fast_g.decide_figure1(t, h_i, h_j, &mut rng_a),
                            reference_decide_figure1(&mut ref_g, t, h_i, h_j, &mut rng_b),
                        )
                    };
                    assert_eq!(
                        a,
                        b,
                        "{} t={t} h_i={h_i} h_j={h_j} figure2={figure2}",
                        proto.name()
                    );
                    assert_eq!(
                        rng_a.next_u64(),
                        rng_b.next_u64(),
                        "{} diverged in rng consumption at step {step}",
                        proto.name()
                    );
                }
            }
        }
    }

    #[test]
    fn set_temperature_updates_fast_path() {
        let mut g = GFunction::six_temp_annealing(10.0);
        g.set_temperature(2, 4.0);
        assert!((g.schedule().value(2) - 4.0).abs() < 1e-12);
        // The fast path at index 2 must now decide at the new temperature:
        // probability and decision statistics match a fresh GFunction built
        // on the mutated schedule.
        let fresh = GFunction::annealing(g.schedule().clone());
        assert_eq!(
            g.probability(2, 10.0, 12.0).to_bits(),
            fresh.probability(2, 10.0, 12.0).to_bits()
        );
        let mut rng_a = StdRng::seed_from_u64(5);
        let mut rng_b = StdRng::seed_from_u64(5);
        let mut fresh = fresh;
        for _ in 0..500 {
            assert_eq!(
                g.decide_figure1(2, 10.0, 12.0, &mut rng_a),
                fresh.decide_figure1(2, 10.0, 12.0, &mut rng_b)
            );
        }
    }

    #[test]
    fn scaled_rescales_schedule() {
        let g = GFunction::six_temp_annealing(10.0).scaled(0.1);
        assert!((g.schedule().value(0) - 1.0).abs() < 1e-12);
        assert_eq!(g.temperatures(), 6);
    }

    #[test]
    #[should_panic(expected = "degree must be 1, 2 or 3")]
    fn bad_degree_panics() {
        let _ = GFunction::poly_current(4, 1.0);
    }
}
