#![warn(missing_docs)]

//! # anneal-core
//!
//! A Monte Carlo optimization framework reproducing the machinery of
//! S. Nahar, S. Sahni and E. Shragowitz, *"Experiments with simulated
//! annealing"*, 22nd Design Automation Conference, 1985.
//!
//! The paper compares classic simulated annealing against 19 other
//! acceptance-function ("g function") classes under two control strategies,
//! at equal computational cost. This crate provides:
//!
//! * the [`Problem`] trait — plug in any combinatorial optimization problem
//!   with a random-perturbation neighborhood;
//! * the two control strategies, [`Figure1`] (Metropolis/Kirkpatrick chain)
//!   and [`Figure2`] (local-opt-then-kick, after Cohoon & Sahni);
//! * all 20 acceptance-function classes of §3 plus the \[COHO83a\] baseline,
//!   as [`GFunction`] constructors;
//! * temperature [`Schedule`]s (single, geometric/Kirkpatrick, uniform/GOLD84);
//! * equal-cost comparison via [`Budget`]s counted in cost evaluations;
//! * a §4.2.1-style temperature [`tune::Tuner`];
//! * plain local search and the time-equalized [`multistart`](local::multistart)
//!   baseline protocol of \[LIN73\]/\[GOLD84\].
//!
//! # Quick start
//!
//! ```
//! use anneal_core::{Annealer, Budget, GFunction, Problem, Rng, RngExt, Strategy};
//!
//! // Minimize the number of set bits in a word by flipping random bits.
//! struct MinimizeBits;
//! impl Problem for MinimizeBits {
//!     type State = u64;
//!     type Move = u32;
//!     fn random_state(&self, rng: &mut dyn Rng) -> u64 {
//!         rng.random_range(0..1 << 16)
//!     }
//!     fn cost(&self, s: &u64) -> f64 {
//!         s.count_ones() as f64
//!     }
//!     fn propose(&self, _: &u64, rng: &mut dyn Rng) -> u32 {
//!         rng.random_range(0..16)
//!     }
//!     fn apply(&self, s: &mut u64, m: &u32) {
//!         *s ^= 1 << m;
//!     }
//! }
//!
//! // The paper's headline method: g = 1 — no temperatures to tune.
//! let result = Annealer::new(&MinimizeBits)
//!     .strategy(Strategy::Figure1)
//!     .budget(Budget::evaluations(30_000))
//!     .seed(1985)
//!     .run(&mut GFunction::unit());
//! assert_eq!(result.best_cost, 0.0);
//! ```
//!
//! # End to end: problem → schedule → strategy → statistics
//!
//! The full pipeline for a temperature-bearing method: measure the
//! problem's delta statistics, derive a schedule from them (here the
//! adaptive acceptance-ratio family of [`schedule::adaptive`] — a
//! [`white84_schedule`] or the §4.2.1 [`tune::Tuner`] slot in the same
//! way), run a strategy, then read the per-temperature [`TempStats`]:
//!
//! ```
//! use anneal_core::schedule::adaptive;
//! use anneal_core::{
//!     Annealer, Budget, GFunction, Problem, Rng, RngExt, Strategy,
//!     estimate_delta_stats,
//! };
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! // 1. The problem: minimize set bits in a word by flipping random bits.
//! struct MinimizeBits;
//! impl Problem for MinimizeBits {
//!     type State = u64;
//!     type Move = u32;
//!     fn random_state(&self, rng: &mut dyn Rng) -> u64 {
//!         rng.random_range(0..1 << 16)
//!     }
//!     fn cost(&self, s: &u64) -> f64 {
//!         s.count_ones() as f64
//!     }
//!     fn propose(&self, _: &u64, rng: &mut dyn Rng) -> u32 {
//!         rng.random_range(0..16)
//!     }
//!     fn apply(&self, s: &mut u64, m: &u32) {
//!         *s ^= 1 << m;
//!     }
//! }
//!
//! // 2. The schedule: probe the move-delta distribution, then derive a
//! //    six-temperature adaptive schedule (probe cost is reported so
//! //    equal-budget comparisons can charge it).
//! let mut rng = StdRng::seed_from_u64(7);
//! let stats = estimate_delta_stats(&MinimizeBits, 128, &mut rng);
//! let spec = adaptive::derive(&stats, adaptive::AdaptiveMode::Acceptance, 6, 128);
//!
//! // 3. The strategy: classic Boltzmann acceptance on that schedule, with
//! //    the feedback controller correcting each stage's temperature.
//! let mut g = GFunction::annealing(spec.schedule.clone());
//! let result = Annealer::new(&MinimizeBits)
//!     .strategy(Strategy::Figure1)
//!     .budget(Budget::evaluations(30_000 - spec.probe_evals))
//!     .seed(1985)
//!     .controller(spec.controller)
//!     .run(&mut g);
//!
//! // 4. The statistics: one TempStats per stage entered, recording the
//! //    controlled temperature and the acceptance rate it produced.
//! assert!(!result.stats.per_temp.is_empty());
//! for stage in &result.stats.per_temp {
//!     assert!(stage.temperature > 0.0);
//!     assert!(stage.acceptance_rate() <= 1.0);
//! }
//! assert_eq!(result.best_cost, 0.0);
//! ```

pub mod accept;
mod annealer;
mod budget;
pub mod local;
pub mod metrics;
mod problem;
mod range;
pub mod schedule;
mod seeds;
mod stats;
pub mod strategy;
pub mod telemetry;
pub mod trace;
pub mod tune;
pub mod watchdog;

pub use accept::{Form, GFunction, Gate, KIRKPATRICK_RATIO, PAPER_GATE_PERIOD};
pub use annealer::{Annealer, Strategy};
pub use budget::{Budget, Meter};
pub use problem::Problem;
pub use range::{estimate_delta_stats, white84_schedule, DeltaStats};
pub use schedule::adaptive::{AcceptanceController, AdaptiveMode, AdaptiveSchedule};
pub use schedule::Schedule;
pub use seeds::derive_seed;
pub use stats::{AdvanceReason, RunResult, RunStats, StopReason, TempStats};
pub use strategy::{
    Figure1, Figure2, Rejectionless, ReplicaExchange, DEFAULT_EQUILIBRIUM,
    DEFAULT_EXCHANGE_INTERVAL,
};
pub use telemetry::{RunTelemetry, TelemetrySink};
pub use trace::{
    ChainObserver, ChainTrace, NoopObserver, StageTrace, StopTrace, TraceCollector,
    DEFAULT_TRACE_SAMPLES,
};
pub use tune::{CandidateOutcome, TuneReport, Tuner};

// Re-export the rand traits that appear in this crate's public API so
// downstream crates need not depend on a matching rand version explicitly.
pub use rand::{Rng, RngExt};
