//! Feedback-controlled ("adaptive") temperature schedules.
//!
//! The paper's central practical complaint is tuning cost: every
//! temperature-bearing g class needs the §4.2.1 two-pass grid sweep before
//! it can compete with the parameter-free `g = 1`. This module derives the
//! schedule *online* from measured statistics instead, in three pieces:
//!
//! * [`initial_temperature`] — an automatic `Y₁` estimator that replaces
//!   the sweep's first pass: pick the temperature at which a typical
//!   uphill move (scale `σ` from [`DeltaStats`]) is accepted with a target
//!   hot-end probability.
//! * [`AcceptanceController`] — a Lam/Huang-style acceptance-ratio
//!   feedback loop: each stage's measured acceptance rate
//!   ([`TempStats::acceptance_rate`](crate::TempStats::acceptance_rate))
//!   is compared against a target trajectory and the next stage's
//!   temperature is corrected multiplicatively.
//! * [`asa_schedule`] / [`asa_from_stats`] — an ASA-style (Ingber)
//!   exponential-in-`√i` reannealing shape seeded by the same delta
//!   statistics [`white84_schedule`](crate::white84_schedule) uses.
//!
//! [`derive()`] bundles the three into an [`AdaptiveSchedule`] ready to hand
//! to a strategy; the experiments harness charges the probe evaluations
//! that produced the [`DeltaStats`] against the run budget so comparisons
//! against grid-swept settings stay equal-cost *including* tuning.

use crate::range::DeltaStats;
use crate::schedule::Schedule;

/// Target acceptance rate at the hot end of the trajectory.
pub const DEFAULT_HOT_ACCEPTANCE: f64 = 0.8;

/// Target acceptance rate at the cold end of the trajectory.
pub const DEFAULT_COLD_ACCEPTANCE: f64 = 0.05;

/// Default multiplicative feedback gain of the controller.
pub const DEFAULT_GAIN: f64 = 1.0;

/// Lowest temperature the controller will ever set.
pub const TEMPERATURE_FLOOR: f64 = 1e-12;

/// Highest temperature the controller will ever set.
pub const TEMPERATURE_CEILING: f64 = 1e12;

/// Delta-statistics samples the experiments harness probes per instance
/// when deriving an adaptive schedule (charged against the run budget).
pub const DEFAULT_PROBE_SAMPLES: u64 = 128;

/// Which adaptive schedule family to derive (the `repro --schedule`
/// spellings).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdaptiveMode {
    /// Acceptance-ratio feedback control over a White-range initial
    /// geometric schedule ([`AcceptanceController`]).
    Acceptance,
    /// ASA-style reannealing shape, no in-run feedback ([`asa_schedule`]).
    Asa,
}

impl AdaptiveMode {
    /// Stable lower-case name, used by the CLI and in reports.
    pub fn as_str(&self) -> &'static str {
        match self {
            AdaptiveMode::Acceptance => "adaptive",
            AdaptiveMode::Asa => "asa",
        }
    }
}

impl std::fmt::Display for AdaptiveMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

impl std::str::FromStr for AdaptiveMode {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "adaptive" => Ok(AdaptiveMode::Acceptance),
            "asa" => Ok(AdaptiveMode::Asa),
            other => Err(format!("unknown schedule mode `{other}` (adaptive, asa)")),
        }
    }
}

/// The acceptance-ratio feedback controller (Lam/Huang style).
///
/// A target acceptance trajectory interpolates geometrically from
/// [`hot_target`](AcceptanceController::hot_target) at stage 0 down to
/// [`cold_target`](AcceptanceController::cold_target) at the last stage.
/// When a stage closes, the controller compares the stage's measured
/// acceptance rate against that stage's target and corrects the *next*
/// stage's planned temperature multiplicatively:
///
/// ```text
/// Y' = Y · exp(-gain · (observed - target))
/// ```
///
/// — accepting more than targeted means the chain is running hot, so the
/// next temperature is lowered; accepting less means it is quenching too
/// fast, so the next temperature is raised. The result is clamped to
/// `[TEMPERATURE_FLOOR, TEMPERATURE_CEILING]`, so the controlled
/// temperature stays positive and finite for any finite input.
///
/// The controller is pure arithmetic — it never draws randomness — so
/// attaching it to a strategy changes *which* temperatures run but not the
/// RNG stream discipline: runs remain bitwise deterministic under a fixed
/// seed.
///
/// # Examples
///
/// ```
/// use anneal_core::schedule::adaptive::AcceptanceController;
///
/// let ctrl = AcceptanceController::default();
/// // Stage 2 of 6 wants an acceptance rate between the hot and cold ends.
/// let target = ctrl.target(2, 6);
/// assert!(target < ctrl.hot_target && target > ctrl.cold_target);
/// // Observed 100% acceptance against a modest target: cool the chain.
/// assert!(ctrl.adjust(1.0, 1.0, target) < 1.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AcceptanceController {
    /// Target acceptance rate at the first stage.
    pub hot_target: f64,
    /// Target acceptance rate at the last stage.
    pub cold_target: f64,
    /// Multiplicative feedback gain (0 disables correction).
    pub gain: f64,
}

impl Default for AcceptanceController {
    fn default() -> Self {
        AcceptanceController {
            hot_target: DEFAULT_HOT_ACCEPTANCE,
            cold_target: DEFAULT_COLD_ACCEPTANCE,
            gain: DEFAULT_GAIN,
        }
    }
}

impl AcceptanceController {
    /// A controller tracking a `hot → cold` acceptance trajectory with the
    /// default gain.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < cold <= hot < 1`.
    pub fn new(hot: f64, cold: f64) -> Self {
        assert!(
            0.0 < cold && cold <= hot && hot < 1.0,
            "need 0 < cold <= hot < 1, got hot {hot} cold {cold}"
        );
        AcceptanceController {
            hot_target: hot,
            cold_target: cold,
            gain: DEFAULT_GAIN,
        }
    }

    /// Same controller with feedback gain `gain` (clamped non-negative).
    pub fn with_gain(mut self, gain: f64) -> Self {
        self.gain = gain.max(0.0);
        self
    }

    /// The target acceptance rate for stage `stage` of a `k`-stage run:
    /// geometric interpolation from the hot target down to the cold target.
    pub fn target(&self, stage: usize, k: usize) -> f64 {
        if k <= 1 {
            return self.hot_target;
        }
        let f = (stage.min(k - 1)) as f64 / (k - 1) as f64;
        self.hot_target * (self.cold_target / self.hot_target).powf(f)
    }

    /// The corrected temperature for the next stage: `planned` scaled by
    /// the feedback term for the previous stage's `observed` acceptance
    /// rate against its `target`. Always positive and finite; a
    /// non-finite `planned` falls back to the clamp bounds.
    pub fn adjust(&self, planned: f64, observed: f64, target: f64) -> f64 {
        let error = observed.clamp(0.0, 1.0) - target.clamp(0.0, 1.0);
        let corrected = planned * (-self.gain * error).exp();
        if corrected.is_nan() {
            // Only reachable from a NaN `planned`; fail safe to the floor.
            return TEMPERATURE_FLOOR;
        }
        corrected.clamp(TEMPERATURE_FLOOR, TEMPERATURE_CEILING)
    }
}

/// Automatic initial temperature (the sweep's first pass, replaced):
/// the temperature at which a typical uphill move of size `σ` is accepted
/// with probability `hot_acceptance` under Boltzmann acceptance —
/// `Y₁ = σ / -ln(p)`. Falls back to a unit scale on a flat landscape, like
/// [`white84_schedule`](crate::white84_schedule).
///
/// # Panics
///
/// Panics unless `0 < hot_acceptance < 1`.
pub fn initial_temperature(stats: &DeltaStats, hot_acceptance: f64) -> f64 {
    assert!(
        0.0 < hot_acceptance && hot_acceptance < 1.0,
        "hot acceptance must be in (0, 1), got {hot_acceptance}"
    );
    let scale = if stats.std_dev > 0.0 {
        stats.std_dev
    } else {
        1.0
    };
    (scale / -hot_acceptance.ln()).clamp(TEMPERATURE_FLOOR, TEMPERATURE_CEILING)
}

/// The cold-end temperature scale from delta statistics: the smallest
/// positive delta over 3 (its acceptance then `e⁻³ ≈ 5%`), falling back to
/// `hot/100` when no positive delta was seen — the same convention as
/// [`white84_schedule`](crate::white84_schedule).
fn cold_scale(stats: &DeltaStats, hot: f64) -> f64 {
    stats
        .min_positive
        .map(|m| m / 3.0)
        .unwrap_or(hot / 100.0)
        .min(hot)
        .max(TEMPERATURE_FLOOR)
}

/// The initial schedule for acceptance-ratio control: `k` geometric
/// temperatures from [`initial_temperature`] down to the cold scale. The
/// controller then corrects each stage online.
///
/// # Panics
///
/// Panics if `k == 0` or `hot_acceptance` is outside `(0, 1)`.
pub fn acceptance_schedule(stats: &DeltaStats, hot_acceptance: f64, k: usize) -> Schedule {
    assert!(k > 0, "schedule needs at least one temperature");
    let hot = initial_temperature(stats, hot_acceptance);
    let cold = cold_scale(stats, hot);
    if k == 1 {
        return Schedule::single(hot);
    }
    let ratio = (cold / hot).powf(1.0 / (k as f64 - 1.0));
    Schedule::geometric(hot, ratio, k)
}

/// An ASA-style (Ingber) reannealing schedule: `Y_i = Y₁·e^{-c·√i}` with
/// `c` chosen so the last stage lands on `cold`. The `√i` quench is the
/// one-parameter ASA shape — it cools faster than geometric early and
/// slower late.
///
/// # Panics
///
/// Panics if `k == 0`, or `t0`/`cold` are not finite and positive, or
/// `cold > t0`.
pub fn asa_schedule(t0: f64, cold: f64, k: usize) -> Schedule {
    assert!(k > 0, "schedule needs at least one temperature");
    assert!(
        t0.is_finite() && t0 > 0.0 && cold.is_finite() && cold > 0.0,
        "temperatures must be finite and positive, got t0 {t0} cold {cold}"
    );
    assert!(cold <= t0, "cold end {cold} must not exceed t0 {t0}");
    if k == 1 {
        return Schedule::single(t0);
    }
    let c = (t0 / cold).ln() / ((k - 1) as f64).sqrt();
    let values = (0..k)
        .map(|i| (t0 * (-c * (i as f64).sqrt()).exp()).max(TEMPERATURE_FLOOR))
        .collect();
    Schedule::explicit(values)
}

/// [`asa_schedule`] seeded from measured delta statistics: `Y₁` from
/// [`initial_temperature`] at the default hot acceptance, cold end from the
/// smallest positive delta.
///
/// # Panics
///
/// Panics if `k == 0`.
pub fn asa_from_stats(stats: &DeltaStats, k: usize) -> Schedule {
    let t0 = initial_temperature(stats, DEFAULT_HOT_ACCEPTANCE);
    asa_schedule(t0, cold_scale(stats, t0), k)
}

/// A derived adaptive schedule, ready to install on a
/// [`GFunction`](crate::GFunction) via
/// [`with_schedule`](crate::GFunction::with_schedule): the schedule itself,
/// the controller to attach to the strategy (acceptance mode only), and the
/// probe cost that produced it — the caller subtracts `probe_evals` from
/// the run budget to keep comparisons equal-cost including tuning.
#[derive(Debug, Clone, PartialEq)]
pub struct AdaptiveSchedule {
    /// The derived temperature schedule.
    pub schedule: Schedule,
    /// The feedback controller to attach ([`AdaptiveMode::Acceptance`]
    /// only).
    pub controller: Option<AcceptanceController>,
    /// Cost evaluations spent measuring the [`DeltaStats`] behind this
    /// schedule.
    pub probe_evals: u64,
}

/// Derives a `k`-stage [`AdaptiveSchedule`] of the requested `mode` from
/// measured delta statistics. `probe_evals` is recorded verbatim so the
/// caller can charge it against the run budget.
///
/// # Panics
///
/// Panics if `k == 0`.
///
/// # Examples
///
/// ```
/// use anneal_core::schedule::adaptive::{derive, AdaptiveMode};
/// use anneal_core::DeltaStats;
///
/// let stats = DeltaStats {
///     mean: 0.1,
///     std_dev: 2.0,
///     min_positive: Some(1.0),
///     samples: 128,
/// };
/// let spec = derive(&stats, AdaptiveMode::Acceptance, 6, 128);
/// assert_eq!(spec.schedule.len(), 6);
/// assert!(spec.controller.is_some());
/// let asa = derive(&stats, AdaptiveMode::Asa, 6, 128);
/// assert!(asa.controller.is_none());
/// assert!(asa.schedule.value(0) > asa.schedule.value(5));
/// ```
pub fn derive(
    stats: &DeltaStats,
    mode: AdaptiveMode,
    k: usize,
    probe_evals: u64,
) -> AdaptiveSchedule {
    match mode {
        AdaptiveMode::Acceptance => AdaptiveSchedule {
            schedule: acceptance_schedule(stats, DEFAULT_HOT_ACCEPTANCE, k),
            controller: Some(AcceptanceController::default()),
            probe_evals,
        },
        AdaptiveMode::Asa => AdaptiveSchedule {
            schedule: asa_from_stats(stats, k),
            controller: None,
            probe_evals,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats() -> DeltaStats {
        DeltaStats {
            mean: 0.2,
            std_dev: 2.0,
            min_positive: Some(1.0),
            samples: 128,
        }
    }

    #[test]
    fn mode_spellings_round_trip() {
        for m in [AdaptiveMode::Acceptance, AdaptiveMode::Asa] {
            assert_eq!(m.to_string(), m.as_str());
            assert_eq!(m.as_str().parse::<AdaptiveMode>().unwrap(), m);
        }
        assert!("grid".parse::<AdaptiveMode>().is_err());
    }

    #[test]
    fn target_trajectory_interpolates_hot_to_cold() {
        let c = AcceptanceController::default();
        assert!((c.target(0, 6) - c.hot_target).abs() < 1e-12);
        assert!((c.target(5, 6) - c.cold_target).abs() < 1e-12);
        for s in 1..6 {
            assert!(c.target(s, 6) < c.target(s - 1, 6), "strictly decreasing");
        }
        // Single-stage runs hold the hot target; out-of-range stages clamp.
        assert_eq!(c.target(0, 1), c.hot_target);
        assert!((c.target(99, 6) - c.cold_target).abs() < 1e-12);
    }

    #[test]
    fn adjust_cools_when_hot_and_reheats_when_cold() {
        let c = AcceptanceController::default();
        let t = 1.0;
        assert!(c.adjust(t, 0.9, 0.5) < t, "over-accepting cools");
        assert!(c.adjust(t, 0.1, 0.5) > t, "under-accepting reheats");
        assert_eq!(c.adjust(t, 0.5, 0.5), t, "on target leaves T alone");
        assert_eq!(c.with_gain(0.0).adjust(t, 0.9, 0.1), t, "zero gain");
    }

    #[test]
    fn adjust_is_clamped_and_finite() {
        let c = AcceptanceController::default().with_gain(1e6);
        let cooled = c.adjust(1.0, 1.0, 0.0);
        let heated = c.adjust(1.0, 0.0, 1.0);
        assert!(cooled >= TEMPERATURE_FLOOR);
        assert!(heated <= TEMPERATURE_CEILING);
        assert!(c.adjust(f64::INFINITY, 0.5, 0.5).is_finite());
        assert!(c.adjust(f64::NAN, 0.5, 0.5).is_finite());
    }

    #[test]
    fn initial_temperature_hits_the_target_acceptance() {
        let t0 = initial_temperature(&stats(), 0.8);
        // A typical uphill move of size sigma accepts at exactly the target.
        let p = (-stats().std_dev / t0).exp();
        assert!((p - 0.8).abs() < 1e-12);
        // Flat landscape falls back to the unit scale.
        let flat = DeltaStats {
            mean: 0.0,
            std_dev: 0.0,
            min_positive: None,
            samples: 10,
        };
        assert!((initial_temperature(&flat, 0.5) - 1.0 / -0.5f64.ln()).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "in (0, 1)")]
    fn initial_temperature_rejects_bad_target() {
        let _ = initial_temperature(&stats(), 1.0);
    }

    #[test]
    fn acceptance_schedule_spans_hot_to_cold() {
        let s = acceptance_schedule(&stats(), 0.8, 6);
        assert_eq!(s.len(), 6);
        assert!((s.value(0) - initial_temperature(&stats(), 0.8)).abs() < 1e-12);
        assert!((s.value(5) - 1.0 / 3.0).abs() < 1e-9);
        for w in s.values().windows(2) {
            assert!(w[0] > w[1]);
        }
        assert_eq!(acceptance_schedule(&stats(), 0.8, 1).len(), 1);
    }

    #[test]
    fn asa_schedule_is_decreasing_and_lands_on_cold() {
        let s = asa_schedule(8.0, 0.25, 6);
        assert_eq!(s.len(), 6);
        assert!((s.value(0) - 8.0).abs() < 1e-12);
        assert!((s.value(5) - 0.25).abs() < 1e-9);
        for w in s.values().windows(2) {
            assert!(w[0] > w[1]);
        }
        // The sqrt(i) quench cools faster than geometric early on: the
        // second stage is already below the geometric interpolation point.
        let geometric_y2 = 8.0 * (0.25f64 / 8.0).powf(1.0 / 5.0);
        assert!(s.value(1) < geometric_y2);
    }

    #[test]
    fn asa_from_stats_matches_components() {
        let s = asa_from_stats(&stats(), 6);
        let t0 = initial_temperature(&stats(), DEFAULT_HOT_ACCEPTANCE);
        assert!((s.value(0) - t0).abs() < 1e-12);
        assert!((s.value(5) - 1.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn derive_bundles_mode_and_probe_cost() {
        let spec = derive(&stats(), AdaptiveMode::Acceptance, 6, 64);
        assert_eq!(spec.probe_evals, 64);
        assert_eq!(spec.schedule.len(), 6);
        assert_eq!(spec.controller, Some(AcceptanceController::default()));
        let asa = derive(&stats(), AdaptiveMode::Asa, 4, 32);
        assert_eq!(asa.controller, None);
        assert_eq!(asa.schedule.len(), 4);
    }

    #[test]
    fn derivation_is_deterministic() {
        let a = derive(&stats(), AdaptiveMode::Acceptance, 6, 128);
        let b = derive(&stats(), AdaptiveMode::Acceptance, 6, 128);
        for (x, y) in a.schedule.values().iter().zip(b.schedule.values()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }
}
