//! Temperature schedules (`Y₁ … Y_k`).
//!
//! Following \[KIRK83\] the paper folds Boltzmann's constant into the
//! temperature and calls the products `Y_i` "temperatures" (§1). Three
//! schedule shapes appear in the paper:
//!
//! * a **single** temperature (`k = 1`, classes 1, 3–8, 13–16),
//! * Kirkpatrick's **geometric** schedule (`Y₁ = 10`, `Y_i = 0.9·Y_{i-1}`,
//!   `k = 6`) used by six-temperature annealing and, rescaled, by the other
//!   six-temperature classes, and
//! * \[GOLD84\]'s **uniform** schedule (`k` evenly spaced points in `(0, τ)`,
//!   taken in decreasing order).
//!
//! The [`adaptive`] submodule derives schedules *online* from measured
//! delta/acceptance statistics instead of the §4.2.1 grid sweep: an
//! acceptance-ratio feedback controller, an ASA-style reannealing shape and
//! an automatic initial-temperature estimator.

pub mod adaptive;

use std::fmt;

/// An ordered list of temperature values `Y₁ ≥ … ≥ Y_k > 0` (monotonicity is
/// conventional, not enforced — the paper's two-level "schedule" `[1, 0.5]`
/// reuses this type for acceptance levels).
///
/// # Examples
///
/// ```
/// use anneal_core::Schedule;
///
/// // Kirkpatrick's circuit-partition schedule (§1).
/// let s = Schedule::geometric(10.0, 0.9, 6);
/// assert_eq!(s.len(), 6);
/// assert!((s.value(0) - 10.0).abs() < 1e-12);
/// assert!((s.value(5) - 10.0 * 0.9f64.powi(5)).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Schedule {
    values: Vec<f64>,
}

impl Schedule {
    /// A single-temperature schedule (`k = 1`).
    ///
    /// # Panics
    ///
    /// Panics if `y` is not finite and positive.
    pub fn single(y: f64) -> Self {
        Self::explicit(vec![y])
    }

    /// Kirkpatrick's geometric schedule: `Y₁ = y1`, `Y_i = ratio · Y_{i-1}`.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`, or `y1`/`ratio` are not finite and positive.
    pub fn geometric(y1: f64, ratio: f64, k: usize) -> Self {
        assert!(
            ratio.is_finite() && ratio > 0.0,
            "ratio must be finite and positive"
        );
        let mut values = Vec::with_capacity(k);
        let mut y = y1;
        for _ in 0..k {
            values.push(y);
            y *= ratio;
        }
        Self::explicit(values)
    }

    /// \[GOLD84\]'s schedule: `k` evenly spaced points in `(0, tau)`, highest
    /// first — `tau·k/(k+1), …, tau·1/(k+1)`.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` or `tau` is not finite and positive.
    pub fn uniform(tau: f64, k: usize) -> Self {
        assert!(
            tau.is_finite() && tau > 0.0,
            "tau must be finite and positive"
        );
        let values = (0..k)
            .map(|i| tau * (k - i) as f64 / (k + 1) as f64)
            .collect();
        Self::explicit(values)
    }

    /// A schedule with explicitly listed values.
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty or contains a non-finite or non-positive
    /// entry.
    pub fn explicit(values: Vec<f64>) -> Self {
        assert!(!values.is_empty(), "schedule must have at least one value");
        for (i, v) in values.iter().enumerate() {
            assert!(
                v.is_finite() && *v > 0.0,
                "schedule value {i} must be finite and positive, got {v}"
            );
        }
        Schedule { values }
    }

    /// The schedule with every value multiplied by `factor` — how the paper's
    /// tuner rescales a base schedule shape per g class (§4.2.1).
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not finite and positive.
    pub fn scaled(&self, factor: f64) -> Self {
        Self::explicit(self.values.iter().map(|v| v * factor).collect())
    }

    /// Number of temperatures `k`.
    #[allow(clippy::len_without_is_empty)] // never empty by construction
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// The `t`-th temperature (0-based).
    ///
    /// # Panics
    ///
    /// Panics if `t >= self.len()`.
    pub fn value(&self, t: usize) -> f64 {
        self.values[t]
    }

    /// All values, highest-index last.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Overwrites the `t`-th temperature in place — the feedback hook used
    /// by [`adaptive::AcceptanceController`] at stage boundaries.
    ///
    /// # Panics
    ///
    /// Panics if `t >= self.len()` or `y` is not finite and positive.
    pub fn set_value(&mut self, t: usize, y: f64) {
        assert!(
            y.is_finite() && y > 0.0,
            "schedule value {t} must be finite and positive, got {y}"
        );
        self.values[t] = y;
    }
}

impl fmt::Display for Schedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v:.4}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometric_matches_kirkpatrick() {
        let s = Schedule::geometric(10.0, 0.9, 6);
        let expect = [10.0, 9.0, 8.1, 7.29, 6.561, 5.9049];
        for (i, e) in expect.iter().enumerate() {
            assert!((s.value(i) - e).abs() < 1e-9, "Y{} = {}", i + 1, s.value(i));
        }
    }

    #[test]
    fn uniform_is_decreasing_and_open_interval() {
        let s = Schedule::uniform(1.0, 25);
        for w in s.values().windows(2) {
            assert!(w[0] > w[1]);
        }
        assert!(s.value(0) < 1.0);
        assert!(s.value(24) > 0.0);
    }

    #[test]
    fn scaled_multiplies_every_value() {
        let s = Schedule::geometric(10.0, 0.9, 3).scaled(0.5);
        assert!((s.value(0) - 5.0).abs() < 1e-12);
        assert!((s.value(1) - 4.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one value")]
    fn empty_schedule_panics() {
        let _ = Schedule::explicit(vec![]);
    }

    #[test]
    #[should_panic(expected = "finite and positive")]
    fn nonpositive_value_panics() {
        let _ = Schedule::explicit(vec![1.0, 0.0]);
    }

    #[test]
    fn display_is_nonempty() {
        let s = Schedule::single(2.0);
        assert!(!format!("{s}").is_empty());
    }
}
