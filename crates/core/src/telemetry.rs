//! Per-run telemetry: wall time, throughput and the per-temperature
//! acceptance/advance breakdown, in a form downstream harnesses can log.
//!
//! The strategies always collect the underlying counters (they are cheap:
//! one snapshot per temperature boundary); [`RunTelemetry::capture`] distils
//! them into a flat record, and the optional [`TelemetrySink`] lets callers
//! stream records without holding every [`RunResult`] alive. When no sink is
//! attached nothing extra is computed — `run` paths without telemetry do not
//! even read the clock.

use std::time::Duration;

use crate::stats::{RunResult, StopReason, TempStats};

/// A flat, strategy-independent summary of one run, suitable for logging.
#[derive(Debug, Clone, PartialEq)]
pub struct RunTelemetry {
    /// Wall-clock duration of the run.
    pub wall: Duration,
    /// Cost evaluations charged against the budget.
    pub evals: u64,
    /// Evaluations per wall-clock second (0 if the run was too fast to
    /// measure).
    pub evals_per_sec: f64,
    /// Why the run stopped.
    pub stop: StopReason,
    /// Cost of the starting state.
    pub initial_cost: f64,
    /// Best cost observed.
    pub best_cost: f64,
    /// Total reduction achieved (`initial_cost - best_cost`).
    pub reduction: f64,
    /// Overall acceptance rate (both directions).
    pub acceptance_rate: f64,
    /// Per-temperature breakdown (one entry per stage entered).
    pub per_temp: Vec<TempStats>,
}

impl RunTelemetry {
    /// Builds the telemetry record for `result`, which took `wall` of
    /// wall-clock time.
    pub fn capture<S>(result: &RunResult<S>, wall: Duration) -> Self {
        let secs = wall.as_secs_f64();
        RunTelemetry {
            wall,
            evals: result.stats.evals,
            evals_per_sec: if secs > 0.0 {
                result.stats.evals as f64 / secs
            } else {
                0.0
            },
            stop: result.stop,
            initial_cost: result.initial_cost,
            best_cost: result.best_cost,
            reduction: result.reduction(),
            acceptance_rate: result.stats.acceptance_rate(),
            per_temp: result.stats.per_temp.clone(),
        }
    }
}

/// A consumer of per-run telemetry records.
///
/// Runs feed sinks via `&mut dyn TelemetrySink`, so sinks can be anything
/// from a `Vec` (provided below) to a JSON-lines writer in a harness crate.
pub trait TelemetrySink {
    /// Called once per completed run.
    fn record(&mut self, telemetry: &RunTelemetry);
}

/// The simplest sink: collect every record.
impl TelemetrySink for Vec<RunTelemetry> {
    fn record(&mut self, telemetry: &RunTelemetry) {
        self.push(telemetry.clone());
    }
}

/// Runs `run`, feeding its telemetry to `sink` if one is attached.
///
/// This is the shared implementation behind every strategy's
/// `run_with_telemetry`: with `sink = None` it is a plain call — no clock
/// read, no capture.
pub fn timed<S>(
    sink: Option<&mut dyn TelemetrySink>,
    run: impl FnOnce() -> RunResult<S>,
) -> RunResult<S> {
    match sink {
        None => run(),
        Some(sink) => {
            let started = std::time::Instant::now();
            let result = run();
            sink.record(&RunTelemetry::capture(&result, started.elapsed()));
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::RunStats;

    fn result() -> RunResult<()> {
        RunResult {
            best_state: (),
            best_cost: 40.0,
            initial_cost: 100.0,
            final_cost: 45.0,
            stop: StopReason::Budget,
            stats: RunStats {
                evals: 5_000,
                proposals: 4_000,
                accepted_downhill: 600,
                accepted_uphill: 400,
                rejected_uphill: 3_000,
                ..RunStats::default()
            },
        }
    }

    #[test]
    fn capture_derives_rates() {
        let t = RunTelemetry::capture(&result(), Duration::from_millis(500));
        assert_eq!(t.evals, 5_000);
        assert!((t.evals_per_sec - 10_000.0).abs() < 1e-6);
        assert!((t.reduction - 60.0).abs() < 1e-12);
        assert!((t.acceptance_rate - 0.25).abs() < 1e-12);
        assert_eq!(t.stop, StopReason::Budget);
    }

    #[test]
    fn zero_duration_does_not_divide_by_zero() {
        let t = RunTelemetry::capture(&result(), Duration::ZERO);
        assert_eq!(t.evals_per_sec, 0.0);
    }

    #[test]
    fn vec_sink_collects() {
        let mut sink: Vec<RunTelemetry> = Vec::new();
        let t = RunTelemetry::capture(&result(), Duration::from_millis(1));
        {
            let dyn_sink: &mut dyn TelemetrySink = &mut sink;
            dyn_sink.record(&t);
            dyn_sink.record(&t);
        }
        assert_eq!(sink.len(), 2);
        assert_eq!(sink[0], t);
    }
}
