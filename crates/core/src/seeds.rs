//! Deterministic seed derivation.
//!
//! The paper's fairness protocol requires that every method see the *same*
//! starting arrangement on each instance ("Each g class used the same
//! initial arrangement", §4.2.1). The experiment harness achieves this by
//! deriving one seed per (base, index) pair with a SplitMix64 step, so the
//! per-instance seed is independent of which method is being run.

/// Derives a well-mixed child seed from `base` and a stream index.
///
/// Uses the SplitMix64 finalizer, which maps distinct inputs to
/// statistically independent outputs.
///
/// # Examples
///
/// ```
/// use anneal_core::derive_seed;
///
/// let a = derive_seed(42, 0);
/// let b = derive_seed(42, 1);
/// assert_ne!(a, b);
/// assert_eq!(a, derive_seed(42, 0));
/// ```
pub fn derive_seed(base: u64, index: u64) -> u64 {
    let mut z = base.wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(index.wrapping_add(1)));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn deterministic() {
        assert_eq!(derive_seed(1, 2), derive_seed(1, 2));
    }

    #[test]
    fn distinct_across_indices_and_bases() {
        let mut seen = HashSet::new();
        for base in 0..16u64 {
            for idx in 0..64u64 {
                assert!(
                    seen.insert(derive_seed(base, idx)),
                    "collision at {base},{idx}"
                );
            }
        }
    }

    #[test]
    fn zero_base_is_fine() {
        assert_ne!(derive_seed(0, 0), 0);
        assert_ne!(derive_seed(0, 0), derive_seed(0, 1));
    }
}
