//! The constructive heuristic of Goto, Cederbaum and Ting [GOTO77], as
//! described in §4.2.2 of the paper:
//!
//! > "The heuristic of Goto constructs the linear arrangement left to right.
//! > It begins with the most lightly connected element and places this at
//! > the leftmost position. Let S be the set of nets in the elements already
//! > placed. Let i be an element not yet placed, and let T be the nets in
//! > the remaining elements not yet placed. The next element, i, to be
//! > placed is chosen such that S∩T is minimum over all choices for i."
//!
//! Placing `i` next makes `S∩T` exactly the set of nets crossing the new
//! boundary between the placed prefix and the unplaced suffix, so each step
//! greedily minimizes the crossing count of the gap it creates.

use anneal_netlist::Netlist;

use crate::arrangement::Arrangement;

/// Builds an arrangement with the Goto greedy construction.
///
/// Ties are broken toward the smaller element index, making the construction
/// deterministic.
///
/// # Panics
///
/// Panics if the netlist has no elements.
///
/// # Examples
///
/// ```
/// use anneal_linarr::{goto_arrangement, LinearArrangementProblem};
/// use anneal_netlist::generator::random_two_pin;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(3);
/// let netlist = random_two_pin(15, 150, &mut rng);
/// let arrangement = goto_arrangement(&netlist);
/// let problem = LinearArrangementProblem::new(netlist);
/// let state = problem.state_from(arrangement);
/// // Goto arrangements are far better than random ones (§4.2.2).
/// assert!(state.density() < 90);
/// ```
pub fn goto_arrangement(netlist: &Netlist) -> Arrangement {
    let n = netlist.n_elements();
    assert!(n > 0, "netlist has no elements");
    let m = netlist.n_nets();

    let mut placed = vec![false; n];
    let mut placed_pins = vec![0u32; m]; // per net: pins already placed
    let mut order = Vec::with_capacity(n);

    // Step 1: the most lightly connected element.
    let first = (0..n)
        .min_by_key(|&e| (netlist.degree(e), e))
        .expect("n > 0");
    place(netlist, first, &mut placed, &mut placed_pins, &mut order);

    // Greedy extension: minimize the crossing count of the next boundary.
    while order.len() < n {
        let mut best: Option<(u32, usize)> = None;
        #[allow(clippy::needless_range_loop)] // index drives two parallel arrays
        for cand in 0..n {
            if placed[cand] {
                continue;
            }
            let crossing = crossing_after(netlist, cand, &placed_pins);
            match best {
                Some((c, e)) if (c, e) <= (crossing, cand) => {}
                _ => best = Some((crossing, cand)),
            }
        }
        let (_, next) = best.expect("an unplaced element remains");
        place(netlist, next, &mut placed, &mut placed_pins, &mut order);
    }

    Arrangement::from_order(order)
}

fn place(
    netlist: &Netlist,
    element: usize,
    placed: &mut [bool],
    placed_pins: &mut [u32],
    order: &mut Vec<u32>,
) {
    placed[element] = true;
    order.push(element as u32);
    for &net in netlist.nets_of(element) {
        placed_pins[net as usize] += 1;
    }
}

/// Number of nets that would cross the boundary after placing `cand`.
fn crossing_after(netlist: &Netlist, cand: usize, placed_pins: &[u32]) -> u32 {
    let mut crossing = 0;
    for (net, &p) in placed_pins.iter().enumerate() {
        let size = netlist.pins(net).len() as u32;
        let incident = netlist.pins(net).binary_search(&(cand as u32)).is_ok() as u32;
        let p_after = p + incident;
        if p_after > 0 && p_after < size {
            crossing += 1;
        }
    }
    crossing
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::ArrangedState;
    use anneal_netlist::generator::{random_multi_pin, random_two_pin};
    use anneal_netlist::Netlist;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn path_graph_is_arranged_optimally() {
        // A path 0-1-2-3-4 has an arrangement of density 1; Goto finds it.
        let nl = Netlist::builder(5)
            .net([0, 1])
            .net([1, 2])
            .net([2, 3])
            .net([3, 4])
            .build()
            .unwrap();
        let arr = goto_arrangement(&nl);
        let s = ArrangedState::new(&nl, arr);
        assert_eq!(s.density(), 1);
    }

    #[test]
    fn starts_with_most_lightly_connected() {
        // Element 3 has degree 1, the rest higher.
        let nl = Netlist::builder(4)
            .net([0, 1])
            .net([0, 2])
            .net([1, 2])
            .net([2, 3])
            .build()
            .unwrap();
        let arr = goto_arrangement(&nl);
        assert_eq!(arr.element_at(0), 3);
    }

    #[test]
    fn deterministic() {
        let mut rng = StdRng::seed_from_u64(1);
        let nl = random_two_pin(15, 150, &mut rng);
        assert_eq!(goto_arrangement(&nl), goto_arrangement(&nl));
    }

    #[test]
    fn beats_random_arrangements_on_average() {
        // §4.2.2: Goto performs as well as the best Monte Carlo methods.
        let mut total_random = 0u64;
        let mut total_goto = 0u64;
        for seed in 0..10 {
            let mut rng = StdRng::seed_from_u64(seed);
            let nl = random_two_pin(15, 150, &mut rng);
            let random = ArrangedState::new(&nl, Arrangement::random(15, &mut rng));
            let goto = ArrangedState::new(&nl, goto_arrangement(&nl));
            total_random += u64::from(random.density());
            total_goto += u64::from(goto.density());
        }
        assert!(
            total_goto < total_random,
            "goto {total_goto} should beat random {total_random}"
        );
    }

    #[test]
    fn works_on_multi_pin_netlists() {
        let mut rng = StdRng::seed_from_u64(2);
        let nl = random_multi_pin(15, 150, 2, 5, &mut rng);
        let arr = goto_arrangement(&nl);
        let s = ArrangedState::new(&nl, arr);
        assert!(s.verify(&nl));
        assert!(s.density() <= 150);
    }

    #[test]
    fn covers_all_elements_exactly_once() {
        let mut rng = StdRng::seed_from_u64(3);
        let nl = random_two_pin(12, 60, &mut rng);
        let arr = goto_arrangement(&nl);
        let mut seen = arr.order().to_vec();
        seen.sort_unstable();
        assert_eq!(seen, (0..12).collect::<Vec<u32>>());
    }
}
