//! The mutable search state: an arrangement plus its incrementally
//! maintained [`CutProfile`].

use anneal_netlist::Netlist;

use crate::arrangement::Arrangement;
use crate::density::CutProfile;

/// An arrangement bundled with its cut profile, so that both objectives
/// (density and total span) read in O(1) and perturbations update
/// incrementally.
///
/// `ArrangedState` deliberately does not borrow the netlist (the
/// [`Problem`](anneal_core::Problem) owner holds it); every mutating method
/// takes it as an argument, and it must be the netlist the state was built
/// with.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArrangedState {
    arrangement: Arrangement,
    profile: CutProfile,
}

impl ArrangedState {
    /// Builds the state for `arrangement` under `netlist`.
    ///
    /// # Panics
    ///
    /// Panics if sizes disagree.
    pub fn new(netlist: &Netlist, arrangement: Arrangement) -> Self {
        let profile = CutProfile::build(netlist, &arrangement);
        ArrangedState {
            arrangement,
            profile,
        }
    }

    /// The current arrangement.
    pub fn arrangement(&self) -> &Arrangement {
        &self.arrangement
    }

    /// The current density.
    pub fn density(&self) -> u32 {
        self.profile.density()
    }

    /// The current total span (wirelength).
    pub fn total_span(&self) -> u64 {
        self.profile.total_span()
    }

    /// The cut profile.
    pub fn profile(&self) -> &CutProfile {
        &self.profile
    }

    /// Swaps the elements at positions `p` and `q`, updating the profile.
    pub fn swap(&mut self, netlist: &Netlist, p: usize, q: usize) {
        if p == q {
            return;
        }
        let a = self.arrangement.element_at(p);
        let b = self.arrangement.element_at(q);
        self.arrangement.swap_positions(p, q);
        let nets = merged_nets(netlist, &[a, b]);
        self.profile
            .update_nets(netlist, &self.arrangement, nets.iter().copied());
    }

    /// Moves the element at position `from` to position `to` (shifting the
    /// elements in between), updating the profile.
    pub fn relocate(&mut self, netlist: &Netlist, from: usize, to: usize) {
        if from == to {
            return;
        }
        // Every element in the shifted window changes position.
        let (lo, hi) = if from < to { (from, to) } else { (to, from) };
        let moved: Vec<u32> = (lo..=hi).map(|p| self.arrangement.element_at(p)).collect();
        self.arrangement.relocate(from, to);
        let nets = merged_nets(netlist, &moved);
        self.profile
            .update_nets(netlist, &self.arrangement, nets.iter().copied());
    }

    /// Verifies the profile against a rebuild (test support).
    pub fn verify(&self, netlist: &Netlist) -> bool {
        self.profile.verify(netlist, &self.arrangement)
    }
}

/// Sorted, deduplicated union of the nets incident to `elements`.
fn merged_nets(netlist: &Netlist, elements: &[u32]) -> Vec<u32> {
    let mut nets: Vec<u32> = elements
        .iter()
        .flat_map(|&e| netlist.nets_of(e as usize).iter().copied())
        .collect();
    nets.sort_unstable();
    nets.dedup();
    nets
}

#[cfg(test)]
mod tests {
    use super::*;
    use anneal_netlist::generator::{random_multi_pin, random_two_pin};
    use rand::{rngs::StdRng, RngExt, SeedableRng};

    #[test]
    fn swap_updates_incrementally() {
        let mut rng = StdRng::seed_from_u64(7);
        let nl = random_two_pin(15, 150, &mut rng);
        let mut s = ArrangedState::new(&nl, Arrangement::random(15, &mut rng));
        for _ in 0..200 {
            let p = rng.random_range(0..15);
            let q = rng.random_range(0..15);
            s.swap(&nl, p, q);
        }
        assert!(s.verify(&nl));
    }

    #[test]
    fn relocate_updates_incrementally() {
        let mut rng = StdRng::seed_from_u64(8);
        let nl = random_multi_pin(15, 150, 2, 5, &mut rng);
        let mut s = ArrangedState::new(&nl, Arrangement::random(15, &mut rng));
        for _ in 0..200 {
            let from = rng.random_range(0..15);
            let to = rng.random_range(0..15);
            s.relocate(&nl, from, to);
        }
        assert!(s.verify(&nl));
    }

    #[test]
    fn swap_is_involutive_on_state() {
        let mut rng = StdRng::seed_from_u64(9);
        let nl = random_two_pin(10, 40, &mut rng);
        let mut s = ArrangedState::new(&nl, Arrangement::random(10, &mut rng));
        let before = s.clone();
        s.swap(&nl, 2, 7);
        assert_ne!(s.arrangement(), before.arrangement());
        s.swap(&nl, 2, 7);
        assert_eq!(s, before);
    }

    #[test]
    fn noop_moves_do_nothing() {
        let mut rng = StdRng::seed_from_u64(10);
        let nl = random_two_pin(8, 20, &mut rng);
        let mut s = ArrangedState::new(&nl, Arrangement::random(8, &mut rng));
        let before = s.clone();
        s.swap(&nl, 3, 3);
        s.relocate(&nl, 5, 5);
        assert_eq!(s, before);
    }
}
