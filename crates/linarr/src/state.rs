//! The mutable search state: an arrangement plus its incrementally
//! maintained [`CutProfile`].

use anneal_netlist::Netlist;

use crate::arrangement::Arrangement;
use crate::density::CutProfile;

/// An arrangement bundled with its cut profile, so that both objectives
/// (density and total span) read in O(1) and perturbations update
/// incrementally.
///
/// `ArrangedState` deliberately does not borrow the netlist (the
/// [`Problem`](anneal_core::Problem) owner holds it); every mutating method
/// takes it as an argument, and it must be the netlist the state was built
/// with.
#[derive(Debug, Clone)]
pub struct ArrangedState {
    arrangement: Arrangement,
    profile: CutProfile,
    /// Reusable buffer for the affected-net set of a relocation; excluded
    /// from equality so scratch contents never distinguish states.
    scratch: Vec<u32>,
}

impl PartialEq for ArrangedState {
    fn eq(&self, other: &Self) -> bool {
        self.arrangement == other.arrangement && self.profile == other.profile
    }
}

impl Eq for ArrangedState {}

impl ArrangedState {
    /// Builds the state for `arrangement` under `netlist`.
    ///
    /// # Panics
    ///
    /// Panics if sizes disagree.
    pub fn new(netlist: &Netlist, arrangement: Arrangement) -> Self {
        let profile = CutProfile::build(netlist, &arrangement);
        ArrangedState {
            arrangement,
            profile,
            scratch: Vec::new(),
        }
    }

    /// The current arrangement.
    pub fn arrangement(&self) -> &Arrangement {
        &self.arrangement
    }

    /// The current density.
    pub fn density(&self) -> u32 {
        self.profile.density()
    }

    /// The current total span (wirelength).
    pub fn total_span(&self) -> u64 {
        self.profile.total_span()
    }

    /// The cut profile.
    pub fn profile(&self) -> &CutProfile {
        &self.profile
    }

    /// Swaps the elements at positions `p` and `q`, updating the profile.
    pub fn swap(&mut self, netlist: &Netlist, p: usize, q: usize) {
        if p == q {
            return;
        }
        let a = self.arrangement.element_at(p);
        let b = self.arrangement.element_at(q);
        self.arrangement.swap_positions(p, q);
        // Lockstep walk of the two sorted incident-net lists. A net
        // incident to both endpoints keeps its pin-position set (only the
        // element labels trade places), so its span is unchanged and it is
        // skipped outright; the rest refresh without any allocation.
        let na = netlist.nets_of(a as usize);
        let nb = netlist.nets_of(b as usize);
        let (mut i, mut j) = (0, 0);
        while i < na.len() && j < nb.len() {
            let (x, y) = (na[i], nb[j]);
            match x.cmp(&y) {
                std::cmp::Ordering::Equal => {
                    i += 1;
                    j += 1;
                }
                std::cmp::Ordering::Less => {
                    i += 1;
                    self.profile
                        .refresh_net(netlist, &self.arrangement, x as usize);
                }
                std::cmp::Ordering::Greater => {
                    j += 1;
                    self.profile
                        .refresh_net(netlist, &self.arrangement, y as usize);
                }
            }
        }
        for &net in &na[i..] {
            self.profile
                .refresh_net(netlist, &self.arrangement, net as usize);
        }
        for &net in &nb[j..] {
            self.profile
                .refresh_net(netlist, &self.arrangement, net as usize);
        }
    }

    /// Moves the element at position `from` to position `to` (shifting the
    /// elements in between), updating the profile.
    pub fn relocate(&mut self, netlist: &Netlist, from: usize, to: usize) {
        if from == to {
            return;
        }
        // Every element in the shifted window changes position; the window
        // holds the same element set before and after, so the affected nets
        // can be collected post-shift into the reusable scratch buffer.
        let (lo, hi) = if from < to { (from, to) } else { (to, from) };
        self.arrangement.relocate(from, to);
        self.scratch.clear();
        for p in lo..=hi {
            let e = self.arrangement.element_at(p);
            self.scratch.extend_from_slice(netlist.nets_of(e as usize));
        }
        self.scratch.sort_unstable();
        self.scratch.dedup();
        for idx in 0..self.scratch.len() {
            let net = self.scratch[idx];
            self.profile
                .refresh_net(netlist, &self.arrangement, net as usize);
        }
    }

    /// Verifies the profile against a rebuild (test support).
    pub fn verify(&self, netlist: &Netlist) -> bool {
        self.profile.verify(netlist, &self.arrangement)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anneal_netlist::generator::{random_multi_pin, random_two_pin};
    use rand::{rngs::StdRng, RngExt, SeedableRng};

    #[test]
    fn swap_updates_incrementally() {
        let mut rng = StdRng::seed_from_u64(7);
        let nl = random_two_pin(15, 150, &mut rng);
        let mut s = ArrangedState::new(&nl, Arrangement::random(15, &mut rng));
        for _ in 0..200 {
            let p = rng.random_range(0..15);
            let q = rng.random_range(0..15);
            s.swap(&nl, p, q);
        }
        assert!(s.verify(&nl));
    }

    #[test]
    fn relocate_updates_incrementally() {
        let mut rng = StdRng::seed_from_u64(8);
        let nl = random_multi_pin(15, 150, 2, 5, &mut rng);
        let mut s = ArrangedState::new(&nl, Arrangement::random(15, &mut rng));
        for _ in 0..200 {
            let from = rng.random_range(0..15);
            let to = rng.random_range(0..15);
            s.relocate(&nl, from, to);
        }
        assert!(s.verify(&nl));
    }

    #[test]
    fn swap_is_involutive_on_state() {
        let mut rng = StdRng::seed_from_u64(9);
        let nl = random_two_pin(10, 40, &mut rng);
        let mut s = ArrangedState::new(&nl, Arrangement::random(10, &mut rng));
        let before = s.clone();
        s.swap(&nl, 2, 7);
        assert_ne!(s.arrangement(), before.arrangement());
        s.swap(&nl, 2, 7);
        assert_eq!(s, before);
    }

    #[test]
    fn noop_moves_do_nothing() {
        let mut rng = StdRng::seed_from_u64(10);
        let nl = random_two_pin(8, 20, &mut rng);
        let mut s = ArrangedState::new(&nl, Arrangement::random(8, &mut rng));
        let before = s.clone();
        s.swap(&nl, 3, 3);
        s.relocate(&nl, 5, 5);
        assert_eq!(s, before);
    }
}
